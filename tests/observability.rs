//! End-to-end observability: the SLO engine, the black-box flight
//! recorder and the HTML ops dashboard over real pipeline runs.
//!
//! Two scenario fixtures drive the stack into judgment territory:
//! the chaos outage window from `tests/chaos.rs` (days [20, 25) are a
//! total vantage blackout, so rounds degrade and the degraded-rounds
//! SLO burns through its budget) and the first GFW injection era
//! (UDP/53 anomaly flags keep the publish-freshness clock climbing).
//! Everything is seeded, so breach logs, captures and the rendered
//! dashboard are byte-identical across runs.

use sixdust::hitlist::{HitlistService, ServiceConfig};
use sixdust::net::{
    events, Day, FaultConfig, GilbertElliott, IcmpRateLimit, Internet, Outage, Scale,
};
use sixdust::scan::ScanConfig;
use sixdust::telemetry::{
    Dashboard, FlightRecorder, Registry, SeriesRecorder, SloEngine, SloSpec,
    DEFAULT_SERIES_CAPACITY,
};

/// The outage window every chaos run schedules: days `[20, 25)`
/// (mirrors `tests/chaos.rs`).
const OUTAGE_FROM: Day = Day(20);
const OUTAGE_UNTIL: Day = Day(25);
const RUN_UNTIL: Day = Day(60);

fn chaos_faults() -> FaultConfig {
    FaultConfig::lossless()
        .with_seed(0xC4A05)
        .with_burst(GilbertElliott {
            mean_good_days: 8,
            mean_bad_days: 4,
            good_drop_permille: 20,
            bad_drop_permille: 600,
        })
        .with_duplicate_permille(30)
        .with_icmp_rate_limit(IcmpRateLimit { per_day: 5 })
        .with_outage(Outage::vantage(OUTAGE_FROM, OUTAGE_UNTIL))
}

/// A service carrying the full judgment stack: series recorder, the
/// standard SLO set and a flight recorder.
fn ops_service(registry: &Registry) -> HitlistService {
    let config = ServiceConfig::builder()
        .scan(ScanConfig::builder().attempts(3).retry_backoff_ms(10).build())
        .traceroute_cap(800)
        .build();
    HitlistService::new(config)
        .with_telemetry(registry.clone())
        .with_series(DEFAULT_SERIES_CAPACITY)
        .with_slo(SloEngine::standard())
        .with_flight(FlightRecorder::new())
}

fn run_chaos_ops() -> HitlistService {
    let registry = Registry::new();
    let net = Internet::build(Scale::tiny()).with_faults(chaos_faults()).with_telemetry(&registry);
    let mut svc = ops_service(&registry);
    svc.run(&net, Day(0), RUN_UNTIL);
    svc
}

#[test]
fn outage_burns_the_degraded_budget_and_freezes_a_black_box() {
    let svc = run_chaos_ops();
    let engine = svc.slo().expect("SLO engine attached");

    // The five-day blackout produces consecutive degraded rounds; by the
    // third the short (3-round) and long (12-round) windows both burn
    // past 2x, so a breach round must land inside the outage window.
    let in_outage: Vec<_> = engine
        .breaches()
        .iter()
        .filter(|b| b.slo == "degraded-rounds" && b.key >= OUTAGE_FROM.0 && b.key < OUTAGE_UNTIL.0)
        .collect();
    assert!(
        !in_outage.is_empty(),
        "degraded-rounds SLO must breach inside the outage; log: {:?}",
        engine.breaches()
    );
    assert!(engine.breaches().iter().any(|b| b.onset), "some breach is an onset");
    for b in &in_outage {
        assert_eq!(b.bad_permille, 1000, "blackout rounds are fully degraded");
        assert!(b.burn_short_milli >= 2_000, "short window burning: {}", b.burn_short_milli);
    }

    // The machine-readable breach log carries the same story.
    let log = engine.breach_log_jsonl();
    assert!(log.contains("degraded-rounds"), "breach log: {log}");

    // The flight recorder froze captures: one at the first degraded
    // round of an episode, one at each SLO breach onset.
    let flight = svc.flight().expect("flight recorder attached");
    let captures = flight.captures();
    assert!(!captures.is_empty(), "the blackout must freeze at least one capture");
    assert!(
        captures.iter().any(|c| c.reason == "degraded-round"),
        "a degraded-round onset capture exists: {:?}",
        captures.iter().map(|c| c.reason.as_str()).collect::<Vec<_>>()
    );
    assert!(
        captures.iter().any(|c| c.reason == "slo:degraded-rounds"),
        "an SLO breach onset capture exists"
    );
    // Captures carry context, not just the trigger: recent rounds and
    // the noted degraded/anomaly events leading up to it.
    let slo_cap = captures.iter().find(|c| c.reason == "slo:degraded-rounds").unwrap();
    assert!(!slo_cap.rounds.is_empty(), "capture carries recent metric rounds");
    assert!(
        slo_cap.events.iter().any(|e| e.kind == "service.degraded"),
        "capture carries the degraded-round events that led to the breach"
    );
    // Deterministic black boxes: no wall-clock metrics inside.
    let json = flight.captures_json();
    assert!(!json.contains("_ms\""), "captures must exclude wall-clock metrics: {json}");
}

#[test]
fn gfw_era_keeps_publishes_stale_and_fires_the_freshness_slo() {
    // Same window as the hitlist crate's era tests: enough pre-era
    // rounds to warm the MAD baselines, then into the injections, where
    // every round flags UDP/53 and the staleness clock climbs.
    let net =
        Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless().with_drop_permille(2));
    let registry = Registry::new();
    let config = ServiceConfig::builder().alias_every_days(14).traceroute_cap(600).build();
    let mut svc = HitlistService::new(config)
        .with_telemetry(registry.clone())
        .with_series(DEFAULT_SERIES_CAPACITY)
        .with_slo(SloEngine::standard())
        .with_flight(FlightRecorder::new());
    let start = Day(events::GFW_ERA1.0 .0 - 40);
    svc.run(&net, start, events::GFW_ERA1.0.plus(10));

    let era_start = events::GFW_ERA1.0;
    assert!(
        svc.rounds().iter().any(|r| r.day >= era_start && r.anomalous.iter().any(|&a| a)),
        "era rounds carry anomaly flags"
    );
    // Anomaly-flagged rounds never reset the freshness clock, so the
    // staleness gauge exceeds the SLO's 2-round objective and the
    // publish-freshness SLO records breach rounds during the era.
    let engine = svc.slo().expect("SLO engine attached");
    assert!(
        engine.breaches().iter().any(|b| b.slo == "publish-freshness" && b.key >= era_start.0),
        "publish-freshness must breach during the era; log: {:?}",
        engine.breaches()
    );
    let snap = registry.snapshot();
    assert!(
        snap.gauge("service.publish.staleness_rounds").unwrap_or(0) > 2,
        "the era keeps the staleness clock above the objective"
    );
    // At least one black box froze (anomaly onset or breach onset).
    assert!(svc.flight().expect("attached").captures_len() >= 1);
}

#[test]
fn ops_dashboard_renders_byte_identical_across_runs() {
    let a = run_chaos_ops();
    let b = run_chaos_ops();

    let render = |svc: &HitlistService| {
        Dashboard {
            title: "sixdust ops",
            subtitle: "chaos fixture, seed 0xC4A05",
            series: svc.series().expect("series attached"),
            slo: svc.slo(),
            flight: svc.flight(),
        }
        .render()
    };
    let page_a = render(&a);
    let page_b = render(&b);
    assert_eq!(page_a, page_b, "same seed must render the identical dashboard");
    assert_eq!(page_a, render(&a), "rendering is a pure function of the run");

    // The page actually shows the incident: SLO table, breach rows and
    // flight captures all present.
    assert!(page_a.contains("degraded-rounds"));
    assert!(page_a.contains("sixdust ops"));
    assert!(!page_a.is_empty() && page_a.starts_with("<!DOCTYPE html>"));

    // The underlying machine-readable artifacts replay identically too.
    let (ea, eb) = (a.slo().unwrap(), b.slo().unwrap());
    assert_eq!(ea.breach_log_jsonl(), eb.breach_log_jsonl());
    let (fa, fb) = (a.flight().unwrap(), b.flight().unwrap());
    assert_eq!(fa.captures_json(), fb.captures_json());
}

#[test]
fn burn_rate_math_is_exact_over_a_synthetic_series() {
    let registry = Registry::new();
    let mut recorder = SeriesRecorder::new(registry.clone(), 64);
    // 100‰ budget, short window 2, long window 4, alert at 2.0x burn.
    // A breach needs BOTH windows hot: the short window for recency,
    // the long window to confirm the burn is sustained.
    let mut engine =
        SloEngine::new(vec![SloSpec::ratio("avail", "bad", "total", 100, 2, 4, 2_000)])
            .with_registry(&registry);
    let bad = registry.counter("bad");
    let total = registry.counter("total");

    // Round 0: 4/10 bad = 400‰, but one round is below the
    // short-window warm-up — no verdict yet.
    total.add(10);
    bad.add(4);
    assert!(engine.observe(recorder.record(0)).is_empty());

    // Round 1: 400‰ again. Short window avg 400‰ = 4.0x of the 100‰
    // budget; long window (the same two rounds) identical. Breach, onset.
    total.add(10);
    bad.add(4);
    let fired = engine.observe(recorder.record(1));
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].slo, "avail");
    assert_eq!(fired[0].bad_permille, 400);
    assert_eq!(fired[0].burn_short_milli, 4_000, "avg 400‰ over budget 100‰ = 4.000x");
    assert_eq!(fired[0].burn_long_milli, 4_000);
    assert!(fired[0].onset);

    // Round 2: 400‰ a third time. Both windows stay at 4.0x — the
    // breach persists (not an onset).
    total.add(10);
    bad.add(4);
    let fired = engine.observe(recorder.record(2));
    assert_eq!(fired.len(), 1);
    assert!(!fired[0].onset, "continuation, not a new episode");

    // Round 3: clean. Short window (400 + 0)/2 = 200‰ sits exactly at
    // the 2.0x threshold; long window (3×400 + 0)/4 = 300‰ = 3.0x.
    // Still breached — the episode hasn't drained yet.
    total.add(10);
    let fired = engine.observe(recorder.record(3));
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].bad_permille, 0, "the round itself is clean");
    assert_eq!(fired[0].burn_short_milli, 2_000, "exactly at the threshold still fires");
    assert_eq!(fired[0].burn_long_milli, 3_000);
    assert!(!fired[0].onset);

    // Round 4: clean again. The short window is now all-clean, so the
    // alert clears even though the long window (2×400 + 2×0)/4 = 200‰
    // still remembers the bad rounds at exactly 2.0x.
    total.add(10);
    assert!(engine.observe(recorder.record(4)).is_empty());

    // The registry carries the final burn state for dashboards, and the
    // whole run was one three-round episode with a single onset.
    let snap = registry.snapshot();
    assert_eq!(snap.gauge("slo.avail.burn_short_milli"), Some(0));
    assert_eq!(snap.gauge("slo.avail.burn_long_milli"), Some(2_000));
    assert_eq!(snap.counter("slo.avail.breach_rounds"), Some(3));
    assert_eq!(engine.breaches().len(), 3);
    assert_eq!(engine.breaches().iter().filter(|b| b.onset).count(), 1);
}
