//! End-to-end multi-vantage scanning: the `sixdust-vantage` fleet
//! scheduler against the plain single-vantage pipeline.
//!
//! The hard invariant pinned here is the fleet's reason to be trusted:
//! an `N = 1` fleet is *byte-identical* to today's `HitlistService`
//! rounds at any executor thread budget — same rounds, same snapshots,
//! same checkpoints. On top of that: an `N = 3` fleet (EU / US /
//! behind-GFW CN) is deterministic across repeated runs, its
//! disagreement artifact pins the GFW visibility split (an address the
//! pipeline cleans today is responsive from Europe, silent from China),
//! and a fleet checkpoint saved mid-run resumes to the exact state of
//! an uninterrupted run.

use sixdust::hitlist::HitlistService;
use sixdust::hitlist::{ServiceConfig, ServiceState};
use sixdust::net::{events, Day, FaultConfig, Internet, Scale};
use sixdust::vantage::{DisagreementClass, FleetConfig, FleetState, VantageFleet};

const DROP_PERMILLE: u32 = 2;

fn faults() -> FaultConfig {
    FaultConfig::lossless().with_drop_permille(DROP_PERMILLE)
}

fn fleet_config(n: usize, threads: usize) -> FleetConfig {
    FleetConfig::new(Scale::tiny(), n)
        .with_faults(faults())
        .with_service(ServiceConfig::builder().build())
        .with_threads(threads)
}

/// `--vantages 1` is today's pipeline, bit for bit, at any thread
/// budget: rounds, snapshots, responsive sets and the captured
/// checkpoint all compare equal against a plain service run.
#[test]
fn one_vantage_fleet_is_byte_identical_to_the_service() {
    let until = Day(14);
    let net = Internet::build(Scale::tiny()).with_faults(faults());
    let mut svc = HitlistService::new(ServiceConfig::builder().build());
    svc.run(&net, Day(0), until);
    let baseline = ServiceState::capture(&svc);

    for threads in [1, 4, 8] {
        let mut fleet = VantageFleet::build(fleet_config(1, threads));
        fleet.run(Day(0), until);
        let state = ServiceState::capture(fleet.service(0));
        assert_eq!(
            fleet.service(0).rounds(),
            svc.rounds(),
            "rounds diverged at thread budget {threads}"
        );
        assert_eq!(fleet.service(0).snapshots(), svc.snapshots());
        assert_eq!(fleet.service(0).current_responsive(), svc.current_responsive());
        assert_eq!(state, baseline, "checkpoint diverged at thread budget {threads}");
        assert_eq!(
            state.to_json(),
            baseline.to_json(),
            "checkpoint bytes diverged at thread budget {threads}"
        );
        // A single vantage never disagrees with itself.
        for report in fleet.reports() {
            assert_eq!(report.disagreements, 0);
        }
    }
}

/// An `N = 3` fleet is a pure function of the seed: repeated runs (at
/// different thread budgets, even) produce identical rounds for every
/// vantage and identical disagreement reports.
#[test]
fn three_vantage_fleet_is_deterministic_across_repeats() {
    let until = Day(10);
    let mut first = VantageFleet::build(fleet_config(3, 2));
    first.run(Day(0), until);
    let mut second = VantageFleet::build(fleet_config(3, 8));
    second.run(Day(0), until);

    assert_eq!(first.reports(), second.reports());
    for v in 0..3 {
        assert_eq!(
            first.service(v).rounds(),
            second.service(v).rounds(),
            "vantage {v} rounds diverged across repeats"
        );
        assert_eq!(
            ServiceState::capture(first.service(v)),
            ServiceState::capture(second.service(v))
        );
    }
    assert_eq!(first.reports().len(), 11, "daily cadence: days 0..=10");
}

/// The GFW visibility split, pinned end to end: during the filtering
/// era with the cleaning filter deployed, an address the primary
/// pipeline cleans as GFW-impacted shows up in the disagreement
/// artifact as responsive from the European and US vantages but silent
/// from the Chinese one — and the artifact classifies its origin AS as
/// a GFW disagreement.
#[test]
fn gfw_region_disagreement_is_pinned() {
    // GFW era 3 with the cleaning filter live (deployed day 1310).
    // Lossless faults, so the firewall is the *only* cross-vantage
    // asymmetry: every GFW-class sample must show the exact
    // responsive-from-abroad / silent-at-home split.
    let from = events::GFW_FILTER_DEPLOYED;
    let until = from.plus(10);
    let config = fleet_config(3, 4).with_faults(FaultConfig::lossless());
    let mut fleet = VantageFleet::build(config);
    fleet.run(from, until);

    assert!(!fleet.reports().is_empty());
    let impacted = fleet.service(0).gfw_impacted();
    assert!(!impacted.is_empty(), "the primary pipeline cleaned something");
    let total_gfw: u64 = fleet.reports().iter().map(|r| r.gfw_disagreements).sum();
    assert!(total_gfw > 0, "the CN split is visible in the artifact");
    let mut pinned = false;
    for report in fleet.reports() {
        for entry in report.by_as.iter().filter(|e| e.class == DisagreementClass::Gfw) {
            assert_eq!(entry.country, "CN");
            for sample in &entry.samples {
                assert!(
                    sample.responsive_from.contains(&64496),
                    "injection makes the address visible from Europe"
                );
                assert!(
                    sample.silent_from.contains(&64498),
                    "egress filtering hides it from the Chinese vantage"
                );
                if impacted.contains(&sample.addr) {
                    pinned = true;
                }
            }
        }
    }
    assert!(
        pinned,
        "at least one address the pipeline cleans appears as \
         CN-filtered / EU-responsive in the disagreement artifact"
    );
}

/// A fleet checkpoint captured mid-run restores into a fleet that
/// finishes the window in the exact state of an uninterrupted run:
/// every vantage's rounds and the full report history compare equal.
#[test]
fn fleet_checkpoint_resumes_mid_run() {
    let split = Day(6);
    let until = Day(12);

    let mut uninterrupted = VantageFleet::build(fleet_config(3, 4));
    uninterrupted.run(Day(0), until);

    let mut first_leg = VantageFleet::build(fleet_config(3, 4));
    first_leg.run(Day(0), split);
    let state = FleetState::capture(&first_leg);
    state.validate().expect("mid-run fleet checkpoint is valid");

    let mut resumed = VantageFleet::restore(fleet_config(3, 4), &state);
    resumed.run(Day(0), until);

    assert_eq!(resumed.reports(), uninterrupted.reports());
    for v in 0..3 {
        assert_eq!(
            resumed.service(v).rounds(),
            uninterrupted.service(v).rounds(),
            "vantage {v} diverged after resume"
        );
        assert_eq!(
            ServiceState::capture(resumed.service(v)),
            ServiceState::capture(uninterrupted.service(v))
        );
    }
}

/// The fleet checkpoint file format round-trips: JSON parse, version
/// gate, crash-safe save/load. Skipped gracefully where the JSON layer
/// is stubbed out (offline harness); on CI the round-trip is exact.
#[test]
fn fleet_checkpoint_round_trips_through_disk() {
    let mut fleet = VantageFleet::build(fleet_config(2, 2));
    fleet.run(Day(0), Day(4));
    let state = FleetState::capture(&fleet);
    match FleetState::from_json(&state.to_json()) {
        Err(e) => eprintln!("skipping fleet checkpoint JSON round-trip ({e})"),
        Ok(back) => {
            assert_eq!(back, state);
            let dir = std::env::temp_dir().join("sixdust_vantage_itest");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("fleet.json");
            state.save_atomic(&path).expect("atomic save");
            assert!(!dir.join("fleet.json.tmp").exists(), "temp renamed away");
            let loaded = FleetState::load(&path).expect("load validates");
            assert_eq!(loaded, state);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
