//! Chaos-grade end-to-end test: the full hitlist pipeline under seeded
//! fault injection — bursty Gilbert–Elliott loss, response duplication,
//! ICMPv6 rate limiting and a multi-day vantage outage — must degrade
//! *gracefully*: rounds inside the outage are classified degraded and
//! quarantined (never swept), the published protocol mix keeps its shape
//! (ICMP dominates, Fig. 3), total evictions stay within a pinned margin
//! of the fault-free baseline, and every fault shows up in telemetry.
//!
//! Everything is seeded: the same chaos run twice is byte-identical.

use sixdust::hitlist::{HitlistService, ServiceConfig};
use sixdust::net::{
    Day, FaultConfig, GilbertElliott, IcmpRateLimit, Internet, Outage, Protocol, Scale,
};
use sixdust::scan::{scan_wire_with, ScanConfig};
use sixdust::telemetry::Registry;

/// The outage window every chaos run schedules: days `[20, 25)`.
const OUTAGE_FROM: Day = Day(20);
const OUTAGE_UNTIL: Day = Day(25);
const RUN_UNTIL: Day = Day(60);

/// The chaos fault profile: mostly-calm days with multi-day loss bursts,
/// occasional duplicated answers, routers that tire of ICMPv6, and a
/// five-day vantage blackout.
fn chaos_faults() -> FaultConfig {
    FaultConfig::lossless()
        .with_seed(0xC4A05)
        .with_burst(GilbertElliott {
            mean_good_days: 8,
            mean_bad_days: 4,
            good_drop_permille: 20,
            bad_drop_permille: 600,
        })
        .with_duplicate_permille(30)
        .with_icmp_rate_limit(IcmpRateLimit { per_day: 5 })
        .with_outage(Outage::vantage(OUTAGE_FROM, OUTAGE_UNTIL))
}

/// A service configured for degraded operation: retries mask loss so the
/// estimator can see it, and backoff spaces the re-probes out.
fn chaos_service(registry: &Registry) -> HitlistService {
    let config = ServiceConfig::builder()
        .scan(ScanConfig::builder().attempts(3).retry_backoff_ms(10).build())
        .traceroute_cap(800)
        .build();
    HitlistService::new(config).with_telemetry(registry.clone())
}

fn run_chaos(registry: &Registry) -> (Internet, HitlistService) {
    let net = Internet::build(Scale::tiny()).with_faults(chaos_faults()).with_telemetry(registry);
    let mut svc = chaos_service(registry);
    svc.run(&net, Day(0), RUN_UNTIL);
    (net, svc)
}

#[test]
fn outage_rounds_degrade_gracefully_and_evictions_stay_bounded() {
    // Fault-free baseline at the same scale, seed and service config.
    let calm_registry = Registry::new();
    let calm_net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
    let mut calm = chaos_service(&calm_registry);
    calm.run(&calm_net, Day(0), RUN_UNTIL);

    let registry = Registry::new();
    let (_net, svc) = run_chaos(&registry);

    // Every round inside the outage window is a total blackout: degraded,
    // loss pegged at 1000 ‰, and — the point of quarantine — zero
    // evictions.
    let outage_rounds: Vec<_> =
        svc.rounds().iter().filter(|r| r.day >= OUTAGE_FROM && r.day < OUTAGE_UNTIL).collect();
    assert!(!outage_rounds.is_empty(), "rounds must fall inside the outage");
    for r in &outage_rounds {
        assert!(r.degraded, "blackout round {:?} must be degraded", r.day);
        assert_eq!(r.loss_estimate_permille, 1000, "round {:?}", r.day);
        assert_eq!(r.total_published, 0, "nothing answers during the outage");
        assert_eq!(r.dropped, 0, "degraded rounds must not evict");
    }
    // Chaos is not a permanent state: calm rounds exist too, and the
    // degraded count reconciles with the per-round flags.
    assert!(svc.rounds().iter().any(|r| !r.degraded), "calm rounds must exist");
    assert_eq!(svc.degraded_rounds(), svc.rounds().iter().filter(|r| r.degraded).count());

    // Eviction margin: quarantine defers sweeps, it never cancels them,
    // and loss+retries must not fabricate evictions. Upper bound: chaos
    // never evicts meaningfully more than the calm baseline. Lower bound:
    // every calm eviction whose deferred day still fits before the end of
    // the run must have happened under chaos too — each degraded (daily)
    // round grants at most one forgiven day, so the worst-case deferral is
    // the degraded-round count.
    let calm_dropped: usize = calm.rounds().iter().map(|r| r.dropped).sum();
    let chaos_dropped: usize = svc.rounds().iter().map(|r| r.dropped).sum();
    assert!(
        chaos_dropped <= calm_dropped + calm_dropped / 10 + 2,
        "chaos evictions {chaos_dropped} far above calm baseline {calm_dropped}"
    );
    let deferral = svc.degraded_rounds() as u32 + 3;
    let calm_due: usize =
        calm.rounds().iter().filter(|r| r.day.0 + deferral <= RUN_UNTIL.0).map(|r| r.dropped).sum();
    assert!(
        chaos_dropped >= calm_due,
        "chaos evictions {chaos_dropped} below the deferred-but-due baseline {calm_due}"
    );

    // Shape target: the published protocol mix survives the chaos — ICMP
    // stays the dominant protocol (Fig. 3) and the service still publishes.
    let last = svc.rounds().iter().rev().find(|r| !r.degraded).expect("a calm round exists");
    assert!(last.total_cleaned > 0, "service still publishes after chaos");
    let icmp = last.published[0];
    assert_eq!(Protocol::ALL[0], Protocol::Icmp);
    for (i, p) in Protocol::ALL.iter().enumerate().skip(1) {
        assert!(
            icmp >= last.published[i],
            "ICMP ({icmp}) must dominate {p:?} ({})",
            last.published[i]
        );
    }
}

#[test]
fn fault_counters_surface_in_exported_telemetry() {
    let registry = Registry::new();
    let (net, _svc) = run_chaos(&registry);

    // Corruption rides the wire path, which the semantic service scan does
    // not exercise — run one wire-level scan through an equally faulty net.
    // Registering a second net under the same registry would replace the
    // service net's counter handles, so the wire leg gets its own registry.
    let wire_registry = Registry::new();
    let wire = Internet::build(Scale::tiny())
        .with_faults(chaos_faults().with_corrupt_permille(400))
        .with_telemetry(&wire_registry);
    let targets: Vec<_> = wire
        .population()
        .enumerate_responsive(Day(30))
        .into_iter()
        .map(|(a, ..)| a)
        .take(400)
        .collect();
    let result = scan_wire_with(
        &wire,
        Protocol::Icmp,
        &targets,
        Day(30),
        &ScanConfig::default(),
        Some(&wire_registry),
    );
    assert!(result.stats.sent > 0);
    assert!(
        wire_registry.snapshot().counter("net.faults.corrupted").unwrap_or(0) > 0,
        "corruption must fire on the wire path"
    );

    let snap = registry.snapshot();
    assert!(snap.counter("net.faults.dropped").unwrap_or(0) > 0, "bursty loss must drop");
    assert!(snap.counter("net.faults.duplicated").unwrap_or(0) > 0, "duplication must fire");
    assert!(
        snap.counter("net.faults.rate_limited").unwrap_or(0) > 0,
        "traceroutes must exhaust ICMPv6 budgets"
    );
    // The service-side degradation metrics ride along in the same export.
    assert!(snap.counter("service.degraded_rounds").unwrap_or(0) > 0);
    let json = snap.to_json();
    for key in [
        "net.faults.dropped",
        "net.faults.duplicated",
        "net.faults.corrupted",
        "net.faults.rate_limited",
        "service.degraded_rounds",
        "service.loss_estimate_permille",
    ] {
        assert!(json.contains(key), "telemetry JSON must export {key}");
    }

    // The chaos net kept counting too (sanity: faults hit the service run).
    assert!(net.counters().faults_dropped.get() > 0);
}

#[test]
fn chaos_runs_are_deterministic() {
    let a = run_chaos(&Registry::new()).1;
    let b = run_chaos(&Registry::new()).1;
    assert_eq!(a.rounds(), b.rounds(), "same seed ⇒ byte-identical history");
    assert_eq!(
        a.unresponsive().quarantined(),
        b.unresponsive().quarantined(),
        "quarantine windows replay identically"
    );
}

#[test]
fn heavy_corruption_never_panics_the_wire_scanner() {
    let registry = Registry::new();
    let net = Internet::build(Scale::tiny())
        .with_faults(
            FaultConfig::lossless()
                .with_seed(0xBADF)
                .with_corrupt_permille(950)
                .with_duplicate_permille(500)
                .with_drop_permille(300),
        )
        .with_telemetry(&registry);
    let targets: Vec<_> = net
        .population()
        .enumerate_responsive(Day(10))
        .into_iter()
        .map(|(a, ..)| a)
        .take(300)
        .collect();
    for proto in Protocol::ALL {
        let result =
            scan_wire_with(&net, proto, &targets, Day(10), &ScanConfig::default(), Some(&registry));
        // Garbage in flight may eat hits, never invariants.
        assert!(result.stats.hits <= targets.len() as u64, "{proto:?}");
        assert_eq!(result.outcomes.len(), targets.len(), "{proto:?}");
    }
    assert!(registry.snapshot().counter("net.faults.corrupted").unwrap_or(0) > 0);
}
