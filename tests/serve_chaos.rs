//! End-to-end chaos tests for the resilient distribution tier: a seeded
//! bad day over origin + edge mirrors (outages, an origin publish
//! blackout, sync corruption) ridden out by the retry / failover /
//! hedging / circuit-breaker client path — byte-identical at a fixed
//! seed, with zero client hard-failures; stale-while-revalidate
//! degradation burning the publish-freshness SLO and freezing a flight
//! capture at blackout onset.

use std::sync::Arc;

use sixdust::addr::AddrSet;
use sixdust::serve::{
    run_chaos_day, ArtifactKind, ChaosDayConfig, ChaosObserver, FleetConfig, MirrorTier,
    MirrorTierConfig, ServeFaultConfig, SnapshotStore, StoreConfig, TimedPublish,
};
use sixdust::telemetry::Registry;

const HOUR: u64 = 3_600_000_000;
const DAY: u64 = 86_400_000_000;

/// Artifact payloads for `round`, varying per round so deltas are real.
fn artifacts(round: u64) -> Vec<(ArtifactKind, AddrSet)> {
    ArtifactKind::ALL
        .iter()
        .map(|&kind| {
            let base = kind.index() as u128 * 1_000_000;
            let n = 300 + round as u128 * 40;
            (kind, (0..n).map(|i| base + i * 11).collect::<AddrSet>())
        })
        .collect()
}

/// A fresh origin with round 1 already live (the pre-day baseline).
fn origin() -> Arc<SnapshotStore> {
    let store = SnapshotStore::new(StoreConfig::default());
    store.publish_round(1, "2022-01-01", artifacts(1));
    Arc::new(store)
}

/// The day's publish plan: rounds 2..=2+n land evenly across the day.
fn plan(n: u64) -> Vec<TimedPublish> {
    (0..n)
        .map(|i| TimedPublish {
            at_us: DAY / (n + 1) * (i + 1),
            round: 2 + i,
            date: format!("2022-01-{:02}", 2 + i),
            artifacts: artifacts(2 + i),
        })
        .collect()
}

fn fleet(seed: u64, requests: u64, clients: u64) -> FleetConfig {
    FleetConfig::builder().with_seed(seed).with_requests(requests).with_clients(clients)
}

#[test]
fn a_seeded_chaos_day_is_byte_identical_and_never_hard_fails() {
    let config = ChaosDayConfig::builder().with_fleet(fleet(7, 6_000, 40));
    let run = || {
        let faults = ServeFaultConfig::chaos(7, 3);
        let mut tier =
            MirrorTier::new(MirrorTierConfig::builder().with_mirrors(3), origin(), faults);
        run_chaos_day(&config, &mut tier, &plan(3), None)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seed and fault plan must replay byte-identically");

    // The acceptance bar: a full chaos day with zero client-visible
    // hard failures — every logical request was answered or policy-shed.
    assert_eq!(a.resilience.hard_failures, 0, "resilient path must absorb the fault plan");

    // The fault plan actually engaged every mechanism under test.
    assert!(a.resilience.down_attempts > 0, "outage windows were hit");
    assert!(a.resilience.failovers > 0, "failover rerouted around them");
    assert!(a.resilience.retries > 0, "retry budget was spent");
    assert!(a.resilience.stale_served > 0, "blackout forced stale-while-revalidate serving");
    assert!(a.resilience.sync_rejected > 0, "corrupted syncs were rejected checksum-first");
    assert!(a.resilience.syncs > 0, "clean syncs still landed");

    // Cross-layer accounting: every client attempt either reached a
    // front end (tier totals) or died at a downed mirror.
    assert_eq!(
        a.resilience.attempts,
        a.totals.requests + a.resilience.down_attempts,
        "attempts = frontend requests + down attempts"
    );
    // Adopted logical bodies are a subset of per-attempt frontend bodies
    // (hedge losers and failed-over duplicates serve too).
    let logical_bodies: u64 = a.bodies_by_kind.iter().map(|(_, n)| n).sum();
    assert!(logical_bodies <= a.totals.bodies);
    assert!(logical_bodies > 0, "the day served real payloads");
    assert!(a.latency_p50_us > 0, "answered requests recorded client-observed latency");
}

#[test]
fn failover_rides_out_a_mirror_outage_with_deterministic_breakers() {
    // One fault only: mirror 0 dark from 6h to 9h. Clients with affinity
    // to it must fail over; its breaker must open under the consecutive
    // failures and re-close through half-open probes after the window.
    let config = ChaosDayConfig::builder().with_fleet(fleet(11, 4_000, 30));
    let run = || {
        let faults = ServeFaultConfig::builder().with_mirror_outage(0, 6 * HOUR, 9 * HOUR);
        let mut tier =
            MirrorTier::new(MirrorTierConfig::builder().with_mirrors(3), origin(), faults);
        run_chaos_day(&config, &mut tier, &plan(1), None)
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.resilience, b.resilience,
        "breaker transitions and retry accounting are deterministic"
    );

    assert_eq!(a.resilience.hard_failures, 0);
    assert!(a.resilience.down_attempts > 0, "requests hit the dark mirror");
    assert!(a.resilience.failovers > 0, "and were rerouted");
    assert!(a.resilience.breaker_opened > 0, "consecutive failures opened the breaker");
    assert!(a.resilience.breaker_skipped > 0, "an open breaker short-circuits attempts");
    assert!(a.resilience.breaker_closed > 0, "half-open probes re-closed it after the window");

    // Every logical request was answered: the day's only fault is one
    // mirror of three, well within the retry budget.
    let logical_bodies: u64 = a.bodies_by_kind.iter().map(|(_, n)| n).sum();
    assert!(logical_bodies > 0);
    assert_eq!(
        a.resilience.attempts,
        a.totals.requests + a.resilience.down_attempts,
        "attempts = frontend requests + down attempts"
    );
}

#[test]
fn a_blackout_serves_stale_burns_the_freshness_slo_and_freezes_a_capture() {
    // The origin goes dark at 2h and never recovers; four publishes are
    // scheduled during the blackout. The target round keeps advancing,
    // mirrors keep serving the last-good generation (counted stale), the
    // staleness gauge climbs past the publish-freshness objective and
    // the flight recorder freezes a capture at blackout onset.
    let faults = ServeFaultConfig::builder().with_origin_blackout(2 * HOUR, DAY);
    let mut tier = MirrorTier::new(MirrorTierConfig::builder().with_mirrors(2), origin(), faults);
    let mut observer = ChaosObserver::new(Registry::new());
    let publishes: Vec<TimedPublish> = (0..4)
        .map(|i| TimedPublish {
            at_us: (3 + 2 * i) * HOUR,
            round: 2 + i,
            date: format!("2022-01-{:02}", 2 + i),
            artifacts: artifacts(2 + i),
        })
        .collect();
    let config = ChaosDayConfig::builder().with_fleet(fleet(13, 3_000, 20));
    let report = run_chaos_day(&config, &mut tier, &publishes, Some(&mut observer));

    assert_eq!(report.resilience.hard_failures, 0, "stale service is still service");
    assert!(report.resilience.stale_served > 0, "mirrors served behind the target round");
    assert_eq!(report.round, 1, "no publish landed: the origin still serves the baseline");
    assert_eq!(tier.target_round(), 5, "the publish plan's target kept advancing");
    assert_eq!(tier.staleness_rounds(), 4, "four publishes owed by end of day");

    let breaches = observer.slo().breaches();
    assert!(
        breaches.iter().any(|b| b.slo == "publish-freshness"),
        "sustained staleness > 2 rounds burns the publish-freshness SLO, got {breaches:?}"
    );
    let captures = observer.flight().captures();
    assert!(
        captures.iter().any(|c| c.reason == "origin-blackout"),
        "blackout onset freezes a flight capture"
    );
}

#[test]
fn a_lossless_tier_day_matches_the_acceptance_identities() {
    // No faults at all: nothing is shed to outages, no breaker ever
    // opens, no sync is rejected — the chaos path degrades to a plain
    // (but mirrored) day and the ledger shows it.
    let config = ChaosDayConfig::builder().with_fleet(fleet(3, 4_000, 25));
    let mut tier = MirrorTier::new(
        MirrorTierConfig::builder().with_mirrors(4),
        origin(),
        ServeFaultConfig::lossless(),
    );
    let report = run_chaos_day(&config, &mut tier, &plan(2), None);

    assert_eq!(report.resilience.hard_failures, 0);
    assert_eq!(report.resilience.down_attempts, 0);
    assert_eq!(report.resilience.sync_rejected, 0);
    assert!(report.resilience.syncs > 0, "mirrors synced all three generations");
    assert_eq!(report.round, 3, "the last planned publish landed");
}
