//! End-to-end tests for the distribution subsystem: a seeded multi-round
//! service run publishing into the sharded store, a ≥100k-request
//! simulated consumer day with deterministic totals, byte-identical
//! delta reconstruction, and concurrent readers racing a publisher.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sixdust::addr::AddrSet;
use sixdust::hitlist::{publish, HitlistService, ServiceConfig};
use sixdust::net::{Day, FaultConfig, Internet, Scale};
use sixdust::serve::codec;
use sixdust::serve::{
    run_day, ArtifactKind, FleetConfig, FrontendConfig, SnapshotStore, StoreConfig,
};
use sixdust::telemetry::Registry;

const LAST_DAY: Day = Day(30);

/// Runs a seeded month of the service, publishing every round into a
/// fresh store; returns the service, the store, and the responsive
/// artifact's item history per published round.
fn run_and_publish(
    registry: Option<&Registry>,
) -> (HitlistService, Arc<SnapshotStore>, Vec<(u64, Arc<AddrSet>)>) {
    let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
    let mut store = SnapshotStore::new(StoreConfig::builder().with_shards(8));
    if let Some(reg) = registry {
        store = store.with_telemetry(reg.clone());
    }
    let store = Arc::new(store);
    let mut svc =
        HitlistService::new(ServiceConfig::builder().snapshot_days(vec![LAST_DAY]).build());
    let mut history: Vec<(u64, Arc<AddrSet>)> = Vec::new();
    let hook_store = store.clone();
    svc.run_with(&net, Day(0), LAST_DAY, |svc, day| {
        hook_store.publish_service(svc, u64::from(day.0), &day.to_date());
        let version = hook_store.artifact(ArtifactKind::Responsive).expect("just published");
        history.push((version.round(), version.items().clone()));
    });
    (svc, store, history)
}

#[test]
fn service_rounds_land_in_the_store() {
    let (svc, store, history) = run_and_publish(None);
    assert!(history.len() >= 3, "a month spans several scan rounds");
    assert_eq!(store.current_round(), Some(u64::from(LAST_DAY.0)));
    assert_eq!(store.current_date(), Some(LAST_DAY.to_date()));

    // The responsive artifact is exactly the service's current view.
    let version = store.artifact(ArtifactKind::Responsive).expect("published");
    let expected = svc.current_responsive();
    assert!(!expected.is_empty(), "tiny scale still finds responsive addresses");
    assert_eq!(version.items().as_ref(), expected);

    // Shards partition the artifact exactly.
    let mut from_shards: Vec<u128> = Vec::new();
    for shard in version.shards() {
        shard.verify().expect("shard decodes to its own items");
        from_shards.extend(shard.items().iter());
    }
    from_shards.sort_unstable();
    assert_eq!(from_shards, expected.to_vec());

    // The store's ETag matches the digest manifest.json records for the
    // same artifact — consumers can revalidate against either.
    let manifest = publish::publish(&svc).manifest;
    let (_, recorded) = manifest
        .digests
        .iter()
        .find(|(stem, _)| stem == "responsive-addresses.txt")
        .expect("manifest records the responsive digest")
        .clone();
    assert_eq!(recorded, format!("{:016x}", version.digest()));

    // Per-protocol artifacts mirror the service's per-protocol slices.
    for (proto, set) in svc.proto_responsive() {
        let v = store.artifact(ArtifactKind::PerProtocol(*proto)).expect("published");
        assert_eq!(v.items().as_ref(), set, "{proto:?}");
    }
}

#[test]
fn deltas_reconstruct_byte_identical_artifacts() {
    let (_, store, history) = run_and_publish(None);
    let version = store.artifact(ArtifactKind::Responsive).expect("published");
    let delta = version.delta_encoded().expect("changing artifact carries a delta");
    let base_round = version.prev_round().expect("delta has a base round");
    let (_, base_items) = history
        .iter()
        .find(|(round, _)| *round == base_round)
        .expect("base round was published and recorded");

    // Applying the delta to the base reproduces the current item set…
    let rebuilt = codec::apply_delta(base_items, delta).expect("delta applies to its base");
    assert_eq!(&rebuilt, version.items().as_ref());
    // …and re-encoding it yields the exact bytes a full fetch serves.
    assert_eq!(&codec::encode_full(&rebuilt), version.full_encoded().as_ref());
    // The delta is the cheaper path for round-over-round churn.
    assert!(delta.len() < version.full_encoded().len(), "delta smaller than full snapshot");
}

#[test]
fn hundred_k_request_day_is_deterministic_and_reconciles() {
    let registry = Registry::new();
    let (_, store, _) = run_and_publish(None);
    let fleet = FleetConfig::builder().with_requests(120_000).with_clients(800).with_seed(0xDA7);

    let report = run_day(&fleet, FrontendConfig::default(), &store, Some(&registry));
    let t = &report.totals;

    // ≥100k requests, every one accounted exactly once.
    assert_eq!(t.requests, 120_000);
    assert_eq!(
        t.bodies + t.not_modified + t.shed_client + t.shed_global + t.unavailable,
        t.requests
    );
    assert_eq!(t.unavailable, 0);
    assert_eq!(t.bodies, t.full_fetches + t.delta_fetches);
    assert_eq!(t.cache_hits + t.cache_misses, t.bodies, "every body is a cache hit or miss");
    assert!(t.bytes_sent > 0);
    assert!(t.delta_fetches > 0, "one-behind consumers pull deltas");
    assert!(t.not_modified > 0, "up-to-date consumers revalidate for free");
    assert!(t.cache_hits > t.cache_misses, "a static day is cache-friendly");

    // The telemetry registry reconciles with the report's totals.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.requests"), Some(t.requests));
    assert_eq!(snap.counter("serve.bytes_sent"), Some(t.bytes_sent));
    assert_eq!(snap.counter("serve.cache.hits"), Some(t.cache_hits));
    assert_eq!(snap.counter("serve.cache.misses"), Some(t.cache_misses));
    assert_eq!(snap.counter("serve.not_modified"), Some(t.not_modified));
    assert_eq!(snap.counter("serve.shed"), Some(t.shed_client + t.shed_global));

    // Determinism pin: replaying the identical seed over the identical
    // store reproduces the exact totals (requests, bytes, cache hits,
    // shed counts — the whole report).
    let replay = run_day(&fleet, FrontendConfig::default(), &store, None);
    assert_eq!(replay, report);

    // And a rebuilt store from the same seeded service run serves the
    // same day — end-to-end determinism, not just frontend determinism.
    let (_, store2, _) = run_and_publish(None);
    let cross = run_day(&fleet, FrontendConfig::default(), &store2, None);
    assert_eq!(cross, report);
}

#[test]
fn concurrent_readers_never_observe_torn_state() {
    let store = Arc::new(SnapshotStore::new(StoreConfig::builder().with_shards(8)));
    let rounds: u64 = 200;
    let items_for = |round: u64| -> AddrSet {
        // Each round shifts membership so most shards change each time.
        (0..2_000u128).map(|i| i * 31 + u128::from(round) * 7).collect()
    };
    store.publish_round(1, "d1", vec![(ArtifactKind::Responsive, items_for(1))]);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let store_ref = &store;
        let done_ref = &done;
        scope.spawn(move || {
            for round in 2..=rounds {
                store_ref.publish_round(
                    round,
                    "d",
                    vec![(ArtifactKind::Responsive, items_for(round))],
                );
            }
            done_ref.store(true, Ordering::Release);
        });
        for _ in 0..3 {
            scope.spawn(move || {
                let mut last_round = 0u64;
                let mut reads = 0u64;
                loop {
                    let finished = done_ref.load(Ordering::Acquire);
                    let version =
                        store_ref.artifact(ArtifactKind::Responsive).expect("round 1 published");
                    // A version is internally consistent no matter when
                    // the swap lands relative to this read.
                    assert!(version.round() >= last_round, "rounds never go backwards");
                    last_round = version.round();
                    let decoded =
                        codec::decode_full(version.full_encoded()).expect("full body decodes");
                    assert_eq!(&decoded, version.items().as_ref(), "body matches items");
                    assert_eq!(codec::content_digest(&decoded), version.digest());
                    let mut from_shards: Vec<u128> = Vec::new();
                    for shard in version.shards() {
                        shard.verify().expect("shard bytes match shard items");
                        from_shards.extend(shard.items().iter());
                    }
                    from_shards.sort_unstable();
                    assert_eq!(from_shards, version.items().to_vec(), "shards partition items");
                    if let Some(delta) = version.delta_encoded() {
                        let (_, result) =
                            codec::delta_digests(delta).expect("delta frame readable");
                        assert_eq!(result, version.digest(), "delta targets this version");
                    }
                    reads += 1;
                    if finished {
                        break;
                    }
                }
                assert!(reads > 0);
            });
        }
    });
    assert_eq!(store.current_round(), Some(rounds));
}

#[test]
fn manifest_and_serve_digests_agree_across_crates() {
    // The hitlist manifest and the serve codec implement the same
    // content digest; ETags from either side must match bit-for-bit.
    let samples: Vec<Vec<u128>> = vec![
        vec![],
        vec![0],
        vec![1, 2, 3, u128::MAX],
        (0..1_000u128).map(|i| i * 12_345).collect(),
    ];
    for items in samples {
        assert_eq!(
            publish::content_digest(items.iter().copied()),
            codec::content_digest(items.iter().copied()),
            "digest mismatch for {} items",
            items.len()
        );
        // And digesting through an AddrSet — whatever chunk representation
        // it picks — yields the same value as the flat item stream.
        let set = AddrSet::from_unsorted(items.clone());
        assert_eq!(codec::content_digest(&set), codec::content_digest(items.iter().copied()));
    }
}
