//! End-to-end flash-crowd tests for the event-loop serve front end: a
//! million session-based virtual clients (heavy-tailed request counts,
//! think time, publication-chasing arrival spikes) replayed through the
//! virtual-time reactor — byte-identical at a fixed seed, ledger-equal
//! to the synchronous reference path, and reconciled to the attempt
//! under chaos faults on a mirror tier.

use std::sync::Arc;

use sixdust::addr::AddrSet;
use sixdust::serve::{
    run_chaos_day, run_day, simulate_day, simulate_day_sync, ArtifactKind, ChaosDayConfig,
    FleetConfig, Frontend, FrontendConfig, MirrorTier, MirrorTierConfig, ServeFaultConfig,
    SessionShape, SnapshotStore, StoreConfig, TimedPublish,
};

const DAY: u64 = 86_400_000_000;

/// Artifact payloads for `round`, varying per round so deltas are real.
fn artifacts(round: u64) -> Vec<(ArtifactKind, AddrSet)> {
    ArtifactKind::ALL
        .iter()
        .map(|&kind| {
            let base = kind.index() as u128 * 1_000_000;
            let n = 300 + round as u128 * 40;
            (kind, (0..n).map(|i| base + i * 11).collect::<AddrSet>())
        })
        .collect()
}

/// A store with three published rounds, so one-behind clients have a
/// delta base and conditional fetches have history.
fn store() -> Arc<SnapshotStore> {
    let store = SnapshotStore::new(StoreConfig::default());
    for round in 1..=3u64 {
        store.publish_round(round, "2022-01-01", artifacts(round));
    }
    Arc::new(store)
}

/// The flash-crowd session shape: spikes at one third and two thirds of
/// the day, 30-minute pile-on windows.
fn flash_shape() -> SessionShape {
    SessionShape::builder()
        .with_spike(DAY / 3, 1_800_000_000)
        .with_spike(2 * DAY / 3, 1_800_000_000)
}

#[test]
fn a_million_client_flash_crowd_day_is_byte_identical() {
    let store = store();
    let fleet = FleetConfig::builder()
        .with_clients(1_000_000)
        .with_seed(11)
        .with_session(flash_shape())
        .build()
        .expect("valid fleet");
    let a = run_day(&fleet, FrontendConfig::default(), &store, None);
    let b = run_day(&fleet, FrontendConfig::default(), &store, None);
    assert_eq!(a, b, "a million-client day replays byte-identically at a fixed seed");
    assert_eq!(a.clients, 1_000_000);
    assert!(
        a.totals.requests > 1_000_000,
        "the heavy session tail multiplies a million clients into more requests ({})",
        a.totals.requests
    );
    assert!(a.flash_arrivals > 0, "the crowd showed up");
    assert_eq!(
        a.totals.bodies
            + a.totals.not_modified
            + a.totals.shed_client
            + a.totals.shed_global
            + a.totals.unavailable,
        a.totals.requests,
        "every request is accounted exactly once at scale"
    );
}

#[test]
fn event_loop_ledger_equals_synchronous_at_flash_crowd_scale() {
    let store = store();
    let fleet = FleetConfig::builder()
        .with_clients(100_000)
        .with_seed(23)
        .with_session(flash_shape())
        .build()
        .expect("valid fleet");
    let mut reactor_fe = Frontend::new(FrontendConfig::default(), store.clone());
    let reactor = simulate_day(&fleet, &mut reactor_fe, &store);
    let mut sync_fe = Frontend::new(FrontendConfig::default(), store.clone());
    let sync = simulate_day_sync(&fleet, &mut sync_fe, &store);
    assert_eq!(reactor, sync, "the reactor's ledger is pinned to the synchronous path");
    assert_eq!(
        serde_json::to_string(&reactor).expect("serializes"),
        serde_json::to_string(&sync).expect("serializes"),
        "byte-identical on the wire, not merely Eq"
    );
    assert!(reactor.flash_arrivals > 0);
}

#[test]
fn chaos_faults_reconcile_under_session_load() {
    let fleet = FleetConfig::builder()
        .with_clients(20_000)
        .with_seed(7)
        .with_session(flash_shape());
    let config = ChaosDayConfig::builder().with_fleet(fleet);
    let plan: Vec<TimedPublish> = (0..2u64)
        .map(|i| TimedPublish {
            at_us: DAY / 3 * (i + 1),
            round: 4 + i,
            date: format!("2022-01-{:02}", 4 + i),
            artifacts: artifacts(4 + i),
        })
        .collect();
    let run = || {
        let origin = store();
        let mut tier = MirrorTier::new(
            MirrorTierConfig::builder().with_mirrors(3),
            origin,
            ServeFaultConfig::chaos(7, 3),
        );
        run_chaos_day(&config, &mut tier, &plan, None)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "a session chaos day replays byte-identically");
    assert!(a.flash_arrivals > 0, "flash arrivals are counted on the chaos path too");
    assert!(
        a.resilience.logical_requests > 20_000,
        "sessions expand past one request per client"
    );
    assert!(a.resilience.down_attempts > 0, "the fault plan was live");
    assert_eq!(
        a.resilience.attempts,
        a.totals.requests + a.resilience.down_attempts,
        "attempts = frontend requests + down attempts (nothing lost, nothing double-counted)"
    );
    assert_eq!(a.resilience.hard_failures, 0, "the resilient path absorbs the chaos");
}
