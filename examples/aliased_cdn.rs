//! The aliased-prefix analysis of Sec. 5 on one CDN prefix: multi-level
//! detection, TCP fingerprinting, and the Too Big Trick telling a true
//! single-host alias apart from a load-balanced pool.
//!
//! ```sh
//! cargo run --release --example aliased_cdn
//! ```

use sixdust::alias::{
    fingerprint_prefix, too_big_trick, AliasDetector, DetectorConfig, TbtOutcome,
};
use sixdust::net::{BackendMode, Day, FaultConfig, GroupKind, Internet, Protocol, Scale};

fn main() {
    let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
    let day = Day(400);

    // Ground truth: one single-host alias and one load-balanced CDN
    // prefix (the detector will see only probe responses).
    let single = net
        .population()
        .aliased_groups(day)
        .find(|g| {
            g.protos.contains(Protocol::Tcp80)
                && matches!(g.kind, GroupKind::Aliased { backends: BackendMode::Single, .. })
        })
        .expect("single-host alias");
    let balanced = net
        .population()
        .aliased_groups(day)
        .find(|g| {
            g.protos.contains(Protocol::Icmp)
                && matches!(
                    g.kind,
                    GroupKind::Aliased { backends: BackendMode::LoadBalanced(_), .. }
                )
        })
        .expect("load-balanced alias");

    println!("== multi-level aliased prefix detection ==");
    let mut detector = AliasDetector::new(DetectorConfig::default());
    let candidates = vec![single.prefix, balanced.prefix];
    let round = detector.run_round(&net, &candidates, day);
    for d in &round.detected {
        println!("  {} fully responsive (icmp: {}, tcp/80: {})", d.prefix, d.icmp, d.tcp80);
    }

    println!("\n== TCP fingerprints across each prefix ==");
    for prefix in [single.prefix, balanced.prefix] {
        if let Some(fp) = fingerprint_prefix(&net, prefix, day, 7) {
            println!(
                "  {}: {} SYN-ACKs, uniform: {} (window variants: {})",
                prefix,
                fp.responses,
                fp.uniform(),
                fp.window_variants
            );
        } else {
            println!("  {}: not fingerprintable (no TCP/80)", prefix);
        }
    }

    println!("\n== the Too Big Trick ==");
    for (label, prefix) in [("single-host", single.prefix), ("load-balanced", balanced.prefix)] {
        net.reset_state();
        let r = too_big_trick(&net, prefix, day, 99);
        let verdict = match r.outcome {
            TbtOutcome::SharedAll => "all 8 share one PMTU cache — a true alias".to_string(),
            TbtOutcome::SharedNone => "no sharing — per-address state".to_string(),
            TbtOutcome::SharedPartial(n) => {
                format!("{n} of 7 share the seeded cache — a load-balanced pool")
            }
            TbtOutcome::Unsuitable => "preconditions failed".to_string(),
        };
        println!("  {label:>13} {}: {}", prefix, verdict);
    }
}
