//! Map the simulated Internet's topology with Yarrp, the way the hitlist
//! service harvests router addresses — and watch the Chinese last-hop
//! rotation that feeds the GFW-impacted input (Sec. 4.2).
//!
//! ```sh
//! cargo run --release --example topology
//! ```

use std::collections::{HashMap, HashSet};

use sixdust::addr::Addr;
use sixdust::net::{Day, FaultConfig, Internet, Scale};
use sixdust::scan::{yarrp, YarrpConfig};

fn main() {
    let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
    let day = Day(400);

    // Trace a broad sample: live hosts plus dark Chinese space.
    let mut targets: Vec<Addr> = net
        .population()
        .enumerate_responsive(day)
        .into_iter()
        .map(|(a, ..)| a)
        .step_by(7)
        .take(120)
        .collect();
    let ct = net.registry().by_asn(4134).expect("AS4134");
    let ct_block = net.registry().get(ct).prefixes[0].network();
    targets.extend((0..30u128).map(|i| Addr(ct_block.0 | (0xaaaa_0000 + i))));

    let result = yarrp(&net, &targets, day, &YarrpConfig::default());
    let routers = result.discovered_routers();
    println!("traced {} targets with {} probes", result.traces.len(), result.sent);
    println!("discovered {} distinct router interfaces", routers.len());

    // Which ASes do the routers sit in?
    let mut by_as: HashMap<String, usize> = HashMap::new();
    for r in &routers {
        if let Some(id) = net.registry().origin(*r) {
            *by_as.entry(net.registry().get(id).name.clone()).or_default() += 1;
        }
    }
    let mut rows: Vec<_> = by_as.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1));
    println!("\nrouter interfaces per AS:");
    for (name, n) in rows.iter().take(8) {
        println!("  {name:<28} {n}");
    }

    // Path-length distribution.
    let mut lens: HashMap<usize, usize> = HashMap::new();
    for t in &result.traces {
        *lens.entry(t.hops.len()).or_default() += 1;
    }
    let mut lens: Vec<_> = lens.into_iter().collect();
    lens.sort();
    println!("\nhops observed per trace: {lens:?}");

    // The accumulation effect: re-trace the dark Chinese targets two weeks
    // later and count how many *new* last-hop interfaces appear.
    let dark: Vec<Addr> =
        targets.iter().filter(|a| ct_block.0 >> 96 == a.0 >> 96).copied().collect();
    let before: HashSet<Addr> = yarrp(&net, &dark, day, &YarrpConfig::default())
        .traces
        .iter()
        .filter_map(|t| t.last_responsive_hop())
        .collect();
    let after: HashSet<Addr> = yarrp(&net, &dark, day.plus(14), &YarrpConfig::default())
        .traces
        .iter()
        .filter_map(|t| t.last_responsive_hop())
        .collect();
    let fresh = after.difference(&before).count();
    println!(
        "\nChinese last-hop rotation: {} of {} last hops are new after 14 days",
        fresh,
        after.len()
    );
    println!("(each rotation mints input addresses that the GFW later makes look DNS-responsive)");
}
