//! Target generation (Sec. 6): run every TGA on the visible seed corpus
//! and measure real hit rates against the simulated ground truth.
//!
//! ```sh
//! cargo run --release --example target_generation
//! ```

use std::collections::HashSet;

use sixdust::addr::Addr;
use sixdust::net::{Day, FaultConfig, Internet, Scale};
use sixdust::tga::paper_lineup;

fn main() {
    let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
    let day = Day(1200);

    // Seeds: what a hitlist would plausibly know — every responsive
    // address except the hidden dense clusters, plus their small visible
    // sample.
    let mut seeds: Vec<Addr> = net
        .population()
        .enumerate_responsive(day)
        .into_iter()
        .map(|(a, ..)| a)
        .filter(|a| !net.population().is_dense_member(*a))
        .collect();
    seeds.extend(net.population().dense_visible(day));
    seeds.sort_unstable();
    seeds.dedup();

    // Ground truth for scoring.
    let truth: HashSet<Addr> =
        net.population().enumerate_responsive(day).into_iter().map(|(a, ..)| a).collect();
    let hidden = truth.iter().filter(|a| !seeds.contains(a)).count();
    println!(
        "seeds: {}   ground truth: {}   hidden from the seeds: {}",
        seeds.len(),
        truth.len(),
        hidden
    );
    println!("\n{:<22} {:>10} {:>10} {:>9}", "generator", "generated", "hits", "hit rate");

    for (generator, budget) in paper_lineup(Scale::tiny().addr_div) {
        let candidates = generator.generate(&seeds, budget.max(2000));
        let hits = candidates.iter().filter(|a| truth.contains(a)).count();
        println!(
            "{:<22} {:>10} {:>10} {:>8.1}%",
            generator.name(),
            candidates.len(),
            hits,
            hits as f64 * 100.0 / candidates.len().max(1) as f64
        );
    }

    println!(
        "\npaper shape: distance clustering wins on rate (~12 %), the pattern miners on volume,\n\
         the learned models trail far behind (Sec. 6.2, Table 4)."
    );
}
