//! The Great-Firewall story of the paper (Sec. 4.2), end to end:
//! probe a dark Chinese address for a blocked domain during an injection
//! era, watch ZMap count the injected answer as success, then apply the
//! paper's cleaning filter.
//!
//! ```sh
//! cargo run --release --example gfw_cleaning
//! ```

use sixdust::addr::{teredo, Addr};
use sixdust::net::{events, Day, FaultConfig, Internet, Protocol, Scale};
use sixdust::scan::{scan, Detail, ScanConfig};
use sixdust::wire::dns::Rdata;

fn main() {
    let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());

    // Pick addresses inside China Telecom Backbone's space that host
    // nothing at all.
    let ct = net.registry().by_asn(4134).expect("AS4134 registered");
    let block = net.registry().get(ct).prefixes[0].network();
    let targets: Vec<Addr> = (0..20u128).map(|i| Addr(block.0 | (0xd00d_0000 + i))).collect();
    let quiet_day = Day(100);
    let era_day = events::GFW_ERA3.0.plus(30);

    println!("== GFW DNS injection, as the scanner sees it ==\n");
    for (label, day) in
        [("outside any injection era", quiet_day), ("during the Teredo era", era_day)]
    {
        let result = scan(&net, Protocol::Udp53, &targets, day, &ScanConfig::default());
        println!(
            "{label} (day {}): {} of {} dark addresses counted 'responsive'",
            day.0,
            result.stats.hits,
            targets.len()
        );
        if let Some(outcome) = result.outcomes.iter().find(|o| o.success) {
            if let Detail::Dns { responses, injected } = &outcome.detail {
                println!(
                    "  e.g. {} answered with {} response(s), injection markers: {}",
                    outcome.target, responses, injected
                );
            }
        }
        // The paper's filter: keep only non-injected successes.
        println!("  after the cleaning filter: {} remain\n", result.clean_hits().count());
    }

    // Look inside one injected answer: a Teredo AAAA whose embedded IPv4
    // belongs to an unrelated operator — the tell the filter keys on.
    let probe = sixdust::net::ProbeKind::Dns { qname: "www.google.com".into() };
    let responses = net.probe(targets[0], &probe, era_day);
    for r in responses.iter().take(1) {
        if let sixdust::net::Response::Dns(msg) = r {
            for rec in &msg.answers {
                if let Rdata::Aaaa(a6) = rec.rdata {
                    let parts = teredo::decode(a6).expect("era-3 answers are Teredo");
                    println!(
                        "injected AAAA {} is a Teredo address embedding IPv4 {} — not Google's",
                        a6,
                        teredo::fmt_v4(parts.server_v4)
                    );
                }
            }
        }
    }

    // And the part the paper stresses: unblocked domains get silence, so
    // the targets really are dark.
    let own = sixdust::net::ProbeKind::Dns { qname: "sixdust-owned.test".into() };
    let silent = net.probe(targets[0], &own, era_day);
    println!("same address queried for an unblocked domain: {} responses (silence)", silent.len());
}
