//! Run the full IPv6 Hitlist service pipeline for the first simulated
//! year and watch it work: input accumulation, alias filtering, scans,
//! the 30-day filter, and churn — plus the telemetry the pipeline
//! reports along the way.
//!
//! ```sh
//! cargo run --release --example hitlist_service
//! ```

use sixdust::hitlist::{HitlistService, ServiceConfig};
use sixdust::net::{Day, FaultConfig, Internet, Scale};
use sixdust::telemetry::Registry;

fn main() {
    let registry = Registry::new();
    let net = Internet::build(Scale::tiny())
        .with_faults(FaultConfig::lossless().with_drop_permille(2))
        .with_telemetry(&registry);
    let config = ServiceConfig::builder().alias_every_days(28).build();
    let mut svc = HitlistService::new(config).with_telemetry(registry.clone());

    println!("== one simulated year of the IPv6 Hitlist service ==\n");
    println!(
        "{:>5} {:>9} {:>8} {:>7} {:>7} {:>7} {:>8} {:>7}",
        "day", "input", "targets", "icmp", "tcp80", "udp53", "aliased", "churn"
    );
    let mut day = Day(0);
    while day <= Day(365) {
        let r = svc.run_round(&net, day);
        if day.0 % 28 == 0 {
            println!(
                "{:>5} {:>9} {:>8} {:>7} {:>7} {:>7} {:>8} {:>7}",
                r.day.0,
                r.input_total,
                r.targets,
                r.cleaned[0],
                r.cleaned[2],
                r.cleaned[4],
                r.aliased_prefixes,
                r.churn_brand_new + r.churn_recurring + r.churn_gone,
            );
        }
        let next = day.plus(sixdust::net::events::scan_gap(day));
        day = next;
    }

    println!("\nafter one year:");
    println!("  accumulated input:        {}", svc.input().len());
    println!("  responsive (cleaned):     {}", svc.current_responsive().len());
    println!("  ever responsive:          {}", svc.cumulative().len());
    println!("  aliased prefixes labeled: {}", svc.aliased().len());
    println!("  30-day filtered pool:     {}", svc.unresponsive_pool().len());
    println!("  GFW-impacted addresses:   {}", svc.gfw_impacted().len());

    let snap = registry.snapshot();
    println!("\ntelemetry (shared registry, see README \"Observability\"):");
    for name in ["service.rounds", "service.targets", "scan.icmp.probes_sent", "net.probes"] {
        println!("  {:<24} {}", name, snap.counter(name).unwrap_or(0));
    }
    if let Some(h) = snap.histogram("service.round.phase.scan_ms") {
        println!("  scan phase ms             mean {:.1}, max {}", h.mean(), h.max);
    }
}
