//! Capture a wire-mode scan into a pcap file you can open in Wireshark:
//! real IPv6/ICMPv6/TCP/UDP bytes, including a GFW-injected DNS answer
//! and the Too Big Trick's fragments.
//!
//! ```sh
//! cargo run --release --example wire_capture
//! # then: wireshark /tmp/sixdust.pcap
//! ```

use sixdust::addr::Addr;
use sixdust::net::{events, FaultConfig, Internet, Protocol, Scale};
use sixdust::scan::engine::build_probe_bytes;
use sixdust::scan::PcapWriter;
use sixdust::wire::icmpv6::Icmpv6;
use sixdust::wire::{Ipv6Header, Packet, Transport};

fn main() -> std::io::Result<()> {
    let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
    let src = net.registry().vantage_addr();
    let day = events::GFW_ERA3.0.plus(30);
    let path = std::env::temp_dir().join("sixdust.pcap");
    let mut pcap = PcapWriter::new(std::fs::File::create(&path)?)?;

    let mut exchange = |probe: Vec<u8>, label: &str| -> std::io::Result<usize> {
        pcap.write_packet(&probe)?;
        let replies = net.send_bytes(&probe, day);
        for r in &replies {
            pcap.advance_micros(180);
            pcap.write_packet(r)?;
        }
        pcap.advance_micros(1000);
        println!("{label:<28} {} reply packet(s)", replies.len());
        Ok(replies.len())
    };

    // 1. A normal ICMP exchange with a live host.
    let live = net
        .population()
        .enumerate_responsive(day)
        .into_iter()
        .find(|(_, p, _)| p.contains(Protocol::Icmp))
        .map(|(a, ..)| a)
        .expect("live host");
    exchange(build_probe_bytes(Protocol::Icmp, src, live, "www.google.com", 1), "icmp echo")?;

    // 2. A TCP SYN with full fingerprintable options.
    let web = net
        .population()
        .enumerate_responsive(day)
        .into_iter()
        .find(|(_, p, _)| p.contains(Protocol::Tcp80))
        .map(|(a, ..)| a)
        .expect("web host");
    exchange(build_probe_bytes(Protocol::Tcp80, src, web, "www.google.com", 2), "tcp syn")?;

    // 3. A GFW injection: a dark Chinese address answering a blocked name.
    let ct = net.registry().by_asn(4134).expect("AS4134");
    let dark = Addr(net.registry().get(ct).prefixes[0].network().0 | 0xd00d);
    let n = exchange(
        build_probe_bytes(Protocol::Udp53, src, dark, "www.google.com", 3),
        "dns query (GFW injected)",
    )?;
    assert!(n >= 2, "multiple injectors answer");

    // 4. TBT fragments: seed a PMTU cache, then a 1300-byte echo.
    let alias = net
        .population()
        .aliased_groups(day)
        .find(|g| g.protos.contains(Protocol::Icmp))
        .expect("aliased prefix");
    let target = alias.prefix.random_addr(7);
    let ptb = Packet {
        ipv6: Ipv6Header::new(src, target, 64),
        transport: Transport::Icmpv6(Icmpv6::PacketTooBig { mtu: 1280 }),
    };
    exchange(ptb.to_bytes(), "packet too big (seed)")?;
    let big = Packet {
        ipv6: Ipv6Header::new(src, target, 64),
        transport: Transport::Icmpv6(Icmpv6::EchoRequest {
            ident: 9,
            seq: 1,
            payload: vec![0; 1300],
        }),
    };
    let frags = exchange(big.to_bytes(), "1300B echo (fragments)")?;
    assert!(frags >= 2, "reply arrives as real fragments");

    let total = pcap.packets();
    pcap.finish()?;
    println!("\nwrote {total} packets to {}", path.display());
    Ok(())
}
