//! Quickstart: build a simulated IPv6 Internet, scan it like ZMapv6,
//! and look at what comes back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sixdust::net::{Day, FaultConfig, Internet, Protocol, Scale};
use sixdust::scan::{scan, ScanConfig};

fn main() {
    // A miniature Internet: ~120 ASes, deterministic from the seed.
    let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
    let day = Day(100);

    println!("== sixdust quickstart ==");
    println!(
        "registry: {} ASes, vantage point {}",
        net.registry().len(),
        net.registry().vantage_addr()
    );

    // Ground truth (only the simulator can see this).
    let truth = net.population().enumerate_responsive(day);
    println!("ground truth on day {}: {} responsive addresses", day.0, truth.len());

    // A measurement tool cannot enumerate; it needs candidates. Take the
    // ground truth as a stand-in target list and scan each protocol the
    // IPv6 Hitlist probes.
    let targets: Vec<_> = truth.iter().map(|(a, ..)| *a).take(2000).collect();
    for proto in Protocol::ALL {
        let result = scan(&net, proto, &targets, day, &ScanConfig::default());
        println!(
            "  {:>8}: {:>5} of {} targets responsive ({} probes, {:.2}s virtual)",
            proto.to_string(),
            result.stats.hits,
            targets.len(),
            result.stats.sent,
            result.stats.duration_secs
        );
    }

    // Aliased prefixes answer on every address.
    let aliased = net
        .population()
        .aliased_groups(day)
        .next()
        .expect("the simulated Internet always has aliased prefixes");
    let random_addr = aliased.prefix.random_addr(42);
    let responses = net.probe(random_addr, &sixdust::net::ProbeKind::IcmpEcho { size: 8 }, day);
    println!(
        "\naliased prefix {}: random address {} answers: {}",
        aliased.prefix,
        random_addr,
        !responses.is_empty()
    );
}
