//! sixdust — a reproduction of "Rusty Clusters? Dusting an IPv6 Research
//! Foundation" (Zirngibl et al., IMC 2022).
//!
//! This facade crate re-exports the workspace's sub-crates under one
//! roof so examples and downstream users can depend on a single name:
//!
//! * [`addr`] — IPv6 addresses, prefixes, tries and IID classification;
//! * [`wire`] — packet formats (IPv6, ICMPv6, TCP, UDP, DNS, QUIC);
//! * [`net`] — the simulated IPv6 Internet (registry, population, GFW,
//!   faults, virtual time);
//! * [`scan`] — the high-rate scan engine, rate limiter and yarrp-style
//!   traceroute;
//! * [`alias`] — aliased-prefix detection, fingerprinting and the
//!   too-big trick;
//! * [`tga`] — the target-generation-algorithm lineup of the paper;
//! * [`hitlist`] — the hitlist service pipeline (ingest, filter, scan,
//!   publish, churn);
//! * [`serve`] — the distribution subsystem: a sharded snapshot store
//!   with atomic generation swaps, delta-encoded artifacts, and a
//!   simulated registered-consumer fleet (ETags, LRU cache, admission
//!   control);
//! * [`vantage`] — multi-vantage scanning: a deterministic
//!   discrete-event round scheduler running N vantage points (EU / US /
//!   behind-GFW CN) over one simulated Internet, with work-stealing
//!   segment execution and cross-vantage disagreement analysis;
//! * [`analysis`] — tables, CDFs and histograms for the experiments;
//! * [`telemetry`] — always-on counters, histograms and span timers for
//!   every stage above, plus the longitudinal layer: per-round series
//!   recording, a Chrome-trace journal and online MAD anomaly
//!   detection.
//!
//! # Quick start
//!
//! ```no_run
//! use sixdust::hitlist::{HitlistService, ServiceConfig};
//! use sixdust::net::{Day, Internet, Scale};
//! use sixdust::telemetry::Registry;
//!
//! let net = Internet::build(Scale::tiny());
//! let registry = Registry::new();
//! let config = ServiceConfig::builder().alias_every_days(14).build();
//! let mut svc = HitlistService::new(config).with_telemetry(registry.clone());
//! svc.run(&net, Day(0), Day(28));
//! println!("{}", registry.snapshot().to_json());
//! ```

pub use sixdust_addr as addr;
pub use sixdust_alias as alias;
pub use sixdust_analysis as analysis;
pub use sixdust_hitlist as hitlist;
pub use sixdust_net as net;
pub use sixdust_scan as scan;
pub use sixdust_serve as serve;
pub use sixdust_telemetry as telemetry;
pub use sixdust_tga as tga;
pub use sixdust_vantage as vantage;
pub use sixdust_wire as wire;
