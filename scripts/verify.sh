#!/usr/bin/env bash
# Tier-1 verification: everything CI runs, runnable locally in one shot.
#
#   scripts/verify.sh            # build + tests + clippy + bench compile + docs
#   scripts/verify.sh --quick    # build + tests only (fast pre-push check)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --all --check"
cargo fmt --all --check

echo "== cargo build --workspace --release"
cargo build --workspace --release

echo "== cargo test --workspace"
cargo test --workspace --release -q

if [ "${1:-}" != "--quick" ]; then
  echo "== cargo clippy --workspace --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings

  echo "== cargo bench --workspace --no-run"
  cargo bench --workspace --no-run

  echo "== cargo bench -p sixdust-bench --bench round -- --test (quick mode)"
  cargo bench -p sixdust-bench --bench round -- --test

  echo "== cargo doc --workspace --no-deps (warnings denied)"
  RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
fi

echo "verify: OK"
