#!/usr/bin/env bash
# Tier-1 verification: everything CI runs, runnable locally in one shot.
#
#   scripts/verify.sh            # build + tests + clippy
#   scripts/verify.sh --quick    # skip clippy (fast pre-push check)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --workspace --release"
cargo build --workspace --release

echo "== cargo test --workspace"
cargo test --workspace --release -q

if [ "${1:-}" != "--quick" ]; then
  echo "== cargo clippy --workspace -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings
fi

echo "verify: OK"
