#!/usr/bin/env bash
# Tier-1 verification: everything CI runs, runnable locally in one shot.
#
#   scripts/verify.sh            # build + tests + clippy + bench compile + docs
#   scripts/verify.sh --quick    # build + tests only (fast pre-push check)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== grep gate: no Vec<u128> in public signatures outside crates/addr"
# AddrSet is the only address-set currency at crate boundaries; a public
# fn/struct field shipping a raw Vec<u128> outside crates/addr is a
# regression. (Benches, tests and private items are exempt.)
if grep -rnE '^\s*pub (fn|struct|enum|type)?[^;{]*Vec<u128>' \
    crates/*/src src \
    --include='*.rs' \
  | grep -v '^crates/addr/' \
  | grep -v 'pub(crate)'; then
  echo "grep gate FAILED: public Vec<u128> signature outside crates/addr (use AddrSet)" >&2
  exit 1
fi

echo "== grep gate: every metric-name literal is inventoried in METRICS.md"
# METRICS.md is the contract for dashboards, SLOs and series consumers; a
# counter/gauge/histogram registered under a name the inventory does not
# list (in backticks) is a silent drift. Dynamically-formatted families
# (format!(...)) are documented as patterns and checked by eye.
missing=0
# Only dot-separated names are checked: the naming scheme requires a
# `<subsystem>.<object>` path, so dotless throwaway names in unit tests
# stay out of the inventory.
for name in $(grep -rhoE '\.(counter|gauge|histogram)\("[^"]+"\)' \
    crates/*/src src --include='*.rs' \
  | sed -E 's/.*\("([^"]+)"\).*/\1/' | grep '\.' | sort -u); do
  if ! grep -qF "\`$name\`" METRICS.md; then
    echo "metric \`$name\` is registered in code but not inventoried in METRICS.md" >&2
    missing=1
  fi
done
if [ "$missing" != 0 ]; then
  echo "grep gate FAILED: add the missing metric names to METRICS.md" >&2
  exit 1
fi

echo "== cargo fmt --all --check"
cargo fmt --all --check

echo "== cargo build --workspace --release"
cargo build --workspace --release

echo "== cargo test --workspace"
cargo test --workspace --release -q

echo "== mirror chaos scenario (quick mode: 3-mirror chaos replay, byte-identical)"
# A seeded chaos day (mirror outages, an origin publish blackout, sync
# corruption) replayed over a 3-mirror tier at tiny scale: the resilient
# client path must absorb the fault plan with zero hard failures, and
# the identical seed must reproduce the DayReport byte-for-byte.
cargo build --release -q -p sixdust-experiments
chaos_dir=target/verify-chaos
rm -rf "$chaos_dir" && mkdir -p "$chaos_dir"
for run in a b; do
  target/release/sixdust-exp --scale tiny --seed 11 --out "$chaos_dir/$run" \
    --mirrors 3 --serve-faults --serve-report "$chaos_dir/$run.json" \
    publish >/dev/null 2>"$chaos_dir/$run.log"
done
cmp "$chaos_dir/a.json" "$chaos_dir/b.json" \
  || { echo "chaos scenario FAILED: reports differ across identical seeds" >&2; exit 1; }
grep -q " 0 hard failures" "$chaos_dir/a.log" \
  || { echo "chaos scenario FAILED: hard failures in the chaos day" >&2; \
       grep "chaos day" "$chaos_dir/a.log" >&2 || true; exit 1; }
grep "chaos day over" "$chaos_dir/a.log"

echo "== multi-vantage scenario (3-vantage fleet, deterministic disagreement artifact)"
# The EU/US/CN fleet over the GFW filtering era: the disagreement
# artifact must be non-empty (the firewall split is visible) and
# byte-identical across identical seeds.
vantage_dir=target/verify-vantage
rm -rf "$vantage_dir" && mkdir -p "$vantage_dir"
for run in a b; do
  target/release/sixdust-exp --scale tiny --seed 11 --out "$vantage_dir/$run" \
    --vantages 3 >/dev/null 2>"$vantage_dir/$run.log"
done
cmp "$vantage_dir/a/vantage_disagreement.json" "$vantage_dir/b/vantage_disagreement.json" \
  || { echo "vantage scenario FAILED: artifacts differ across identical seeds" >&2; exit 1; }
grep -q "gfw-class" "$vantage_dir/a.log" \
  || { echo "vantage scenario FAILED: no fleet summary line" >&2; exit 1; }
grep -Eq "[1-9][0-9]* disagreements" "$vantage_dir/a.log" \
  || { echo "vantage scenario FAILED: empty disagreement artifact" >&2; \
       grep "vantage fleet" "$vantage_dir/a.log" >&2 || true; exit 1; }
grep "vantage fleet" "$vantage_dir/a.log"

echo "== flash-crowd scenario (1M-client session day through the event loop, byte-identical)"
# A million session-based virtual clients, 40% of them piling onto the
# publication spikes, replayed through the event-loop front end: the day
# must complete, count flash arrivals, and reproduce the DayReport
# byte-for-byte across identical seeds.
flash_dir=target/verify-flash
rm -rf "$flash_dir" && mkdir -p "$flash_dir"
for run in a b; do
  target/release/sixdust-exp --scale tiny --seed 11 --out "$flash_dir/$run" \
    --clients 1000000 --flash-crowd --serve-report "$flash_dir/$run.json" \
    publish >/dev/null 2>"$flash_dir/$run.log"
done
cmp "$flash_dir/a.json" "$flash_dir/b.json" \
  || { echo "flash-crowd scenario FAILED: reports differ across identical seeds" >&2; exit 1; }
grep -Eq "flash crowd: [1-9][0-9]* arrivals" "$flash_dir/a.log" \
  || { echo "flash-crowd scenario FAILED: no flash arrivals counted" >&2; \
       grep "serve day" "$flash_dir/a.log" >&2 || true; exit 1; }
grep "serve day:" "$flash_dir/a.log"
grep "flash crowd:" "$flash_dir/a.log"

if [ "${1:-}" != "--quick" ]; then
  echo "== cargo clippy --workspace --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings

  echo "== cargo bench --workspace --no-run"
  cargo bench --workspace --no-run

  echo "== cargo bench -p sixdust-bench --bench round -- --test (quick mode)"
  cargo bench -p sixdust-bench --bench round -- --test

  echo "== cargo bench -p sixdust-bench --bench addrset -- --test (quick mode)"
  cargo bench -p sixdust-bench --bench addrset -- --test

  echo "== cargo bench -p sixdust-bench --bench serve -- --test (quick mode)"
  cargo bench -p sixdust-bench --bench serve -- --test

  echo "== cargo bench -p sixdust-bench --bench vantage -- --test (quick mode)"
  cargo bench -p sixdust-bench --bench vantage -- --test

  echo "== cargo doc --workspace --no-deps (warnings denied)"
  RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
fi

echo "verify: OK"
