#!/usr/bin/env bash
# Run the serve-layer benchmarks and refresh BENCH_serve.json at the
# repo root with the simulated-day throughput figure.
#
#   scripts/bench_serve.sh           # full criterion run, rewrite BENCH_serve.json
#   scripts/bench_serve.sh --test    # quick mode: one pass per bench, no JSON refresh
#
# The JSON records the mean wall time of one simulated consumer day
# (100k requests, Zipf artifact popularity, ETag and delta fetches,
# admission control) and the derived requests/sec, joined with the
# day's byte-savings and latency facts the bench writes to
# target/serve_day.json, plus the codec micro-bench estimates, plus the
# mirror-tier chaos day (1 vs 4 mirrors) joined with the resilience
# ledger from target/serve_mirror_day.json.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--test" ]; then
  cargo bench -p sixdust-bench --bench serve -- --test
  exit 0
fi

cargo bench -p sixdust-bench --bench serve

out="BENCH_serve.json"

python3 - "$out" <<'PY'
import json
import os
import sys

out = sys.argv[1]

def estimates(group):
    root = os.path.join("target", "criterion", group)
    found = {}
    for name in sorted(os.listdir(root)) if os.path.isdir(root) else []:
        est = os.path.join(root, name, "new", "estimates.json")
        if os.path.isfile(est):
            with open(est) as f:
                found[name] = json.load(f)["mean"]["point_estimate"]
    return found

side = {}
if os.path.isfile("target/serve_day.json"):
    with open("target/serve_day.json") as f:
        side = json.load(f)

day = None
day_est = estimates("serve_day")
if day_est:
    mean_ns = day_est["simulate_day_100k_requests"]
    requests = side.get("requests", 100_000)
    day = {
        "mean_day_secs": mean_ns / 1e9,
        "requests_per_sec": requests / (mean_ns / 1e9),
    }
    day.update(side)

codec = {name: {"mean_secs": ns / 1e9} for name, ns in estimates("serve_codec").items()}
store = {name: {"mean_secs": ns / 1e9} for name, ns in estimates("serve_store").items()}

# The mirror-tier chaos day: 1 mirror prices the resilience machinery
# alone, 4 mirrors the full failover fan-out; the 4-mirror run's
# resilience ledger rides along as side facts.
mirror_side = {}
if os.path.isfile("target/serve_mirror_day.json"):
    with open("target/serve_mirror_day.json") as f:
        mirror_side = json.load(f)

mirror_day = None
mirror_est = estimates("serve_mirror_day")
if mirror_est:
    requests = mirror_side.get("requests", 100_000)
    mirror_day = {
        name: {
            "mean_day_secs": ns / 1e9,
            "requests_per_sec": requests / (ns / 1e9),
        }
        for name, ns in mirror_est.items()
    }
    if mirror_side:
        mirror_day["chaos_ledger_4_mirrors"] = mirror_side

doc = {
    "bench": "crates/bench/benches/serve.rs",
    "refreshed_by": "scripts/bench_serve.sh",
    "day": day,
    "mirror_day": mirror_day,
    "codec": codec or None,
    "store": store or None,
    "note": None
    if day
    else "no criterion estimates found under target/criterion/serve_day; run the bench first",
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(
    f"wrote {out}: day={'yes' if day else 'no'}, "
    f"mirror_day={'yes' if mirror_day else 'no'}, "
    f"{len(codec)} codec, {len(store)} store benches"
)
PY
