#!/usr/bin/env bash
# Run the serve-layer benchmarks and refresh BENCH_serve.json at the
# repo root with the simulated-day throughput figure.
#
#   scripts/bench_serve.sh           # full criterion run, rewrite BENCH_serve.json
#   scripts/bench_serve.sh --test    # quick mode: one pass per bench, no JSON refresh
#
# The JSON records the mean wall time of one simulated consumer day
# (100k requests, Zipf artifact popularity, ETag and delta fetches,
# admission control) and the derived requests/sec, joined with the
# day's byte-savings and latency facts the bench writes to
# target/serve_day.json, plus the codec micro-bench estimates, plus the
# mirror-tier chaos day (1 vs 4 mirrors) joined with the resilience
# ledger from target/serve_mirror_day.json.
#
# When cargo cannot reach a crates registry (criterion unavailable),
# the script falls back to a dependency-free std::time path: it drives
# `sixdust-exp --serve-report` (the classic 100k-request day, a
# million-client flash-crowd day, and a 4-mirror chaos day) and scrapes
# the deterministic `[obs]` ledger plus the wall-clock `[bench]` lines
# the binary prints — so BENCH_serve.json always carries a *measured*
# requests_per_sec.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--test" ]; then
  if cargo bench -p sixdust-bench --bench serve -- --test; then
    exit 0
  fi
  echo "[bench_serve] cargo bench unavailable; smoke-running the stub bench binary" >&2
  [ -x /tmp/stubs/bench_serve ] && exec /tmp/stubs/bench_serve
  exit 1
fi

out="BENCH_serve.json"

if cargo bench -p sixdust-bench --bench serve; then
python3 - "$out" <<'PY'
import json
import os
import sys

out = sys.argv[1]

def estimates(group):
    root = os.path.join("target", "criterion", group)
    found = {}
    for name in sorted(os.listdir(root)) if os.path.isdir(root) else []:
        est = os.path.join(root, name, "new", "estimates.json")
        if os.path.isfile(est):
            with open(est) as f:
                found[name] = json.load(f)["mean"]["point_estimate"]
    return found

side = {}
if os.path.isfile("target/serve_day.json"):
    with open("target/serve_day.json") as f:
        side = json.load(f)

day = None
day_est = estimates("serve_day")
if day_est:
    mean_ns = day_est["simulate_day_100k_requests"]
    requests = side.get("requests", 100_000)
    day = {
        "mean_day_secs": mean_ns / 1e9,
        "requests_per_sec": requests / (mean_ns / 1e9),
    }
    day.update(side)

codec = {name: {"mean_secs": ns / 1e9} for name, ns in estimates("serve_codec").items()}
store = {name: {"mean_secs": ns / 1e9} for name, ns in estimates("serve_store").items()}

# The mirror-tier chaos day: 1 mirror prices the resilience machinery
# alone, 4 mirrors the full failover fan-out; the 4-mirror run's
# resilience ledger rides along as side facts.
mirror_side = {}
if os.path.isfile("target/serve_mirror_day.json"):
    with open("target/serve_mirror_day.json") as f:
        mirror_side = json.load(f)

mirror_day = None
mirror_est = estimates("serve_mirror_day")
if mirror_est:
    requests = mirror_side.get("requests", 100_000)
    mirror_day = {
        name: {
            "mean_day_secs": ns / 1e9,
            "requests_per_sec": requests / (ns / 1e9),
        }
        for name, ns in mirror_est.items()
    }
    if mirror_side:
        mirror_day["chaos_ledger_4_mirrors"] = mirror_side

flash = {}
if os.path.isfile("target/serve_flash_day.json"):
    with open("target/serve_flash_day.json") as f:
        flash = json.load(f)

flash_day = None
flash_est = estimates("serve_flash_day")
if flash_est:
    name, mean_ns = sorted(flash_est.items())[0]
    requests = flash.get("requests") or 1
    flash_day = {
        "bench": name,
        "mean_day_secs": mean_ns / 1e9,
        "requests_per_sec": requests / (mean_ns / 1e9),
    }
    flash_day.update(flash)

doc = {
    "bench": "crates/bench/benches/serve.rs",
    "refreshed_by": "scripts/bench_serve.sh",
    "day": day,
    "flash_crowd_day": flash_day,
    "mirror_day": mirror_day,
    "codec": codec or None,
    "store": store or None,
    "note": None
    if day
    else "no criterion estimates found under target/criterion/serve_day; run the bench first",
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(
    f"wrote {out}: day={'yes' if day else 'no'}, "
    f"flash={'yes' if flash_day else 'no'}, "
    f"mirror_day={'yes' if mirror_day else 'no'}, "
    f"{len(codec)} codec, {len(store)} store benches"
)
PY
  exit 0
fi

# ---------------------------------------------------------------------
# Fallback: no crates registry. Time sixdust-exp serve days directly.
# ---------------------------------------------------------------------
echo "[bench_serve] cargo bench unavailable — std::time fallback through sixdust-exp" >&2

# A usable binary must know the session-mode flags; a stale build from
# before the event-loop front end would reject --flash-crowd, so probe
# each candidate for the embedded usage string before trusting it.
supports_session() { [ -x "$1" ] && grep -aq -- '--flash-crowd' "$1"; }

EXP="${SIXDUST_EXP:-}"
if [ -z "$EXP" ]; then
  for cand in target/release/sixdust-exp /tmp/stubs/sixdust_exp; do
    if supports_session "$cand"; then
      EXP="$cand"
      break
    fi
  done
  if [ -z "$EXP" ] && [ -x /tmp/stubs/build.sh ]; then
    /tmp/stubs/build.sh >&2
    if supports_session /tmp/stubs/sixdust_exp; then
      EXP=/tmp/stubs/sixdust_exp
    fi
  fi
  if [ -z "$EXP" ]; then
    echo "[bench_serve] no session-capable sixdust-exp binary and no way to build one" >&2
    exit 1
  fi
fi
echo "[bench_serve] using $EXP" >&2

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The classic uniform 100k-request day, a million-client flash-crowd
# session day, and a 4-mirror chaos day under the seeded fault plan.
"$EXP" --scale tiny --seed 11 --out "$tmp" \
  --serve-report "$tmp/day.json" publish 2>"$tmp/day.log" >/dev/null
"$EXP" --scale tiny --seed 11 --out "$tmp" \
  --serve-report "$tmp/flash.json" --clients 1000000 --flash-crowd publish \
  2>"$tmp/flash.log" >/dev/null
"$EXP" --scale tiny --seed 11 --out "$tmp" --mirrors 4 --serve-faults \
  --serve-report "$tmp/chaos.json" publish 2>"$tmp/chaos.log" >/dev/null

python3 - "$out" "$tmp/day.log" "$tmp/flash.log" "$tmp/chaos.log" <<'PY'
import json
import re
import sys

out, day_log, flash_log, chaos_log = sys.argv[1:5]

def text(path):
    with open(path) as f:
        return f.read()

def bench_line(log, kind):
    m = re.search(
        r"\[bench\] " + kind + r" day: (\d+) requests in ([0-9.]+) s wall \((\d+) requests/sec\)",
        log,
    )
    if not m:
        raise SystemExit(f"no [bench] {kind} day line in log")
    return int(m.group(1)), float(m.group(2)), int(m.group(3))

def obs_day(log):
    m = re.search(
        r"\[obs\] serve day: (\d+) requests, (\d+) bodies \((\d+) delta\), (\d+) bytes, "
        r"(\d+) hits/(\d+) misses, (\d+) not-modified, (\d+) shed",
        log,
    )
    l = re.search(
        r"\[obs\] serve day ledger: (\d+) clients, (\d+) bytes saved by delta, "
        r"(\d+) delta fallbacks, p50/p90/p99 latency (\d+)/(\d+)/(\d+) us",
        log,
    )
    facts = {}
    if m:
        facts.update(
            requests=int(m.group(1)),
            bodies=int(m.group(2)),
            delta_fetches=int(m.group(3)),
            bytes_sent=int(m.group(4)),
            not_modified=int(m.group(7)),
            shed=int(m.group(8)),
        )
    if l:
        facts.update(
            clients=int(l.group(1)),
            bytes_saved_by_delta=int(l.group(2)),
            delta_fallbacks=int(l.group(3)),
            latency_p50_us=int(l.group(4)),
            latency_p90_us=int(l.group(5)),
            latency_p99_us=int(l.group(6)),
        )
    return facts

day_text, flash_text, chaos_text = text(day_log), text(flash_log), text(chaos_log)

req, wall, rps = bench_line(day_text, "serve")
day = {"mean_day_secs": wall, "requests_per_sec": rps}
day.update(obs_day(day_text))

freq, fwall, frps = bench_line(flash_text, "serve")
flash = {"mean_day_secs": fwall, "requests_per_sec": frps}
flash.update(obs_day(flash_text))
fm = re.search(r"\[obs\] flash crowd: (\d+) arrivals inside spike windows", flash_text)
if fm:
    flash["flash_arrivals"] = int(fm.group(1))

creq, cwall, crps = bench_line(chaos_text, "chaos")
chaos = {
    "mean_day_secs": cwall,
    "requests_per_sec": crps,
    "requests": creq,
    "mirrors": 4,
    "faults": "ServeFaultConfig::chaos",
}
cm = re.search(r"(\d+) hard failures", chaos_text)
if cm:
    chaos["hard_failures"] = int(cm.group(1))

doc = {
    "bench": "sixdust-exp serve days (std::time fallback)",
    "refreshed_by": "scripts/bench_serve.sh",
    "timing": "std::time wall clock around the replay inside sixdust-exp; "
    "criterion unavailable offline, so these are single-run measurements, "
    "not mean point estimates",
    "day": day,
    "flash_crowd_day": flash,
    "mirror_day": {"chaos_day_100k_requests_mirrors_4": chaos},
    "codec": None,
    "store": None,
    "note": "measured via the dependency-free fallback; run with a crates "
    "registry available for criterion estimates and codec/store micro-benches",
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(
    f"wrote {out} (fallback): day {rps} req/s, "
    f"flash crowd {frps} req/s over {freq} requests, chaos {crps} req/s"
)
PY
