#!/usr/bin/env bash
# Run the round hot-path benchmark and refresh BENCH_round.json at the repo
# root with the measured rounds/sec trajectory.
#
#   scripts/bench_round.sh           # full criterion run, rewrite BENCH_round.json
#   scripts/bench_round.sh --test    # quick mode: one pass per bench, no JSON refresh
#
# The JSON records the mean wall time per 10-day window for the sequential
# baseline and each parallel thread budget, so later PRs can compare.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--test" ]; then
  cargo bench -p sixdust-bench --bench round -- --test
  exit 0
fi

cargo bench -p sixdust-bench --bench round

out="BENCH_round.json"
crit="target/criterion/round"

# Criterion writes estimates.json (nanoseconds) per bench under
# target/criterion/<group>/<bench>/new/. Distil the point estimates.
python3 - "$crit" "$out" <<'PY'
import json
import os
import sys

crit, out = sys.argv[1], sys.argv[2]
window_days = 10
results = {}
for name in sorted(os.listdir(crit)) if os.path.isdir(crit) else []:
    est = os.path.join(crit, name, "new", "estimates.json")
    if not os.path.isfile(est):
        continue
    with open(est) as f:
        mean_ns = json.load(f)["mean"]["point_estimate"]
    results[name] = {
        "mean_window_secs": mean_ns / 1e9,
        "rounds_per_sec": window_days / (mean_ns / 1e9),
    }
doc = {
    "bench": "crates/bench/benches/round.rs",
    "window_days": window_days,
    "refreshed_by": "scripts/bench_round.sh",
    "results": results or None,
    "note": None
    if results
    else "no criterion estimates found under target/criterion/round; run the bench first",
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}: {len(results)} benches")
PY
