#!/usr/bin/env bash
# Run the multi-vantage fleet benchmark and refresh BENCH_vantage.json at
# the repo root with the measured fleet-rounds/sec trajectory.
#
#   scripts/bench_vantage.sh           # full criterion run, rewrite BENCH_vantage.json
#   scripts/bench_vantage.sh --test    # quick mode: one pass per bench, no JSON refresh
#
# The JSON records the mean wall time per 8-day window for fleet sizes
# N = 1 / 2 / 4 (the N = 1 variant is the scheduler-overhead probe against
# BENCH_round.json), so later PRs can compare.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--test" ]; then
  cargo bench -p sixdust-bench --bench vantage -- --test
  exit 0
fi

cargo bench -p sixdust-bench --bench vantage

out="BENCH_vantage.json"
crit="target/criterion/vantage"

# Criterion writes estimates.json (nanoseconds) per bench under
# target/criterion/<group>/<bench>/new/. Distil the point estimates.
python3 - "$crit" "$out" <<'PY'
import json
import os
import sys

crit, out = sys.argv[1], sys.argv[2]
window_days = 8
results = {}
for name in sorted(os.listdir(crit)) if os.path.isdir(crit) else []:
    est = os.path.join(crit, name, "new", "estimates.json")
    if not os.path.isfile(est):
        continue
    with open(est) as f:
        mean_ns = json.load(f)["mean"]["point_estimate"]
    # Bench names look like vantage_<N>_t<threads>; each window runs
    # one round per day per vantage, so fleet-rounds/sec scales with N.
    try:
        n_vantages = int(name.split("_")[1])
    except (IndexError, ValueError):
        n_vantages = 1
    secs = mean_ns / 1e9
    results[name] = {
        "mean_window_secs": secs,
        "fleet_rounds_per_sec": n_vantages * (window_days + 1) / secs,
    }
doc = {
    "bench": "crates/bench/benches/vantage.rs",
    "window_days": window_days,
    "refreshed_by": "scripts/bench_vantage.sh",
    "results": results or None,
    "note": None
    if results
    else "no criterion estimates found under target/criterion/vantage; run the bench first",
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}: {len(results)} benches")
PY
