#!/usr/bin/env bash
# Run the hitlist-at-scale AddrSet benchmark and refresh BENCH_addrset.json
# at the repo root with the population-scale curve.
#
#   scripts/bench_addrset.sh           # full criterion run, rewrite BENCH_addrset.json
#   scripts/bench_addrset.sh --test    # quick mode: one pass per bench, no JSON refresh
#
# The JSON records, per population multiplier (1x/10x/100x of the tiny
# scale), the mean wall time of a 10-day service window, the derived
# rounds/sec, and the resident bytes of every AddrSet the service
# retains — the memory side of the chunked-representation claim — plus
# the set-operation micro-bench estimates.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--test" ]; then
  cargo bench -p sixdust-bench --bench addrset -- --test
  exit 0
fi

cargo bench -p sixdust-bench --bench addrset

out="BENCH_addrset.json"

python3 - "$out" <<'PY'
import json
import os
import sys

out = sys.argv[1]
window_days = 10

def estimates(group):
    root = os.path.join("target", "criterion", group)
    found = {}
    for name in sorted(os.listdir(root)) if os.path.isdir(root) else []:
        est = os.path.join(root, name, "new", "estimates.json")
        if os.path.isfile(est):
            with open(est) as f:
                found[name] = json.load(f)["mean"]["point_estimate"]
    return found

resident = {}
if os.path.isfile("target/addrset_resident.json"):
    with open("target/addrset_resident.json") as f:
        resident = json.load(f)

curve = {}
for name, mean_ns in estimates("addrset_scale").items():
    mult = name.rsplit("_", 1)[-1]  # window10_x10 -> x10
    entry = {
        "mean_window_secs": mean_ns / 1e9,
        "rounds_per_sec": window_days / (mean_ns / 1e9),
    }
    entry.update(resident.get(mult, {}))
    curve[mult] = entry

ops = {name: {"mean_secs": ns / 1e9} for name, ns in estimates("addrset_ops").items()}

doc = {
    "bench": "crates/bench/benches/addrset.rs",
    "window_days": window_days,
    "refreshed_by": "scripts/bench_addrset.sh",
    "scale_curve": curve or None,
    "ops": ops or None,
    "note": None
    if curve
    else "no criterion estimates found under target/criterion/addrset_scale; run the bench first",
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}: {len(curve)} curve points, {len(ops)} ops")
PY
