//! Entropy/IP-style generation (Foremski et al. 2016).
//!
//! Entropy/IP segments the address into runs of nibble positions with
//! similar entropy, models each segment's value distribution, and samples
//! new addresses segment-by-segment (the original adds a Bayesian network
//! over segments; this implementation samples segments independently,
//! which preserves the method's qualitative yield). Included because the
//! lineage 6Gen → 6Tree → … starts here and the paper's related-work
//! section frames every TGA against it.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr};

use crate::corpus::{dedup_excluding, nibble_entropy};
use crate::TargetGenerator;

/// Entropy/IP-style generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntropyIp {
    /// Entropy difference that starts a new segment.
    pub split_threshold: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for EntropyIp {
    fn default() -> EntropyIp {
        EntropyIp { split_threshold: 0.8, seed: 0xE17 }
    }
}

/// A segment of adjacent nibble positions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// First nibble position (inclusive).
    pub start: usize,
    /// Last nibble position (exclusive).
    pub end: usize,
}

/// Splits positions into segments of similar entropy.
pub fn segment(entropy: &[f64; 32], threshold: f64) -> Vec<Segment> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..32 {
        if (entropy[i] - entropy[i - 1]).abs() > threshold {
            out.push(Segment { start, end: i });
            start = i;
        }
    }
    out.push(Segment { start, end: 32 });
    out
}

impl TargetGenerator for EntropyIp {
    fn name(&self) -> &'static str {
        "entropy-ip"
    }

    fn generate(&self, seeds: &[Addr], budget: usize) -> Vec<Addr> {
        if seeds.len() < 4 {
            return Vec::new();
        }
        let entropy = nibble_entropy(seeds);
        let segments = segment(&entropy, self.split_threshold);
        // Per-segment value distribution (over observed seed values).
        let nibble_seeds: Vec<[u8; 32]> = seeds.iter().map(|a| a.nibbles()).collect();
        let mut seg_values: Vec<Vec<(Vec<u8>, u32)>> = Vec::with_capacity(segments.len());
        for seg in &segments {
            let mut counts: HashMap<Vec<u8>, u32> = HashMap::new();
            for s in &nibble_seeds {
                *counts.entry(s[seg.start..seg.end].to_vec()).or_insert(0) += 1;
            }
            let mut v: Vec<(Vec<u8>, u32)> = counts.into_iter().collect();
            v.sort(); // deterministic order
            seg_values.push(v);
        }
        let mut rng = prf::PrfStream::new(self.seed, seeds.len() as u128, 0xE1B);
        let mut out = Vec::new();
        for _ in 0..budget * 2 {
            if out.len() >= budget {
                break;
            }
            let mut cand = [0u8; 32];
            for (seg, values) in segments.iter().zip(&seg_values) {
                let total: u32 = values.iter().map(|(_, c)| *c).sum();
                let mut pick = (rng.next_u64() % u64::from(total.max(1))) as u32;
                for (val, c) in values {
                    if pick < *c {
                        cand[seg.start..seg.end].copy_from_slice(val);
                        break;
                    }
                    pick -= c;
                }
            }
            out.push(Addr::from_nibbles(&cand));
        }
        dedup_excluding(out, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmentation_splits_on_entropy_jump() {
        let mut h = [0f64; 32];
        for v in h.iter_mut().skip(28) {
            *v = 4.0;
        }
        let segs = segment(&h, 0.8);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], Segment { start: 0, end: 28 });
        assert_eq!(segs[1], Segment { start: 28, end: 32 });
    }

    #[test]
    fn flat_entropy_single_segment() {
        let h = [0f64; 32];
        assert_eq!(segment(&h, 0.8).len(), 1);
    }

    #[test]
    fn recombines_segment_values() {
        // Two independent varying segments: subnet in {1,2}, host in
        // {0x10, 0x20}; seeds only cover 3 of the 4 combinations — the
        // generator should produce the missing one.
        let base = 0x2001_0db8_0001u128 << 80;
        let seeds = vec![
            Addr(base | (1u128 << 64) | 0x10),
            Addr(base | (1u128 << 64) | 0x20),
            Addr(base | (2u128 << 64) | 0x10),
            Addr(base | (1u128 << 64) | 0x10), // duplicate weight
        ];
        let gen = EntropyIp { split_threshold: 0.3, ..Default::default() }.generate(&seeds, 200);
        let missing = Addr(base | (2u128 << 64) | 0x20);
        assert!(gen.contains(&missing), "{gen:?}");
    }

    #[test]
    fn budget_and_determinism() {
        let seeds: Vec<Addr> =
            (1..60u128).map(|i| Addr((0x2001_0db8u128 << 96) | (i * 9))).collect();
        let a = EntropyIp::default().generate(&seeds, 77);
        let b = EntropyIp::default().generate(&seeds, 77);
        assert_eq!(a, b);
        assert!(a.len() <= 77);
    }
}
