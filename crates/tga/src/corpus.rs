//! Seed-corpus utilities shared by the target generation algorithms.

use std::collections::{BTreeMap, HashSet};

use sixdust_addr::Addr;

/// Groups seed addresses by their /64 network.
pub fn by_network(seeds: &[Addr]) -> BTreeMap<u64, Vec<Addr>> {
    let mut map: BTreeMap<u64, Vec<Addr>> = BTreeMap::new();
    for a in seeds {
        map.entry(a.network_u64()).or_default().push(*a);
    }
    for v in map.values_mut() {
        v.sort_unstable();
        v.dedup();
    }
    map
}

/// Per-nibble-position Shannon entropy (bits, 0..=4) over a seed set.
pub fn nibble_entropy(seeds: &[Addr]) -> [f64; 32] {
    let mut counts = [[0u32; 16]; 32];
    for a in seeds {
        for (i, n) in a.nibbles().iter().enumerate() {
            counts[i][*n as usize] += 1;
        }
    }
    let total = seeds.len() as f64;
    let mut out = [0f64; 32];
    if seeds.is_empty() {
        return out;
    }
    for (i, c) in counts.iter().enumerate() {
        let mut h = 0f64;
        for &n in c {
            if n > 0 {
                let p = f64::from(n) / total;
                h -= p * p.log2();
            }
        }
        out[i] = h;
    }
    out
}

/// Removes duplicates and any address already in the seed set — every
/// generator reports *new* candidates only, like the paper's pipeline
/// (Sec. 6.1 filters 90 % of passive candidates as already known).
pub fn dedup_excluding(candidates: Vec<Addr>, seeds: &[Addr]) -> Vec<Addr> {
    let seed_set: HashSet<Addr> = seeds.iter().copied().collect();
    let mut out: Vec<Addr> = candidates.into_iter().filter(|a| !seed_set.contains(a)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn network_grouping() {
        let seeds = vec![a("2001:db8::1"), a("2001:db8::2"), a("2001:db9::1")];
        let groups = by_network(&seeds);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&a("2001:db8::").network_u64()].len(), 2);
    }

    #[test]
    fn entropy_flat_vs_varying() {
        let seeds: Vec<Addr> = (1..=16u128).map(|i| Addr(0x2001_0db8u128 << 96 | i)).collect();
        let h = nibble_entropy(&seeds);
        assert!(h[0] < 0.01, "fixed position has no entropy");
        assert!(h[31] > 3.9, "last nibble cycles through all values");
    }

    #[test]
    fn entropy_empty() {
        assert_eq!(nibble_entropy(&[]), [0f64; 32]);
    }

    #[test]
    fn dedup_removes_seeds_and_dups() {
        let seeds = vec![a("2001:db8::1")];
        let out =
            dedup_excluding(vec![a("2001:db8::1"), a("2001:db8::2"), a("2001:db8::2")], &seeds);
        assert_eq!(out, vec![a("2001:db8::2")]);
    }
}
