//! Seedless discovery — the paper's future-work direction (Sec. 7).
//!
//! The paper closes by pointing at AddrMiner (Song et al., ATC 2022): a
//! system that finds candidates in ASes *without any seeds*, which is what
//! limits the hitlist to 62 % of announced prefixes. The mechanism behind
//! the seedless mode is transferable knowledge: addresses across
//! organizations concentrate on a small set of conventions (`::1`, low
//! counters, service ports, subnet 0/1), so probing those conventions in
//! every uncovered announced prefix recovers targets at a usable rate.
//!
//! [`Seedless`] implements that transfer: it mines the *global* IID
//! convention distribution from whatever seeds exist anywhere, then emits
//! the top conventions into announced prefixes that have no seeds at all.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;
use sixdust_addr::Prefix;

use crate::corpus::dedup_excluding;

/// Seedless generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Seedless {
    /// Candidate conventions emitted per uncovered /64.
    pub per_subnet: usize,
    /// Subnets tried per uncovered announced prefix (subnet ids 0..n).
    pub subnets_per_prefix: u64,
}

impl Default for Seedless {
    fn default() -> Seedless {
        Seedless { per_subnet: 4, subnets_per_prefix: 4 }
    }
}

/// The built-in convention fallback, by global prevalence.
const FALLBACK_IIDS: [u64; 8] = [0x1, 0x2, 0x3, 0x53, 0x80, 0x443, 0x10, 0x100];

impl Seedless {
    /// Mines the most common IIDs across the seed corpus (the transferable
    /// knowledge), most frequent first, falling back to the built-ins.
    pub fn mine_conventions(seeds: &[Addr], top: usize) -> Vec<u64> {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for a in seeds {
            let iid = a.iid();
            // Only small, convention-looking IIDs transfer across orgs.
            if iid > 0 && iid < 0x1_0000 {
                *counts.entry(iid).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(u64, u64)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out: Vec<u64> = ranked.into_iter().map(|(iid, _)| iid).take(top).collect();
        for f in FALLBACK_IIDS {
            if out.len() >= top {
                break;
            }
            if !out.contains(&f) {
                out.push(f);
            }
        }
        out
    }

    /// Announced prefixes with no seed inside (the uncovered 38 %).
    pub fn uncovered<'a>(
        announced: impl Iterator<Item = Prefix> + 'a,
        seeds: &[Addr],
    ) -> Vec<Prefix> {
        let sorted: BTreeSet<Addr> = seeds.iter().copied().collect();
        announced
            .filter(|p| {
                // No seed within [network, last].
                sorted.range(p.network()..=p.last()).next().is_none()
            })
            .collect()
    }

    /// Generates candidates for uncovered announced prefixes.
    pub fn generate_for(
        &self,
        announced: impl Iterator<Item = Prefix>,
        seeds: &[Addr],
        budget: usize,
    ) -> Vec<Addr> {
        let conventions = Seedless::mine_conventions(seeds, self.per_subnet);
        let uncovered = Seedless::uncovered(announced, seeds);
        let mut out = Vec::new();
        'outer: for p in uncovered {
            // Try the first few /64 subnets of the prefix (subnet ids
            // 0..n at the /64 boundary), emitting each convention.
            for subnet in 0..self.subnets_per_prefix {
                let base = if p.len() >= 64 {
                    p.network()
                } else {
                    Addr(p.network().0 | (u128::from(subnet) << 64))
                };
                for iid in conventions.iter().take(self.per_subnet) {
                    if out.len() >= budget {
                        break 'outer;
                    }
                    out.push(base.with_iid(*iid));
                }
                if p.len() >= 64 {
                    break; // a /64+ prefix has exactly one subnet
                }
            }
        }
        dedup_excluding(out, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn mines_conventions_by_frequency() {
        let mut seeds = Vec::new();
        for net in 0..10u128 {
            let base = (0x2001_0db8u128 + net) << 96;
            seeds.push(Addr(base | 0x1)); // universal
            if net % 2 == 0 {
                seeds.push(Addr(base | 0x53)); // common
            }
            if net == 0 {
                seeds.push(Addr(base | 0x9999)); // rare
            }
        }
        let conv = Seedless::mine_conventions(&seeds, 3);
        assert_eq!(conv[0], 0x1);
        assert_eq!(conv[1], 0x53);
    }

    #[test]
    fn fallback_when_no_seeds() {
        let conv = Seedless::mine_conventions(&[], 4);
        assert_eq!(conv, vec![0x1, 0x2, 0x3, 0x53]);
    }

    #[test]
    fn uncovered_detection() {
        let announced = vec![p("2001:db8::/32"), p("2001:db9::/32")];
        let seeds = vec![Addr((0x2001_0db8u128 << 96) | 0x42)];
        let un = Seedless::uncovered(announced.into_iter(), &seeds);
        assert_eq!(un, vec![p("2001:db9::/32")]);
    }

    #[test]
    fn generates_only_into_uncovered_space() {
        let announced = vec![p("2001:db8::/32"), p("2001:db9::/32")];
        let seeds = vec![Addr((0x2001_0db8u128 << 96) | 0x1)];
        let gen = Seedless::default().generate_for(announced.into_iter(), &seeds, 1000);
        assert!(!gen.is_empty());
        for a in &gen {
            assert!(p("2001:db9::/32").contains(*a), "{a} must be in the uncovered prefix");
        }
        // Conventions learned from the covered AS transfer over.
        assert!(gen.contains(&Addr((0x2001_0db9u128 << 96) | 0x1)));
    }

    #[test]
    fn budget_respected() {
        let announced: Vec<Prefix> =
            (0..50u128).map(|i| Prefix::new(Addr((0x2400 + i) << 100), 32)).collect();
        let gen = Seedless::default().generate_for(announced.into_iter(), &[], 37);
        assert!(gen.len() <= 37);
    }

    #[test]
    fn narrow_prefixes_single_subnet() {
        let announced = vec![p("2001:db9:0:1::/64")];
        let gen = Seedless { per_subnet: 2, subnets_per_prefix: 8 }.generate_for(
            announced.into_iter(),
            &[],
            100,
        );
        // Only one /64 exists; two conventions emitted.
        assert_eq!(gen.len(), 2);
        for a in &gen {
            assert!(p("2001:db9:0:1::/64").contains(*a));
        }
    }
}
