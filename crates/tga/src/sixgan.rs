//! 6GAN-style generation (Cui et al. 2021), simplified.
//!
//! The original 6GAN trains one generative-adversarial generator per seed
//! *pattern class* with reinforcement-learning rewards. The paper itself
//! could not reproduce its published hit rates ("we were not able to
//! reproduce results of 6GAN, but it only generated 4 k responsive
//! addresses"). Per the substitution rule, the adversarial training is
//! replaced by its deterministic core: seeds are classified into IID
//! pattern classes, an order-2 nibble Markov model is fitted per class,
//! and candidates are sampled from it. The observable property the
//! evaluation depends on — a learned sampler that reproduces global
//! nibble statistics but rarely lands on individual live addresses — is
//! preserved.

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr, Eui64};

use crate::corpus::dedup_excluding;
use crate::TargetGenerator;

/// Seed pattern classes (the "multi-pattern" part of 6GAN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeedClass {
    /// Low-byte / small-integer IIDs.
    LowByte,
    /// EUI-64 (`ff:fe`) IIDs.
    Eui64,
    /// Everything else (pseudo-random IIDs).
    Random,
}

/// Classifies one seed.
pub fn classify(addr: Addr) -> SeedClass {
    if Eui64::addr_is_eui64(addr) {
        SeedClass::Eui64
    } else if addr.iid() < 0x1_0000 {
        SeedClass::LowByte
    } else {
        SeedClass::Random
    }
}

/// 6GAN-style generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SixGan {
    /// Sampling seed (stands in for the GAN's noise vector).
    pub seed: u64,
}

impl Default for SixGan {
    fn default() -> SixGan {
        SixGan { seed: 0x66A4 }
    }
}

/// An order-2 Markov chain over nibble sequences.
struct Markov {
    /// Indexed as `pos*256 + prev2*16 + prev1` → next-nibble counts.
    counts: Vec<[u32; 16]>,
    start: Vec<[u8; 2]>,
}

impl Markov {
    fn fit(seeds: &[[u8; 32]]) -> Markov {
        // counts is indexed as [pos*256 + prev2*16 + prev1] -> [next; 16].
        let mut counts = vec![[0u32; 16]; 32 * 256];
        let mut start = Vec::with_capacity(seeds.len());
        for s in seeds {
            start.push([s[0], s[1]]);
            for pos in 2..32 {
                let idx = pos * 256 + (s[pos - 2] as usize) * 16 + s[pos - 1] as usize;
                counts[idx][s[pos] as usize] += 1;
            }
        }
        Markov { counts, start }
    }

    fn sample(&self, rng: &mut prf::PrfStream) -> [u8; 32] {
        let mut s = [0u8; 32];
        let st = self.start[(rng.next_u64() % self.start.len() as u64) as usize];
        s[0] = st[0];
        s[1] = st[1];
        for pos in 2..32 {
            let row = &self.counts[(pos * 256) + (s[pos - 2] as usize * 16) + s[pos - 1] as usize];
            let total: u32 = row.iter().sum();
            if total == 0 {
                s[pos] = (rng.next_u64() % 16) as u8;
                continue;
            }
            let mut pick = (rng.next_u64() % u64::from(total)) as u32;
            for (v, &c) in row.iter().enumerate() {
                if pick < c {
                    s[pos] = v as u8;
                    break;
                }
                pick -= c;
            }
        }
        s
    }
}

impl TargetGenerator for SixGan {
    fn name(&self) -> &'static str {
        "6gan"
    }

    fn generate(&self, seeds: &[Addr], budget: usize) -> Vec<Addr> {
        if seeds.len() < 4 {
            return Vec::new();
        }
        // Partition by class; fit one model per class; sample proportional
        // to class support.
        let mut classes: std::collections::HashMap<SeedClass, Vec<[u8; 32]>> = Default::default();
        for a in seeds {
            classes.entry(classify(*a)).or_default().push(a.nibbles());
        }
        let total = seeds.len();
        let mut out = Vec::new();
        for (class, class_seeds) in classes {
            if class_seeds.len() < 4 {
                continue;
            }
            let model = Markov::fit(&class_seeds);
            let share = budget * class_seeds.len() / total;
            let mut rng = prf::PrfStream::new(self.seed, class_seeds.len() as u128, class as u64);
            for _ in 0..share {
                out.push(Addr::from_nibbles(&model.sample(&mut rng)));
            }
        }
        dedup_excluding(out, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("2001:db8::1".parse().unwrap()), SeedClass::LowByte);
        let e = Eui64::from_oui_serial(0x001422, 9).apply_to("2001:db8::".parse().unwrap());
        assert_eq!(classify(e), SeedClass::Eui64);
        assert_eq!(classify("2001:db8::89ab:cdef:1234:5678".parse().unwrap()), SeedClass::Random);
    }

    #[test]
    fn samples_respect_global_structure() {
        // All seeds share a /32: the model must never leave it. Seeds vary
        // in five nibble positions so the order-2 chain can recombine
        // contexts into novel addresses (with fewer varying positions the
        // chain collapses onto the seeds — see mode_collapse_on_narrow_seeds).
        let net = 0x2001_0db8u128 << 96;
        let seeds: Vec<Addr> = (1..200u128).map(|i| Addr(net | (i * 0x10111))).collect();
        let gen = SixGan::default().generate(&seeds, 500);
        assert!(!gen.is_empty());
        for g in &gen {
            assert_eq!(g.0 >> 96, 0x2001_0db8, "{g}");
        }
    }

    #[test]
    fn mode_collapse_on_narrow_seeds() {
        // With only three varying nibbles, an order-2 chain can only ever
        // re-derive observed suffixes — every sample is a seed and the
        // deduped yield is empty. (The GAN-replacement shares this
        // qualitative failure mode with low-entropy corpora.)
        let net = 0x2001_0db8u128 << 96;
        let seeds: Vec<Addr> = (1..200u128).map(|i| Addr(net | (i * 7))).collect();
        assert!(SixGan::default().generate(&seeds, 500).is_empty());
    }

    #[test]
    fn low_individual_precision() {
        // Seeds on a sparse jittered lattice: the Markov sampler should
        // mostly miss exact member addresses (the paper's observed 6GAN
        // behaviour), unlike the in-fill generators.
        let net = 0x2001_0db8_0000_0003u128 << 64;
        let members: Vec<Addr> = (0..300u128).map(|i| Addr(net | (i * 8 + (i * i) % 8))).collect();
        let seeds: Vec<Addr> = members.iter().step_by(3).copied().collect();
        let gen = SixGan::default().generate(&seeds, 2000);
        let hits = gen.iter().filter(|g| members.contains(g)).count();
        let rate = hits as f64 / gen.len().max(1) as f64;
        assert!(rate < 0.2, "hit rate {rate} should be low");
    }

    #[test]
    fn deterministic_and_budgeted() {
        let seeds: Vec<Addr> = (1..100u128).map(|i| Addr((0x2001u128 << 112) | i)).collect();
        let a = SixGan::default().generate(&seeds, 100);
        let b = SixGan::default().generate(&seeds, 100);
        assert_eq!(a, b);
        assert!(a.len() <= 100);
    }

    #[test]
    fn tiny_seed_sets_yield_nothing() {
        assert!(SixGan::default().generate(&[Addr(1), Addr(2)], 100).is_empty());
    }
}
