//! 6Gen (Murdock et al., IMC 2017): seed-density cluster growth.
//!
//! 6Gen is the direct ancestor of the whole TGA lineage the paper
//! evaluates (it produced the 55 M-address hitlist of which 98 % turned
//! out to be aliased — the finding that motivated multi-level alias
//! detection in the first place). The algorithm grows *ranges* around
//! dense seed clusters: starting from each seed as a degenerate range, it
//! repeatedly widens the nibble range that gains the most seeds per added
//! address, then emits the covered addresses.
//!
//! This implementation keeps 6Gen's greedy range-growth core with a
//! budgeted emit phase, organized per /64 like the reference tool's
//! cluster loop.

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;

use crate::corpus::{by_network, dedup_excluding};
use crate::TargetGenerator;

/// 6Gen configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SixGen {
    /// Number of range-growth steps per cluster.
    pub growth_steps: usize,
    /// Minimum seeds per /64 bucket to grow a cluster.
    pub min_bucket: usize,
}

impl Default for SixGen {
    fn default() -> SixGen {
        SixGen { growth_steps: 8, min_bucket: 2 }
    }
}

/// A nibble range: per-position low/high bounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NibbleRange {
    /// Inclusive per-position bounds.
    pub bounds: [(u8, u8); 32],
}

impl NibbleRange {
    /// The degenerate range of one address.
    pub fn of(addr: Addr) -> NibbleRange {
        let n = addr.nibbles();
        let mut bounds = [(0u8, 0u8); 32];
        for (i, v) in n.iter().enumerate() {
            bounds[i] = (*v, *v);
        }
        NibbleRange { bounds }
    }

    /// Whether an address falls inside the range.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.nibbles().iter().zip(self.bounds.iter()).all(|(v, (lo, hi))| v >= lo && v <= hi)
    }

    /// Number of addresses covered (saturating).
    pub fn size(&self) -> u128 {
        let mut s: u128 = 1;
        for (lo, hi) in self.bounds.iter() {
            s = s.saturating_mul(u128::from(hi - lo) + 1);
        }
        s
    }

    /// Grows the single dimension whose widening to cover `seeds` gains
    /// the most seeds per added address. Returns false when no dimension
    /// can grow usefully.
    pub fn grow_best(&mut self, seeds: &[[u8; 32]]) -> bool {
        let mut best: Option<(usize, u8, u8, f64)> = None;
        for pos in 0..32 {
            let (lo, hi) = self.bounds[pos];
            // Candidate widened bounds: the min/max of seeds matching the
            // range on every *other* dimension.
            let mut new_lo = lo;
            let mut new_hi = hi;
            let mut gained = 0u64;
            for s in seeds {
                let matches_others = s
                    .iter()
                    .enumerate()
                    .all(|(i, v)| i == pos || (*v >= self.bounds[i].0 && *v <= self.bounds[i].1));
                if matches_others {
                    if s[pos] < lo || s[pos] > hi {
                        gained += 1;
                    }
                    new_lo = new_lo.min(s[pos]);
                    new_hi = new_hi.max(s[pos]);
                }
            }
            if gained == 0 || (new_lo == lo && new_hi == hi) {
                continue;
            }
            let added = (u128::from(new_hi - new_lo) + 1) as f64 / (u128::from(hi - lo) + 1) as f64;
            let density = gained as f64 / added.max(1.0);
            if best.as_ref().map(|(.., d)| density > *d).unwrap_or(true) {
                best = Some((pos, new_lo, new_hi, density));
            }
        }
        match best {
            Some((pos, lo, hi, _)) => {
                self.bounds[pos] = (lo, hi);
                true
            }
            None => false,
        }
    }

    /// Emits the covered addresses into `out`, up to `budget` total.
    pub fn emit(&self, out: &mut Vec<Addr>, budget: usize) {
        let mut cur: Vec<u8> = self.bounds.iter().map(|(lo, _)| *lo).collect();
        loop {
            let mut arr = [0u8; 32];
            arr.copy_from_slice(&cur);
            out.push(Addr::from_nibbles(&arr));
            if out.len() >= budget {
                return;
            }
            // Odometer increment from the rightmost position.
            let mut pos = 31usize;
            loop {
                if cur[pos] < self.bounds[pos].1 {
                    cur[pos] += 1;
                    break;
                }
                cur[pos] = self.bounds[pos].0;
                if pos == 0 {
                    return;
                }
                pos -= 1;
            }
        }
    }
}

impl TargetGenerator for SixGen {
    fn name(&self) -> &'static str {
        "6gen"
    }

    fn generate(&self, seeds: &[Addr], budget: usize) -> Vec<Addr> {
        let buckets = by_network(seeds);
        // Grow one range per qualifying /64, densest seed buckets first.
        let mut clusters: Vec<(u64, Vec<Addr>)> =
            buckets.into_iter().filter(|(_, v)| v.len() >= self.min_bucket).collect();
        clusters.sort_by_key(|(_, v)| std::cmp::Reverse(v.len()));
        let mut out = Vec::new();
        for (_, bucket) in clusters {
            if out.len() >= budget {
                break;
            }
            let nibbles: Vec<[u8; 32]> = bucket.iter().map(|a| a.nibbles()).collect();
            let mut range = NibbleRange::of(bucket[0]);
            for _ in 0..self.growth_steps {
                if !range.grow_best(&nibbles) {
                    break;
                }
                // 6Gen bails on ranges that explode (that is how its 2017
                // run flooded into what turned out to be aliased space —
                // the modern pipeline catches this with the MAPD instead).
                if range.size() > 1 << 20 {
                    break;
                }
            }
            range.emit(&mut out, budget);
        }
        dedup_excluding(out, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_of_single_address() {
        let a: Addr = "2001:db8::42".parse().unwrap();
        let r = NibbleRange::of(a);
        assert!(r.contains(a));
        assert_eq!(r.size(), 1);
        assert!(!r.contains("2001:db8::43".parse().unwrap()));
    }

    #[test]
    fn grow_covers_cluster() {
        let net = 0x2001_0db8_0000_0001u128 << 64;
        let seeds: Vec<Addr> = (1..=12u128).map(|i| Addr(net | i)).collect();
        let nibbles: Vec<[u8; 32]> = seeds.iter().map(|a| a.nibbles()).collect();
        let mut r = NibbleRange::of(seeds[0]);
        while r.grow_best(&nibbles) {}
        for s in &seeds {
            assert!(r.contains(*s), "{s}");
        }
        assert!(r.size() >= 12);
    }

    #[test]
    fn generates_infill_around_seeds() {
        let net = 0x2001_0db8_0000_0002u128 << 64;
        // Seeds 1..=8 with a hole at 5.
        let seeds: Vec<Addr> = [1u128, 2, 3, 4, 6, 7, 8].iter().map(|i| Addr(net | i)).collect();
        let gen = SixGen::default().generate(&seeds, 10_000);
        assert!(gen.contains(&Addr(net | 5)), "fills the hole: {gen:?}");
        assert!(!gen.contains(&Addr(net | 3)), "seeds excluded");
    }

    #[test]
    fn budget_and_determinism() {
        let net = 0x2001_0db8_0000_0003u128 << 64;
        let seeds: Vec<Addr> = (0..60u128).map(|i| Addr(net | (i * 5))).collect();
        let a = SixGen::default().generate(&seeds, 100);
        let b = SixGen::default().generate(&seeds, 100);
        assert_eq!(a, b);
        assert!(a.len() <= 100);
    }

    #[test]
    fn range_size_guard() {
        // Seeds spread over many dimensions would explode; 6Gen caps the
        // range size and emits what it has.
        let seeds: Vec<Addr> = (0..40u128)
            .map(|i| Addr((0x2001_0db8_0000_0004u128 << 64) | (i * 0x1111_1111)))
            .collect();
        let gen = SixGen::default().generate(&seeds, 5_000);
        assert!(gen.len() <= 5_000);
    }

    #[test]
    fn sparse_buckets_skipped() {
        let seeds = vec![
            Addr(0x2001_0db8_0000_0005u128 << 64 | 1),
            Addr(0x2001_0db8_0000_0006u128 << 64 | 1),
        ];
        // One seed per /64 < min_bucket of 2.
        assert!(SixGen::default().generate(&seeds, 100).is_empty());
    }
}
