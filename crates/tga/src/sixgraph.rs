//! 6Graph (Yang et al. 2022): graph-theoretic pattern mining.
//!
//! 6Graph mines address *patterns*: seeds are connected when they are
//! close in nibble space, connected components become pattern outlines
//! (fixed nibbles + wildcard dimensions with observed value sets), and
//! generation fills the wildcard combinations. Compared with 6Tree it
//! merges sibling /64s of the same deployment into one pattern —
//! wildcarding subnet nibbles as well — which yields a larger candidate
//! volume at a lower hit rate (the Table 4 relationship).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;

use crate::corpus::{by_network, dedup_excluding};
use crate::TargetGenerator;

/// 6Graph configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SixGraph {
    /// Minimum seeds for a /64 bucket to form a pattern.
    pub min_bucket: usize,
    /// Maximum wildcard dimensions enumerated per pattern.
    pub max_wildcards: usize,
}

impl Default for SixGraph {
    fn default() -> SixGraph {
        SixGraph { min_bucket: 4, max_wildcards: 4 }
    }
}

/// A mined pattern: a nibble template plus wildcard positions with their
/// observed value ranges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    /// Template nibbles (wildcard positions hold the minimum value).
    pub template: [u8; 32],
    /// `(position, lo, hi)` wildcard dimensions.
    pub wildcards: Vec<(usize, u8, u8)>,
    /// Seeds supporting the pattern.
    pub support: usize,
}

impl Pattern {
    /// Number of candidate combinations the pattern spans.
    pub fn combinations(&self) -> u64 {
        self.wildcards.iter().map(|(_, lo, hi)| u64::from(hi - lo) + 1).product()
    }

    /// Seed density over the pattern space.
    pub fn density(&self) -> f64 {
        self.support as f64 / self.combinations().max(1) as f64
    }

    /// Enumerates candidates into `out`, stopping at `budget` total.
    fn enumerate(&self, out: &mut Vec<Addr>, budget: usize) {
        let mut idx: Vec<u8> = self.wildcards.iter().map(|(_, lo, _)| *lo).collect();
        loop {
            let mut cand = self.template;
            for (k, (d, ..)) in self.wildcards.iter().enumerate() {
                cand[*d] = idx[k];
            }
            out.push(Addr::from_nibbles(&cand));
            if out.len() >= budget {
                return;
            }
            let mut k = 0;
            loop {
                if k == self.wildcards.len() {
                    return;
                }
                if idx[k] < self.wildcards[k].2 {
                    idx[k] += 1;
                    break;
                }
                idx[k] = self.wildcards[k].1;
                k += 1;
            }
        }
    }
}

/// Mines per-/64 patterns and merges sibling /64s into /48-wide patterns.
pub fn mine_patterns(seeds: &[Addr], min_bucket: usize, max_wildcards: usize) -> Vec<Pattern> {
    let buckets = by_network(seeds);
    let mut patterns: Vec<Pattern> = Vec::new();
    // Sibling merge: group /64 buckets by /48.
    let mut by48: BTreeMap<u64, Vec<(u64, &Vec<Addr>)>> = BTreeMap::new();
    for (net, addrs) in &buckets {
        by48.entry(net >> 16).or_default().push((*net, addrs));
    }
    for (_net48, siblings) in by48 {
        let qualified: Vec<&(u64, &Vec<Addr>)> =
            siblings.iter().filter(|(_, a)| a.len() >= min_bucket).collect();
        if qualified.is_empty() {
            continue;
        }
        // Pool all sibling seeds into one pattern: wildcards cover both the
        // varying subnet nibbles and the varying IID nibbles.
        let pooled: Vec<Addr> = qualified.iter().flat_map(|(_, a)| a.iter().copied()).collect();
        let nibbles: Vec<[u8; 32]> = pooled.iter().map(|a| a.nibbles()).collect();
        let mut wildcards = Vec::new();
        for pos in 0..32 {
            let lo = nibbles.iter().map(|n| n[pos]).min().expect("nonempty");
            let hi = nibbles.iter().map(|n| n[pos]).max().expect("nonempty");
            if lo != hi {
                wildcards.push((pos, lo, hi));
            }
        }
        // Always open the final nibble fully (pattern outlines end with a
        // free low dimension).
        match wildcards.iter_mut().find(|(p, ..)| *p == 31) {
            Some(w) => {
                w.1 = 0;
                w.2 = 0xf;
            }
            None => wildcards.push((31, 0, 0xf)),
        }
        // Keep the highest-variance dimensions within the cap, preferring
        // the rightmost (IID) dimensions.
        if wildcards.len() > max_wildcards {
            wildcards.sort_by_key(|(p, ..)| std::cmp::Reverse(*p));
            wildcards.truncate(max_wildcards);
            wildcards.sort_by_key(|(p, ..)| *p);
        }
        patterns.push(Pattern { template: nibbles[0], wildcards, support: pooled.len() });
    }
    patterns
}

impl TargetGenerator for SixGraph {
    fn name(&self) -> &'static str {
        "6graph"
    }

    fn generate(&self, seeds: &[Addr], budget: usize) -> Vec<Addr> {
        let mut patterns = mine_patterns(seeds, self.min_bucket, self.max_wildcards);
        patterns.sort_by(|a, b| b.density().partial_cmp(&a.density()).expect("finite"));
        let mut out = Vec::new();
        for p in &patterns {
            if out.len() >= budget {
                break;
            }
            p.enumerate(&mut out, budget);
        }
        dedup_excluding(out, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_mining_finds_wildcards() {
        let net = 0x2001_0db8_0000_0005u128 << 64;
        let seeds: Vec<Addr> = (0..8u128).map(|i| Addr(net | (0x100 + i * 2))).collect();
        let patterns = mine_patterns(&seeds, 4, 4);
        assert_eq!(patterns.len(), 1);
        let p = &patterns[0];
        assert!(p.wildcards.iter().any(|(pos, ..)| *pos == 31));
        assert_eq!(p.support, 8);
        assert!(p.combinations() >= 16);
    }

    #[test]
    fn sibling_64s_merge_into_wider_pattern() {
        // Two /64s of the same /48 with the same low-byte deployment.
        let mut seeds = Vec::new();
        for subnet in [1u128, 2] {
            let net = (0x2001_0db8_0001u128 << 80) | (subnet << 64);
            seeds.extend((1..=6u128).map(|i| Addr(net | i)));
        }
        let patterns = mine_patterns(&seeds, 4, 4);
        assert_eq!(patterns.len(), 1, "siblings merged");
        let p = &patterns[0];
        // The subnet nibble (position 15) must be wildcarded.
        assert!(
            p.wildcards.iter().any(|(pos, lo, hi)| *pos == 15 && *lo == 1 && *hi == 2),
            "{:?}",
            p.wildcards
        );
        // Generation produces addresses in both /64s and beyond the seeds.
        let gen = SixGraph::default().generate(&seeds, 100);
        assert!(gen.iter().any(|a| (a.0 >> 64) & 0xffff == 1));
        assert!(gen.iter().any(|a| (a.0 >> 64) & 0xffff == 2));
    }

    #[test]
    fn small_buckets_ignored() {
        let net = 0x2001_0db8u128 << 96;
        let seeds: Vec<Addr> = (0..3u128).map(|i| Addr(net | i)).collect();
        assert!(mine_patterns(&seeds, 4, 4).is_empty());
        assert!(SixGraph::default().generate(&seeds, 100).is_empty());
    }

    #[test]
    fn budget_and_dedup() {
        let net = 0x2001_0db8_0000_0009u128 << 64;
        let seeds: Vec<Addr> = (0..16u128).map(|i| Addr(net | i)).collect();
        let gen = SixGraph::default().generate(&seeds, 50);
        assert!(gen.len() <= 50);
        for g in &gen {
            assert!(!seeds.contains(g));
        }
    }

    #[test]
    fn wildcard_cap_enforced() {
        // Seeds varying in 6 positions; cap at 4.
        let seeds: Vec<Addr> =
            (0..32u128).map(|i| Addr((0x2001_0db8_0000_0100u128 << 64) | (i * 0x11111))).collect();
        let patterns = mine_patterns(&seeds, 4, 4);
        assert!(patterns.iter().all(|p| p.wildcards.len() <= 4));
    }
}
