//! # sixdust-tga — IPv6 target generation algorithms
//!
//! From-scratch Rust implementations of the candidate-generation methods
//! the paper evaluates as new hitlist input sources (Sec. 6):
//!
//! | module | method | character |
//! |---|---|---|
//! | [`sixtree`] | 6Tree (Liu 2019) | space-tree DHC; dense-region in-fill |
//! | [`sixgraph`] | 6Graph (Yang 2022) | pattern mining; merges sibling /64s, biggest yield |
//! | [`sixgan`] | 6GAN-style (Cui 2021) | per-class learned sampler; tiny hit rate |
//! | [`sixveclm`] | 6VecLM-style (Cui 2021) | embedding LM decode; tiny, low-diversity output |
//! | [`entropyip`] | Entropy/IP (Foremski 2016) | segment model; the lineage's ancestor |
//! | [`dc`] | distance clustering | the paper's own naive gap-filler, best hit rate |
//! | [`sixgen`] | 6Gen (Murdock 2017) | the lineage's range-growth ancestor |
//! | [`seedless`] | AddrMiner-style (the paper's Sec. 7 future work) | convention transfer into seed-free ASes |
//!
//! The two learned methods substitute deterministic statistical cores for
//! GPU training (see `DESIGN.md` §2); the evaluation only consumes each
//! algorithm's candidate list, and the coverage/hit-rate profile is what
//! the substitution preserves.
//!
//! All generators implement [`TargetGenerator`]: seeds in, deduplicated
//! *new* candidates out, hard budget respected, fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod dc;
pub mod entropyip;
pub mod seedless;
pub mod sixgan;
pub mod sixgen;
pub mod sixgraph;
pub mod sixtree;
pub mod sixveclm;

use sixdust_addr::Addr;
use sixdust_telemetry::Registry;

pub use dc::DistanceClustering;
pub use entropyip::EntropyIp;
pub use seedless::Seedless;
pub use sixgan::SixGan;
pub use sixgen::SixGen;
pub use sixgraph::SixGraph;
pub use sixtree::SixTree;
pub use sixveclm::SixVecLm;

/// A target generation algorithm: seed addresses in, candidate addresses
/// out.
pub trait TargetGenerator {
    /// Short identifier used in tables and experiment output.
    fn name(&self) -> &'static str;

    /// Generates up to `budget` *new* candidate addresses (seeds and
    /// duplicates excluded) from the seed corpus. Deterministic.
    fn generate(&self, seeds: &[Addr], budget: usize) -> Vec<Addr>;
}

/// The full generator line-up with the paper's per-method generation
/// volumes (Table 3), scaled by `addr_div`.
pub fn paper_lineup(addr_div: u64) -> Vec<(Box<dyn TargetGenerator>, usize)> {
    let scale = |n: u64| (n / addr_div).max(50) as usize;
    vec![
        (Box::new(SixGraph::default()) as Box<dyn TargetGenerator>, scale(125_800_000)),
        (Box::new(SixTree::default()), scale(37_600_000)),
        (Box::new(SixGan::default()), scale(3_300_000)),
        (Box::new(SixVecLm::default()), scale(70_300)),
        (Box::new(DistanceClustering::default()), scale(5_300_000)),
    ]
}

/// Wraps a generator so every [`TargetGenerator::generate`] call records
/// `tga.<name>.candidates` (a counter of emitted candidates) and
/// `tga.<name>.gen_ms` (a histogram of generation wall time) in `registry`.
pub struct InstrumentedGenerator {
    inner: Box<dyn TargetGenerator>,
    registry: Registry,
}

impl InstrumentedGenerator {
    /// Instruments `inner` against `registry`. Metric keys derive from
    /// [`TargetGenerator::name`], lower-cased: `tga.6graph.candidates`.
    pub fn new(inner: Box<dyn TargetGenerator>, registry: Registry) -> InstrumentedGenerator {
        InstrumentedGenerator { inner, registry }
    }

    fn key(&self, suffix: &str) -> String {
        format!("tga.{}.{suffix}", self.inner.name().to_ascii_lowercase())
    }
}

impl TargetGenerator for InstrumentedGenerator {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn generate(&self, seeds: &[Addr], budget: usize) -> Vec<Addr> {
        let started = std::time::Instant::now();
        let out = self.inner.generate(seeds, budget);
        self.registry.histogram(&self.key("gen_ms")).record(started.elapsed().as_millis() as u64);
        self.registry.counter(&self.key("candidates")).add(out.len() as u64);
        out
    }
}

/// [`paper_lineup`] with every generator wrapped in an
/// [`InstrumentedGenerator`] reporting to `registry`.
pub fn instrumented_lineup(
    addr_div: u64,
    registry: &Registry,
) -> Vec<(Box<dyn TargetGenerator>, usize)> {
    paper_lineup(addr_div)
        .into_iter()
        .map(|(g, budget)| {
            let wrapped: Box<dyn TargetGenerator> =
                Box::new(InstrumentedGenerator::new(g, registry.clone()));
            (wrapped, budget)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared scenario: a jittered dense cluster (mean gap 8) with a
    /// partially visible seed sample — the shape `sixdust-net` gives the
    /// hidden TGA-target regions.
    fn scenario() -> (Vec<Addr>, Vec<Addr>) {
        let net = 0x2001_0db8_0000_0777u128 << 64;
        let members: Vec<Addr> =
            (0..400u128).map(|j| Addr(net | (0x1000 + j * 8 + (j * 2654435761) % 8))).collect();
        // 30% visible.
        let seeds: Vec<Addr> =
            members.iter().enumerate().filter(|(i, _)| i % 10 < 3).map(|(_, a)| *a).collect();
        (members, seeds)
    }

    fn hit_rate(generated: &[Addr], members: &[Addr]) -> f64 {
        let set: std::collections::HashSet<Addr> = members.iter().copied().collect();
        generated.iter().filter(|a| set.contains(a)).count() as f64 / generated.len().max(1) as f64
    }

    #[test]
    fn dc_beats_pattern_miners_on_hit_rate() {
        let (members, seeds) = scenario();
        let dc = DistanceClustering::default().generate(&seeds, 20_000);
        let tree = SixTree::default().generate(&seeds, 20_000);
        let graph = SixGraph::default().generate(&seeds, 20_000);
        let r_dc = hit_rate(&dc, &members);
        let r_tree = hit_rate(&tree, &members);
        let r_graph = hit_rate(&graph, &members);
        assert!(r_dc > 0.04, "DC rate {r_dc}");
        assert!(r_dc >= r_tree * 0.8, "DC {r_dc} vs 6Tree {r_tree}");
        assert!(r_tree >= r_graph * 0.8, "6Tree {r_tree} vs 6Graph {r_graph}");
    }

    #[test]
    fn learned_methods_are_weak() {
        let (members, seeds) = scenario();
        let gan = SixGan::default().generate(&seeds, 5_000);
        let veclm = SixVecLm::default().generate(&seeds, 5_000);
        assert!(hit_rate(&gan, &members) < 0.25);
        // 6VecLM yields few candidates at all.
        assert!(veclm.len() < gan.len().max(200));
    }

    #[test]
    fn all_generators_respect_contract() {
        let (_, seeds) = scenario();
        for (g, _) in paper_lineup(1000) {
            let out = g.generate(&seeds, 500);
            assert!(out.len() <= 500, "{} over budget", g.name());
            // No seed leaks, no duplicates.
            let set: std::collections::HashSet<Addr> = out.iter().copied().collect();
            assert_eq!(set.len(), out.len(), "{} duplicates", g.name());
            for s in &seeds {
                assert!(!set.contains(s), "{} leaked a seed", g.name());
            }
            // Determinism.
            assert_eq!(out, g.generate(&seeds, 500), "{}", g.name());
        }
    }

    #[test]
    fn lineup_budgets_scale() {
        let l = paper_lineup(1000);
        assert_eq!(l.len(), 5);
        assert_eq!(l[0].1, 125_800, "6graph budget");
        assert_eq!(l[3].1, 70, "6veclm budget");
    }

    #[test]
    fn instrumented_lineup_reports_per_generator_metrics() {
        let (_, seeds) = scenario();
        let registry = Registry::new();
        for (g, _) in instrumented_lineup(1000, &registry) {
            let out = g.generate(&seeds, 200);
            // Wrapping must not change the output.
            let key = format!("tga.{}.candidates", g.name().to_ascii_lowercase());
            assert_eq!(registry.snapshot().counter(&key), Some(out.len() as u64), "{key}");
        }
        let snap = registry.snapshot();
        for (g, _) in paper_lineup(1000) {
            let gen_ms = format!("tga.{}.gen_ms", g.name().to_ascii_lowercase());
            assert_eq!(snap.histogram(&gen_ms).map(|h| h.count), Some(1), "{gen_ms}");
        }
    }
}
