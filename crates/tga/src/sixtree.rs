//! 6Tree (Liu et al. 2019): space-tree-guided target generation.
//!
//! 6Tree builds a space tree over the nibble representation of the seed
//! set via divisive hierarchical clustering (split at the leftmost varying
//! nibble), then generates candidates inside the densest leaf regions by
//! enumerating free-dimension values. The original tool interleaves active
//! scanning to steer generation; following the paper (Sec. 6.1), the
//! active part is disabled — the hitlist's own alias detection replaces
//! 6Tree's (ineffective) built-in alias heuristic — so this is the pure
//! generation component.

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;

use crate::corpus::dedup_excluding;
use crate::TargetGenerator;

/// 6Tree configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SixTree {
    /// Maximum seeds per leaf before splitting stops.
    pub leaf_size: usize,
    /// Maximum free dimensions expanded per leaf region.
    pub max_free_dims: usize,
}

impl Default for SixTree {
    fn default() -> SixTree {
        SixTree { leaf_size: 16, max_free_dims: 3 }
    }
}

/// A leaf region of the space tree.
#[derive(Debug, Clone)]
struct Region {
    seeds: Vec<[u8; 32]>,
    /// Positions that vary among the leaf's seeds.
    free: Vec<usize>,
}

impl Region {
    /// Seed density over the enumerable combination space.
    fn density(&self, max_dims: usize) -> f64 {
        let dims = self.free.len().min(max_dims).max(1);
        self.seeds.len() as f64 / 16f64.powi(dims as i32)
    }
}

fn split(seeds: Vec<[u8; 32]>, leaf_size: usize, out: &mut Vec<Region>) {
    // Find the leftmost varying nibble.
    let varying = (0..32).find(|&i| seeds.iter().any(|s| s[i] != seeds[0][i]));
    let free: Vec<usize> = (0..32).filter(|&i| seeds.iter().any(|s| s[i] != seeds[0][i])).collect();
    match varying {
        None => out.push(Region { seeds, free }),
        Some(pos) => {
            if seeds.len() <= leaf_size {
                out.push(Region { seeds, free });
                return;
            }
            let mut buckets: Vec<Vec<[u8; 32]>> = vec![Vec::new(); 16];
            for s in seeds {
                buckets[s[pos] as usize].push(s);
            }
            for b in buckets {
                if !b.is_empty() {
                    split(b, leaf_size, out);
                }
            }
        }
    }
}

impl TargetGenerator for SixTree {
    fn name(&self) -> &'static str {
        "6tree"
    }

    fn generate(&self, seeds: &[Addr], budget: usize) -> Vec<Addr> {
        if seeds.len() < 2 {
            return Vec::new();
        }
        let nibble_seeds: Vec<[u8; 32]> = seeds.iter().map(|a| a.nibbles()).collect();
        let mut regions = Vec::new();
        split(nibble_seeds, self.leaf_size, &mut regions);
        // Densest regions first (6Tree's entropy ordering).
        regions.sort_by(|a, b| {
            b.density(self.max_free_dims)
                .partial_cmp(&a.density(self.max_free_dims))
                .expect("finite")
        });

        let mut out: Vec<Addr> = Vec::new();
        'outer: for region in &regions {
            if region.free.is_empty() {
                continue;
            }
            // Expand the rightmost free dims over the min..=max observed
            // values (full range for the final nibble).
            let dims: Vec<usize> =
                region.free.iter().rev().take(self.max_free_dims).copied().collect();
            let template = region.seeds[0];
            let mut ranges: Vec<(usize, u8, u8)> = Vec::new();
            for &d in &dims {
                let lo = region.seeds.iter().map(|s| s[d]).min().expect("nonempty");
                let hi = region.seeds.iter().map(|s| s[d]).max().expect("nonempty");
                if d == 31 {
                    ranges.push((d, 0, 0xf));
                } else {
                    ranges.push((d, lo, hi));
                }
            }
            // Cartesian enumeration.
            let mut idx: Vec<u8> = ranges.iter().map(|(_, lo, _)| *lo).collect();
            loop {
                let mut cand = template;
                for (k, (d, ..)) in ranges.iter().enumerate() {
                    cand[*d] = idx[k];
                }
                out.push(Addr::from_nibbles(&cand));
                if out.len() >= budget {
                    break 'outer;
                }
                // Increment multi-digit counter.
                let mut k = 0;
                loop {
                    if k == ranges.len() {
                        break;
                    }
                    if idx[k] < ranges[k].2 {
                        idx[k] += 1;
                        break;
                    }
                    idx[k] = ranges[k].1;
                    k += 1;
                }
                if k == ranges.len() {
                    break;
                }
            }
        }
        dedup_excluding(out, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds_lowbyte(net: u128, n: u128) -> Vec<Addr> {
        (1..=n).map(|i| Addr(net | i)).collect()
    }

    #[test]
    fn expands_dense_low_byte_region() {
        let net = 0x2001_0db8_0000_0001u128 << 64;
        // Seeds ::1..::8 — 6Tree should extend toward ::9..::f.
        let seeds = seeds_lowbyte(net, 8);
        let gen = SixTree::default().generate(&seeds, 1000);
        assert!(gen.contains(&Addr(net | 0xc)), "extends the last nibble");
        assert!(!gen.contains(&Addr(net | 0x3)), "seeds excluded");
    }

    #[test]
    fn respects_budget() {
        let net = 0x2001_0db8u128 << 96;
        let seeds: Vec<Addr> = (0..64u128).map(|i| Addr(net | (i * 5))).collect();
        let gen = SixTree::default().generate(&seeds, 37);
        assert!(gen.len() <= 37);
    }

    #[test]
    fn two_regions_densest_first() {
        let dense_net = 0x2001_0db8_0000_0002u128 << 64;
        let sparse_net = 0x2001_0db9_0000_0003u128 << 64;
        let mut seeds = seeds_lowbyte(dense_net, 12);
        // Sparse: 4 seeds spread over 3 nibbles of space.
        seeds.extend([0x10u128, 0x400, 0x800, 0xc00].iter().map(|i| Addr(sparse_net | i)));
        let gen = SixTree::default().generate(&seeds, 8);
        assert!(
            gen.iter().all(|a| (a.0 >> 64) == (dense_net >> 64)),
            "dense region expanded first: {gen:?}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(SixTree::default().generate(&[], 10).is_empty());
        assert!(SixTree::default().generate(&[Addr(1)], 10).is_empty());
        // Identical seeds: no free dimension, nothing to expand.
        let same = vec![Addr(42), Addr(42)];
        assert!(SixTree::default().generate(&same, 10).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let net = 0x2001_0db8u128 << 96;
        let seeds: Vec<Addr> = (0..40u128).map(|i| Addr(net | (i * 3))).collect();
        let a = SixTree::default().generate(&seeds, 500);
        let b = SixTree::default().generate(&seeds, 500);
        assert_eq!(a, b);
    }
}
