//! Distance clustering — the paper's own naive target generator (Sec. 6.1).
//!
//! "We collected clusters of addresses with at least 10 addresses and a
//! distance of at most 64 between two addresses. […] We generated missing
//! addresses within these clusters." Despite its simplicity it achieved
//! the best hit rate (~12 %) of all evaluated generators, because dense
//! address regions are dense for a reason — active assignment policies.

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;

use crate::corpus::dedup_excluding;
use crate::TargetGenerator;

/// Distance clustering configuration (paper defaults).
///
/// ```
/// use sixdust_tga::{DistanceClustering, TargetGenerator};
/// use sixdust_addr::Addr;
/// // Twelve seeds spaced 4 apart: one cluster; DC fills the gaps.
/// let seeds: Vec<Addr> = (0..12u128).map(|i| Addr(0x2001_0db8 << 96 | i * 4)).collect();
/// let dc = DistanceClustering::default();
/// let out = dc.generate(&seeds, 1_000);
/// assert!(out.contains(&Addr(0x2001_0db8 << 96 | 1)));
/// assert!(!out.contains(&seeds[0]), "seeds are never re-emitted");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceClustering {
    /// Minimum addresses per cluster.
    pub min_cluster: usize,
    /// Maximum gap between consecutive addresses within a cluster.
    pub max_gap: u128,
}

impl Default for DistanceClustering {
    fn default() -> DistanceClustering {
        DistanceClustering { min_cluster: 10, max_gap: 64 }
    }
}

/// A detected seed cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Lowest member.
    pub min: Addr,
    /// Highest member.
    pub max: Addr,
    /// Seed count inside.
    pub seeds: usize,
}

impl DistanceClustering {
    /// Finds all clusters in the (unsorted) seed list.
    pub fn clusters(&self, seeds: &[Addr]) -> Vec<Cluster> {
        let mut sorted: Vec<Addr> = seeds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut out = Vec::new();
        let mut start = 0usize;
        for i in 1..=sorted.len() {
            let split = i == sorted.len() || sorted[i].distance(sorted[i - 1]) > self.max_gap;
            if split {
                let len = i - start;
                if len >= self.min_cluster {
                    out.push(Cluster { min: sorted[start], max: sorted[i - 1], seeds: len });
                }
                start = i;
            }
        }
        out
    }
}

impl TargetGenerator for DistanceClustering {
    fn name(&self) -> &'static str {
        "distance-clustering"
    }

    fn generate(&self, seeds: &[Addr], budget: usize) -> Vec<Addr> {
        let clusters = self.clusters(seeds);
        let seed_set: std::collections::HashSet<Addr> = seeds.iter().copied().collect();
        let mut out = Vec::new();
        // Densest clusters first: highest seeds-per-span ratio.
        let mut ordered = clusters;
        ordered.sort_by(|a, b| {
            let da = a.seeds as f64 / (a.max.distance(a.min).max(1)) as f64;
            let db = b.seeds as f64 / (b.max.distance(b.min).max(1)) as f64;
            db.partial_cmp(&da).expect("finite densities")
        });
        'outer: for c in ordered {
            let mut v = c.min.0;
            while v <= c.max.0 {
                if out.len() >= budget {
                    break 'outer;
                }
                // The budget counts *new* candidates, so skip seeds inline.
                if !seed_set.contains(&Addr(v)) {
                    out.push(Addr(v));
                }
                v += 1;
            }
        }
        dedup_excluding(out, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_seeds(base: u128, n: usize, stride: u128) -> Vec<Addr> {
        (0..n as u128).map(|i| Addr(base + i * stride)).collect()
    }

    #[test]
    fn detects_clusters_with_thresholds() {
        let dc = DistanceClustering::default();
        let mut seeds = cluster_seeds(0x2001_0db8u128 << 96 | 0x100, 20, 8);
        // Too small a cluster (5 addrs) elsewhere:
        seeds.extend(cluster_seeds(0x2001_0db9u128 << 96, 5, 4));
        // Too wide a gap (65):
        seeds.extend(cluster_seeds(0x2001_0dbau128 << 96, 20, 65));
        let clusters = dc.clusters(&seeds);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].seeds, 20);
    }

    #[test]
    fn gap_exactly_64_is_kept() {
        let dc = DistanceClustering::default();
        let seeds = cluster_seeds(0x2001_0db8u128 << 96, 12, 64);
        assert_eq!(dc.clusters(&seeds).len(), 1);
    }

    #[test]
    fn fills_within_cluster_excluding_seeds() {
        let dc = DistanceClustering::default();
        let seeds = cluster_seeds(0x2001_0db8u128 << 96 | 0x10, 10, 4);
        let gen = dc.generate(&seeds, 10_000);
        // Span: 9*4 = 36 addresses between min..max, 10 are seeds.
        assert_eq!(gen.len(), 37 - 10);
        for g in &gen {
            assert!(!seeds.contains(g));
            assert!(*g >= seeds[0] && *g <= seeds[9]);
        }
    }

    #[test]
    fn budget_respected_and_dense_first() {
        let dc = DistanceClustering::default();
        let mut seeds = cluster_seeds(0x2001_0db8u128 << 96, 10, 60); // sparse
        seeds.extend(cluster_seeds(0x2001_0db9u128 << 96, 10, 2)); // dense
        let gen = dc.generate(&seeds, 5);
        assert_eq!(gen.len(), 5);
        // Dense cluster fills first.
        assert!(gen.iter().all(|a| a.0 >= 0x2001_0db9u128 << 96));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let dc = DistanceClustering::default();
        assert!(dc.generate(&[], 100).is_empty());
        assert!(dc.generate(&[Addr(42)], 100).is_empty());
    }
}
