//! 6VecLM-style generation (Cui et al. 2021), simplified.
//!
//! 6VecLM embeds address "words" (nibble, position) into a vector space
//! and decodes new addresses with a transformer language model and
//! temperature sampling. Per the substitution rule, the transformer is
//! replaced by its statistical skeleton: a (position → nibble) frequency
//! embedding with context-similarity decoding over the most frequent seed
//! prefixes. Like the original as evaluated by the paper, it produces a
//! *small*, low-diversity candidate set with a very low hit rate — it
//! keeps re-deriving near-seed sequences.

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr};

use crate::corpus::{dedup_excluding, nibble_entropy};
use crate::TargetGenerator;

/// 6VecLM-style generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SixVecLm {
    /// Decoding temperature in permille (higher = more exploration).
    pub temperature_permille: u32,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for SixVecLm {
    fn default() -> SixVecLm {
        SixVecLm { temperature_permille: 150, seed: 0x6A3C }
    }
}

impl TargetGenerator for SixVecLm {
    fn name(&self) -> &'static str {
        "6veclm"
    }

    fn generate(&self, seeds: &[Addr], budget: usize) -> Vec<Addr> {
        if seeds.len() < 4 {
            return Vec::new();
        }
        // Frequency "embedding": per-position nibble distribution.
        let mut freq = [[0u32; 16]; 32];
        for a in seeds {
            for (i, n) in a.nibbles().iter().enumerate() {
                freq[i][*n as usize] += 1;
            }
        }
        let entropy = nibble_entropy(seeds);
        let mut rng = prf::PrfStream::new(self.seed, seeds.len() as u128, 0x6C1A);
        let mut out = Vec::new();
        // Decode from each seed as context: keep the low-entropy positions
        // verbatim, re-decode high-entropy tail positions greedily with a
        // little temperature. Low diversity is intrinsic: most decodes
        // collapse onto the argmax path.
        for a in seeds.iter().cycle().take(budget.max(seeds.len()).min(budget * 2)) {
            if out.len() >= budget {
                break;
            }
            let mut nibbles = a.nibbles();
            for pos in 16..32 {
                if entropy[pos] < 0.5 {
                    continue;
                }
                let explore = rng.next_bounded(1000) < u64::from(self.temperature_permille);
                if explore {
                    // Temperature step: sample from the frequency-weighted
                    // distribution instead of the argmax.
                    let total: u32 = freq[pos].iter().sum();
                    let mut pick = (rng.next_u64() % u64::from(total.max(1))) as u32;
                    for (v, &c) in freq[pos].iter().enumerate() {
                        if pick < c {
                            nibbles[pos] = v as u8;
                            break;
                        }
                        pick -= c;
                    }
                } else {
                    // Greedy argmax decode.
                    let best = freq[pos]
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, c)| **c)
                        .map(|(v, _)| v as u8)
                        .unwrap_or(0);
                    nibbles[pos] = best;
                }
            }
            out.push(Addr::from_nibbles(&nibbles));
        }
        dedup_excluding(out, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds() -> Vec<Addr> {
        let net = 0x2001_0db8_0000_0042u128 << 64;
        (1..120u128).map(|i| Addr(net | (i * 3))).collect()
    }

    #[test]
    fn low_diversity_output() {
        let s = seeds();
        let gen = SixVecLm::default().generate(&s, 1000);
        // Deduped output is much smaller than the budget: the decoder
        // collapses (the paper's 70.3 k candidates vs the millions other
        // TGAs emit).
        assert!(!gen.is_empty());
        assert!(gen.len() < 600, "{} candidates", gen.len());
    }

    #[test]
    fn keeps_network_prefix() {
        let s = seeds();
        for g in SixVecLm::default().generate(&s, 200) {
            assert_eq!(g.0 >> 96, 0x2001_0db8);
        }
    }

    #[test]
    fn deterministic() {
        let s = seeds();
        assert_eq!(SixVecLm::default().generate(&s, 300), SixVecLm::default().generate(&s, 300));
    }

    #[test]
    fn tiny_inputs() {
        assert!(SixVecLm::default().generate(&[], 10).is_empty());
    }
}
