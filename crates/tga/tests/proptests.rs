//! Property tests for the target generation algorithms: every generator
//! must honour the shared contract for arbitrary seed corpora.

use proptest::prelude::*;
use sixdust_addr::Addr;
use sixdust_tga::{
    corpus, DistanceClustering, EntropyIp, SixGan, SixGen, SixGraph, SixTree, SixVecLm,
    TargetGenerator,
};

/// Structured corpora: a few /64 networks with clustered low IIDs — the
/// regime all generators are built for (fully random corpora are
/// degenerate for every method).
fn arb_corpus() -> impl Strategy<Value = Vec<Addr>> {
    (proptest::collection::vec((0u8..4, 0u64..0x400, 1u64..32), 4..40), any::<u32>()).prop_map(
        |(specs, salt)| {
            let mut out = Vec::new();
            for (net_id, base, stride) in specs {
                let net =
                    (0x2001_0db8_0000_0000u128 + u128::from(net_id) + u128::from(salt % 7)) << 64;
                for j in 0..6u64 {
                    out.push(Addr(net | u128::from(base + j * stride)));
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        },
    )
}

fn generators() -> Vec<Box<dyn TargetGenerator>> {
    vec![
        Box::new(SixTree::default()),
        Box::new(SixGraph::default()),
        Box::new(SixGan::default()),
        Box::new(SixVecLm::default()),
        Box::new(SixGen::default()),
        Box::new(EntropyIp::default()),
        Box::new(DistanceClustering::default()),
        Box::new(DistanceClustering { min_cluster: 3, max_gap: 128 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generators_respect_budget_and_exclusions(seeds in arb_corpus(), budget in 0usize..800) {
        for g in generators() {
            let out = g.generate(&seeds, budget);
            prop_assert!(out.len() <= budget, "{} exceeded budget", g.name());
            let set: std::collections::HashSet<Addr> = out.iter().copied().collect();
            prop_assert_eq!(set.len(), out.len(), "{} emitted duplicates", g.name());
            for s in &seeds {
                prop_assert!(!set.contains(s), "{} re-emitted a seed", g.name());
            }
        }
    }

    #[test]
    fn generators_are_deterministic(seeds in arb_corpus()) {
        for g in generators() {
            prop_assert_eq!(
                g.generate(&seeds, 300),
                g.generate(&seeds, 300),
                "{} nondeterministic", g.name()
            );
        }
    }

    #[test]
    fn dc_output_stays_within_cluster_hulls(seeds in arb_corpus()) {
        let dc = DistanceClustering::default();
        let clusters = dc.clusters(&seeds);
        let out = dc.generate(&seeds, 5_000);
        for a in &out {
            prop_assert!(
                clusters.iter().any(|c| *a >= c.min && *a <= c.max),
                "{a} outside every cluster hull"
            );
        }
        // And the fill is complete under a large budget: every non-seed
        // position inside a hull is emitted.
        let seed_set: std::collections::HashSet<Addr> = seeds.iter().copied().collect();
        let expected: usize = clusters
            .iter()
            .map(|c| (c.max.0 - c.min.0 + 1) as usize - c.seeds)
            .sum();
        if expected <= 5_000 {
            prop_assert_eq!(out.len(), expected);
            for c in &clusters {
                let mut v = c.min.0;
                while v <= c.max.0 {
                    let a = Addr(v);
                    prop_assert!(seed_set.contains(&a) || out.contains(&a));
                    v += 1;
                }
            }
        }
    }

    #[test]
    fn dc_clusters_satisfy_thresholds(seeds in arb_corpus(), min in 2usize..12, gap in 1u128..200) {
        let dc = DistanceClustering { min_cluster: min, max_gap: gap };
        for c in dc.clusters(&seeds) {
            prop_assert!(c.seeds >= min);
            prop_assert!(c.max >= c.min);
            // The hull's widest internal seed gap is <= gap by construction:
            let inside: Vec<Addr> = {
                let mut v: Vec<Addr> = seeds
                    .iter()
                    .filter(|a| **a >= c.min && **a <= c.max)
                    .copied()
                    .collect();
                v.sort_unstable();
                v
            };
            for w in inside.windows(2) {
                prop_assert!(w[1].distance(w[0]) <= gap);
            }
        }
    }

    #[test]
    fn pattern_miners_stay_inside_seed_networks(seeds in arb_corpus()) {
        // 6Tree/6Graph generalize within observed nibble bounds; they must
        // never invent addresses outside the /32 hull of the corpus.
        let hull_min = seeds.iter().map(|a| a.0 >> 96).min().unwrap_or(0);
        let hull_max = seeds.iter().map(|a| a.0 >> 96).max().unwrap_or(0);
        for g in [&SixTree::default() as &dyn TargetGenerator, &SixGraph::default()] {
            for a in g.generate(&seeds, 2_000) {
                let top = a.0 >> 96;
                prop_assert!(top >= hull_min && top <= hull_max, "{} left the hull", g.name());
            }
        }
    }

    #[test]
    fn dedup_excluding_invariants(
        cands in proptest::collection::vec(any::<u128>(), 0..200),
        seeds in proptest::collection::vec(any::<u128>(), 0..50),
    ) {
        let cands: Vec<Addr> = cands.into_iter().map(Addr).collect();
        let seeds: Vec<Addr> = seeds.into_iter().map(Addr).collect();
        let out = corpus::dedup_excluding(cands.clone(), &seeds);
        // Sorted, unique, disjoint from seeds, subset of candidates.
        for w in out.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for a in &out {
            prop_assert!(cands.contains(a));
            prop_assert!(!seeds.contains(a));
        }
    }

    #[test]
    fn entropy_matches_definition(seeds in arb_corpus()) {
        let h = corpus::nibble_entropy(&seeds);
        for (i, v) in h.iter().enumerate() {
            prop_assert!((0.0..=4.0).contains(v), "entropy[{i}] = {v}");
        }
        // A constant position has zero entropy.
        prop_assert!(h[0] < 1e-9, "leading nibble is constant in the corpus");
    }
}
