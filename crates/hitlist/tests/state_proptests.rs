//! Property tests for checkpoint robustness: a restarting service parses
//! whatever it finds on disk — a checkpoint from an older version, a file
//! truncated by a crash, or plain garbage — and must reject bad input with
//! an error, never a panic, and never accept an inconsistent timeline.

use std::sync::OnceLock;

use proptest::prelude::*;
use sixdust_hitlist::{HitlistService, ServiceConfig, ServiceState};
use sixdust_net::{Day, FaultConfig, Internet, Scale};

/// One small service run, captured once: the donor checkpoint every
/// mutation case starts from.
fn donor() -> &'static ServiceState {
    static STATE: OnceLock<ServiceState> = OnceLock::new();
    STATE.get_or_init(|| {
        let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
        let mut svc = HitlistService::new(
            ServiceConfig::builder().snapshot_days(vec![Day(3), Day(6)]).build(),
        );
        svc.run(&net, Day(0), Day(8));
        let state = ServiceState::capture(&svc);
        state.validate().expect("fresh capture is valid");
        state
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes are not a checkpoint: parsing must return `Err`,
    /// never panic — and on the off chance something parses, validation
    /// must not panic either.
    #[test]
    fn garbage_never_panics(json in "\\PC*") {
        if let Ok(state) = ServiceState::from_json(&json) {
            let _ = state.validate();
        }
    }

    /// JSON-shaped garbage (braces, quotes, numbers in plausible places)
    /// is still rejected gracefully.
    #[test]
    fn json_shaped_garbage_never_panics(
        version in any::<u32>(),
        filler in "[a-z_]{1,12}",
        n in any::<i64>(),
    ) {
        let json = format!("{{\"version\": {version}, \"{filler}\": {n}}}");
        prop_assert!(ServiceState::from_json(&json).is_err());
    }

    /// A checkpoint cut off mid-write (any strict prefix of a real one)
    /// parses to an error, never a panic and never a silently shorter
    /// history — exactly the crash `save_atomic` defends against.
    #[test]
    fn truncated_checkpoints_are_rejected(cut_frac in 0.0f64..1.0) {
        let json = donor().to_json();
        let boundaries: Vec<usize> = json.char_indices().map(|(i, _)| i).collect();
        let cut = boundaries[(cut_frac * (boundaries.len() - 1) as f64) as usize];
        prop_assume!(cut < json.len());
        prop_assert!(ServiceState::from_json(&json[..cut]).is_err());
    }

    /// One flipped byte can shift a brace or a digit; whatever it does,
    /// the parser must not panic, and a still-parseable checkpoint must
    /// survive validation without panicking.
    #[test]
    fn corrupted_checkpoints_never_panic(pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let mut bytes = donor().to_json().into_bytes();
        let pos = (pos_frac * (bytes.len() - 1) as f64) as usize;
        bytes[pos] ^= flip;
        if let Ok(json) = String::from_utf8(bytes) {
            if let Ok(state) = ServiceState::from_json(&json) {
                let _ = state.validate();
            }
        }
    }

    /// Day monotonicity: round records and snapshots must be strictly
    /// increasing in day. Reordering any two rounds, or duplicating any
    /// snapshot, must fail validation.
    #[test]
    fn shuffled_timelines_fail_validation(i in 0usize..8, j in 0usize..8) {
        prop_assume!(i != j);
        let mut state = donor().clone();
        prop_assume!(i < state.rounds.len() && j < state.rounds.len());
        state.rounds.swap(i, j);
        prop_assert!(state.validate().is_err(), "swapped rounds {i} and {j} accepted");
    }

    #[test]
    fn duplicated_snapshots_fail_validation(idx in 0usize..2) {
        let mut state = donor().clone();
        prop_assume!(idx < state.snapshots.len());
        let dup = state.snapshots[idx].clone();
        state.snapshots.insert(idx, dup);
        prop_assert!(state.validate().is_err());
    }

    /// Quarantine windows are half-open `[from, until)`: empty or inverted
    /// windows must be rejected.
    #[test]
    fn inverted_quarantine_windows_fail_validation(from in 0u32..2000, len in 0u32..100) {
        let mut state = donor().clone();
        // len == 0 is the degenerate from == until empty window; larger
        // len inverts the bounds. Both must be rejected.
        state.quarantined.push((Day(from + len), Day(from)));
        prop_assert!(state.validate().is_err());
    }
}
