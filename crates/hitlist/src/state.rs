//! Service-state checkpoints.
//!
//! A long-running measurement service must survive restarts without losing
//! four years of accumulated state (the real hitlist's input list *is* its
//! history). [`ServiceState`] is a serializable snapshot of everything a
//! [`HitlistService`](crate::HitlistService) has learned; it round-trips
//! through JSON so checkpoints are diffable and versionable, writes to
//! disk crash-safely ([`ServiceState::save_atomic`]), and restores into a
//! running service ([`ServiceState::restore`]).

use std::collections::HashSet;
use std::path::Path;

use serde::{Deserialize, Serialize};
use sixdust_addr::{Addr, AddrSet, Prefix};
use sixdust_net::{Day, ProtoSet};

use crate::service::{HitlistService, RoundRecord, ServiceConfig, Snapshot};

/// A serializable checkpoint of the service's accumulated knowledge.
///
/// Version 2 added the resume-critical fields (`active` clocks, quarantine
/// windows, `current_responsive`, `next_alias_day`); they carry serde
/// defaults so version-1 checkpoints still parse, restoring with a
/// documented, slightly lenient fallback (see
/// [`HitlistService::from_state`]).
///
/// Version 3 moved the address-set fields (`input`, `gfw_impacted`,
/// `unresponsive_pool`, `current_responsive` and the per-protocol sets
/// inside snapshots) onto [`AddrSet`]. The JSON shape is unchanged —
/// `AddrSet` serializes as the same sorted address sequence the old
/// `Vec<Addr>` fields wrote, and parses legacy (even unsorted) payloads
/// by normalizing — so v2 checkpoints load without a migration step and
/// a v3 checkpoint differs from its v2 twin only in the `version` field.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ServiceState {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Accumulated input addresses.
    pub input: AddrSet,
    /// Current aliased prefix labels.
    pub aliased: Vec<Prefix>,
    /// GFW-impacted addresses recorded so far.
    pub gfw_impacted: AddrSet,
    /// The 30-day-filtered pool.
    pub unresponsive_pool: AddrSet,
    /// Cumulative responsive addresses with their protocol sets.
    pub cumulative: Vec<(Addr, ProtoSet)>,
    /// Longitudinal round records.
    pub rounds: Vec<RoundRecord>,
    /// Retained full snapshots.
    pub snapshots: Vec<Snapshot>,
    /// Active scan targets with the day each last answered (v2).
    #[serde(default)]
    pub active: Vec<(Addr, Day)>,
    /// Quarantined `[from, until)` day windows of degraded rounds (v2).
    #[serde(default)]
    pub quarantined: Vec<(Day, Day)>,
    /// The most recent cleaned responsive set (v2; churn baseline).
    #[serde(default)]
    pub current_responsive: AddrSet,
    /// The day the next periodic alias detection is due (v2).
    #[serde(default)]
    pub next_alias_day: Day,
    /// The 30-day filter's window override, in days (v2).
    #[serde(default = "default_unresponsive_window")]
    pub unresponsive_window: u32,
}

fn default_unresponsive_window() -> u32 {
    30
}

/// Current checkpoint format version.
pub const STATE_VERSION: u32 = 3;

/// Oldest checkpoint version [`ServiceState::from_json`] still accepts.
pub const OLDEST_SUPPORTED_STATE_VERSION: u32 = 1;

impl ServiceState {
    /// Captures a checkpoint from a running service.
    pub fn capture(svc: &HitlistService) -> ServiceState {
        let input: AddrSet = svc.input().iter().copied().collect();
        let gfw: AddrSet = svc.gfw_impacted().iter().copied().collect();
        let pool: AddrSet = svc.unresponsive_pool().iter().copied().collect();
        let mut cumulative: Vec<(Addr, ProtoSet)> =
            svc.cumulative().iter().map(|(a, p)| (*a, *p)).collect();
        cumulative.sort_unstable_by_key(|(a, _)| *a);
        let mut active: Vec<(Addr, Day)> = svc.unresponsive().active_entries().collect();
        active.sort_unstable_by_key(|(a, _)| *a);
        ServiceState {
            version: STATE_VERSION,
            input,
            aliased: svc.aliased().iter().collect(),
            gfw_impacted: gfw,
            unresponsive_pool: pool,
            cumulative,
            rounds: svc.rounds().to_vec(),
            snapshots: svc.snapshots().to_vec(),
            active,
            quarantined: svc.unresponsive().quarantined().to_vec(),
            current_responsive: svc.current_responsive().clone(),
            next_alias_day: svc.next_alias_day(),
            unresponsive_window: svc.unresponsive().window,
        }
    }

    /// Rebuilds a running service from this checkpoint; see
    /// [`HitlistService::from_state`] for the fidelity guarantees.
    pub fn restore(&self, config: ServiceConfig) -> HitlistService {
        HitlistService::from_state(config, self)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("state serializes")
    }

    /// Parses a checkpoint, rejecting unknown versions.
    pub fn from_json(json: &str) -> Result<ServiceState, String> {
        let state: ServiceState =
            serde_json::from_str(json).map_err(|e| format!("checkpoint parse: {e}"))?;
        if !(OLDEST_SUPPORTED_STATE_VERSION..=STATE_VERSION).contains(&state.version) {
            return Err(format!(
                "checkpoint version {} unsupported (expected \
                 {OLDEST_SUPPORTED_STATE_VERSION}..={STATE_VERSION})",
                state.version
            ));
        }
        Ok(state)
    }

    /// Writes the checkpoint crash-safely: serializes to a sibling
    /// temporary file, then atomically renames it over `path`. A crash
    /// mid-write leaves either the previous checkpoint or a stray `.tmp`
    /// file — never a truncated checkpoint at `path`.
    pub fn save_atomic(&self, path: &Path) -> std::io::Result<()> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads, parses and validates a checkpoint written by
    /// [`ServiceState::save_atomic`].
    pub fn load(path: &Path) -> Result<ServiceState, String> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("checkpoint read {}: {e}", path.display()))?;
        let state = ServiceState::from_json(&json)?;
        state.validate()?;
        Ok(state)
    }

    /// Consistency checks a downstream consumer (or a restarted service)
    /// should run before trusting a checkpoint.
    pub fn validate(&self) -> Result<(), String> {
        // `input` is an `AddrSet`, deduplicated by construction — the v2
        // duplicate-input check is structurally impossible to fail now.
        for (a, p) in &self.cumulative {
            if p.is_empty() {
                return Err(format!("{a} in cumulative without protocols"));
            }
        }
        for w in self.rounds.windows(2) {
            if w[1].day <= w[0].day {
                return Err("round records out of order".into());
            }
        }
        for s in &self.snapshots {
            if s.cleaned.len() != 5 {
                return Err("snapshot missing protocols".into());
            }
        }
        for w in self.snapshots.windows(2) {
            if w[1].day <= w[0].day {
                return Err("snapshots out of day order".into());
            }
        }
        for (from, until) in &self.quarantined {
            if from >= until {
                return Err(format!("empty or inverted quarantine window {from:?}..{until:?}"));
            }
        }
        let active: HashSet<Addr> = self.active.iter().map(|(a, _)| *a).collect();
        if active.len() != self.active.len() {
            return Err("duplicate active addresses".into());
        }
        if let Some((a, _)) =
            self.active.iter().find(|(a, _)| self.unresponsive_pool.contains_addr(*a))
        {
            return Err(format!("{a} both active and permanently dropped"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use sixdust_net::{Day, FaultConfig, Internet, Scale};

    fn test_net() -> Internet {
        Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless())
    }

    fn test_config() -> ServiceConfig {
        ServiceConfig::builder().snapshot_days(vec![Day(5)]).build()
    }

    fn run_service(days: u32) -> HitlistService {
        let net = test_net();
        let mut svc = HitlistService::new(test_config());
        svc.run(&net, Day(0), Day(days));
        svc
    }

    #[test]
    fn capture_roundtrips_through_json() {
        let svc = run_service(8);
        let state = ServiceState::capture(&svc);
        state.validate().expect("fresh state is valid");
        let json = state.to_json();
        let back = ServiceState::from_json(&json).expect("parses");
        assert_eq!(back, state);
    }

    #[test]
    fn capture_matches_service() {
        let svc = run_service(8);
        let state = ServiceState::capture(&svc);
        assert_eq!(state.input.len(), svc.input().len());
        assert_eq!(state.rounds.len(), svc.rounds().len());
        assert_eq!(state.aliased.len(), svc.aliased().len());
        assert_eq!(state.cumulative.len(), svc.cumulative().len());
        assert_eq!(state.snapshots.len(), 1);
    }

    #[test]
    fn v2_checkpoint_loads_into_v3_state() {
        let svc = run_service(8);
        let state = ServiceState::capture(&svc);
        // A v2 checkpoint is byte-identical to today's output except for
        // the version field: the address-set fields serialized as sorted
        // address sequences then, and `AddrSet` writes the same sequence
        // now. Rewriting the version therefore reconstructs a faithful
        // v2 payload.
        let v2_json = state.to_json().replacen("\"version\": 3", "\"version\": 2", 1);
        assert_ne!(v2_json, state.to_json(), "version field rewritten");
        let upgraded = ServiceState::from_json(&v2_json).expect("v2 checkpoint parses");
        upgraded.validate().expect("v2 checkpoint validates");
        assert_eq!(upgraded.version, 2);
        let mut as_current = upgraded.clone();
        as_current.version = STATE_VERSION;
        assert_eq!(as_current, state, "v2 payload loads into the identical v3 state");
        // Restoring from the v2 state drives the same service forward.
        let resumed = upgraded.restore(test_config());
        assert_eq!(resumed.rounds(), svc.rounds());
        assert_eq!(resumed.current_responsive(), svc.current_responsive());
    }

    #[test]
    fn version_gate() {
        let svc = run_service(3);
        let mut state = ServiceState::capture(&svc);
        state.version = 99;
        let err = ServiceState::from_json(&state.to_json()).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        // The previous format version is still accepted.
        state.version = 1;
        assert!(ServiceState::from_json(&state.to_json()).is_ok());
        state.version = 0;
        assert!(ServiceState::from_json(&state.to_json()).is_err());
    }

    #[test]
    fn restore_resumes_the_original_timeline() {
        let net = test_net();
        // Original service runs straight through.
        let mut original = HitlistService::new(test_config());
        original.run(&net, Day(0), Day(16));
        // A second service is checkpointed mid-run and restored.
        let mut first_leg = HitlistService::new(test_config());
        first_leg.run(&net, Day(0), Day(8));
        let state = ServiceState::capture(&first_leg);
        state.validate().expect("mid-run checkpoint is valid");
        let mut resumed = state.restore(test_config());
        // Continue from the day after the checkpointed round.
        let mut day = Day(9);
        let until = Day(16);
        while day < until {
            resumed.run_round(&net, day);
            let next = day.plus(sixdust_net::events::scan_gap(day));
            day = if next > until { until } else { next };
        }
        resumed.run_round(&net, until);
        // The resumed service reproduces the uninterrupted timeline.
        assert_eq!(resumed.rounds().len(), original.rounds().len());
        for (r, o) in resumed.rounds().iter().zip(original.rounds()) {
            assert_eq!(r, o, "round {:?} diverged after resume", o.day);
        }
        assert_eq!(resumed.input().len(), original.input().len());
        assert_eq!(resumed.cumulative().len(), original.cumulative().len());
        assert_eq!(resumed.snapshots().len(), original.snapshots().len());
        assert_eq!(resumed.current_responsive().len(), original.current_responsive().len());
    }

    #[test]
    fn save_atomic_then_load_round_trips_and_leaves_no_temp() {
        let svc = run_service(6);
        let state = ServiceState::capture(&svc);
        let dir = std::env::temp_dir().join("sixdust_state_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        state.save_atomic(&path).expect("atomic save");
        assert!(!dir.join("checkpoint.json.tmp").exists(), "temp renamed away");
        let back = ServiceState::load(&path).expect("load validates");
        assert_eq!(back, state);
        // Overwriting an existing checkpoint is also atomic.
        state.save_atomic(&path).expect("overwrite");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validation_catches_v2_inconsistencies() {
        let svc = run_service(5);
        let base = ServiceState::capture(&svc);
        let mut bad = base.clone();
        bad.quarantined.push((Day(9), Day(9)));
        assert!(bad.validate().is_err(), "empty quarantine window");
        let mut bad = base.clone();
        if let Some((a, _)) = bad.active.first().copied() {
            bad.unresponsive_pool.insert(a.0);
            assert!(bad.validate().is_err(), "active address in dropped pool");
        }
        let mut bad = base;
        if bad.snapshots.is_empty() {
            return;
        }
        let dup = bad.snapshots[0].clone();
        bad.snapshots.push(dup);
        assert!(bad.validate().is_err(), "snapshot days must increase");
    }

    #[test]
    fn validation_catches_corruption() {
        let svc = run_service(5);
        let mut state = ServiceState::capture(&svc);
        if state.rounds.len() >= 2 {
            state.rounds.swap(0, 1);
            assert!(state.validate().is_err());
        }
    }
}
