//! Service-state checkpoints.
//!
//! A long-running measurement service must survive restarts without losing
//! four years of accumulated state (the real hitlist's input list *is* its
//! history). [`ServiceState`] is a serializable snapshot of everything a
//! [`HitlistService`](crate::HitlistService) has learned; it round-trips
//! through JSON so checkpoints are diffable and versionable.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use sixdust_addr::{Addr, Prefix};
use sixdust_net::ProtoSet;

use crate::service::{HitlistService, RoundRecord, Snapshot};

/// A serializable checkpoint of the service's accumulated knowledge.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ServiceState {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Accumulated input addresses.
    pub input: Vec<Addr>,
    /// Current aliased prefix labels.
    pub aliased: Vec<Prefix>,
    /// GFW-impacted addresses recorded so far.
    pub gfw_impacted: Vec<Addr>,
    /// The 30-day-filtered pool.
    pub unresponsive_pool: Vec<Addr>,
    /// Cumulative responsive addresses with their protocol sets.
    pub cumulative: Vec<(Addr, ProtoSet)>,
    /// Longitudinal round records.
    pub rounds: Vec<RoundRecord>,
    /// Retained full snapshots.
    pub snapshots: Vec<Snapshot>,
}

/// Current checkpoint format version.
pub const STATE_VERSION: u32 = 1;

impl ServiceState {
    /// Captures a checkpoint from a running service.
    pub fn capture(svc: &HitlistService) -> ServiceState {
        let mut input: Vec<Addr> = svc.input().iter().copied().collect();
        input.sort_unstable();
        let mut gfw: Vec<Addr> = svc.gfw_impacted().iter().copied().collect();
        gfw.sort_unstable();
        let mut pool: Vec<Addr> = svc.unresponsive_pool().iter().copied().collect();
        pool.sort_unstable();
        let mut cumulative: Vec<(Addr, ProtoSet)> =
            svc.cumulative().iter().map(|(a, p)| (*a, *p)).collect();
        cumulative.sort_unstable_by_key(|(a, _)| *a);
        ServiceState {
            version: STATE_VERSION,
            input,
            aliased: svc.aliased().iter().collect(),
            gfw_impacted: gfw,
            unresponsive_pool: pool,
            cumulative,
            rounds: svc.rounds().to_vec(),
            snapshots: svc.snapshots().to_vec(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("state serializes")
    }

    /// Parses a checkpoint, rejecting unknown versions.
    pub fn from_json(json: &str) -> Result<ServiceState, String> {
        let state: ServiceState =
            serde_json::from_str(json).map_err(|e| format!("checkpoint parse: {e}"))?;
        if state.version != STATE_VERSION {
            return Err(format!(
                "checkpoint version {} unsupported (expected {STATE_VERSION})",
                state.version
            ));
        }
        Ok(state)
    }

    /// Consistency checks a downstream consumer (or a restarted service)
    /// should run before trusting a checkpoint.
    pub fn validate(&self) -> Result<(), String> {
        let input: HashSet<Addr> = self.input.iter().copied().collect();
        if input.len() != self.input.len() {
            return Err("duplicate input addresses".into());
        }
        for (a, p) in &self.cumulative {
            if p.is_empty() {
                return Err(format!("{a} in cumulative without protocols"));
            }
        }
        for w in self.rounds.windows(2) {
            if w[1].day <= w[0].day {
                return Err("round records out of order".into());
            }
        }
        for s in &self.snapshots {
            if s.cleaned.len() != 5 {
                return Err("snapshot missing protocols".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use sixdust_net::{Day, FaultConfig, Internet, Scale};

    fn run_service(days: u32) -> HitlistService {
        let net = Internet::build(Scale::tiny()).with_faults(FaultConfig { drop_permille: 0 });
        let mut svc =
            HitlistService::new(ServiceConfig::builder().snapshot_days(vec![Day(5)]).build());
        svc.run(&net, Day(0), Day(days));
        svc
    }

    #[test]
    fn capture_roundtrips_through_json() {
        let svc = run_service(8);
        let state = ServiceState::capture(&svc);
        state.validate().expect("fresh state is valid");
        let json = state.to_json();
        let back = ServiceState::from_json(&json).expect("parses");
        assert_eq!(back, state);
    }

    #[test]
    fn capture_matches_service() {
        let svc = run_service(8);
        let state = ServiceState::capture(&svc);
        assert_eq!(state.input.len(), svc.input().len());
        assert_eq!(state.rounds.len(), svc.rounds().len());
        assert_eq!(state.aliased.len(), svc.aliased().len());
        assert_eq!(state.cumulative.len(), svc.cumulative().len());
        assert_eq!(state.snapshots.len(), 1);
    }

    #[test]
    fn version_gate() {
        let svc = run_service(3);
        let mut state = ServiceState::capture(&svc);
        state.version = 99;
        let err = ServiceState::from_json(&state.to_json()).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
    }

    #[test]
    fn validation_catches_corruption() {
        let svc = run_service(5);
        let mut state = ServiceState::capture(&svc);
        if state.rounds.len() >= 2 {
            state.rounds.swap(0, 1);
            assert!(state.validate().is_err());
        }
    }
}
