//! The new input sources evaluated in Sec. 6 and their scan harness.
//!
//! * **Passive sources** — NS/MX record targets (newly included by this
//!   paper), CAIDA-Ark-style traceroute addresses from a different vantage,
//!   and the DET snapshot.
//! * **Unresponsive addresses** — the 30-day-filtered pool, re-scanned once.
//! * **Target generation** — candidates from `sixdust-tga` seeded with the
//!   hitlist's cleaned responsive set.
//!
//! [`evaluate_source`] scans a candidate list with all five protocol
//! modules across several days (the paper aggregates four weeks of scans),
//! merges results, and applies the GFW cleaning filter.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr, PrefixSet};
use sixdust_net::{Day, Internet, ProtoSet, Protocol};
use sixdust_scan::{scan, Detail, ScanConfig};

/// NS and MX record targets from the zone file (Sec. 6: "the name server
/// and mail exchanger domains were not explicitly included" before).
pub fn ns_mx_records(net: &Internet, day: Day) -> Vec<Addr> {
    let zones = net.zones();
    let pop = net.population();
    let mut out = Vec::new();
    for d in 0..zones.total_domains() {
        // Not every domain has resolvable NS/MX hosts with AAAA records;
        // sample a third.
        if d % 3 == 0 {
            out.push(zones.resolve_ns(pop, d, day).0);
        }
        if d % 7 == 0 {
            out.push(zones.resolve_mx(pop, d, day).0);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// CAIDA-Ark-style traceroute snapshot: router interfaces plus targets
/// observed from additional vantage points.
pub fn ark_snapshot(net: &Internet, day: Day) -> Vec<Addr> {
    let mut out = Vec::new();
    for pool in net.population().router_pools() {
        out.extend(pool.addrs_at(day));
    }
    // Academic-vantage extras: a thin slice of responsive hosts the
    // German vantage's sources happen not to carry (hidden dense clusters
    // are invisible to traceroute-based collection too).
    out.extend(
        net.population()
            .enumerate_responsive(day)
            .into_iter()
            .filter(|(a, ..)| {
                prf::chance(0xA47, a.0, 2, 1, 300) && !net.population().is_dense_member(*a)
            })
            .map(|(a, ..)| a),
    );
    out
}

/// The DET snapshot (Song et al. 2022): a one-time dump of responsive
/// addresses plus generated-but-dead candidates.
pub fn det_snapshot(net: &Internet, day: Day) -> Vec<Addr> {
    let mut out: Vec<Addr> = net
        .population()
        .enumerate_responsive(day)
        .into_iter()
        .filter(|(a, ..)| {
            prf::chance(0xDE7, a.0, 1, 1, 80) && !net.population().is_dense_member(*a)
        })
        .map(|(a, ..)| a)
        .collect();
    // Dead generated tails accompany the snapshot (DET mixes TGA output
    // into its published list).
    let n = out.len();
    let tails: Vec<Addr> =
        (0..n * 2).map(|i| out[i % n.max(1)].saturating_add(0x10_0000 + i as u128)).collect();
    out.extend(tails);
    out
}

/// The combined "passive sources" row of Table 3.
pub fn passive_sources(net: &Internet, day: Day) -> Vec<Addr> {
    let mut out = ns_mx_records(net, day);
    out.extend(ark_snapshot(net, day));
    out.extend(det_snapshot(net, day));
    out.sort_unstable();
    out.dedup();
    out
}

/// Result of evaluating one candidate source (a Table 3 + Table 4 row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceEval {
    /// Source label.
    pub name: String,
    /// Candidate count before filtering.
    pub candidates: usize,
    /// Candidates surviving the aliased-prefix and blocklist filters.
    pub scanned: usize,
    /// Responsive addresses per protocol (cleaned of GFW injections).
    pub per_proto: Vec<(Protocol, Vec<Addr>)>,
    /// Addresses responsive to at least one protocol.
    pub responsive: Vec<Addr>,
    /// Candidates whose DNS "responses" were GFW injections.
    pub gfw_filtered: usize,
}

impl SourceEval {
    /// Responsive count for one protocol.
    pub fn count(&self, proto: Protocol) -> usize {
        self.per_proto.iter().find(|(p, _)| *p == proto).map(|(_, v)| v.len()).unwrap_or(0)
    }

    /// The hit rate (responsive / scanned).
    pub fn hit_rate(&self) -> f64 {
        self.responsive.len() as f64 / self.scanned.max(1) as f64
    }
}

/// Scans a candidate source with every protocol module over several days,
/// merging results (the paper scans "multiple times across four weeks").
pub fn evaluate_source(
    net: &Internet,
    name: &str,
    candidates: &[Addr],
    aliased: &PrefixSet,
    days: &[Day],
    config: &ScanConfig,
) -> SourceEval {
    let targets: Vec<Addr> = {
        let mut t: Vec<Addr> =
            candidates.iter().filter(|a| !aliased.covers_addr(**a)).copied().collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    let mut per_proto: Vec<(Protocol, HashSet<Addr>)> =
        Protocol::ALL.iter().map(|p| (*p, HashSet::new())).collect();
    let mut gfw_flagged: HashSet<Addr> = HashSet::new();
    for &day in days {
        for (i, proto) in Protocol::ALL.into_iter().enumerate() {
            let result = scan(net, proto, &targets, day, config);
            for o in &result.outcomes {
                match &o.detail {
                    Detail::Dns { injected: true, .. } => {
                        gfw_flagged.insert(o.target);
                    }
                    _ if o.success => {
                        per_proto[i].1.insert(o.target);
                    }
                    _ => {}
                }
            }
        }
    }
    let mut responsive: HashSet<Addr> = HashSet::new();
    for (_, set) in &per_proto {
        responsive.extend(set.iter().copied());
    }
    let mut responsive: Vec<Addr> = responsive.into_iter().collect();
    responsive.sort_unstable();
    SourceEval {
        name: name.to_string(),
        candidates: candidates.len(),
        scanned: targets.len(),
        per_proto: per_proto
            .into_iter()
            .map(|(p, s)| {
                let mut v: Vec<Addr> = s.into_iter().collect();
                v.sort_unstable();
                (p, v)
            })
            .collect(),
        responsive,
        gfw_filtered: gfw_flagged.len(),
    }
}

/// Per-source protocol-set summary for overlap analysis (Fig. 7).
pub fn overlap_pct(a: &[Addr], b: &[Addr]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let bs: HashSet<Addr> = b.iter().copied().collect();
    a.iter().filter(|x| bs.contains(x)).count() as f64 * 100.0 / a.len() as f64
}

/// Groups responsive addresses by AS and returns `(asn, name, count)` rows
/// sorted by count (Table 4's Top-AS columns, Fig. 8's distributions).
pub fn by_as(net: &Internet, addrs: &[Addr]) -> Vec<(u32, String, usize)> {
    let mut counts: std::collections::HashMap<sixdust_net::AsId, usize> = Default::default();
    for a in addrs {
        if let Some(id) = net.registry().origin(*a) {
            *counts.entry(id).or_insert(0) += 1;
        }
    }
    let mut rows: Vec<(u32, String, usize)> = counts
        .into_iter()
        .map(|(id, n)| {
            let info = net.registry().get(id);
            (info.asn, info.name.clone(), n)
        })
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    rows
}

/// The protocol set of one source evaluation as a [`ProtoSet`] union.
pub fn proto_union(eval: &SourceEval) -> ProtoSet {
    let mut s = ProtoSet::EMPTY;
    for (p, v) in &eval.per_proto {
        if !v.is_empty() {
            s.insert(*p);
        }
    }
    s
}
