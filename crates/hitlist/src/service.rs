//! The IPv6 Hitlist service loop (Fig. 1 of the paper).
//!
//! Each round: ingest sources → filter (blocklist, aliased prefixes,
//! 30-day) → scan five protocols with ZMapv6 semantics → clean UDP/53 from
//! GFW injections (once the paper's filter is deployed) → traceroute for
//! new candidates → periodically re-run the multi-level aliased prefix
//! detection. The service records both the **published** view (what the
//! real service reported until February 2022, spikes included) and the
//! **cleaned** view (the paper's retroactive correction) so Fig. 3 can be
//! drawn from one run.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr, AddrSet, PrefixSet};
use sixdust_alias::{candidates, AliasDetector, DetectorConfig};
use sixdust_net::{events, Day, Internet, ProbeKind, ProtoSet, Protocol, Response};
use sixdust_scan::{proto_metric_key, scan_with, ScanConfig, ScanResult};
use sixdust_telemetry::{
    FlightRecorder, MadConfig, MadDetector, Registry, SeriesRecorder, SloEngine, TraceSpan,
};

use crate::filters::{Blocklist, GfwFilter, UnresponsiveFilter};
use crate::sources;

/// Service configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Scanner settings shared by all protocol modules.
    pub scan: ScanConfig,
    /// Alias detector settings.
    pub detector: DetectorConfig,
    /// Day the GFW cleaning filter goes live (None = never; the paper's
    /// deployment day by default).
    pub gfw_filter_from: Option<Day>,
    /// Days between alias detection runs.
    pub alias_every_days: u32,
    /// Maximum traceroute targets per round.
    pub traceroute_cap: usize,
    /// Days whose full responsive sets are kept as snapshots.
    pub snapshot_days: Vec<Day>,
    /// Aggregate loss estimate (permille) at or above which a round is
    /// classified degraded and quarantined instead of swept by the 30-day
    /// filter. A round is also degraded when ≥3 protocol monitors flag a
    /// *downward* anomaly, or when a non-empty target list yields zero
    /// responses (vantage blackout).
    #[serde(default = "default_degraded_loss_permille")]
    pub degraded_loss_permille: u32,
    /// Run each round's five protocol scans concurrently (one scanner
    /// module per protocol, with [`ScanConfig::threads`] acting as a
    /// round-level worker budget split across the in-flight scans).
    /// Results are merged strictly in `Protocol::ALL` order either way,
    /// so round records, snapshots and checkpoints are byte-identical
    /// with the sequential path — this switch only trades cores for
    /// wall-clock.
    #[serde(default = "default_parallel_protocols")]
    pub parallel_protocols: bool,
}

fn default_degraded_loss_permille() -> u32 {
    350
}

fn default_parallel_protocols() -> bool {
    true
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            scan: ScanConfig::default(),
            detector: DetectorConfig::default(),
            gfw_filter_from: Some(events::GFW_FILTER_DEPLOYED),
            alias_every_days: 28,
            traceroute_cap: 4000,
            snapshot_days: Day::SNAPSHOTS.to_vec(),
            degraded_loss_permille: default_degraded_loss_permille(),
            parallel_protocols: default_parallel_protocols(),
        }
    }
}

impl ServiceConfig {
    /// Starts a builder seeded with [`ServiceConfig::default`].
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder { config: ServiceConfig::default() }
    }

    /// Returns the config with a different scanner configuration.
    pub fn with_scan(mut self, scan: ScanConfig) -> ServiceConfig {
        self.scan = scan;
        self
    }

    /// Returns the config with a different alias detector configuration.
    pub fn with_detector(mut self, detector: DetectorConfig) -> ServiceConfig {
        self.detector = detector;
        self
    }

    /// Returns the config with a different GFW filter deployment day.
    pub fn with_gfw_filter_from(mut self, day: Option<Day>) -> ServiceConfig {
        self.gfw_filter_from = day;
        self
    }

    /// Returns the config with a different alias detection cadence.
    pub fn with_alias_every_days(mut self, days: u32) -> ServiceConfig {
        self.alias_every_days = days;
        self
    }

    /// Returns the config with a different traceroute cap.
    pub fn with_traceroute_cap(mut self, cap: usize) -> ServiceConfig {
        self.traceroute_cap = cap;
        self
    }

    /// Returns the config with a different degraded-round loss threshold.
    pub fn with_degraded_loss_permille(mut self, permille: u32) -> ServiceConfig {
        self.degraded_loss_permille = permille;
        self
    }

    /// Returns the config with concurrent protocol scans on or off.
    pub fn with_parallel_protocols(mut self, parallel: bool) -> ServiceConfig {
        self.parallel_protocols = parallel;
        self
    }

    /// Returns the config with different snapshot days.
    pub fn with_snapshot_days(mut self, days: Vec<Day>) -> ServiceConfig {
        self.snapshot_days = days;
        self
    }
}

/// Chainable builder for [`ServiceConfig`]; see [`ServiceConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the scanner configuration shared by all protocol modules.
    pub fn scan(mut self, scan: ScanConfig) -> ServiceConfigBuilder {
        self.config.scan = scan;
        self
    }

    /// Sets the alias detector configuration.
    pub fn detector(mut self, detector: DetectorConfig) -> ServiceConfigBuilder {
        self.config.detector = detector;
        self
    }

    /// Sets the day the GFW cleaning filter goes live (None = never).
    pub fn gfw_filter_from(mut self, day: Option<Day>) -> ServiceConfigBuilder {
        self.config.gfw_filter_from = day;
        self
    }

    /// Sets the days between alias detection runs.
    pub fn alias_every_days(mut self, days: u32) -> ServiceConfigBuilder {
        self.config.alias_every_days = days;
        self
    }

    /// Sets the maximum traceroute targets per round.
    pub fn traceroute_cap(mut self, cap: usize) -> ServiceConfigBuilder {
        self.config.traceroute_cap = cap;
        self
    }

    /// Sets the degraded-round loss threshold (permille).
    pub fn degraded_loss_permille(mut self, permille: u32) -> ServiceConfigBuilder {
        self.config.degraded_loss_permille = permille;
        self
    }

    /// Turns concurrent protocol scans on or off.
    pub fn parallel_protocols(mut self, parallel: bool) -> ServiceConfigBuilder {
        self.config.parallel_protocols = parallel;
        self
    }

    /// Sets the days whose full responsive sets are kept as snapshots.
    pub fn snapshot_days(mut self, days: Vec<Day>) -> ServiceConfigBuilder {
        self.config.snapshot_days = days;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> ServiceConfig {
        self.config
    }
}

/// Per-round longitudinal record (the rows behind Figs. 3 and 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Scan day.
    pub day: Day,
    /// Accumulated input size after ingestion.
    pub input_total: usize,
    /// Addresses actually probed this round.
    pub targets: usize,
    /// Responsive count per protocol, published view (Protocol::ALL order).
    pub published: [u64; 5],
    /// Responsive count per protocol, GFW-cleaned view.
    pub cleaned: [u64; 5],
    /// Addresses responsive to ≥1 protocol, published view.
    pub total_published: u64,
    /// Addresses responsive to ≥1 protocol, cleaned view.
    pub total_cleaned: u64,
    /// Newly responsive addresses never seen responsive before (cleaned).
    pub churn_brand_new: u64,
    /// Newly responsive addresses that were responsive in some earlier
    /// round but not the previous one (cleaned).
    pub churn_recurring: u64,
    /// Addresses responsive in the previous round but not this one.
    pub churn_gone: u64,
    /// Currently labeled aliased prefixes.
    pub aliased_prefixes: usize,
    /// Addresses dropped by the 30-day filter this round.
    pub dropped: usize,
    /// Per-protocol anomaly verdicts on the published counts
    /// (Protocol::ALL order): `true` where the online MAD monitor judged
    /// this round's count far outside its rolling baseline — the live
    /// version of Fig. 3's GFW spike eras. Absent in records checkpointed
    /// before the monitor existed, hence the serde default.
    #[serde(default)]
    pub anomalous: [bool; 5],
    /// Whether this round was classified degraded (heavy loss, outage or
    /// broad downward anomaly) and therefore quarantined: the 30-day
    /// filter did not sweep, and the silent days will not count against
    /// any address. Absent in pre-quarantine checkpoints.
    #[serde(default)]
    pub degraded: bool,
    /// Aggregate loss estimate for the round's scans in permille,
    /// weighting each protocol by the probes it *sent* (0 when
    /// unobservable, 1000 on a total blackout). A protocol with a
    /// cleaned-responsive history that goes completely silent counts as
    /// 1000‰ for its share of probes: weighting by responses — as this
    /// service once did — gives exactly the blacked-out scans zero say
    /// in the average the degraded-round classifier reads.
    #[serde(default)]
    pub loss_estimate_permille: u32,
}

/// A retained full snapshot (Table 1 / Figs. 2, 9, 10 inputs).
///
/// The per-protocol sets are [`AddrSet`]s; they serialize as the same
/// plain address sequences the old `Vec<Addr>` layout wrote, so
/// checkpoints containing snapshots are byte-identical across the
/// representation change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Snapshot day (the first scan round at or after the requested day).
    pub day: Day,
    /// Cleaned responsive addresses per protocol.
    pub cleaned: Vec<(Protocol, AddrSet)>,
    /// Published responsive addresses per protocol.
    pub published: Vec<(Protocol, AddrSet)>,
    /// Aliased prefix labels at snapshot time (Fig. 5's yearly series).
    pub aliased: Vec<sixdust_addr::Prefix>,
}

/// The shared empty set returned by by-protocol accessors when a
/// protocol has no retained slice.
static EMPTY_SET: AddrSet = AddrSet::new();

impl Snapshot {
    /// The cleaned set for one protocol.
    pub fn cleaned_for(&self, proto: Protocol) -> &AddrSet {
        self.cleaned.iter().find(|(p, _)| *p == proto).map(|(_, v)| v).unwrap_or(&EMPTY_SET)
    }

    /// All addresses responsive to at least one protocol (cleaned).
    pub fn cleaned_total(&self) -> AddrSet {
        let mut total = AddrSet::new();
        for (_, set) in &self.cleaned {
            total.union_in_place(set);
        }
        total
    }
}

/// One round's pre-scan work product — what
/// [`HitlistService::prepare_round`] selected and
/// [`HitlistService::complete_round`] consumes. Between the two, any
/// executor may produce the per-protocol [`ScanResult`]s over `targets`
/// (the built-in path is [`HitlistService::scan_prepared`]).
#[derive(Debug)]
pub struct PreparedRound {
    /// The round's day.
    pub day: Day,
    /// Blocklist- and alias-filtered scan targets for every protocol.
    pub targets: Vec<Addr>,
    /// Whether the GFW filter deployment is live on `day` (the service
    /// publishes the cleaned view).
    pub gfw_live: bool,
    /// The round-spanning trace span; closes when the round completes.
    round_span: Option<TraceSpan>,
}

/// The running service.
#[derive(Debug)]
pub struct HitlistService {
    config: ServiceConfig,
    telemetry: Option<Registry>,
    input: HashSet<Addr>,
    blocklist: Blocklist,
    unresp: UnresponsiveFilter,
    gfw: GfwFilter,
    detector: AliasDetector,
    aliased: PrefixSet,
    /// Cumulative per-address protocols (cleaned view).
    cumulative: HashMap<Addr, ProtoSet>,
    /// Previous round's cleaned responsive set (churn baseline).
    prev_responsive: AddrSet,
    /// Every address ever seen cleaned-responsive.
    ever: AddrSet,
    /// Whether each protocol (Protocol::ALL order) has ever produced a
    /// cleaned responsive hit. Distinguishes a previously-alive protocol
    /// going totally silent (loss) from one that was always dark (not
    /// loss); replayed from the round records on restore so resumed
    /// services estimate identically.
    proto_seen: [bool; 5],
    next_alias_day: Day,
    pending_snapshots: Vec<Day>,
    rounds: Vec<RoundRecord>,
    snapshots: Vec<Snapshot>,
    /// The most recent round's cleaned responsive sets per protocol
    /// (Protocol::ALL order) — retained every round, not just snapshot
    /// days, so publication and the serve layer can slice the current
    /// state by protocol.
    last_proto_cleaned: Vec<(Protocol, AddrSet)>,
    last_zone_week: Option<u32>,
    /// One online MAD monitor per protocol, fed the published responsive
    /// counts (Protocol::ALL order). Always on: the detectors are a few
    /// floats of state and make every round self-describing.
    anomaly: [MadDetector; 5],
    series: Option<SeriesRecorder>,
    /// Rounds since the last *clean* publish (neither degraded nor
    /// anomaly-flagged) — the publish-freshness signal, exported as the
    /// `service.publish.staleness_rounds` gauge and judged by the
    /// `publish-freshness` SLO.
    staleness_rounds: u32,
    slo: Option<SloEngine>,
    flight: Option<FlightRecorder>,
}

impl HitlistService {
    /// Creates a fresh service.
    pub fn new(config: ServiceConfig) -> HitlistService {
        let mut pending = config.snapshot_days.clone();
        pending.sort_unstable();
        HitlistService {
            detector: AliasDetector::new(config.detector.clone()),
            config,
            telemetry: None,
            input: HashSet::new(),
            blocklist: Blocklist::new(),
            unresp: UnresponsiveFilter::new(),
            gfw: GfwFilter::new(),
            aliased: PrefixSet::new(),
            cumulative: HashMap::new(),
            prev_responsive: AddrSet::new(),
            ever: AddrSet::new(),
            proto_seen: [false; 5],
            next_alias_day: Day(0),
            pending_snapshots: pending,
            rounds: Vec::new(),
            snapshots: Vec::new(),
            last_proto_cleaned: Vec::new(),
            last_zone_week: None,
            anomaly: std::array::from_fn(|_| MadDetector::new(MadConfig::default())),
            series: None,
            staleness_rounds: 0,
            slo: None,
            flight: None,
        }
    }

    /// Attaches a metrics registry: per-round counters and phase duration
    /// histograms land there (`service.*`), and the embedded alias detector
    /// reports its own `alias.*` series to the same registry.
    pub fn with_telemetry(mut self, registry: Registry) -> HitlistService {
        self.detector.set_telemetry(registry.clone());
        self.telemetry = Some(registry);
        self
    }

    /// Attaches a longitudinal series recorder keeping the last `capacity`
    /// rounds of per-round metric deltas (see
    /// [`sixdust_telemetry::SeriesRecorder`]). Creates and attaches a
    /// fresh telemetry registry first if none was installed with
    /// [`HitlistService::with_telemetry`]; the recorder is fed at the end
    /// of every [`HitlistService::run_round`], after the round's counters.
    pub fn with_series(self, capacity: usize) -> HitlistService {
        let mut svc = if self.telemetry.is_some() {
            self
        } else {
            let registry = Registry::new();
            self.with_telemetry(registry)
        };
        let registry = svc.telemetry.clone().expect("telemetry attached above");
        svc.series = Some(SeriesRecorder::new(registry, capacity));
        svc
    }

    /// The per-round series recorder, if one was attached with
    /// [`HitlistService::with_series`].
    pub fn series(&self) -> Option<&SeriesRecorder> {
        self.series.as_ref()
    }

    /// Attaches an SLO engine (see [`sixdust_telemetry::SloEngine`]): each
    /// recorded series round is judged against the engine's objectives and
    /// burn-rate gauges/breach counters land in the service registry.
    /// Implies [`HitlistService::with_series`] at the default capacity if
    /// no recorder is attached yet, since the engine consumes the series
    /// stream.
    pub fn with_slo(self, engine: SloEngine) -> HitlistService {
        let mut svc = if self.series.is_some() {
            self
        } else {
            self.with_series(sixdust_telemetry::DEFAULT_SERIES_CAPACITY)
        };
        let registry = svc.telemetry.clone().expect("series implies telemetry");
        svc.slo = Some(engine.with_registry(&registry));
        svc
    }

    /// The SLO engine, if one was attached with
    /// [`HitlistService::with_slo`].
    pub fn slo(&self) -> Option<&SloEngine> {
        self.slo.as_ref()
    }

    /// Attaches a black-box flight recorder (see
    /// [`sixdust_telemetry::FlightRecorder`]): anomaly and degraded-round
    /// events are noted into its ring, every recorded series round feeds
    /// its round buffer, and a capture is frozen at each degraded-round,
    /// anomaly, or SLO-breach onset. Clone the recorder before attaching
    /// to keep a handle for reading captures (it shares state).
    pub fn with_flight(mut self, recorder: FlightRecorder) -> HitlistService {
        self.flight = Some(recorder);
        self
    }

    /// The flight recorder, if one was attached with
    /// [`HitlistService::with_flight`].
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Rounds since the last *clean* publish (neither degraded nor
    /// anomaly-flagged) — the live value behind the
    /// `service.publish.staleness_rounds` gauge. The serve-layer chaos
    /// replay seeds its own staleness clock from this so a blackout that
    /// begins mid-day burns freshness from the right baseline.
    pub fn publish_staleness_rounds(&self) -> u32 {
        self.staleness_rounds
    }

    /// Records one series round keyed by `key` and routes it through the
    /// attached judgment layers: the round's metric deltas enter the
    /// flight recorder's round ring, the SLO engine judges them (noting
    /// every breach into the event ring and freezing a capture at each
    /// breach *onset*). No-op without a series recorder.
    ///
    /// [`HitlistService::run_round`] calls this once per round; callers
    /// folding out-of-band registry activity into the same observability
    /// stream (e.g. the serve-layer day replay in `sixdust-exp`) may call
    /// it directly with a key past the last round's day.
    pub fn record_series_round(&mut self, key: u32) {
        let Some(rec) = &mut self.series else { return };
        let round = rec.record(key).clone();
        if let Some(flight) = &self.flight {
            flight.note_round(&round);
        }
        if let Some(engine) = &mut self.slo {
            for breach in engine.observe(&round) {
                if let Some(flight) = &self.flight {
                    let bad = breach.bad_permille.to_string();
                    let short = breach.burn_short_milli.to_string();
                    let long = breach.burn_long_milli.to_string();
                    flight.note(
                        key,
                        "slo.breach",
                        &[
                            ("slo", breach.slo.as_str()),
                            ("bad_permille", bad.as_str()),
                            ("burn_short_milli", short.as_str()),
                            ("burn_long_milli", long.as_str()),
                        ],
                    );
                    if breach.onset {
                        flight.capture(key, &format!("slo:{}", breach.slo));
                    }
                }
            }
        }
    }

    /// The service's blocklist (opt-out registration).
    pub fn blocklist_mut(&mut self) -> &mut Blocklist {
        &mut self.blocklist
    }

    /// Overrides the 30-day filter window (ablation support; a very large
    /// window effectively disables the filter).
    pub fn set_unresponsive_window(&mut self, days: u32) {
        self.unresp.window = days;
    }

    /// Accumulated input addresses.
    pub fn input(&self) -> &HashSet<Addr> {
        &self.input
    }

    /// Current aliased prefix labels.
    pub fn aliased(&self) -> &PrefixSet {
        &self.aliased
    }

    /// The alias detector (fingerprints and details live here).
    pub fn detector(&self) -> &AliasDetector {
        &self.detector
    }

    /// GFW-impacted addresses recorded so far.
    pub fn gfw_impacted(&self) -> &HashSet<Addr> {
        self.gfw.impacted()
    }

    /// The 30-day-filtered pool (Sec. 6's re-scan source).
    pub fn unresponsive_pool(&self) -> &HashSet<Addr> {
        self.unresp.dropped_pool()
    }

    /// The 30-day unresponsive filter itself (active clocks, quarantined
    /// windows — checkpoint capture reads these).
    pub fn unresponsive(&self) -> &UnresponsiveFilter {
        &self.unresp
    }

    /// The day the next periodic alias detection is due.
    pub fn next_alias_day(&self) -> Day {
        self.next_alias_day
    }

    /// Rounds classified degraded (and therefore quarantined) so far.
    pub fn degraded_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.degraded).count()
    }

    /// Rebuilds a service from a checkpoint — the inverse of
    /// [`ServiceState::capture`](crate::ServiceState::capture). The alias
    /// detector restarts cold (its labels are restored; fingerprint detail
    /// re-accumulates at the next periodic detection) and the per-protocol
    /// anomaly monitors are re-warmed by replaying the checkpointed
    /// published series, so a resumed service continues the timeline the
    /// original would have produced.
    pub fn from_state(config: ServiceConfig, state: &crate::state::ServiceState) -> HitlistService {
        let mut svc = HitlistService::new(config);
        svc.input = state.input.addrs().collect();
        svc.aliased = state.aliased.iter().copied().collect();
        svc.gfw = crate::filters::GfwFilter::restore(state.gfw_impacted.addrs());
        let active: Vec<(Addr, Day)> = if state.active.is_empty() && !state.input.is_empty() {
            // v1 checkpoint: per-address clocks were not captured, so
            // every still-active input restarts its clock at the last
            // checkpointed round (graceful, slightly lenient fallback).
            let day = state.rounds.last().map(|r| r.day).unwrap_or(Day(0));
            let dropped = &state.unresponsive_pool;
            state.input.addrs().filter(|a| !dropped.contains_addr(*a)).map(|a| (a, day)).collect()
        } else {
            state.active.clone()
        };
        svc.unresp = UnresponsiveFilter::restore(
            active,
            state.unresponsive_pool.addrs(),
            state.unresponsive_window,
            state.quarantined.clone(),
        );
        svc.cumulative = state.cumulative.iter().copied().collect();
        svc.prev_responsive = state.current_responsive.clone();
        // `ever` and `cumulative` accumulate from the same cleaned hits.
        svc.ever = state.cumulative.iter().map(|(a, _)| *a).collect();
        svc.next_alias_day = state.next_alias_day;
        svc.rounds = state.rounds.clone();
        svc.snapshots = state.snapshots.clone();
        // Per-protocol sets are only checkpointed inside snapshots; when
        // the last checkpointed round was a snapshot day its sets are the
        // current ones, otherwise they re-fill on the next round.
        svc.last_proto_cleaned = match (state.snapshots.last(), state.rounds.last()) {
            (Some(snap), Some(round)) if snap.day == round.day => snap.cleaned.clone(),
            _ => Vec::new(),
        };
        svc.last_zone_week = state.rounds.last().map(|r| r.day.0 / 7);
        let mut pending = svc.config.snapshot_days.clone();
        pending.sort_unstable();
        pending.drain(..state.snapshots.len().min(pending.len()));
        svc.pending_snapshots = pending;
        for r in &state.rounds {
            for i in 0..5 {
                svc.anomaly[i].observe(r.published[i] as f64);
                svc.proto_seen[i] |= r.cleaned[i] > 0;
            }
            // Replay the publish-freshness clock so a resumed service
            // reports the same staleness the original would have.
            let clean = !r.degraded && !r.anomalous.iter().any(|&a| a);
            svc.staleness_rounds = if clean { 0 } else { svc.staleness_rounds.saturating_add(1) };
        }
        svc
    }

    /// Addresses responsive at least once, with their cumulative protocol
    /// sets (cleaned view).
    pub fn cumulative(&self) -> &HashMap<Addr, ProtoSet> {
        &self.cumulative
    }

    /// The service configuration (external schedulers read the scan
    /// settings to reproduce the built-in executor's partitioning).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telemetry.as_ref()
    }

    /// Longitudinal per-round records.
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// Retained snapshots.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// The most recent cleaned responsive set (ascending iteration via
    /// [`AddrSet::iter`] / [`AddrSet::addrs`]).
    pub fn current_responsive(&self) -> &AddrSet {
        &self.prev_responsive
    }

    /// The most recent round's cleaned responsive sets per protocol
    /// (Protocol::ALL order). Empty until the first round runs (or, on a
    /// resumed service, until the first post-resume round when the
    /// checkpoint did not end on a snapshot day).
    pub fn proto_responsive(&self) -> &[(Protocol, AddrSet)] {
        &self.last_proto_cleaned
    }

    /// The most recent round's cleaned responsive addresses for one
    /// protocol; empty under the same conditions as
    /// [`HitlistService::proto_responsive`].
    pub fn current_responsive_for(&self, proto: Protocol) -> &AddrSet {
        self.last_proto_cleaned
            .iter()
            .find(|(p, _)| *p == proto)
            .map(|(_, v)| v)
            .unwrap_or(&EMPTY_SET)
    }

    /// Approximate heap bytes currently held by the service's address
    /// sets: the churn baselines, the per-protocol slices of the last
    /// round, and every retained snapshot. This is the resident-set
    /// metric the population-scale bench curve tracks.
    pub fn resident_set_bytes(&self) -> usize {
        let mut bytes = self.prev_responsive.mem_bytes() + self.ever.mem_bytes();
        for (_, set) in &self.last_proto_cleaned {
            bytes += set.mem_bytes();
        }
        for snap in &self.snapshots {
            for (_, set) in snap.cleaned.iter().chain(snap.published.iter()) {
                bytes += set.mem_bytes();
            }
        }
        bytes
    }

    fn ingest_sources(&mut self, net: &Internet, day: Day) {
        let week = day.0 / 7;
        let run_zone_sources = self.last_zone_week != Some(week);
        if run_zone_sources {
            self.last_zone_week = Some(week);
        }
        for (kind, addrs) in sources::recurring(net, day) {
            // Zone-backed sources only change weekly; skip re-runs.
            if !run_zone_sources
                && matches!(kind, sources::SourceKind::DomainsAaaa | sources::SourceKind::CtLogs)
            {
                continue;
            }
            for a in addrs {
                if self.input.insert(a) {
                    self.unresp.register(a, day);
                }
            }
        }
    }

    fn traceroute(&mut self, net: &Internet, day: Day) {
        // Rotating weekly sample of the whole input (covers the Chinese
        // router pools whose interfaces rotate weekly).
        let targets =
            traceroute_sample(&self.input, self.config.traceroute_cap, u64::from(day.0 / 7));
        let probe = ProbeKind::IcmpEcho { size: 16 };
        let mut discovered = Vec::new();
        for t in targets {
            let plen = net.path_len(t);
            for ttl in plen.saturating_sub(3)..plen {
                if let Some(Response::TimeExceeded { hop }) = net.probe_ttl(t, ttl, &probe, day) {
                    discovered.push(hop);
                }
            }
        }
        for hop in discovered {
            if self.input.insert(hop) {
                self.unresp.register(hop, day);
            }
        }
    }

    /// Records one phase duration, in milliseconds, when telemetry is
    /// attached. Every phase is recorded every round so each
    /// `service.round.phase.*` histogram has exactly one sample per round;
    /// sub-millisecond phases round up to `1` rather than truncating to a
    /// never-ran-looking `0` (see [`sixdust_telemetry::Histogram::record_duration`]).
    fn record_phase(&self, phase: &str, elapsed: Duration) {
        if let Some(t) = &self.telemetry {
            t.histogram(&format!("service.round.phase.{phase}_ms")).record_duration(elapsed);
        }
    }

    /// Records the round's scan-phase duration on behalf of an external
    /// executor that bypasses [`HitlistService::scan_prepared`] (the
    /// multi-vantage work-stealing scheduler runs the protocol scans
    /// itself). Keeps the `service.round.phase.scan_ms` histogram at
    /// exactly one sample per round, the invariant every other phase
    /// histogram upholds.
    pub fn record_external_scan_phase(&self, elapsed: Duration) {
        self.record_phase("scan", elapsed);
    }

    /// Runs one full service round on `day`.
    ///
    /// Composed from the three round stages — [`HitlistService::prepare_round`]
    /// (sources, alias detection, target selection),
    /// [`HitlistService::scan_prepared`] (the five protocol scans), and
    /// [`HitlistService::complete_round`] (merge, cleaning, bookkeeping) —
    /// which external schedulers (the multi-vantage fleet in
    /// `sixdust-vantage`) drive individually to interleave many services'
    /// scan work.
    pub fn run_round(&mut self, net: &Internet, day: Day) -> &RoundRecord {
        let prepared = self.prepare_round(net, day);
        let results = self.scan_prepared(net, &prepared);
        self.complete_round(net, prepared, results)
    }

    /// Round stages 1–3: source ingestion, periodic alias detection, and
    /// target selection — everything that must happen before the first
    /// probe of the round is sent. Opens the round's trace span; it closes
    /// when the returned [`PreparedRound`] is consumed by
    /// [`HitlistService::complete_round`].
    pub fn prepare_round(&mut self, net: &Internet, day: Day) -> PreparedRound {
        // Resolve the trace journal once per round (like metric handles).
        let tracer = self.telemetry.as_ref().and_then(|t| t.tracer());
        let day_str = day.0.to_string();
        let round_span =
            tracer.as_ref().map(|j| j.span_with("service.round", &[("day", day_str.as_str())]));

        // 1. Sources.
        let phase_started = Instant::now();
        self.ingest_sources(net, day);
        self.record_phase("ingest", phase_started.elapsed());

        // 2. Alias detection (periodic) — runs before target selection so
        // even the very first scan is alias-filtered, like the pipeline in
        // Fig. 1.
        let phase_started = Instant::now();
        if day >= self.next_alias_day {
            let input_vec: Vec<Addr> = self.input.iter().copied().collect();
            let cands = candidates(net, &input_vec, self.config.detector.min_addrs_long);
            self.detector.run_round(net, &cands, day);
            self.aliased = self.detector.aliased();
            self.next_alias_day = day.plus(self.config.alias_every_days);
        }
        self.record_phase("alias", phase_started.elapsed());

        // 3. Target selection.
        let phase_started = Instant::now();
        let aliased = &self.aliased;
        let blocklist = &self.blocklist;
        let targets: Vec<Addr> = self
            .unresp
            .active_targets()
            .filter(|a| blocklist.allows(*a) && !aliased.covers_addr(*a))
            .collect();
        self.record_phase("select", phase_started.elapsed());

        let gfw_live = self.config.gfw_filter_from.map(|d| day >= d).unwrap_or(false);
        PreparedRound { day, targets, gfw_live, round_span }
    }

    /// Round stage 3b: the five protocol scans over a prepared round's
    /// targets. The protocol modules run concurrently (each with its
    /// slice of the round's thread budget) or back to back, depending on
    /// `parallel_protocols`. A scan is a pure function of (net, protocol,
    /// targets, day, config), so the only ordering that matters is the
    /// merge in [`HitlistService::complete_round`], which is strictly
    /// sequential in Protocol::ALL order either way: records, snapshots
    /// and checkpoints come out byte-identical at any thread budget. The
    /// returned results are in `Protocol::ALL` order, which is what
    /// `complete_round` requires — external executors producing the same
    /// ordered results by other partitions are interchangeable.
    pub fn scan_prepared(&self, net: &Internet, prepared: &PreparedRound) -> Vec<ScanResult> {
        let day = prepared.day;
        let targets = &prepared.targets;
        let telemetry = self.telemetry.as_ref();
        let scan_started = Instant::now();
        let results: Vec<ScanResult> = if self.config.parallel_protocols {
            let budgets = split_thread_budget(self.config.scan.threads);
            let scan_cfg = &self.config.scan;
            let targets = &targets[..];
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = Protocol::ALL
                    .into_iter()
                    .zip(budgets)
                    .map(|(proto, budget)| {
                        let cfg = scan_cfg.clone().with_threads(budget);
                        let handle =
                            s.spawn(move |_| scan_with(net, proto, targets, day, &cfg, telemetry));
                        (proto, handle)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(proto, handle)| {
                        handle.join().unwrap_or_else(|payload| {
                            panic!(
                                "{proto} scan (day {}) panicked: {}",
                                day.0,
                                panic_message(&*payload)
                            )
                        })
                    })
                    .collect()
            })
            .unwrap_or_else(|payload| {
                panic!("round scan scope (day {}) panicked: {}", day.0, panic_message(&*payload))
            })
        } else {
            Protocol::ALL
                .into_iter()
                .map(|proto| scan_with(net, proto, targets, day, &self.config.scan, telemetry))
                .collect()
        };
        self.record_phase("scan", scan_started.elapsed());
        results
    }

    /// Round stages 3c–9: merge the per-protocol scan results (which must
    /// be in `Protocol::ALL` order over the prepared targets), clean,
    /// classify, sweep, traceroute, and record. Consumes the
    /// [`PreparedRound`], closing the round's trace span.
    pub fn complete_round(
        &mut self,
        net: &Internet,
        prepared: PreparedRound,
        results: Vec<ScanResult>,
    ) -> &RoundRecord {
        let PreparedRound { day, targets, gfw_live, mut round_span } = prepared;
        let tracer = self.telemetry.as_ref().and_then(|t| t.tracer());
        let day_str = day.0.to_string();

        // 3c. Merge, strictly in Protocol::ALL order. GFW cleaning
        // mutates filter state and stays sequential; set bookkeeping
        // accumulates into chunked [`AddrSet`]s one /32 bucket at a time
        // instead of per-protocol HashSet churn or full flat-vector
        // rebuilds.
        let mut published = [0u64; 5];
        let mut cleaned = [0u64; 5];
        let mut responsive_published = AddrSet::new();
        let mut responsive_cleaned = AddrSet::new();
        let mut proto_cleaned_sets: Vec<(Protocol, AddrSet)> = Vec::new();
        let mut proto_published_sets: Vec<(Protocol, AddrSet)> = Vec::new();
        let mut gfw_elapsed = Duration::ZERO;
        let mut loss_weighted = 0u64;
        let mut sent_total = 0u64;
        let mut received_total = 0u64;
        for (i, result) in results.into_iter().enumerate() {
            let proto = result.protocol;
            debug_assert_eq!(proto, Protocol::ALL[i], "merge order is Protocol::ALL order");
            // Weight each scan's loss estimate by the probes it *sent*.
            // Weighting by responses — as this loop once did — hands a
            // fully blacked-out protocol zero weight, hiding exactly the
            // rounds the estimate feeds the degraded classifier for. A
            // protocol whose cleaned history proves it can answer
            // (`proto_seen`, read before this round updates it) counts
            // a zero-response scan as total loss; an always-dark one
            // stays excluded (dark space is not loss).
            let sent = result.stats.sent;
            let per_scan = if sent > 0 && result.stats.received == 0 && self.proto_seen[i] {
                1000
            } else {
                u64::from(result.stats.loss_estimate_permille)
            };
            loss_weighted += per_scan * sent;
            sent_total += sent;
            received_total += result.stats.received;
            let mut pub_hits: Vec<Addr> = result.hits().collect();
            pub_hits.sort_unstable();
            let pub_set = AddrSet::from_sorted_addrs(&pub_hits);
            let gfw_started = Instant::now();
            let clean_set: AddrSet = if proto == Protocol::Udp53 {
                let mut v = self.gfw.clean(&result);
                v.sort_unstable();
                AddrSet::from_sorted_addrs(&v)
            } else {
                pub_set.clone()
            };
            gfw_elapsed += gfw_started.elapsed();
            published[i] = pub_set.len() as u64;
            cleaned[i] = clean_set.len() as u64;
            self.proto_seen[i] |= !clean_set.is_empty();
            responsive_published.union_in_place(&pub_set);
            responsive_cleaned.union_in_place(&clean_set);
            for a in clean_set.addrs() {
                self.cumulative.entry(a).or_insert(ProtoSet::EMPTY).insert(proto);
            }
            proto_published_sets.push((proto, pub_set));
            proto_cleaned_sets.push((proto, clean_set));
        }
        self.record_phase("gfw", gfw_elapsed);

        // 4. Once the filter is deployed the service *publishes* cleaned
        // results too (the February 2022 drop in Fig. 3 left).
        if gfw_live {
            published = cleaned;
            responsive_published = responsive_cleaned.clone();
        }

        // 4b. Online anomaly monitoring over the published counts — the
        // view the real service fed its users, where the GFW injections
        // actually showed up (Fig. 3 left). Anomalous rounds are not
        // absorbed into the baseline, so multi-round eras stay flagged
        // from first spike to last. Runs before the 30-day sweep because
        // broad *downward* anomalies feed the degraded-round classifier.
        let mut anomalous = [false; 5];
        let mut downward_anomalies = 0usize;
        for (i, proto) in Protocol::ALL.into_iter().enumerate() {
            let verdict = self.anomaly[i].observe(published[i] as f64);
            anomalous[i] = verdict.anomalous;
            if verdict.anomalous && verdict.z < 0.0 {
                downward_anomalies += 1;
            }
            if verdict.anomalous {
                let value = published[i].to_string();
                let z = format!("{:.1}", verdict.z);
                let args =
                    [("day", day_str.as_str()), ("value", value.as_str()), ("z", z.as_str())];
                if let Some(j) = &tracer {
                    j.instant(&format!("service.anomaly.{}", proto_metric_key(proto)), &args);
                }
                if let Some(flight) = &self.flight {
                    flight.note(
                        day.0,
                        &format!("service.anomaly.{}", proto_metric_key(proto)),
                        &args,
                    );
                }
            }
        }

        // 4c. Degraded-round classification: a round is degraded when the
        // scans themselves are suspect — heavy estimated loss, a total
        // blackout of a non-empty target list, or most protocols spiking
        // *downward* at once (loss is protocol-agnostic; a real population
        // collapse would show as churn, not a synchronized cliff).
        let loss_estimate_permille = if targets.is_empty() {
            0
        } else if received_total == 0 {
            1000
        } else {
            (loss_weighted / sent_total.max(1)) as u32
        };
        let degraded = !targets.is_empty()
            && (loss_estimate_permille >= self.config.degraded_loss_permille
                || downward_anomalies >= 3);

        // Publish freshness: rounds since the last *clean* publish. A
        // degraded or anomaly-flagged round ships a suspect hitlist, so
        // the staleness clock keeps counting until a round with neither.
        let clean_publish = !degraded && !anomalous.iter().any(|&a| a);
        self.staleness_rounds =
            if clean_publish { 0 } else { self.staleness_rounds.saturating_add(1) };

        // 5. Responsiveness bookkeeping: before the filter deployment the
        // service kept GFW-"responsive" addresses in rotation. A degraded
        // round still credits whoever answered, but never sweeps: silence
        // during a broken measurement proves nothing, so the round's days
        // are quarantined in the 30-day filter instead.
        let effective: &AddrSet =
            if gfw_live { &responsive_cleaned } else { &responsive_published };
        for a in effective.addrs() {
            self.unresp.mark_responsive(a, day);
        }
        let dropped = if degraded {
            let from = self.rounds.last().map(|r| r.day.plus(1)).unwrap_or(day);
            self.unresp.quarantine(from, day.plus(1));
            let loss = loss_estimate_permille.to_string();
            let downward = downward_anomalies.to_string();
            let args = [
                ("day", day_str.as_str()),
                ("loss_permille", loss.as_str()),
                ("downward_anomalies", downward.as_str()),
            ];
            if let Some(j) = &tracer {
                j.instant("service.degraded", &args);
            }
            if let Some(flight) = &self.flight {
                flight.note(day.0, "service.degraded", &args);
            }
            0
        } else {
            self.unresp.sweep(day)
        };

        // 6. Traceroutes discover new candidates for the next round.
        let phase_started = Instant::now();
        self.traceroute(net, day);
        self.record_phase("traceroute", phase_started.elapsed());

        // 7. Churn accounting (cleaned view, Fig. 4): an address newly
        // responsive this round is "brand new" if no earlier round ever saw
        // it responsive, "recurring" otherwise.
        let phase_started = Instant::now();
        let newly = responsive_cleaned.diff(&self.prev_responsive);
        // A linear merge count per chunk pair, not a per-address binary
        // search over `ever` — the newly-responsive set is intersected
        // against the ever-responsive accumulator in one pass.
        let churn_recurring = newly.intersect_count(&self.ever) as u64;
        let churn_brand_new = (newly.len() - churn_recurring as usize) as u64;
        let churn_gone = self.prev_responsive.diff_count(&responsive_cleaned) as u64;
        self.ever.union_in_place(&responsive_cleaned);
        self.record_phase("churn", phase_started.elapsed());

        let record = RoundRecord {
            day,
            input_total: self.input.len(),
            targets: targets.len(),
            published,
            cleaned,
            total_published: responsive_published.len() as u64,
            total_cleaned: responsive_cleaned.len() as u64,
            churn_brand_new,
            churn_recurring,
            churn_gone,
            aliased_prefixes: self.aliased.len(),
            dropped,
            anomalous,
            degraded,
            loss_estimate_permille,
        };
        self.prev_responsive = responsive_cleaned;

        // Counters are fed from the very values the record carries, so a
        // registry snapshot reconciles exactly with summed RoundRecords.
        if let Some(t) = &self.telemetry {
            t.counter("service.rounds").incr();
            t.counter("service.targets").add(record.targets as u64);
            t.counter("service.dropped").add(record.dropped as u64);
            t.counter("service.churn.brand_new").add(record.churn_brand_new);
            t.counter("service.churn.recurring").add(record.churn_recurring);
            t.counter("service.churn.gone").add(record.churn_gone);
            // 0/1 per round, like the anomaly flags below.
            t.counter("service.degraded_rounds").add(u64::from(record.degraded));
            // Flags raised this round across all protocols — the dashboard's
            // round-health strip reads this as its amber signal.
            t.counter("service.anomalies")
                .add(record.anomalous.iter().filter(|&&a| a).count() as u64);
            t.gauge("service.loss_estimate_permille").set(i64::from(record.loss_estimate_permille));
            t.gauge("service.publish.staleness_rounds").set(i64::from(self.staleness_rounds));
            for (i, proto) in Protocol::ALL.into_iter().enumerate() {
                let key = proto_metric_key(proto);
                t.counter(&format!("service.hits.published.{key}")).add(record.published[i]);
                t.counter(&format!("service.hits.cleaned.{key}")).add(record.cleaned[i]);
                // 0/1 per round, so the series recorder's deltas expose a
                // ready-made per-round anomaly flag series.
                t.counter(&format!("service.anomaly.{key}")).add(u64::from(record.anomalous[i]));
            }
        }

        // 8. Per-protocol state and snapshots. The per-protocol sets are
        // retained every round (publication and the serve layer read
        // them); snapshot days additionally archive them permanently.
        if self.pending_snapshots.first().is_some_and(|d| day >= *d) {
            self.pending_snapshots.remove(0);
            self.snapshots.push(Snapshot {
                day,
                cleaned: proto_cleaned_sets.clone(),
                published: proto_published_sets,
                aliased: self.aliased.iter().collect(),
            });
        }
        self.last_proto_cleaned = proto_cleaned_sets;

        // Onsets (first round of an episode) trigger black-box captures;
        // later rounds of the same episode only extend the event ring.
        let prev = self.rounds.last();
        let degraded_onset = record.degraded && prev.is_none_or(|r| !r.degraded);
        let anomaly_onset = record.anomalous.iter().any(|&a| a)
            && prev.is_none_or(|r| !r.anomalous.iter().any(|&a| a));
        self.rounds.push(record);

        // 9. Longitudinal series: record after every counter for the round
        // has been fed, so each SeriesRound is exactly this round's deltas.
        // The shared path also judges the round against attached SLOs and
        // feeds the flight recorder.
        self.record_series_round(day.0);
        if let Some(flight) = &self.flight {
            if degraded_onset {
                flight.capture(day.0, "degraded-round");
            } else if anomaly_onset {
                flight.capture(day.0, "mad-anomaly");
            }
        }
        if let Some(span) = &mut round_span {
            span.arg("targets", &targets.len().to_string());
        }

        self.rounds.last().expect("just pushed")
    }

    /// Runs the service from `from` to `until` (inclusive) with the
    /// historical scan cadence. The final round always lands exactly on
    /// `until` so snapshots for that day exist.
    pub fn run(&mut self, net: &Internet, from: Day, until: Day) {
        self.run_with(net, from, until, |_, _| {});
    }

    /// Like [`HitlistService::run`], but invokes `hook` with the service
    /// and the round's day after every completed round — the integration
    /// point for per-round consumers (checkpointing, publication into a
    /// serve-layer snapshot store) that must not live inside this crate.
    pub fn run_with(
        &mut self,
        net: &Internet,
        from: Day,
        until: Day,
        mut hook: impl FnMut(&HitlistService, Day),
    ) {
        let mut day = from;
        while day < until {
            self.run_round(net, day);
            hook(self, day);
            let next = day.plus(events::scan_gap(day));
            day = if next > until { until } else { next };
        }
        self.run_round(net, until);
        hook(self, until);
    }
}

/// Splits the round-level worker budget ([`ScanConfig::threads`]) across
/// the five concurrent protocol scans. Earlier protocols (Protocol::ALL
/// order) receive the remainder, and every scan keeps at least one
/// worker — a budget below five oversubscribes instead of starving a
/// protocol.
fn split_thread_budget(budget: usize) -> [usize; 5] {
    let budget = budget.max(1);
    let base = budget / 5;
    let extra = budget % 5;
    std::array::from_fn(|i| (base + usize::from(i < extra)).max(1))
}

/// One week's rotating traceroute sample. The PRF filter admits roughly
/// `cap · stride` of the input; the cap then keeps the `cap` *lowest
/// draws*, a fresh pseudo-random cross-section each week. Ranking by the
/// draw rather than by address is what makes the sample actually rotate:
/// cutting a sorted-by-address candidate list at `cap` — as this service
/// once did — handed the numerically lowest addresses a permanent seat,
/// and with `stride == 1` returned the identical set every single week.
/// Ties break by address, so the result is deterministic at any HashSet
/// iteration order.
fn traceroute_sample(input: &HashSet<Addr>, cap: usize, week: u64) -> Vec<Addr> {
    let stride = (input.len() / cap.max(1)).max(1) as u64;
    let mut ranked: Vec<(u64, Addr)> = input
        .iter()
        .filter_map(|a| {
            let draw = prf::prf_u128(0x7ace, a.0, week);
            draw.is_multiple_of(stride).then_some((draw, *a))
        })
        .collect();
    ranked.sort_unstable();
    ranked.truncate(cap);
    ranked.into_iter().map(|(_, a)| a).collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_net::{FaultConfig, Internet, Scale};

    #[test]
    fn thread_budget_split_covers_all_protocols() {
        assert_eq!(split_thread_budget(0), [1, 1, 1, 1, 1]);
        assert_eq!(split_thread_budget(1), [1, 1, 1, 1, 1]);
        assert_eq!(split_thread_budget(4), [1, 1, 1, 1, 1]);
        assert_eq!(split_thread_budget(5), [1, 1, 1, 1, 1]);
        assert_eq!(split_thread_budget(8), [2, 2, 2, 1, 1]);
        assert_eq!(split_thread_budget(32), [7, 7, 6, 6, 6]);
        for budget in 0..40 {
            let split = split_thread_budget(budget);
            assert!(split.iter().all(|w| *w >= 1), "budget {budget}: {split:?}");
            assert_eq!(split.iter().sum::<usize>(), budget.clamp(5, usize::MAX), "budget {budget}");
        }
    }

    #[test]
    fn traceroute_sample_rotates_weekly_beyond_the_cap() {
        // An input 1.5× the cap makes the stride 1, so the PRF filter
        // admits *everything* — the exact regime where cutting a
        // sorted-by-address list at the cap returned the identical
        // lowest-`cap` set every single week.
        let cap = 100;
        let input: HashSet<Addr> =
            (0..150u128).map(|i| Addr((0x2001u128 << 112) | (i << 82) | 7)).collect();
        let mut all: Vec<Addr> = input.iter().copied().collect();
        all.sort_unstable();
        let lowest_cap: Vec<Addr> = all.iter().take(cap).copied().collect();

        let sample = |week: u64| -> Vec<Addr> {
            let mut s = traceroute_sample(&input, cap, week);
            s.sort_unstable();
            s
        };
        let w0 = sample(0);
        let w1 = sample(1);
        assert_eq!(w0, sample(0), "same week, same sample");
        assert_eq!(w0.len(), cap);
        assert_eq!(w1.len(), cap);
        assert_ne!(w0, w1, "consecutive weeks must draw different samples");
        assert_ne!(w0, lowest_cap, "the lowest addresses must not always win");
        assert_ne!(w1, lowest_cap, "the lowest addresses must not always win");
        // Linear chunk-merge intersection count — one pass over both
        // sorted samples, not a binary search per member.
        let overlap =
            AddrSet::from_sorted_addrs(&w0).intersect_count(&AddrSet::from_sorted_addrs(&w1));
        assert!(overlap < cap, "rotation changes membership beyond the cap boundary");
        // Small inputs are untouched: everything under the cap is traced.
        let tiny: HashSet<Addr> = all.iter().take(10).copied().collect();
        let mut traced = traceroute_sample(&tiny, cap, 3);
        traced.sort_unstable();
        assert_eq!(traced, all[..10].to_vec());
    }

    #[test]
    fn slo_breach_through_shared_series_path_freezes_a_capture() {
        let mut svc = HitlistService::new(ServiceConfig::builder().build())
            .with_slo(SloEngine::standard())
            .with_flight(FlightRecorder::new());
        assert!(svc.series().is_some(), "with_slo implies a series recorder");
        let reg = svc.telemetry.clone().expect("series implies telemetry");
        let rounds = reg.counter("service.rounds");
        let degraded = reg.counter("service.degraded_rounds");
        // Three consecutive fully-degraded rounds: the degraded-rounds
        // SLO's short (3) and long (12) windows both read 1000‰ bad
        // against a 50‰ budget — a 20× burn, breaching at round three.
        for key in 0..3 {
            rounds.incr();
            degraded.incr();
            svc.record_series_round(key);
        }
        let engine = svc.slo().expect("attached above");
        assert!(
            engine.breaches().iter().any(|b| b.slo == "degraded-rounds" && b.onset),
            "breach log must carry the degraded-rounds onset: {:?}",
            engine.breaches()
        );
        let flight = svc.flight().expect("attached above");
        assert_eq!(flight.captures_len(), 1, "exactly one capture at the breach onset");
        let cap = &flight.captures()[0];
        assert_eq!(cap.reason, "slo:degraded-rounds");
        assert!(cap.events.iter().any(|e| e.kind == "slo.breach"));
        assert!(!cap.rounds.is_empty(), "captures carry the recent metric rounds");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("slo.degraded-rounds.burn_short_milli"), Some(20_000));
        assert_eq!(snap.counter("slo.degraded-rounds.breach_rounds"), Some(1));
    }

    #[test]
    fn freshness_clock_counts_suspect_rounds_and_replays_through_checkpoints() {
        let mut svc = HitlistService::new(ServiceConfig::builder().build());
        // Synthesize a round history: clean, degraded, anomalous, clean.
        let mk = |day: u32, degraded: bool, anomalous: bool| RoundRecord {
            day: Day(day),
            input_total: 0,
            targets: 0,
            published: [0; 5],
            cleaned: [0; 5],
            total_published: 0,
            total_cleaned: 0,
            churn_brand_new: 0,
            churn_recurring: 0,
            churn_gone: 0,
            aliased_prefixes: 0,
            dropped: 0,
            anomalous: [anomalous, false, false, false, false],
            degraded,
            loss_estimate_permille: 0,
        };
        svc.rounds =
            vec![mk(0, false, false), mk(1, true, false), mk(2, false, true), mk(3, false, false)];
        let state = crate::state::ServiceState::capture(&svc);
        let resumed = HitlistService::from_state(ServiceConfig::builder().build(), &state);
        assert_eq!(resumed.staleness_rounds, 0, "last round was a clean publish");
        // Drop the final clean round: two suspect rounds back-to-back.
        svc.rounds.pop();
        let state = crate::state::ServiceState::capture(&svc);
        let resumed = HitlistService::from_state(ServiceConfig::builder().build(), &state);
        assert_eq!(resumed.staleness_rounds, 2, "degraded then anomalous, never reset");
    }

    #[test]
    fn traceroute_rotation_reaches_different_router_interfaces() {
        // Two fresh services with identical inputs, traced in different
        // weeks on the same day-of-week: the rotated samples reach
        // different targets, so the discovered hop interfaces differ too.
        let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
        let cfg = ServiceConfig::builder().traceroute_cap(40).alias_every_days(10_000).build();
        let input: HashSet<Addr> =
            (0..80u128).map(|i| Addr((0x2001u128 << 112) | (i << 82) | 7)).collect();
        let mut week_a = HitlistService::new(cfg.clone());
        week_a.input = input.clone();
        week_a.traceroute(&net, Day(0));
        let mut week_b = HitlistService::new(cfg);
        week_b.input = input.clone();
        week_b.traceroute(&net, Day(7));
        let mut hops_a: Vec<Addr> =
            week_a.input.iter().filter(|a| !input.contains(a)).copied().collect();
        let mut hops_b: Vec<Addr> =
            week_b.input.iter().filter(|a| !input.contains(a)).copied().collect();
        hops_a.sort_unstable();
        hops_b.sort_unstable();
        assert_ne!(hops_a, hops_b, "different weeks discover different router interfaces");
    }
}
