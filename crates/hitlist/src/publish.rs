//! Publishing the service's artifacts.
//!
//! The real IPv6 Hitlist service publishes daily artifacts the community
//! consumes (responsive addresses, aliased prefixes, the input candidates,
//! and — since this paper — the GFW-filter output). This module renders
//! the same artifact set from a [`HitlistService`], in the same simple
//! one-entry-per-line text formats, plus a `registered.json` manifest.

use std::fmt::Write as _;
use std::path::Path;

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;
use sixdust_net::Protocol;

use crate::service::HitlistService;

/// The artifact set of one publication.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Publication {
    /// ISO date of the underlying scan round.
    pub date: String,
    /// `responsive-addresses.txt` — one address per line, cleaned view.
    pub responsive: String,
    /// `aliased-prefixes.txt` — one labeled prefix per line.
    pub aliased_prefixes: String,
    /// `gfw-filtered.txt` — addresses removed by the paper's filter.
    pub gfw_filtered: String,
    /// `input-candidates.txt` — the accumulated input list.
    pub input: String,
    /// Per-protocol address files, keyed by the file stem
    /// (e.g. `responsive-udp53.txt`).
    pub per_protocol: Vec<(String, String)>,
    /// `manifest.json`-style summary.
    pub manifest: Manifest,
}

/// The machine-readable manifest of one publication.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// ISO date.
    pub date: String,
    /// Line counts per artifact.
    pub counts: Vec<(String, usize)>,
    /// Whether the GFW filter was active for this round.
    pub gfw_filter_active: bool,
}

fn lines<I: IntoIterator<Item = Addr>>(addrs: I) -> String {
    let mut v: Vec<Addr> = addrs.into_iter().collect();
    v.sort_unstable();
    v.dedup();
    let mut out = String::with_capacity(v.len() * 24);
    for a in v {
        let _ = writeln!(out, "{a}");
    }
    out
}

/// Renders the current publication from a service.
pub fn publish(svc: &HitlistService) -> Publication {
    let last = svc.rounds().last();
    let date = last.map(|r| r.day.to_date()).unwrap_or_else(|| "unpublished".into());
    let gfw_active = last.map(|r| r.published == r.cleaned).unwrap_or(false);

    let responsive = lines(svc.current_responsive().iter().copied());
    let aliased_prefixes = {
        let mut v: Vec<String> = svc.aliased().iter().map(|p| p.to_string()).collect();
        v.sort();
        let mut out = String::new();
        for p in v {
            let _ = writeln!(out, "{p}");
        }
        out
    };
    let gfw_filtered = lines(svc.gfw_impacted().iter().copied());
    let input = lines(svc.input().iter().copied());

    let per_protocol: Vec<(String, String)> = svc
        .snapshots()
        .last()
        .map(|snap| {
            Protocol::ALL
                .iter()
                .map(|p| {
                    let stem =
                        format!("responsive-{}.txt", p.label().to_lowercase().replace('/', ""));
                    (stem, lines(snap.cleaned_for(*p).iter().copied()))
                })
                .collect()
        })
        .unwrap_or_default();

    let mut counts = vec![
        ("responsive-addresses.txt".to_string(), responsive.lines().count()),
        ("aliased-prefixes.txt".to_string(), aliased_prefixes.lines().count()),
        ("gfw-filtered.txt".to_string(), gfw_filtered.lines().count()),
        ("input-candidates.txt".to_string(), input.lines().count()),
    ];
    for (stem, body) in &per_protocol {
        counts.push((stem.clone(), body.lines().count()));
    }

    Publication {
        manifest: Manifest { date: date.clone(), counts, gfw_filter_active: gfw_active },
        date,
        responsive,
        aliased_prefixes,
        gfw_filtered,
        input,
        per_protocol,
    }
}

impl Publication {
    /// Writes every artifact into `dir`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("responsive-addresses.txt"), &self.responsive)?;
        std::fs::write(dir.join("aliased-prefixes.txt"), &self.aliased_prefixes)?;
        std::fs::write(dir.join("gfw-filtered.txt"), &self.gfw_filtered)?;
        std::fs::write(dir.join("input-candidates.txt"), &self.input)?;
        for (stem, body) in &self.per_protocol {
            std::fs::write(dir.join(stem), body)?;
        }
        let manifest = serde_json::to_string_pretty(&self.manifest).expect("manifest serializes");
        std::fs::write(dir.join("manifest.json"), manifest)?;
        Ok(())
    }

    /// Parses a published address file back into addresses (the consumer
    /// side: studies that build on the hitlist artifacts).
    pub fn parse_addresses(body: &str) -> Result<Vec<Addr>, std::net::AddrParseError> {
        body.lines().map(|l| l.trim().parse()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use sixdust_net::{Day, FaultConfig, Internet, Scale};

    fn published() -> Publication {
        let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
        let mut svc =
            HitlistService::new(ServiceConfig::builder().snapshot_days(vec![Day(8)]).build());
        svc.run(&net, Day(0), Day(8));
        publish(&svc)
    }

    #[test]
    fn artifacts_round_trip() {
        let p = published();
        assert_eq!(p.date, Day(8).to_date());
        let responsive = Publication::parse_addresses(&p.responsive).expect("valid addrs");
        assert!(!responsive.is_empty());
        // Sorted and deduplicated.
        let mut sorted = responsive.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, responsive);
    }

    #[test]
    fn manifest_counts_match_bodies() {
        let p = published();
        for (name, count) in &p.manifest.counts {
            let body = match name.as_str() {
                "responsive-addresses.txt" => &p.responsive,
                "aliased-prefixes.txt" => &p.aliased_prefixes,
                "gfw-filtered.txt" => &p.gfw_filtered,
                "input-candidates.txt" => &p.input,
                other => {
                    &p.per_protocol
                        .iter()
                        .find(|(s, _)| s == other)
                        .expect("manifest names a real artifact")
                        .1
                }
            };
            assert_eq!(body.lines().count(), *count, "{name}");
        }
    }

    #[test]
    fn per_protocol_files_present() {
        let p = published();
        assert_eq!(p.per_protocol.len(), 5);
        assert!(p.per_protocol.iter().any(|(s, _)| s == "responsive-udp53.txt"));
    }

    #[test]
    fn writes_to_disk() {
        let p = published();
        let dir = std::env::temp_dir().join(format!("sixdust-pub-{}", std::process::id()));
        p.write_to(&dir).expect("write artifacts");
        let body = std::fs::read_to_string(dir.join("responsive-addresses.txt")).unwrap();
        assert_eq!(body, p.responsive);
        assert!(dir.join("manifest.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aliased_file_holds_prefixes() {
        let p = published();
        for line in p.aliased_prefixes.lines().take(10) {
            let _: sixdust_addr::Prefix = line.parse().expect("valid prefix line");
        }
    }
}
