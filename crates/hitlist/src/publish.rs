//! Publishing the service's artifacts.
//!
//! The real IPv6 Hitlist service publishes daily artifacts the community
//! consumes (responsive addresses, aliased prefixes, the input candidates,
//! and — since this paper — the GFW-filter output). This module renders
//! the same artifact set from a [`HitlistService`], in the same simple
//! one-entry-per-line text formats, plus a `registered.json` manifest.

use std::fmt::Write as _;
use std::path::Path;

use serde::{Deserialize, Serialize};
use sixdust_addr::{Addr, AddrSet};

use crate::service::HitlistService;

/// The artifact set of one publication.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Publication {
    /// ISO date of the underlying scan round.
    pub date: String,
    /// `responsive-addresses.txt` — one address per line, cleaned view.
    pub responsive: String,
    /// `aliased-prefixes.txt` — one labeled prefix per line.
    pub aliased_prefixes: String,
    /// `gfw-filtered.txt` — addresses removed by the paper's filter.
    pub gfw_filtered: String,
    /// `input-candidates.txt` — the accumulated input list.
    pub input: String,
    /// Per-protocol address files, keyed by the file stem
    /// (e.g. `responsive-udp53.txt`).
    pub per_protocol: Vec<(String, String)>,
    /// `manifest.json`-style summary.
    pub manifest: Manifest,
}

/// The machine-readable manifest of one publication.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// ISO date.
    pub date: String,
    /// Line counts per artifact.
    pub counts: Vec<(String, usize)>,
    /// Whether the GFW filter was active for this round.
    pub gfw_filter_active: bool,
    /// Stable per-artifact content digests (16 hex digits of FNV-1a 64
    /// over the sorted item set), keyed by file stem. Content-derived,
    /// not render-derived: two manifests list the same digest exactly
    /// when the artifact holds the same addresses, so consumers can key
    /// ETags and deltas off it. Absent in manifests written before
    /// digests existed, hence the serde default.
    #[serde(default)]
    pub digests: Vec<(String, String)>,
}

/// FNV-1a 64-bit digest over the little-endian bytes of each item — the
/// stable content digest recorded per artifact in [`Manifest::digests`].
/// Items must arrive in ascending deduplicated order (the order every
/// [`AddrSet`] iterates in) so the digest depends on content, not render
/// order. Streaming: consumes any item iterator without materializing a
/// flat vector. Byte-for-byte the same function as
/// `sixdust_serve::codec::content_digest`, so serve-layer ETags match
/// what the manifest records.
pub fn content_digest<I: IntoIterator<Item = u128>>(items: I) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for item in items {
        for byte in item.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}

fn collect_set(addrs: impl IntoIterator<Item = Addr>) -> AddrSet {
    addrs.into_iter().collect()
}

fn render(set: &AddrSet) -> String {
    let mut out = String::with_capacity(set.len() * 24);
    for a in set.addrs() {
        let _ = writeln!(out, "{a}");
    }
    out
}

fn digest_hex(set: &AddrSet) -> String {
    format!("{:016x}", content_digest(set.iter()))
}

/// Renders the current publication from a service.
pub fn publish(svc: &HitlistService) -> Publication {
    let last = svc.rounds().last();
    let date = last.map(|r| r.day.to_date()).unwrap_or_else(|| "unpublished".into());
    let gfw_active = last.map(|r| r.published == r.cleaned).unwrap_or(false);

    let responsive_set = svc.current_responsive();
    let responsive = render(responsive_set);
    let (aliased_prefixes, aliased_packed) = {
        let mut v: Vec<String> = svc.aliased().iter().map(|p| p.to_string()).collect();
        v.sort();
        let mut out = String::new();
        for p in v {
            let _ = writeln!(out, "{p}");
        }
        // Prefixes digest over their packed form (network | len), the
        // same item encoding the serve layer ships them in.
        let mut packed: Vec<u128> =
            svc.aliased().iter().map(|p| p.network().0 | u128::from(p.len())).collect();
        packed.sort_unstable();
        packed.dedup();
        (out, packed)
    };
    let gfw_set = collect_set(svc.gfw_impacted().iter().copied());
    let gfw_filtered = render(&gfw_set);
    let input_set = collect_set(svc.input().iter().copied());
    let input = render(&input_set);

    // Per-protocol slices come from the last completed round — retained
    // every round, not just snapshot days — so a mid-cadence publication
    // reflects the current state.
    let proto_sets: Vec<(String, &AddrSet)> = svc
        .proto_responsive()
        .iter()
        .map(|(p, set)| {
            let stem = format!("responsive-{}.txt", p.label().to_lowercase().replace('/', ""));
            (stem, set)
        })
        .collect();
    let per_protocol: Vec<(String, String)> =
        proto_sets.iter().map(|(stem, set)| (stem.clone(), render(set))).collect();

    let mut counts = vec![
        ("responsive-addresses.txt".to_string(), responsive.lines().count()),
        ("aliased-prefixes.txt".to_string(), aliased_prefixes.lines().count()),
        ("gfw-filtered.txt".to_string(), gfw_filtered.lines().count()),
        ("input-candidates.txt".to_string(), input.lines().count()),
    ];
    for (stem, body) in &per_protocol {
        counts.push((stem.clone(), body.lines().count()));
    }

    let mut digests = vec![
        ("responsive-addresses.txt".to_string(), digest_hex(responsive_set)),
        ("aliased-prefixes.txt".to_string(), format!("{:016x}", content_digest(aliased_packed))),
        ("gfw-filtered.txt".to_string(), digest_hex(&gfw_set)),
        ("input-candidates.txt".to_string(), digest_hex(&input_set)),
    ];
    for (stem, set) in &proto_sets {
        digests.push((stem.clone(), digest_hex(set)));
    }

    Publication {
        manifest: Manifest { date: date.clone(), counts, gfw_filter_active: gfw_active, digests },
        date,
        responsive,
        aliased_prefixes,
        gfw_filtered,
        input,
        per_protocol,
    }
}

impl Publication {
    /// Writes every artifact into `dir`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("responsive-addresses.txt"), &self.responsive)?;
        std::fs::write(dir.join("aliased-prefixes.txt"), &self.aliased_prefixes)?;
        std::fs::write(dir.join("gfw-filtered.txt"), &self.gfw_filtered)?;
        std::fs::write(dir.join("input-candidates.txt"), &self.input)?;
        for (stem, body) in &self.per_protocol {
            std::fs::write(dir.join(stem), body)?;
        }
        let manifest = serde_json::to_string_pretty(&self.manifest).expect("manifest serializes");
        std::fs::write(dir.join("manifest.json"), manifest)?;
        Ok(())
    }

    /// Parses a published address file back into addresses (the consumer
    /// side: studies that build on the hitlist artifacts).
    pub fn parse_addresses(body: &str) -> Result<Vec<Addr>, std::net::AddrParseError> {
        body.lines().map(|l| l.trim().parse()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use sixdust_net::{Day, FaultConfig, Internet, Scale};

    fn published() -> Publication {
        let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
        let mut svc =
            HitlistService::new(ServiceConfig::builder().snapshot_days(vec![Day(8)]).build());
        svc.run(&net, Day(0), Day(8));
        publish(&svc)
    }

    #[test]
    fn artifacts_round_trip() {
        let p = published();
        assert_eq!(p.date, Day(8).to_date());
        let responsive = Publication::parse_addresses(&p.responsive).expect("valid addrs");
        assert!(!responsive.is_empty());
        // Sorted and deduplicated.
        let mut sorted = responsive.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, responsive);
    }

    #[test]
    fn manifest_counts_match_bodies() {
        let p = published();
        for (name, count) in &p.manifest.counts {
            let body = match name.as_str() {
                "responsive-addresses.txt" => &p.responsive,
                "aliased-prefixes.txt" => &p.aliased_prefixes,
                "gfw-filtered.txt" => &p.gfw_filtered,
                "input-candidates.txt" => &p.input,
                other => {
                    &p.per_protocol
                        .iter()
                        .find(|(s, _)| s == other)
                        .expect("manifest names a real artifact")
                        .1
                }
            };
            assert_eq!(body.lines().count(), *count, "{name}");
        }
    }

    #[test]
    fn per_protocol_files_present() {
        let p = published();
        assert_eq!(p.per_protocol.len(), 5);
        assert!(p.per_protocol.iter().any(|(s, _)| s == "responsive-udp53.txt"));
    }

    #[test]
    fn writes_to_disk() {
        let p = published();
        let dir = std::env::temp_dir().join(format!("sixdust-pub-{}", std::process::id()));
        p.write_to(&dir).expect("write artifacts");
        let body = std::fs::read_to_string(dir.join("responsive-addresses.txt")).unwrap();
        assert_eq!(body, p.responsive);
        assert!(dir.join("manifest.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_digests_cover_every_artifact_and_are_content_stable() {
        let p = published();
        // Every counted artifact carries a digest, in the same stem order.
        let count_stems: Vec<&String> = p.manifest.counts.iter().map(|(s, _)| s).collect();
        let digest_stems: Vec<&String> = p.manifest.digests.iter().map(|(s, _)| s).collect();
        assert_eq!(count_stems, digest_stems);
        for (stem, hex) in &p.manifest.digests {
            assert_eq!(hex.len(), 16, "{stem} digest is 16 hex digits");
            assert!(hex.bytes().all(|b| b.is_ascii_hexdigit()));
        }
        // The digest is derived from content, not render order.
        let addrs = Publication::parse_addresses(&p.responsive).expect("valid");
        let set: AddrSet = addrs.iter().copied().collect();
        let expected = format!("{:016x}", content_digest(set.iter()));
        let (_, recorded) = p
            .manifest
            .digests
            .iter()
            .find(|(s, _)| s == "responsive-addresses.txt")
            .expect("responsive digest present");
        assert_eq!(recorded, &expected);
    }

    #[test]
    fn manifest_stays_backward_readable() {
        // A manifest written before digests existed (no `digests` key)
        // must still deserialize; the field defaults to empty.
        let old = r#"{
            "date": "2021-06-01",
            "counts": [["responsive-addresses.txt", 3]],
            "gfw_filter_active": false
        }"#;
        let m: Manifest = serde_json::from_str(old).expect("old manifest readable");
        assert!(m.digests.is_empty());
        assert_eq!(m.counts.len(), 1);
        // And a new manifest round-trips with digests intact.
        let p = published();
        let json = serde_json::to_string(&p.manifest).expect("serializes");
        let back: Manifest = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back.digests, p.manifest.digests);
    }

    #[test]
    fn aliased_file_holds_prefixes() {
        let p = published();
        for line in p.aliased_prefixes.lines().take(10) {
            let _: sixdust_addr::Prefix = line.parse().expect("valid prefix line");
        }
    }
}
