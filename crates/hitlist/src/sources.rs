//! The IPv6 Hitlist's input sources (Fig. 1, left).
//!
//! The service accumulates candidates from domain resolutions (AAAA), CT
//! logs, RIPE-Atlas-style probe data, a one-time rDNS import, and its own
//! traceroutes. Each source is a pure function of the simulated Internet
//! and the day, so the accumulation is replayable. The per-source flavours
//! matter for the paper's bias findings:
//!
//! * `domains_aaaa` / `ct_logs` pull rotating CDN load-balancer addresses
//!   → the Amazon-style aliased input mass (32 % of the raw input).
//! * `ripe_atlas` observes the CPE fleets' *current* addresses → rotating
//!   EUI-64 accumulation (ANTEL, DTAG).
//! * `rdns_import` fires once (early 2019) and its addresses decay → the
//!   2019→2020 dip of Table 1.
//! * `passive_visible` is the small public sample of dense server
//!   deployments (the seeds TGAs later extrapolate).

use sixdust_addr::{prf, Addr};
use sixdust_net::{events, Day, Internet};

/// Identifies where a candidate came from (used for bias analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Forward DNS AAAA resolutions.
    DomainsAaaa,
    /// Certificate-transparency-derived domains.
    CtLogs,
    /// RIPE-Atlas-style traceroute/probe addresses (CPE-heavy).
    RipeAtlas,
    /// One-time reverse-DNS import.
    Rdns,
    /// The launch-time bulk corpus.
    Initial,
    /// Publicly visible sample of dense deployments.
    PassiveVisible,
    /// The service's own traceroutes (handled by the service loop).
    Traceroute,
    /// Slow aggregate discovery drip from minor feeds.
    Drip,
}

/// AAAA resolutions of the full zone file (weekly granularity — addresses
/// rotate per week, so finer sampling adds nothing).
pub fn domains_aaaa(net: &Internet, day: Day) -> Vec<Addr> {
    let zones = net.zones();
    let pop = net.population();
    (0..zones.total_domains()).map(|d| zones.resolve(pop, d, day).0).collect()
}

/// CT-log-derived domains: a third of the namespace, same resolution path.
pub fn ct_logs(net: &Internet, day: Day) -> Vec<Addr> {
    let zones = net.zones();
    let pop = net.population();
    (0..zones.total_domains())
        .filter(|d| d % 3 == 0)
        .map(|d| zones.resolve(pop, d, day).0)
        .collect()
}

/// RIPE-Atlas-style source: the current addresses of every CPE fleet plus
/// a sample of stable router interfaces.
pub fn ripe_atlas(net: &Internet, day: Day) -> Vec<Addr> {
    let mut out = Vec::new();
    for fleet in net.population().cpe_fleets() {
        out.extend(fleet.current_addrs(day));
    }
    for pool in net.population().router_pools() {
        if pool.rotation_days == 0 {
            out.extend(pool.addrs_at(day).take(16));
        }
    }
    out
}

/// One-time rDNS import (fires only on the configured day): a broad sample
/// of the then-current server and flaky populations.
pub fn rdns_import(net: &Internet, day: Day) -> Vec<Addr> {
    if day != events::RDNS_IMPORT {
        return Vec::new();
    }
    net.population()
        .enumerate_responsive(day)
        .into_iter()
        .filter(|(a, ..)| {
            prf::chance(0xD45, a.0, 0x1, 3, 10) && !net.population().is_dense_member(*a)
        })
        .map(|(a, ..)| a)
        .collect()
}

/// The slow discovery drip: the union of many minor feeds (peer lists,
/// software telemetry, additional traceroute campaigns…) surfaces a small
/// weekly sample of the live population, which is how newly activated
/// deployments keep entering the hitlist between the big sources.
pub fn discovery_drip(net: &Internet, day: Day) -> Vec<Addr> {
    let week = u64::from(day.0 / 7);
    net.population()
        .enumerate_responsive(day)
        .into_iter()
        .filter(|(a, ..)| {
            prf::chance(0xD819, a.0, week, 3, 100) && !net.population().is_dense_member(*a)
        })
        .map(|(a, ..)| a)
        .collect()
}

/// The service's launch import: the 2018 hitlist already started from a
/// 90 M-address corpus, so day 0 sees a bulk sample of the then-live
/// population (hidden dense clusters excluded — they were never public).
pub fn initial_import(net: &Internet, day: Day) -> Vec<Addr> {
    if day != Day(0) {
        return Vec::new();
    }
    net.population()
        .enumerate_responsive(day)
        .into_iter()
        .filter(|(a, ..)| {
            prf::chance(0xB007, a.0, 0, 11, 20) && !net.population().is_dense_member(*a)
        })
        .map(|(a, ..)| a)
        .collect()
}

/// The public sample of dense deployments (per-AS visibility fractions).
pub fn passive_visible(net: &Internet, day: Day) -> Vec<Addr> {
    net.population().dense_visible(day)
}

/// All recurring sources for a service round.
pub fn recurring(net: &Internet, day: Day) -> Vec<(SourceKind, Vec<Addr>)> {
    vec![
        (SourceKind::DomainsAaaa, domains_aaaa(net, day)),
        (SourceKind::CtLogs, ct_logs(net, day)),
        (SourceKind::RipeAtlas, ripe_atlas(net, day)),
        (SourceKind::Rdns, rdns_import(net, day)),
        (SourceKind::Initial, initial_import(net, day)),
        (SourceKind::PassiveVisible, passive_visible(net, day)),
        (SourceKind::Drip, discovery_drip(net, day)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_net::{FaultConfig, Scale};

    fn net() -> Internet {
        Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless())
    }

    #[test]
    fn domains_resolve_and_rotate() {
        let net = net();
        let a = domains_aaaa(&net, Day(0));
        let b = domains_aaaa(&net, Day(0));
        assert_eq!(a, b, "deterministic");
        assert!(!a.is_empty());
        let later = domains_aaaa(&net, Day(21));
        let fresh: usize = later.iter().filter(|x| !a.contains(x)).count();
        assert!(fresh > 0, "rotating CDN answers accumulate new addresses");
    }

    #[test]
    fn ripe_atlas_tracks_cpe_rotation() {
        let net = net();
        let a: std::collections::HashSet<Addr> = ripe_atlas(&net, Day(0)).into_iter().collect();
        let b: std::collections::HashSet<Addr> = ripe_atlas(&net, Day(30)).into_iter().collect();
        assert!(!a.is_empty());
        let moved = a.difference(&b).count();
        assert!(moved > 0, "prefix rotation mints new input addresses");
    }

    #[test]
    fn rdns_fires_once() {
        let net = net();
        assert!(rdns_import(&net, Day(0)).is_empty());
        assert!(!rdns_import(&net, events::RDNS_IMPORT).is_empty());
        assert!(rdns_import(&net, events::RDNS_IMPORT.plus(1)).is_empty());
    }

    #[test]
    fn passive_visible_is_a_strict_sample() {
        let net = net();
        let day = Day(600);
        let visible = passive_visible(&net, day);
        assert!(!visible.is_empty());
        // Every visible address is genuinely responsive.
        for a in visible.iter().take(50) {
            assert!(net.population().lookup(*a, day).is_some(), "{a}");
        }
    }

    #[test]
    fn recurring_covers_all_kinds() {
        let net = net();
        let all = recurring(&net, Day(10));
        assert_eq!(all.len(), 7);
    }

    #[test]
    fn drip_rotates_weekly() {
        let net = net();
        let a: std::collections::HashSet<Addr> =
            discovery_drip(&net, Day(700)).into_iter().collect();
        let b: std::collections::HashSet<Addr> =
            discovery_drip(&net, Day(707)).into_iter().collect();
        assert!(!a.is_empty());
        assert!(a != b, "different weekly samples");
    }
}
