//! The filter chain of the hitlist pipeline (Fig. 1, middle).
//!
//! In pipeline order: the request-based **blocklist**, the **aliased
//! prefix filter** (fed by the detector), the **GFW filter** this paper
//! added, and the **30-day unresponsive filter**. Each is a small, testable
//! unit; the service composes them.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sixdust_addr::{Addr, Prefix, PrefixSet};
use sixdust_net::Day;
use sixdust_scan::{Detail, ScanResult};

/// The request-based blocklist: operators who opted out of scanning.
///
/// ```
/// use sixdust_hitlist::Blocklist;
/// let mut b = Blocklist::new();
/// b.add("2001:db8::/32".parse().unwrap());
/// assert!(!b.allows("2001:db8::1".parse().unwrap()));
/// assert!(b.allows("2001:db9::1".parse().unwrap()));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Blocklist {
    prefixes: PrefixSet,
}

impl Blocklist {
    /// Creates an empty blocklist.
    pub fn new() -> Blocklist {
        Blocklist::default()
    }

    /// Seeds the blocklist (the paper seeds from the existing service's
    /// list to honour prior opt-outs).
    pub fn seed(prefixes: impl IntoIterator<Item = Prefix>) -> Blocklist {
        Blocklist { prefixes: prefixes.into_iter().collect() }
    }

    /// Registers an opt-out request.
    pub fn add(&mut self, prefix: Prefix) {
        self.prefixes.insert(prefix);
    }

    /// Whether scanning this address is permitted.
    pub fn allows(&self, addr: Addr) -> bool {
        !self.prefixes.covers_addr(addr)
    }

    /// Number of blocked prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the blocklist is empty.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }
}

/// The GFW cleaning filter (Sec. 4.2): removes UDP/53 successes whose
/// responses carried injection markers (A records answering AAAA queries,
/// or Teredo AAAA records), and remembers every address ever flagged.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GfwFilter {
    impacted: std::collections::HashSet<Addr>,
}

impl GfwFilter {
    /// Creates the filter.
    pub fn new() -> GfwFilter {
        GfwFilter::default()
    }

    /// Rebuilds the filter from a checkpointed impacted set.
    pub fn restore(impacted: impl IntoIterator<Item = Addr>) -> GfwFilter {
        GfwFilter { impacted: impacted.into_iter().collect() }
    }

    /// Scans a UDP/53 result: records injected-flagged targets and returns
    /// the cleaned hit list.
    pub fn clean(&mut self, result: &ScanResult) -> Vec<Addr> {
        let mut clean = Vec::new();
        for o in &result.outcomes {
            match &o.detail {
                Detail::Dns { injected: true, .. } => {
                    self.impacted.insert(o.target);
                }
                _ if o.success => clean.push(o.target),
                _ => {}
            }
        }
        clean
    }

    /// Every address ever seen with an injected response.
    pub fn impacted(&self) -> &std::collections::HashSet<Addr> {
        &self.impacted
    }
}

/// The 30-day unresponsive filter: drops addresses unresponsive for 30+
/// days from the scan target list — and, true to the original service,
/// never re-tests them (Sec. 3.1; re-scanning that pool is Sec. 6's
/// "unresponsive addresses" source).
///
/// Days inside **quarantined** windows (degraded rounds: heavy loss or an
/// outage at the vantage) do not count toward an address's silence, so a
/// multi-round outage cannot mass-evict the pool: eviction is deferred by
/// exactly the quarantined days, not skipped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnresponsiveFilter {
    /// Day an address last answered any protocol (or entered the input).
    last_seen: HashMap<Addr, Day>,
    /// Addresses permanently dropped.
    dropped: std::collections::HashSet<Addr>,
    /// The cutoff in days.
    pub window: u32,
    /// Half-open `[from, until)` day windows whose silence is forgiven.
    /// Absent in checkpoints written before quarantine existed.
    #[serde(default)]
    quarantined: Vec<(Day, Day)>,
}

impl Default for UnresponsiveFilter {
    fn default() -> UnresponsiveFilter {
        UnresponsiveFilter {
            last_seen: HashMap::new(),
            dropped: Default::default(),
            window: 30,
            quarantined: Vec::new(),
        }
    }
}

impl UnresponsiveFilter {
    /// Creates the filter with the paper's 30-day window.
    pub fn new() -> UnresponsiveFilter {
        UnresponsiveFilter::default()
    }

    /// Registers a new input address (its clock starts now).
    pub fn register(&mut self, addr: Addr, day: Day) {
        if !self.dropped.contains(&addr) {
            self.last_seen.entry(addr).or_insert(day);
        }
    }

    /// Marks an address responsive on `day`.
    pub fn mark_responsive(&mut self, addr: Addr, day: Day) {
        if !self.dropped.contains(&addr) {
            self.last_seen.insert(addr, day);
        }
    }

    /// Whether the address is still in the scan rotation.
    pub fn active(&self, addr: Addr) -> bool {
        self.last_seen.contains_key(&addr)
    }

    /// Quarantines the half-open day window `[from, until)`: silence
    /// accumulated across those days is forgiven in [`sweep`](Self::sweep),
    /// because an address cannot prove liveness while the measurement
    /// itself is degraded. Empty or inverted windows are ignored.
    pub fn quarantine(&mut self, from: Day, until: Day) {
        if from < until {
            self.quarantined.push((from, until));
        }
    }

    /// The quarantined `[from, until)` day windows recorded so far.
    pub fn quarantined(&self) -> &[(Day, Day)] {
        &self.quarantined
    }

    /// Ages the filter: addresses silent longer than the window (net of
    /// quarantined days) are permanently dropped. Returns how many were
    /// dropped this sweep.
    pub fn sweep(&mut self, day: Day) -> usize {
        let window = self.window;
        let mut dropped_now = Vec::new();
        let quarantined = std::mem::take(&mut self.quarantined);
        self.last_seen.retain(|addr, last| {
            // Silent days are (last, day] = [last+1, day+1); forgive the
            // days intersecting any quarantined [from, until) window.
            let credit: u32 = quarantined
                .iter()
                .map(|(from, until)| {
                    let lo = from.0.max(last.0 + 1);
                    let hi = until.0.min(day.0 + 1);
                    hi.saturating_sub(lo)
                })
                .sum();
            if day.since(*last).saturating_sub(credit) >= window {
                dropped_now.push(*addr);
                false
            } else {
                true
            }
        });
        self.quarantined = quarantined;
        let n = dropped_now.len();
        self.dropped.extend(dropped_now);
        n
    }

    /// Rebuilds a filter from checkpointed parts (the resume path of
    /// [`ServiceState`](crate::ServiceState)).
    pub fn restore(
        active: impl IntoIterator<Item = (Addr, Day)>,
        dropped: impl IntoIterator<Item = Addr>,
        window: u32,
        quarantined: Vec<(Day, Day)>,
    ) -> UnresponsiveFilter {
        UnresponsiveFilter {
            last_seen: active.into_iter().collect(),
            dropped: dropped.into_iter().collect(),
            window,
            quarantined,
        }
    }

    /// Active scan targets.
    pub fn active_targets(&self) -> impl Iterator<Item = Addr> + '_ {
        self.last_seen.keys().copied()
    }

    /// Active addresses with the day they last answered (checkpoint
    /// capture).
    pub fn active_entries(&self) -> impl Iterator<Item = (Addr, Day)> + '_ {
        self.last_seen.iter().map(|(a, d)| (*a, *d))
    }

    /// The permanently dropped pool (Sec. 6's re-scan source).
    pub fn dropped_pool(&self) -> &std::collections::HashSet<Addr> {
        &self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_net::Protocol;
    use sixdust_scan::{ScanOutcome, ScanStats};

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn blocklist_covers() {
        let mut b = Blocklist::new();
        assert!(b.allows(a("2001:db8::1")));
        b.add("2001:db8::/32".parse().unwrap());
        assert!(!b.allows(a("2001:db8::1")));
        assert!(b.allows(a("2001:db9::1")));
        assert_eq!(b.len(), 1);
    }

    fn dns_result(outcomes: Vec<ScanOutcome>) -> ScanResult {
        ScanResult { protocol: Protocol::Udp53, day: Day(1), outcomes, stats: ScanStats::default() }
    }

    #[test]
    fn gfw_filter_splits_injected() {
        let mut f = GfwFilter::new();
        let clean = f.clean(&dns_result(vec![
            ScanOutcome {
                target: a("2400::1"),
                success: true,
                detail: Detail::Dns { responses: 3, injected: true },
            },
            ScanOutcome {
                target: a("2001:db8::53"),
                success: true,
                detail: Detail::Dns { responses: 1, injected: false },
            },
            ScanOutcome { target: a("2001:db8::99"), success: false, detail: Detail::Silent },
        ]));
        assert_eq!(clean, vec![a("2001:db8::53")]);
        assert!(f.impacted().contains(&a("2400::1")));
        assert_eq!(f.impacted().len(), 1);
    }

    #[test]
    fn unresponsive_filter_lifecycle() {
        let mut f = UnresponsiveFilter::new();
        f.register(a("::1"), Day(0));
        f.register(a("::2"), Day(0));
        f.mark_responsive(a("::1"), Day(20));
        assert_eq!(f.sweep(Day(29)), 0, "nothing out of window yet");
        // ::2 has been silent since day 0.
        assert_eq!(f.sweep(Day(30)), 1);
        assert!(f.active(a("::1")));
        assert!(!f.active(a("::2")));
        assert!(f.dropped_pool().contains(&a("::2")));
        // Dropped addresses never re-enter.
        f.register(a("::2"), Day(31));
        f.mark_responsive(a("::2"), Day(31));
        assert!(!f.active(a("::2")), "never re-tested after exclusion");
    }

    #[test]
    fn register_does_not_reset_clock() {
        let mut f = UnresponsiveFilter::new();
        f.register(a("::1"), Day(0));
        f.register(a("::1"), Day(25));
        assert_eq!(f.sweep(Day(31)), 1, "re-registration must not refresh");
    }

    #[test]
    fn quarantine_defers_eviction_by_exactly_the_window() {
        let mut f = UnresponsiveFilter::new();
        f.register(a("::1"), Day(0));
        // A 10-day outage: days 20..30 are quarantined.
        f.quarantine(Day(20), Day(30));
        assert_eq!(f.sweep(Day(30)), 0, "30 silent days minus 10 forgiven");
        assert_eq!(f.sweep(Day(39)), 0, "still 29 effective silent days");
        assert_eq!(f.sweep(Day(40)), 1, "eviction deferred, not cancelled");
    }

    #[test]
    fn quarantine_outside_silence_interval_grants_nothing() {
        let mut f = UnresponsiveFilter::new();
        f.register(a("::1"), Day(0));
        f.mark_responsive(a("::1"), Day(10));
        // Window entirely before the address went silent.
        f.quarantine(Day(3), Day(8));
        assert_eq!(f.sweep(Day(40)), 1, "credit only for silent days");
    }

    #[test]
    fn quarantine_windows_accumulate_and_empty_windows_are_ignored() {
        let mut f = UnresponsiveFilter::new();
        f.register(a("::1"), Day(0));
        f.quarantine(Day(5), Day(10));
        f.quarantine(Day(15), Day(20));
        f.quarantine(Day(30), Day(30)); // empty, ignored
        f.quarantine(Day(9), Day(4)); // inverted, ignored
        assert_eq!(f.quarantined().len(), 2);
        // 40 silent days, 10 forgiven.
        assert_eq!(f.sweep(Day(39)), 0);
        assert_eq!(f.sweep(Day(40)), 1);
    }

    #[test]
    fn restore_round_trips_filter_parts() {
        let mut f = UnresponsiveFilter::new();
        f.register(a("::1"), Day(0));
        f.register(a("::2"), Day(5));
        f.quarantine(Day(7), Day(9));
        f.sweep(Day(32)); // drops ::1 (32 silent − 2 forgiven ≥ 30)
        assert!(!f.active(a("::1")));
        let g = UnresponsiveFilter::restore(
            f.active_entries(),
            f.dropped_pool().iter().copied(),
            f.window,
            f.quarantined().to_vec(),
        );
        assert!(g.active(a("::2")));
        assert!(!g.active(a("::1")));
        assert!(g.dropped_pool().contains(&a("::1")));
        assert_eq!(g.quarantined(), f.quarantined());
    }
}
