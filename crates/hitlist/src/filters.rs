//! The filter chain of the hitlist pipeline (Fig. 1, middle).
//!
//! In pipeline order: the request-based **blocklist**, the **aliased
//! prefix filter** (fed by the detector), the **GFW filter** this paper
//! added, and the **30-day unresponsive filter**. Each is a small, testable
//! unit; the service composes them.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sixdust_addr::{Addr, Prefix, PrefixSet};
use sixdust_net::Day;
use sixdust_scan::{Detail, ScanResult};

/// The request-based blocklist: operators who opted out of scanning.
///
/// ```
/// use sixdust_hitlist::Blocklist;
/// let mut b = Blocklist::new();
/// b.add("2001:db8::/32".parse().unwrap());
/// assert!(!b.allows("2001:db8::1".parse().unwrap()));
/// assert!(b.allows("2001:db9::1".parse().unwrap()));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Blocklist {
    prefixes: PrefixSet,
}

impl Blocklist {
    /// Creates an empty blocklist.
    pub fn new() -> Blocklist {
        Blocklist::default()
    }

    /// Seeds the blocklist (the paper seeds from the existing service's
    /// list to honour prior opt-outs).
    pub fn seed(prefixes: impl IntoIterator<Item = Prefix>) -> Blocklist {
        Blocklist { prefixes: prefixes.into_iter().collect() }
    }

    /// Registers an opt-out request.
    pub fn add(&mut self, prefix: Prefix) {
        self.prefixes.insert(prefix);
    }

    /// Whether scanning this address is permitted.
    pub fn allows(&self, addr: Addr) -> bool {
        !self.prefixes.covers_addr(addr)
    }

    /// Number of blocked prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the blocklist is empty.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }
}

/// The GFW cleaning filter (Sec. 4.2): removes UDP/53 successes whose
/// responses carried injection markers (A records answering AAAA queries,
/// or Teredo AAAA records), and remembers every address ever flagged.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GfwFilter {
    impacted: std::collections::HashSet<Addr>,
}

impl GfwFilter {
    /// Creates the filter.
    pub fn new() -> GfwFilter {
        GfwFilter::default()
    }

    /// Scans a UDP/53 result: records injected-flagged targets and returns
    /// the cleaned hit list.
    pub fn clean(&mut self, result: &ScanResult) -> Vec<Addr> {
        let mut clean = Vec::new();
        for o in &result.outcomes {
            match &o.detail {
                Detail::Dns { injected: true, .. } => {
                    self.impacted.insert(o.target);
                }
                _ if o.success => clean.push(o.target),
                _ => {}
            }
        }
        clean
    }

    /// Every address ever seen with an injected response.
    pub fn impacted(&self) -> &std::collections::HashSet<Addr> {
        &self.impacted
    }
}

/// The 30-day unresponsive filter: drops addresses unresponsive for 30+
/// days from the scan target list — and, true to the original service,
/// never re-tests them (Sec. 3.1; re-scanning that pool is Sec. 6's
/// "unresponsive addresses" source).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnresponsiveFilter {
    /// Day an address last answered any protocol (or entered the input).
    last_seen: HashMap<Addr, Day>,
    /// Addresses permanently dropped.
    dropped: std::collections::HashSet<Addr>,
    /// The cutoff in days.
    pub window: u32,
}

impl Default for UnresponsiveFilter {
    fn default() -> UnresponsiveFilter {
        UnresponsiveFilter { last_seen: HashMap::new(), dropped: Default::default(), window: 30 }
    }
}

impl UnresponsiveFilter {
    /// Creates the filter with the paper's 30-day window.
    pub fn new() -> UnresponsiveFilter {
        UnresponsiveFilter::default()
    }

    /// Registers a new input address (its clock starts now).
    pub fn register(&mut self, addr: Addr, day: Day) {
        if !self.dropped.contains(&addr) {
            self.last_seen.entry(addr).or_insert(day);
        }
    }

    /// Marks an address responsive on `day`.
    pub fn mark_responsive(&mut self, addr: Addr, day: Day) {
        if !self.dropped.contains(&addr) {
            self.last_seen.insert(addr, day);
        }
    }

    /// Whether the address is still in the scan rotation.
    pub fn active(&self, addr: Addr) -> bool {
        self.last_seen.contains_key(&addr)
    }

    /// Ages the filter: addresses silent longer than the window are
    /// permanently dropped. Returns how many were dropped this sweep.
    pub fn sweep(&mut self, day: Day) -> usize {
        let window = self.window;
        let mut dropped_now = Vec::new();
        self.last_seen.retain(|addr, last| {
            if day.since(*last) >= window {
                dropped_now.push(*addr);
                false
            } else {
                true
            }
        });
        let n = dropped_now.len();
        self.dropped.extend(dropped_now);
        n
    }

    /// Active scan targets.
    pub fn active_targets(&self) -> impl Iterator<Item = Addr> + '_ {
        self.last_seen.keys().copied()
    }

    /// The permanently dropped pool (Sec. 6's re-scan source).
    pub fn dropped_pool(&self) -> &std::collections::HashSet<Addr> {
        &self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_net::Protocol;
    use sixdust_scan::{ScanOutcome, ScanStats};

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn blocklist_covers() {
        let mut b = Blocklist::new();
        assert!(b.allows(a("2001:db8::1")));
        b.add("2001:db8::/32".parse().unwrap());
        assert!(!b.allows(a("2001:db8::1")));
        assert!(b.allows(a("2001:db9::1")));
        assert_eq!(b.len(), 1);
    }

    fn dns_result(outcomes: Vec<ScanOutcome>) -> ScanResult {
        ScanResult {
            protocol: Protocol::Udp53,
            day: Day(1),
            outcomes,
            stats: ScanStats::default(),
        }
    }

    #[test]
    fn gfw_filter_splits_injected() {
        let mut f = GfwFilter::new();
        let clean = f.clean(&dns_result(vec![
            ScanOutcome {
                target: a("2400::1"),
                success: true,
                detail: Detail::Dns { responses: 3, injected: true },
            },
            ScanOutcome {
                target: a("2001:db8::53"),
                success: true,
                detail: Detail::Dns { responses: 1, injected: false },
            },
            ScanOutcome { target: a("2001:db8::99"), success: false, detail: Detail::Silent },
        ]));
        assert_eq!(clean, vec![a("2001:db8::53")]);
        assert!(f.impacted().contains(&a("2400::1")));
        assert_eq!(f.impacted().len(), 1);
    }

    #[test]
    fn unresponsive_filter_lifecycle() {
        let mut f = UnresponsiveFilter::new();
        f.register(a("::1"), Day(0));
        f.register(a("::2"), Day(0));
        f.mark_responsive(a("::1"), Day(20));
        assert_eq!(f.sweep(Day(29)), 0, "nothing out of window yet");
        // ::2 has been silent since day 0.
        assert_eq!(f.sweep(Day(30)), 1);
        assert!(f.active(a("::1")));
        assert!(!f.active(a("::2")));
        assert!(f.dropped_pool().contains(&a("::2")));
        // Dropped addresses never re-enter.
        f.register(a("::2"), Day(31));
        f.mark_responsive(a("::2"), Day(31));
        assert!(!f.active(a("::2")), "never re-tested after exclusion");
    }

    #[test]
    fn register_does_not_reset_clock() {
        let mut f = UnresponsiveFilter::new();
        f.register(a("::1"), Day(0));
        f.register(a("::1"), Day(25));
        assert_eq!(f.sweep(Day(31)), 1, "re-registration must not refresh");
    }
}
