//! # sixdust-hitlist — the IPv6 Hitlist service
//!
//! The paper's primary subject: the long-running hitlist pipeline of
//! Fig. 1, reimplemented end-to-end over the simulated Internet.
//!
//! * [`sources`] — candidate ingestion (domain AAAA, CT logs, RIPE-Atlas
//!   style probes, one-time rDNS, passive dense samples).
//! * [`filters`] — blocklist, the paper's GFW cleaning filter, and the
//!   30-day unresponsive filter.
//! * [`service`] — the orchestrating service: scans, alias detection,
//!   traceroute feedback, longitudinal records, snapshots. Produces both
//!   the *published* and the *cleaned* views of responsiveness.
//! * [`newsources`] — the Sec. 6 evaluation harness: NS/MX, Ark, DET,
//!   the re-scanned unresponsive pool, and TGA candidates.
//! * [`publish`] — the community-facing artifact set the service ships
//!   (responsive addresses, aliased prefixes, GFW-filter output).
//! * [`state`] — serializable checkpoints so a restarted service keeps its
//!   four years of accumulated knowledge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod filters;
pub mod newsources;
pub mod publish;
pub mod service;
pub mod sources;
pub mod state;

pub use filters::{Blocklist, GfwFilter, UnresponsiveFilter};
pub use newsources::{evaluate_source, passive_sources, SourceEval};
pub use publish::{publish, Manifest, Publication};
pub use service::{
    HitlistService, PreparedRound, RoundRecord, ServiceConfig, ServiceConfigBuilder, Snapshot,
};
pub use state::ServiceState;

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_net::{events, Day, FaultConfig, Internet, Protocol, Scale};

    fn net() -> Internet {
        Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless().with_drop_permille(2))
    }

    fn quick_config() -> ServiceConfig {
        ServiceConfig::builder().alias_every_days(14).traceroute_cap(600).build()
    }

    #[test]
    fn service_accumulates_and_scans() {
        let net = net();
        let mut svc = HitlistService::new(quick_config());
        svc.run(&net, Day(0), Day(20));
        assert!(!svc.rounds().is_empty());
        let r = svc.rounds().last().unwrap();
        assert!(r.input_total > 100, "input accumulated: {}", r.input_total);
        assert!(r.total_cleaned > 20, "responsive found: {}", r.total_cleaned);
        assert!(r.targets > 0);
        // ICMP dominates (Table 1 shape). published/cleaned arrays follow
        // Protocol::ALL order: [ICMP, TCP/443, TCP/80, UDP/443, UDP/53].
        assert!(r.cleaned[0] >= r.cleaned[1]);
        assert!(r.cleaned[0] >= r.cleaned[2]);
    }

    #[test]
    fn input_grows_monotonically() {
        let net = net();
        let mut svc = HitlistService::new(quick_config());
        svc.run(&net, Day(0), Day(30));
        let inputs: Vec<usize> = svc.rounds().iter().map(|r| r.input_total).collect();
        for w in inputs.windows(2) {
            assert!(w[1] >= w[0], "input only accumulates: {inputs:?}");
        }
        assert!(inputs.last().unwrap() > inputs.first().unwrap());
    }

    #[test]
    fn gfw_spike_in_published_not_cleaned() {
        let net = net();
        let mut svc = HitlistService::new(quick_config());
        // Run across the start of era 1 so Chinese router addresses are in
        // the input (via traceroute) before the injections begin.
        let start = events::GFW_ERA1.0 .0 - 40;
        svc.run(&net, Day(start), events::GFW_ERA1.0.plus(10));
        let in_era: Vec<&RoundRecord> =
            svc.rounds().iter().filter(|r| r.day >= events::GFW_ERA1.0).collect();
        assert!(!in_era.is_empty());
        let udp53_idx = Protocol::ALL.iter().position(|p| *p == Protocol::Udp53).unwrap();
        let spike = in_era.iter().map(|r| r.published[udp53_idx]).max().unwrap();
        let cleaned = in_era.iter().map(|r| r.cleaned[udp53_idx]).max().unwrap();
        assert!(
            spike > cleaned,
            "published UDP/53 must exceed cleaned during an era: {spike} vs {cleaned}"
        );
        assert!(!svc.gfw_impacted().is_empty());
    }

    #[test]
    fn thirty_day_filter_builds_pool() {
        let net = net();
        let mut svc = HitlistService::new(quick_config());
        svc.run(&net, Day(0), Day(45));
        assert!(
            !svc.unresponsive_pool().is_empty(),
            "rotated CPE and router addresses must age out"
        );
        // Dropped addresses are not scanned again: targets < input.
        let r = svc.rounds().last().unwrap();
        assert!(r.targets < r.input_total);
    }

    #[test]
    fn alias_labels_accumulate() {
        let net = net();
        let mut svc = HitlistService::new(quick_config());
        svc.run(&net, Day(0), Day(16));
        assert!(svc.aliased().len() > 10, "aliased prefixes labeled: {}", svc.aliased().len());
        let r = svc.rounds().last().unwrap();
        assert_eq!(r.aliased_prefixes, svc.aliased().len());
    }

    #[test]
    fn churn_fields_consistent() {
        let net = net();
        let mut svc = HitlistService::new(quick_config());
        svc.run(&net, Day(0), Day(12));
        for w in svc.rounds().windows(2) {
            let (prev, cur) = (&w[0], &w[1]);
            let new_total = cur.churn_brand_new + cur.churn_recurring;
            // total_cleaned = prev_total - gone + new
            assert_eq!(
                cur.total_cleaned,
                prev.total_cleaned - cur.churn_gone + new_total,
                "churn bookkeeping at day {:?}",
                cur.day
            );
        }
    }

    #[test]
    fn snapshots_recorded_on_schedule() {
        let net = net();
        let cfg = quick_config().with_snapshot_days(vec![Day(0), Day(10)]);
        let mut svc = HitlistService::new(cfg);
        svc.run(&net, Day(0), Day(15));
        assert_eq!(svc.snapshots().len(), 2);
        assert_eq!(svc.snapshots()[0].day, Day(0));
        let snap = &svc.snapshots()[1];
        assert!(snap.day >= Day(10));
        assert_eq!(snap.cleaned.len(), 5);
        assert!(!snap.cleaned_total().is_empty());
    }

    #[test]
    fn blocklist_respected() {
        let net = net();
        let mut svc = HitlistService::new(quick_config());
        // Block everything: no probes should find anything.
        svc.blocklist_mut().add("::/0".parse().unwrap());
        svc.run(&net, Day(0), Day(3));
        let r = svc.rounds().last().unwrap();
        assert_eq!(r.targets, 0);
        assert_eq!(r.total_published, 0);
    }

    #[test]
    fn cumulative_superset_of_current() {
        let net = net();
        let mut svc = HitlistService::new(quick_config());
        svc.run(&net, Day(0), Day(20));
        assert!(svc.cumulative().len() as u64 >= svc.rounds().last().unwrap().total_cleaned);
        for a in svc.current_responsive().addrs().take(20) {
            assert!(svc.cumulative().contains_key(&a));
        }
    }

    #[test]
    fn new_sources_pipeline() {
        let net = net();
        let day = Day(100);
        let candidates = passive_sources(&net, day);
        assert!(!candidates.is_empty());
        let eval = evaluate_source(
            &net,
            "passive",
            &candidates,
            &sixdust_addr::PrefixSet::new(),
            &[day, day.plus(7)],
            &sixdust_scan::ScanConfig::default(),
        );
        assert_eq!(eval.scanned, candidates.len());
        assert!(!eval.responsive.is_empty());
        assert!(eval.hit_rate() > 0.0 && eval.hit_rate() <= 1.0);
        assert_eq!(eval.per_proto.len(), 5);
    }

    #[test]
    fn builder_reproduces_default() {
        assert_eq!(ServiceConfig::builder().build(), ServiceConfig::default());
        assert!(ServiceConfig::default().parallel_protocols, "concurrent scans are the default");
        let built = ServiceConfig::builder()
            .scan(sixdust_scan::ScanConfig::builder().attempts(2).build())
            .detector(sixdust_alias::DetectorConfig::default())
            .gfw_filter_from(None)
            .alias_every_days(7)
            .traceroute_cap(123)
            .degraded_loss_permille(400)
            .parallel_protocols(false)
            .snapshot_days(vec![Day(3)])
            .build();
        let chained = ServiceConfig::default()
            .with_scan(sixdust_scan::ScanConfig::default().with_attempts(2))
            .with_detector(sixdust_alias::DetectorConfig::default())
            .with_gfw_filter_from(None)
            .with_alias_every_days(7)
            .with_traceroute_cap(123)
            .with_degraded_loss_permille(400)
            .with_parallel_protocols(false)
            .with_snapshot_days(vec![Day(3)]);
        assert_eq!(built, chained);
        assert_eq!(built.alias_every_days, 7);
        assert_eq!(built.scan.attempts, 2);
        assert_eq!(built.gfw_filter_from, None);
        assert_eq!(built.degraded_loss_permille, 400);
        assert!(!built.parallel_protocols);
    }

    #[test]
    fn parallel_rounds_identical_to_sequential_at_any_thread_budget() {
        // The tentpole determinism pin: concurrent protocol scans with
        // any round-level thread budget produce byte-identical rounds,
        // snapshots and checkpoints to the sequential path.
        let reference_net = net();
        let base = quick_config().with_snapshot_days(vec![Day(5)]);
        let sequential = {
            let mut svc = HitlistService::new(base.clone().with_parallel_protocols(false));
            svc.run(&reference_net, Day(0), Day(10));
            svc
        };
        let seq_checkpoint = ServiceState::capture(&sequential).to_json();
        assert!(!sequential.snapshots().is_empty(), "snapshot comparison is non-trivial");
        for budget in [1usize, 4, 8] {
            let cfg =
                base.clone().with_scan(sixdust_scan::ScanConfig::default().with_threads(budget));
            assert!(cfg.parallel_protocols);
            let mut svc = HitlistService::new(cfg);
            svc.run(&reference_net, Day(0), Day(10));
            assert_eq!(svc.rounds(), sequential.rounds(), "rounds at budget {budget}");
            assert_eq!(svc.snapshots(), sequential.snapshots(), "snapshots at budget {budget}");
            assert_eq!(
                svc.current_responsive(),
                sequential.current_responsive(),
                "responsive set at budget {budget}"
            );
            assert_eq!(
                svc.proto_responsive(),
                sequential.proto_responsive(),
                "per-protocol sets at budget {budget}"
            );
            assert_eq!(
                ServiceState::capture(&svc).to_json(),
                seq_checkpoint,
                "checkpoint bytes at budget {budget}"
            );
        }
    }

    #[test]
    fn single_protocol_blackout_raises_aggregate_loss() {
        // Regression: the aggregate loss estimate used to weight each
        // protocol by the responses it received — so a protocol blacked
        // out entirely contributed *zero* weight and the very rounds the
        // estimate exists to flag looked healthy. Weighting by probes
        // sent (with a previously-responsive protocol's silent scan
        // counting as total loss) makes the blackout visible.
        let blackout_net = Internet::build(Scale::tiny()).with_faults(
            FaultConfig::lossless()
                .with_drop_permille(2)
                .with_outage(sixdust_net::Outage::protocol(Protocol::Icmp, Day(12), Day(18))),
        );
        let mut svc = HitlistService::new(quick_config().with_degraded_loss_permille(150));
        svc.run(&blackout_net, Day(0), Day(30));

        assert!(
            svc.rounds().iter().filter(|r| r.day < Day(12)).any(|r| r.cleaned[0] > 0),
            "ICMP answered before the window, so its silence is loss — not dark space"
        );
        let in_window: Vec<&RoundRecord> =
            svc.rounds().iter().filter(|r| r.day >= Day(12) && r.day < Day(18)).collect();
        assert!(in_window.len() >= 5, "daily cadence fills the window: {}", in_window.len());
        for r in &in_window {
            assert_eq!(r.cleaned[0], 0, "day {:?}: the outage silences ICMP", r.day);
            assert!(
                r.loss_estimate_permille >= 150,
                "day {:?}: one blacked-out protocol must raise the aggregate estimate \
                 (got {}‰) instead of being response-weighted away",
                r.day,
                r.loss_estimate_permille
            );
            assert!(r.degraded, "day {:?}: blackout rounds are quarantined", r.day);
            assert_eq!(r.dropped, 0, "day {:?}: degraded rounds never sweep", r.day);
        }
        // Rounds outside the window stay healthy — the reweighting only
        // moves genuinely broken rounds past the threshold.
        for r in svc.rounds().iter().filter(|r| r.day < Day(12) || r.day >= Day(18)) {
            assert!(!r.degraded, "day {:?} outside the window must stay healthy", r.day);
            assert!(r.loss_estimate_permille < 150, "day {:?}", r.day);
        }
    }

    #[test]
    fn churn_accounting_pinned_across_gfw_filter_deployment() {
        // An independent HashSet-based churn reference, evaluated after
        // every round, pins churn_brand_new / churn_recurring /
        // churn_gone across the raw→cleaned publication flip on the
        // filter deployment day.
        use sixdust_addr::Addr;
        use std::collections::HashSet;
        let net = net();
        let start = events::GFW_ERA1.0 .0 - 40;
        let deploy = events::GFW_ERA1.0.plus(5);
        let mut svc = HitlistService::new(quick_config().with_gfw_filter_from(Some(deploy)));
        let mut prev: HashSet<Addr> = HashSet::new();
        let mut ever: HashSet<Addr> = HashSet::new();
        let mut checked = 0u32;
        svc.run_with(&net, Day(start), deploy.plus(10), |s, day| {
            let r = s.rounds().last().expect("round just ran");
            assert_eq!(r.day, day);
            let cur: HashSet<Addr> = s.current_responsive().addrs().collect();
            let brand_new = cur.difference(&prev).filter(|a| !ever.contains(a)).count() as u64;
            let recurring = cur.difference(&prev).filter(|a| ever.contains(a)).count() as u64;
            let gone = prev.difference(&cur).count() as u64;
            assert_eq!(r.churn_brand_new, brand_new, "brand_new at {day:?}");
            assert_eq!(r.churn_recurring, recurring, "recurring at {day:?}");
            assert_eq!(r.churn_gone, gone, "gone at {day:?}");
            if day >= deploy {
                // Once deployed, the service publishes the cleaned view.
                assert_eq!(r.published, r.cleaned, "published flips to cleaned at {day:?}");
                assert_eq!(r.total_published, r.total_cleaned, "{day:?}");
            }
            ever.extend(cur.iter().copied());
            prev = cur;
            checked += 1;
        });
        assert!(checked > 20, "rounds hooked: {checked}");
        // Before deployment, inside the injection era, the published
        // UDP/53 view exceeded the cleaned one — the flip is observable.
        let udp53_idx = Protocol::ALL.iter().position(|p| *p == Protocol::Udp53).unwrap();
        assert!(
            svc.rounds().iter().any(|r| r.day >= events::GFW_ERA1.0
                && r.day < deploy
                && r.published[udp53_idx] > r.cleaned[udp53_idx]),
            "pre-deployment era rounds publish the spike"
        );
    }

    #[test]
    fn telemetry_reconciles_with_round_records() {
        let net = net();
        let registry = sixdust_telemetry::Registry::new();
        let mut svc = HitlistService::new(quick_config()).with_telemetry(registry.clone());
        svc.run(&net, Day(0), Day(12));
        let snap = registry.snapshot();
        let rounds = svc.rounds();
        assert!(!rounds.is_empty());

        // Per-round counters reconcile exactly with summed RoundRecords.
        assert_eq!(snap.counter("service.rounds"), Some(rounds.len() as u64));
        let sum = |f: &dyn Fn(&RoundRecord) -> u64| rounds.iter().map(f).sum::<u64>();
        assert_eq!(snap.counter("service.targets"), Some(sum(&|r| r.targets as u64)));
        assert_eq!(snap.counter("service.dropped"), Some(sum(&|r| r.dropped as u64)));
        assert_eq!(snap.counter("service.churn.brand_new"), Some(sum(&|r| r.churn_brand_new)));
        assert_eq!(snap.counter("service.churn.recurring"), Some(sum(&|r| r.churn_recurring)));
        assert_eq!(snap.counter("service.churn.gone"), Some(sum(&|r| r.churn_gone)));
        for (i, proto) in Protocol::ALL.into_iter().enumerate() {
            let key = sixdust_scan::proto_metric_key(proto);
            assert_eq!(
                snap.counter(&format!("service.hits.published.{key}")),
                Some(sum(&|r| r.published[i])),
                "published counter for {key}"
            );
            assert_eq!(
                snap.counter(&format!("service.hits.cleaned.{key}")),
                Some(sum(&|r| r.cleaned[i])),
                "cleaned counter for {key}"
            );
        }

        // Every phase histogram gets exactly one sample per round; fast
        // phases round up to 1 ms instead of truncating to 0.
        for phase in ["ingest", "alias", "select", "scan", "gfw", "traceroute", "churn"] {
            let name = format!("service.round.phase.{phase}_ms");
            let h = snap.histogram(&name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(h.count, rounds.len() as u64, "{name} samples");
        }

        // The scanner and alias detector share the registry.
        assert!(snap.counter("scan.icmp.probes_sent").unwrap_or(0) > 0);
        assert_eq!(
            snap.counter("scan.icmp.hits"),
            Some(sum(&|r| r.cleaned[0])),
            "scanner hit counter matches ICMP round records"
        );
        assert!(snap.counter("alias.rounds").unwrap_or(0) >= 1);
    }

    #[test]
    fn gfw_era_trips_udp53_anomaly_flags() {
        let net = net();
        let registry = sixdust_telemetry::Registry::new();
        let mut svc = HitlistService::new(quick_config()).with_telemetry(registry.clone());
        // Same window as gfw_spike_in_published_not_cleaned: enough pre-era
        // rounds to build a baseline, then into the injections.
        let start = events::GFW_ERA1.0 .0 - 40;
        svc.run(&net, Day(start), events::GFW_ERA1.0.plus(10));
        let udp53_idx = Protocol::ALL.iter().position(|p| *p == Protocol::Udp53).unwrap();

        let pre_era: Vec<&RoundRecord> =
            svc.rounds().iter().filter(|r| r.day < events::GFW_ERA1.0).collect();
        let in_era: Vec<&RoundRecord> =
            svc.rounds().iter().filter(|r| r.day >= events::GFW_ERA1.0).collect();
        assert!(pre_era.len() >= 6, "baseline rounds before the era: {}", pre_era.len());
        assert!(!in_era.is_empty());

        // The injections dwarf the organic baseline, so every in-era round
        // must trip the UDP/53 monitor — live detection of Fig. 3's spike.
        for r in &in_era {
            assert!(
                r.anomalous[udp53_idx],
                "round on day {:?} (udp53={}) must be flagged",
                r.day, r.published[udp53_idx]
            );
        }
        // The baseline before the era stays quiet on UDP/53.
        for r in &pre_era {
            assert!(!r.anomalous[udp53_idx], "false alarm on day {:?}", r.day);
        }
        // ICMP sees no injections, so era onset must not *newly* trip its
        // monitor: the first era round carries whatever flag state the
        // organic-growth phase left it with (this window's steady input
        // growth keeps several protocol monitors in a long flagged streak
        // that has nothing to do with the GFW), but the injections
        // themselves must not leak into the ICMP flag.
        let icmp_flagged_pre = pre_era.last().unwrap().anomalous[0];
        assert!(
            !in_era.first().unwrap().anomalous[0] || icmp_flagged_pre,
            "era onset newly tripped the ICMP monitor"
        );

        // The 0/1-per-round anomaly counters reconcile with the records.
        let snap = registry.snapshot();
        let flagged = svc.rounds().iter().filter(|r| r.anomalous[udp53_idx]).count() as u64;
        assert_eq!(snap.counter("service.anomaly.udp53"), Some(flagged));
    }

    #[test]
    fn series_recorder_reconciles_with_round_records() {
        let net = net();
        let mut svc = HitlistService::new(quick_config()).with_series(1024);
        svc.run(&net, Day(0), Day(12));
        let rec = svc.series().expect("recorder attached");
        assert_eq!(rec.len(), svc.rounds().len());

        let udp53_idx = Protocol::ALL.iter().position(|p| *p == Protocol::Udp53).unwrap();
        for (round, record) in rec.rounds().zip(svc.rounds()) {
            assert_eq!(Day(round.key), record.day);
            // The recorder's counter deltas are exactly the per-round values.
            assert_eq!(
                round.value("service.hits.published.udp53"),
                Some(record.published[udp53_idx]),
                "day {:?}",
                record.day
            );
            assert_eq!(
                round.value("service.anomaly.udp53"),
                Some(u64::from(record.anomalous[udp53_idx])),
            );
            assert_eq!(round.value("service.rounds"), Some(1));
        }

        // The recorded series feeds the analysis machinery directly.
        let pts = rec.points("service.hits.published.icmp");
        assert_eq!(pts.len(), svc.rounds().len());
        assert!(pts.iter().map(|(_, v)| v).sum::<u64>() > 0);

        // Exports carry every round.
        assert_eq!(rec.to_jsonl().lines().count(), svc.rounds().len());
        assert_eq!(rec.to_csv().lines().count(), svc.rounds().len() + 1);
    }

    #[test]
    fn service_emits_round_spans_when_tracer_installed() {
        let net = net();
        let registry = sixdust_telemetry::Registry::new();
        let journal = sixdust_telemetry::TraceJournal::new();
        registry.install_tracer(&journal);
        let mut svc = HitlistService::new(quick_config()).with_telemetry(registry);
        svc.run(&net, Day(0), Day(8));

        let events = journal.events();
        let round_spans = events.iter().filter(|e| e.name == "service.round").count();
        assert_eq!(round_spans, svc.rounds().len(), "one span per round");
        assert!(
            events.iter().any(|e| e.name.starts_with("scan.")),
            "scan engine spans ride the installed tracer"
        );
        assert!(
            events.iter().any(|e| e.name == "alias.round"),
            "alias detector spans ride the installed tracer"
        );
        // Spans nest: the round span starts before its scan spans.
        let chrome = journal.to_chrome_json();
        assert!(chrome.contains("\"traceEvents\""));
    }

    #[test]
    fn outage_rounds_are_quarantined_not_swept() {
        // A vantage outage spanning days 20..25 silences every scan.
        let outage_net = Internet::build(Scale::tiny()).with_faults(
            FaultConfig::lossless()
                .with_drop_permille(2)
                .with_outage(sixdust_net::Outage::vantage(Day(20), Day(25))),
        );
        let calm_net = net();
        let mut hit = HitlistService::new(quick_config());
        hit.run(&outage_net, Day(0), Day(45));
        let mut calm = HitlistService::new(quick_config());
        calm.run(&calm_net, Day(0), Day(45));

        // Blackout rounds are classified degraded with a pegged estimate
        // and never sweep.
        let degraded: Vec<&RoundRecord> = hit.rounds().iter().filter(|r| r.degraded).collect();
        assert!(degraded.len() >= 5, "outage rounds flagged: {}", degraded.len());
        for r in &degraded {
            assert!(r.day >= Day(20) && r.day < Day(25), "flag only in window: {:?}", r.day);
            assert_eq!(r.loss_estimate_permille, 1000, "blackout pegs the estimate");
            assert_eq!(r.dropped, 0, "degraded rounds never sweep");
            assert_eq!(r.total_published, 0);
        }
        // Healthy rounds outside the window stay unflagged.
        assert!(hit
            .rounds()
            .iter()
            .filter(|r| r.day < Day(20) || r.day >= Day(25))
            .all(|r| !r.degraded));
        assert_eq!(hit.degraded_rounds(), degraded.len());
        assert_eq!(hit.unresponsive().quarantined().len(), degraded.len());

        // Quarantine defers eviction instead of mass-evicting: the outage
        // run must not drop meaningfully more than the calm run.
        let dropped_hit: usize = hit.rounds().iter().map(|r| r.dropped).sum();
        let dropped_calm: usize = calm.rounds().iter().map(|r| r.dropped).sum();
        assert!(
            dropped_hit <= dropped_calm,
            "outage must not mass-evict: {dropped_hit} vs calm {dropped_calm}"
        );
    }

    #[test]
    fn degraded_round_counter_reconciles() {
        let outage_net = Internet::build(Scale::tiny()).with_faults(
            FaultConfig::lossless()
                .with_drop_permille(2)
                .with_outage(sixdust_net::Outage::vantage(Day(6), Day(9))),
        );
        let registry = sixdust_telemetry::Registry::new();
        let mut svc = HitlistService::new(quick_config()).with_telemetry(registry.clone());
        svc.run(&outage_net, Day(0), Day(12));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("service.degraded_rounds"), Some(svc.degraded_rounds() as u64));
        assert!(svc.degraded_rounds() >= 2);
        let last = svc.rounds().last().unwrap();
        assert_eq!(
            snap.gauge("service.loss_estimate_permille"),
            Some(i64::from(last.loss_estimate_permille))
        );
    }

    #[test]
    fn overlap_pct_math() {
        use sixdust_addr::Addr;
        let a = vec![Addr(1), Addr(2), Addr(3), Addr(4)];
        let b = vec![Addr(3), Addr(4), Addr(5)];
        assert_eq!(newsources::overlap_pct(&a, &b), 50.0);
        assert_eq!(newsources::overlap_pct(&b, &a), 200.0 / 3.0);
        assert_eq!(newsources::overlap_pct(&[], &a), 0.0);
    }
}
