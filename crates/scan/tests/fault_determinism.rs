//! Property tests for the chaos contract of the scan engine: fault
//! injection is *seeded*, so the same `FaultConfig` must yield
//! byte-identical scan results no matter how the work is sharded across
//! worker threads, and re-running the same scan must replay it exactly.

use proptest::prelude::*;
use sixdust_addr::Addr;
use sixdust_net::{Day, FaultConfig, GilbertElliott, Internet, Protocol, Scale};
use sixdust_scan::{scan, ScanConfig, ScanOutcome, ScanResult, ScanStats};

/// Builds a faulty world from the generated knobs. Every fault class the
/// config supports is exercised across the case space.
fn faulty_net(
    fault_seed: u64,
    drop_permille: u32,
    duplicate_permille: u32,
    bursty: bool,
) -> Internet {
    let mut faults = FaultConfig::lossless()
        .with_seed(fault_seed)
        .with_drop_permille(drop_permille)
        .with_duplicate_permille(duplicate_permille);
    if bursty {
        faults = faults.with_burst(GilbertElliott {
            mean_good_days: 6,
            mean_bad_days: 3,
            good_drop_permille: drop_permille,
            bad_drop_permille: 500,
        });
    }
    Internet::build(Scale::tiny()).with_faults(faults)
}

/// The comparable projection of a scan: per-target outcomes in probe
/// order plus every deterministic stats field. (`ScanResult` itself does
/// not implement `Eq` because `duration_secs` is an `f64`.)
fn fingerprint(r: &ScanResult) -> (Vec<ScanOutcome>, u64, u64, u64, u64, u32) {
    let ScanStats { sent, received, hits, retries, loss_estimate_permille, .. } = r.stats;
    (r.outcomes.clone(), sent, received, hits, retries, loss_estimate_permille)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed + same `FaultConfig` ⇒ identical results for 1, 2 and 8
    /// workers. The permutation, the loss coins and the retry loop must
    /// all key off (target, day, attempt), never off scheduling.
    #[test]
    fn results_identical_across_worker_counts(
        fault_seed in any::<u64>(),
        scan_seed in any::<u64>(),
        drop_permille in 0u32..400,
        duplicate_permille in 0u32..200,
        bursty in any::<bool>(),
        attempts in 1u8..4,
        proto_idx in 0usize..5,
        day in 0u32..1376,
    ) {
        let net = faulty_net(fault_seed, drop_permille, duplicate_permille, bursty);
        let day = Day(day);
        let protocol = Protocol::ALL[proto_idx];
        let targets: Vec<Addr> = net
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .map(|(a, ..)| a)
            .take(300)
            .collect();
        prop_assume!(!targets.is_empty());
        let config = |threads: usize| {
            ScanConfig::builder()
                .threads(threads)
                .attempts(attempts)
                .seed(scan_seed)
                .build()
        };
        let single = scan(&net, protocol, &targets, day, &config(1));
        let double = scan(&net, protocol, &targets, day, &config(2));
        let wide = scan(&net, protocol, &targets, day, &config(8));
        prop_assert_eq!(fingerprint(&single), fingerprint(&double));
        prop_assert_eq!(fingerprint(&single), fingerprint(&wide));
        // And the same scan replayed against the same world is a replay,
        // not a re-roll.
        let again = scan(&net, protocol, &targets, day, &config(1));
        prop_assert_eq!(fingerprint(&single), fingerprint(&again));
    }

    /// Loss can only lose: under pure drop faults every hit is a hit the
    /// lossless run also sees, and retries only narrow the gap.
    #[test]
    fn faulty_hits_are_a_subset_of_lossless_hits(
        fault_seed in any::<u64>(),
        drop_permille in 0u32..500,
        attempts in 1u8..4,
        day in 0u32..1376,
    ) {
        let day = Day(day);
        let lossy = faulty_net(fault_seed, drop_permille, 0, false);
        let clean = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
        let targets: Vec<Addr> = clean
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .map(|(a, ..)| a)
            .take(300)
            .collect();
        prop_assume!(!targets.is_empty());
        let config = ScanConfig::builder().attempts(attempts).build();
        let faulty = scan(&lossy, Protocol::Icmp, &targets, day, &config);
        let baseline = scan(&clean, Protocol::Icmp, &targets, day, &config);
        let baseline_hits: std::collections::HashSet<Addr> = baseline.hits().collect();
        for hit in faulty.hits() {
            prop_assert!(baseline_hits.contains(&hit), "{hit} answered only under loss");
        }
        prop_assert!(faulty.stats.hits <= baseline.stats.hits);
    }
}
