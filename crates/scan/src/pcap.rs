//! Libpcap-format packet traces (the smoltcp `--pcap` convention).
//!
//! The wire-mode scanner can dump every probe and reply into a standard
//! pcap file so a run is inspectable in Wireshark — invaluable when
//! checking that the simulated GFW injections or TBT fragments look like
//! their real-world counterparts. Link type is `LINKTYPE_RAW` (101):
//! packets start at the IPv6 header, exactly what the engine handles.

use std::io::{self, Write};

/// Libpcap global-header magic (microsecond timestamps, native order).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packets begin with the IP header.
const LINKTYPE_RAW: u32 = 101;

/// A pcap writer over any sink.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    sink: W,
    /// Virtual timestamp in microseconds (the simulation has no wall
    /// clock; callers advance this as their virtual time progresses).
    now_micros: u64,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer and emits the global header.
    pub fn new(mut sink: W) -> io::Result<PcapWriter<W>> {
        sink.write_all(&PCAP_MAGIC.to_le_bytes())?;
        sink.write_all(&2u16.to_le_bytes())?; // version major
        sink.write_all(&4u16.to_le_bytes())?; // version minor
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&65_535u32.to_le_bytes())?; // snaplen
        sink.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        Ok(PcapWriter { sink, now_micros: 0, packets: 0 })
    }

    /// Advances the virtual clock.
    pub fn advance_micros(&mut self, micros: u64) {
        self.now_micros += micros;
    }

    /// Writes one raw IPv6 packet at the current virtual time.
    pub fn write_packet(&mut self, bytes: &[u8]) -> io::Result<()> {
        let secs = (self.now_micros / 1_000_000) as u32;
        let micros = (self.now_micros % 1_000_000) as u32;
        self.sink.write_all(&secs.to_le_bytes())?;
        self.sink.write_all(&micros.to_le_bytes())?;
        let len = bytes.len() as u32;
        self.sink.write_all(&len.to_le_bytes())?; // captured
        self.sink.write_all(&len.to_le_bytes())?; // original
        self.sink.write_all(bytes)?;
        self.packets += 1;
        Ok(())
    }

    /// Number of packets written so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Flushes and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Minimal pcap reader for roundtrip tests and trace post-processing.
#[derive(Debug)]
pub struct PcapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PcapReader<'a> {
    /// Opens a pcap byte buffer, validating the global header.
    pub fn new(bytes: &'a [u8]) -> Result<PcapReader<'a>, &'static str> {
        if bytes.len() < 24 {
            return Err("truncated pcap header");
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        if magic != PCAP_MAGIC {
            return Err("bad pcap magic");
        }
        let linktype = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
        if linktype != LINKTYPE_RAW {
            return Err("unexpected linktype");
        }
        Ok(PcapReader { bytes, pos: 24 })
    }
}

impl<'a> Iterator for PcapReader<'a> {
    /// `(timestamp_micros, packet_bytes)`.
    type Item = (u64, &'a [u8]);

    fn next(&mut self) -> Option<(u64, &'a [u8])> {
        let hdr = self.bytes.get(self.pos..self.pos + 16)?;
        let secs = u32::from_le_bytes(hdr[0..4].try_into().expect("4 bytes")) as u64;
        let micros = u32::from_le_bytes(hdr[4..8].try_into().expect("4 bytes")) as u64;
        let len = u32::from_le_bytes(hdr[8..12].try_into().expect("4 bytes")) as usize;
        let data = self.bytes.get(self.pos + 16..self.pos + 16 + len)?;
        self.pos += 16 + len;
        Some((secs * 1_000_000 + micros, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_wire::icmpv6::Icmpv6;
    use sixdust_wire::{Ipv6Header, Packet, Transport};

    fn sample_packet() -> Vec<u8> {
        Packet {
            ipv6: Ipv6Header::new(
                "2001:db8::1".parse().unwrap(),
                "2001:db8::2".parse().unwrap(),
                64,
            ),
            transport: Transport::Icmpv6(Icmpv6::EchoRequest {
                ident: 1,
                seq: 2,
                payload: vec![9; 8],
            }),
        }
        .to_bytes()
    }

    #[test]
    fn roundtrip() {
        let pkt = sample_packet();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(&pkt).unwrap();
        w.advance_micros(1_500_000);
        w.write_packet(&pkt).unwrap();
        assert_eq!(w.packets(), 2);
        let buf = w.finish().unwrap();

        let r = PcapReader::new(&buf).unwrap();
        let records: Vec<(u64, Vec<u8>)> = r.map(|(t, d)| (t, d.to_vec())).collect();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, 0);
        assert_eq!(records[1].0, 1_500_000);
        assert_eq!(records[0].1, pkt);
        // The payload parses back into the original packet.
        assert!(Packet::parse(&records[1].1).is_ok());
    }

    #[test]
    fn header_validation() {
        assert!(PcapReader::new(&[0u8; 10]).is_err());
        let mut bad = PcapWriter::new(Vec::new()).unwrap().finish().unwrap();
        bad[0] ^= 0xff;
        assert!(PcapReader::new(&bad).is_err());
    }

    #[test]
    fn empty_capture_iterates_nothing() {
        let buf = PcapWriter::new(Vec::new()).unwrap().finish().unwrap();
        assert_eq!(PcapReader::new(&buf).unwrap().count(), 0);
    }
}
