//! # sixdust-scan — ZMapv6-style scanning and Yarrp traceroute
//!
//! Reimplements the measurement tools the IPv6 Hitlist service runs
//! (Fig. 1 of the paper), against the `sixdust-net` simulator instead of a
//! raw socket:
//!
//! * [`engine`] — the scanner: probe modules for ICMP, TCP/80, TCP/443,
//!   UDP/53 (DNS) and UDP/443 (QUIC), ZMap's cyclic-group target
//!   permutation, token-bucket rate limiting, and faithful classification
//!   semantics (a DNS *response* is a success, which is how GFW injections
//!   polluted the hitlist).
//! * [`yarrp`] — stateless randomized traceroute over the `(target, TTL)`
//!   space, the service's router-harvesting input source.
//! * [`permute`] / [`rate`] — the reusable mechanics.
//! * [`pcap`] — libpcap traces of wire-mode runs (Wireshark-inspectable).
//!
//! Two fidelity levels: [`engine::scan`] drives the simulator's semantic
//! fast path; [`engine::scan_wire`] serializes real packets both ways.
//! The test suite pins them to identical classifications.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod pcap;
pub mod permute;
pub mod rate;
pub mod yarrp;

pub use engine::{
    assemble_scan, proto_metric_key, reassemble_replies, scan, scan_segment, scan_wire,
    scan_wire_with, scan_with, Detail, ScanConfig, ScanConfigBuilder, ScanOutcome, ScanResult,
    ScanStats, SegmentTally,
};
pub use pcap::{PcapReader, PcapWriter};
pub use permute::{CyclicPermutation, PermutationSegment};
pub use rate::{Clock, MonotonicClock, TokenBucket, VirtualClock};
pub use yarrp::{yarrp, Trace, YarrpConfig, YarrpConfigBuilder, YarrpResult};

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_addr::Addr;
    use sixdust_net::{events, Day, FaultConfig, Internet, Protocol, Scale};

    fn net() -> Internet {
        Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless())
    }

    fn responsive_targets(
        net: &Internet,
        day: Day,
        proto: Protocol,
        extra_dark: usize,
    ) -> Vec<Addr> {
        let mut t: Vec<Addr> = net
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .filter(|(_, p, _)| p.contains(proto))
            .map(|(a, ..)| a)
            .take(100)
            .collect();
        for i in 0..extra_dark {
            t.push(Addr(0x3fff_0000_0000_0000_0000_0000_0000_0000u128 + i as u128));
        }
        t
    }

    #[test]
    fn icmp_scan_finds_responsive_hosts() {
        let net = net();
        let day = Day(100);
        let targets = responsive_targets(&net, day, Protocol::Icmp, 50);
        let result = scan(&net, Protocol::Icmp, &targets, day, &ScanConfig::default());
        let hits: Vec<Addr> = result.hits().collect();
        assert_eq!(hits.len(), targets.len() - 50, "every live target hit, no dark hit");
        assert_eq!(result.stats.hits, hits.len() as u64);
        assert!(result.stats.duration_secs > 0.0);
    }

    #[test]
    fn scan_outcome_order_covers_all_targets() {
        let net = net();
        let day = Day(100);
        let targets = responsive_targets(&net, day, Protocol::Icmp, 10);
        let result = scan(&net, Protocol::Icmp, &targets, day, &ScanConfig::default());
        assert_eq!(result.outcomes.len(), targets.len());
        let mut probed: Vec<Addr> = result.outcomes.iter().map(|o| o.target).collect();
        let mut expected = targets.clone();
        probed.sort_unstable();
        expected.sort_unstable();
        assert_eq!(probed, expected);
    }

    #[test]
    fn dns_scan_counts_gfw_injections_as_success() {
        let net = net();
        let day = events::GFW_ERA3.0.plus(5);
        let ct = net.registry().by_asn(4134).unwrap();
        let block = net.registry().get(ct).prefixes[0].network();
        // Dark Chinese addresses.
        let targets: Vec<Addr> = (0..40u128).map(|i| Addr(block.0 | (0xdead_0000 + i))).collect();
        let result = scan(&net, Protocol::Udp53, &targets, day, &ScanConfig::default());
        assert_eq!(result.stats.hits, 40, "ZMap counts injected answers as success");
        for o in &result.outcomes {
            match &o.detail {
                Detail::Dns { responses, injected } => {
                    assert!(*injected, "injection marker set");
                    assert!(*responses >= 2, "multiple injectors");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // The cleaning filter removes all of them.
        assert_eq!(result.clean_hits().count(), 0);
        // Outside the era the same scan is silent.
        let quiet = scan(&net, Protocol::Udp53, &targets, Day(100), &ScanConfig::default());
        assert_eq!(quiet.stats.hits, 0);
    }

    #[test]
    fn tcp_scan_captures_fingerprints() {
        let net = net();
        let day = Day(100);
        let targets = responsive_targets(&net, day, Protocol::Tcp80, 0);
        let result = scan(&net, Protocol::Tcp80, &targets, day, &ScanConfig::default());
        assert_eq!(result.stats.hits as usize, targets.len());
        for o in &result.outcomes {
            match &o.detail {
                Detail::SynAck { optionstext, mss, .. } => {
                    assert!(!optionstext.is_empty());
                    assert!(*mss >= 1280);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn quic_scan() {
        let net = net();
        let day = Day(600);
        let targets = responsive_targets(&net, day, Protocol::Udp443, 20);
        let result = scan(&net, Protocol::Udp443, &targets, day, &ScanConfig::default());
        assert_eq!(result.stats.hits as usize, targets.len() - 20);
    }

    #[test]
    fn wire_and_semantic_paths_agree() {
        let net = net();
        let day = Day(200);
        for proto in [Protocol::Icmp, Protocol::Tcp80, Protocol::Udp53, Protocol::Udp443] {
            let mut targets = responsive_targets(&net, day, proto, 5);
            targets.truncate(30);
            let fast = scan(&net, proto, &targets, day, &ScanConfig::default());
            let wire = scan_wire(&net, proto, &targets, day, &ScanConfig::default());
            let mut fast_hits: Vec<Addr> = fast.hits().collect();
            let mut wire_hits: Vec<Addr> = wire.hits().collect();
            fast_hits.sort_unstable();
            wire_hits.sort_unstable();
            assert_eq!(fast_hits, wire_hits, "{proto}");
            // Fingerprint details must agree too.
            for (f, w) in fast
                .outcomes
                .iter()
                .filter(|o| o.success)
                .flat_map(|f| wire.outcomes.iter().find(|w| w.target == f.target).map(|w| (f, w)))
                .take(10)
            {
                match (&f.detail, &w.detail) {
                    (
                        Detail::SynAck { optionstext: a, window: wa, mss: ma, .. },
                        Detail::SynAck { optionstext: b, window: wb, mss: mb, .. },
                    ) => {
                        assert_eq!(a, b);
                        assert_eq!(wa, wb);
                        assert_eq!(ma, mb);
                    }
                    (Detail::Dns { injected: a, .. }, Detail::Dns { injected: b, .. }) => {
                        assert_eq!(a, b)
                    }
                    (x, y) => assert_eq!(std::mem::discriminant(x), std::mem::discriminant(y)),
                }
            }
        }
    }

    #[test]
    fn multi_day_merge_masks_loss() {
        let lossy = Internet::build(Scale::tiny())
            .with_faults(FaultConfig::lossless().with_drop_permille(300));
        let day = Day(100);
        let targets: Vec<Addr> = lossy
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .filter(|(_, p, _)| p.contains(Protocol::Icmp))
            .map(|(a, ..)| a)
            .take(200)
            .collect();
        let one =
            scan(&lossy, Protocol::Icmp, &targets, day, &ScanConfig::builder().attempts(1).build());
        // With a single attempt per target, drops are only masked by
        // merging *multiple days* (same-day retries with independent
        // loss coins are exercised in retries_mask_loss_and_estimate_it).
        let next_day = scan(&lossy, Protocol::Icmp, &targets, day.plus(1), &ScanConfig::default());
        let merged: std::collections::HashSet<Addr> = one.hits().chain(next_day.hits()).collect();
        assert!(merged.len() >= one.stats.hits as usize);
        assert!(
            merged.len() as f64 >= targets.len() as f64 * 0.80,
            "two-day merge recovers most targets: {} of {}",
            merged.len(),
            targets.len()
        );
    }

    #[test]
    fn yarrp_discovers_routers_and_reaches_targets() {
        let net = net();
        let day = Day(100);
        let targets = responsive_targets(&net, day, Protocol::Icmp, 0);
        let result = yarrp(&net, &targets[..20], day, &YarrpConfig::default());
        assert_eq!(result.traces.len(), 20);
        let routers = result.discovered_routers();
        assert!(!routers.is_empty(), "routers discovered");
        for t in &result.traces {
            assert!(t.reached, "live target reached");
            assert!(!t.hops.is_empty());
            // Hops are sorted by TTL.
            let ttls: Vec<u8> = t.hops.iter().map(|(ttl, _)| *ttl).collect();
            let mut sorted = ttls.clone();
            sorted.sort_unstable();
            assert_eq!(ttls, sorted);
        }
    }

    #[test]
    fn yarrp_unresponsive_target_leaves_last_hop() {
        let net = net();
        let day = Day(100);
        let dark: Vec<Addr> = vec![Addr(0x3fff_dead_0000_0000_0000_0000_0000_0001u128)];
        let result = yarrp(&net, &dark, day, &YarrpConfig::default());
        let t = &result.traces[0];
        assert!(!t.reached);
        let last = t.last_responsive_hop();
        // Transit routers answer even toward dark space.
        assert!(last.is_some());
        assert_ne!(last, Some(dark[0]));
    }

    #[test]
    fn builders_reproduce_defaults() {
        assert_eq!(ScanConfig::builder().build(), ScanConfig::default());
        assert_eq!(YarrpConfig::builder().build(), YarrpConfig::default());
        let cfg = ScanConfig::builder()
            .threads(8)
            .attempts(2)
            .rate_pps(1_000_000)
            .seed(42)
            .dns_qname("example.org")
            .build();
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.attempts, 2);
        assert_eq!(cfg.rate_pps, 1_000_000);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.dns_qname, "example.org");
        // Chainable with_* methods are equivalent.
        assert_eq!(
            ScanConfig::default().with_threads(8).with_rate_pps(1_000_000),
            ScanConfig::builder().threads(8).rate_pps(1_000_000).build()
        );
        assert_eq!(
            YarrpConfig::default().with_max_ttl(20).with_seed(3),
            YarrpConfig::builder().max_ttl(20).seed(3).build()
        );
    }

    #[test]
    fn sent_counts_actual_probes_not_attempts_times_targets() {
        let net = net();
        let day = Day(100);
        let live = responsive_targets(&net, day, Protocol::Icmp, 0);
        let dark = 25usize;
        let targets = responsive_targets(&net, day, Protocol::Icmp, dark);
        let cfg = ScanConfig::builder().attempts(3).build();
        let result = scan(&net, Protocol::Icmp, &targets, day, &cfg);
        // Live targets answer the first probe (no faults); only dark
        // targets burn all three attempts.
        assert_eq!(result.stats.sent, live.len() as u64 + 3 * dark as u64);
        assert!(result.stats.sent < targets.len() as u64 * 3, "no blanket n*attempts");
    }

    #[test]
    fn scan_with_registry_reconciles_counters_with_stats() {
        let net = net();
        let day = Day(100);
        let targets = responsive_targets(&net, day, Protocol::Icmp, 30);
        let reg = sixdust_telemetry::Registry::new();
        let result =
            scan_with(&net, Protocol::Icmp, &targets, day, &ScanConfig::default(), Some(&reg));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("scan.icmp.probes_sent"), Some(result.stats.sent));
        assert_eq!(snap.counter("scan.icmp.responses"), Some(result.stats.received));
        assert_eq!(snap.counter("scan.icmp.hits"), Some(result.stats.hits));
        // Worker chunk timings recorded once per worker.
        let chunks = snap.histogram("scan.worker.chunk_ms").unwrap();
        assert_eq!(chunks.count, ScanConfig::default().threads as u64);
        // The wire path also records rate-limiter stalls.
        let wire =
            scan_wire_with(&net, Protocol::Icmp, &targets, day, &ScanConfig::default(), Some(&reg));
        let snap = reg.snapshot();
        let wait = snap.histogram("scan.rate.wait_us").unwrap();
        assert_eq!(wait.count, wire.stats.sent);
        assert_eq!(
            snap.counter("scan.icmp.probes_sent"),
            Some(result.stats.sent + wire.stats.sent)
        );
    }

    #[test]
    fn scan_outcomes_identical_across_thread_counts() {
        // The permutation is walked as lazily-segmented cycle ranges whose
        // concatenation is the materialized order — so the worker count
        // must never show up in the results.
        let net = net();
        let day = Day(100);
        let targets = responsive_targets(&net, day, Protocol::Icmp, 40);
        let base =
            scan(&net, Protocol::Icmp, &targets, day, &ScanConfig::builder().threads(1).build());
        for threads in [2usize, 4, 8, 32] {
            let cfg = ScanConfig::builder().threads(threads).build();
            let result = scan(&net, Protocol::Icmp, &targets, day, &cfg);
            assert_eq!(result.outcomes, base.outcomes, "{threads} threads");
            assert_eq!(result.stats.sent, base.stats.sent, "{threads} threads");
            assert_eq!(result.stats.received, base.stats.received, "{threads} threads");
            assert_eq!(result.stats.hits, base.stats.hits, "{threads} threads");
        }
    }

    #[test]
    fn attempts_zero_clamps_to_one() {
        // Builder and chainable setter clamp the invalid 0.
        assert_eq!(ScanConfig::builder().attempts(0).build().attempts, 1);
        assert_eq!(ScanConfig::default().with_attempts(0).attempts, 1);
        // Even a hand-rolled struct literal smuggling attempts = 0
        // through direct field access still probes every target once.
        let mut cfg = ScanConfig::default();
        cfg.attempts = 0;
        let net = net();
        let day = Day(100);
        let targets = responsive_targets(&net, day, Protocol::Icmp, 5);
        let result = scan(&net, Protocol::Icmp, &targets, day, &cfg);
        assert_eq!(result.stats.sent, targets.len() as u64);
        assert!(result.stats.hits > 0);
    }

    #[test]
    fn retries_mask_loss_and_estimate_it() {
        let lossy = Internet::build(Scale::tiny())
            .with_faults(FaultConfig::lossless().with_drop_permille(300));
        let day = Day(100);
        let targets: Vec<Addr> = lossy
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .filter(|(_, p, _)| p.contains(Protocol::Icmp))
            .map(|(a, ..)| a)
            .take(200)
            .collect();
        let single =
            scan(&lossy, Protocol::Icmp, &targets, day, &ScanConfig::builder().attempts(1).build());
        assert_eq!(single.stats.retries, 0);
        assert_eq!(single.stats.loss_estimate_permille, 0, "one attempt cannot observe loss");
        let retried =
            scan(&lossy, Protocol::Icmp, &targets, day, &ScanConfig::builder().attempts(4).build());
        assert!(
            retried.stats.hits > single.stats.hits,
            "independent retry coins recover dropped targets: {} vs {}",
            retried.stats.hits,
            single.stats.hits
        );
        assert!(
            retried.stats.hits as f64 >= targets.len() as f64 * 0.95,
            "four attempts at 30% loss recover nearly everyone: {}",
            retried.stats.hits
        );
        assert!(retried.stats.retries > 0);
        // The estimator should land in the neighbourhood of the true 300‰.
        assert!(
            (150..=450).contains(&retried.stats.loss_estimate_permille),
            "loss estimate {}‰ near configured 300‰",
            retried.stats.loss_estimate_permille
        );
    }

    #[test]
    fn retry_backoff_extends_virtual_duration_only() {
        let lossy = Internet::build(Scale::tiny())
            .with_faults(FaultConfig::lossless().with_drop_permille(400));
        let day = Day(100);
        let targets: Vec<Addr> = lossy
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .filter(|(_, p, _)| p.contains(Protocol::Icmp))
            .map(|(a, ..)| a)
            .take(100)
            .collect();
        let flat = ScanConfig::builder().attempts(3).build();
        let backoff = ScanConfig::builder().attempts(3).retry_backoff_ms(10).build();
        let a = scan(&lossy, Protocol::Icmp, &targets, day, &flat);
        let b = scan(&lossy, Protocol::Icmp, &targets, day, &backoff);
        // Same seed, same coins: identical outcomes and retry counts.
        assert_eq!(a.stats.hits, b.stats.hits);
        assert_eq!(a.stats.retries, b.stats.retries);
        assert_eq!(a.stats.backoff_secs, 0.0);
        assert!(b.stats.retries > 0);
        assert!(b.stats.backoff_secs > 0.0, "backoff accrues virtual time");
        assert!(b.stats.duration_secs > a.stats.duration_secs);
    }

    #[test]
    fn lossy_scan_records_retry_telemetry() {
        let lossy = Internet::build(Scale::tiny())
            .with_faults(FaultConfig::lossless().with_drop_permille(300));
        let day = Day(100);
        let targets: Vec<Addr> = lossy
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .filter(|(_, p, _)| p.contains(Protocol::Icmp))
            .map(|(a, ..)| a)
            .take(150)
            .collect();
        let reg = sixdust_telemetry::Registry::new();
        let cfg = ScanConfig::builder().attempts(3).build();
        let result = scan_with(&lossy, Protocol::Icmp, &targets, day, &cfg, Some(&reg));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("scan.icmp.retries"), Some(result.stats.retries));
        assert!(result.stats.retries > 0);
        assert_eq!(
            snap.gauge("scan.icmp.loss_estimate_permille"),
            Some(i64::from(result.stats.loss_estimate_permille))
        );
    }

    #[test]
    fn thread_clamp_is_counted_not_silent() {
        let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
        let day = Day(100);
        let targets: Vec<Addr> = net
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .map(|(a, ..)| a)
            .take(50)
            .collect();
        let reg = sixdust_telemetry::Registry::new();
        // Out-of-range settings clamp (0 -> 1, 200 -> 32) and count.
        for threads in [0usize, 200] {
            let cfg = ScanConfig::builder().threads(threads).build();
            scan_with(&net, Protocol::Icmp, &targets, day, &cfg, Some(&reg));
        }
        assert_eq!(reg.snapshot().counter("scan.config.threads_clamped"), Some(2));
        // An in-range setting does not.
        let cfg = ScanConfig::builder().threads(4).build();
        scan_with(&net, Protocol::Icmp, &targets, day, &cfg, Some(&reg));
        assert_eq!(reg.snapshot().counter("scan.config.threads_clamped"), Some(2));
    }

    #[test]
    fn chinese_last_hops_rotate_over_time() {
        let net = net();
        let ct = net.registry().by_asn(4134).unwrap();
        let block = net.registry().get(ct).prefixes[0].network();
        let dark = vec![Addr(block.0 | 0xabcd)];
        let cfg = YarrpConfig::default();
        let h1 = yarrp(&net, &dark, Day(100), &cfg).traces[0].last_responsive_hop().unwrap();
        let h2 = yarrp(&net, &dark, Day(130), &cfg).traces[0].last_responsive_hop().unwrap();
        assert_ne!(h1, h2, "rotating Chinese router interfaces accumulate");
        assert_eq!(net.registry().origin(h1), Some(ct));
    }
}
