//! The ZMapv6-style scan engine.
//!
//! One probe module per hitlist protocol, a cyclic-group permutation over
//! the target list, a token-bucket rate limiter on virtual time, and —
//! crucially — ZMap's actual classification semantics, including the flaw
//! the paper's GFW analysis hinges on: **any parseable DNS response counts
//! as success**, so injected answers for `www.google.com` make dark
//! Chinese addresses look UDP/53-responsive. The engine records whether
//! answers carried injection markers (A records / Teredo AAAA) so the
//! hitlist's cleaning filter can act on them, exactly like the ZMap-output
//! filter tool the authors published.

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;
use sixdust_net::{Day, Internet, ProbeKind, Protocol, Response};
use sixdust_telemetry::{Registry, SpanTimer};
use sixdust_wire::dns::DnsMessage;
use sixdust_wire::icmpv6::Icmpv6;
use sixdust_wire::quic::{QuicPacket, FORCE_VN_VERSION};
use sixdust_wire::tcp::TcpSegment;
use sixdust_wire::udp::UdpDatagram;
use sixdust_wire::{Ipv6Header, Packet, Transport};

use crate::permute::CyclicPermutation;
use crate::rate::{Clock, TokenBucket, VirtualClock};

/// The DNS name the hitlist's UDP/53 module queries. Blocked by the GFW —
/// which is the root cause of the injected-response pollution.
pub const DEFAULT_DNS_QNAME: &str = "www.google.com";

/// Stable metric-key segment for a protocol, used in names like
/// `scan.icmp.hits` and `service.hits.cleaned.udp53`.
pub fn proto_metric_key(protocol: Protocol) -> &'static str {
    match protocol {
        Protocol::Icmp => "icmp",
        Protocol::Tcp443 => "tcp443",
        Protocol::Tcp80 => "tcp80",
        Protocol::Udp443 => "udp443",
        Protocol::Udp53 => "udp53",
    }
}

/// Scan engine configuration.
///
/// Construct via [`ScanConfig::builder`] (or the chainable `with_*`
/// methods); direct field access remains available for serialization
/// compatibility but new code should prefer the builder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanConfig {
    /// Worker threads. The engine clamps the effective value to
    /// `1..=32` at scan time — a `0` runs single-threaded and anything
    /// above 32 runs with 32. A clamped scan bumps the
    /// `scan.config.threads_clamped` telemetry counter (once per scan)
    /// when a registry is attached, so a misconfigured fleet is visible
    /// instead of silently slower.
    pub threads: usize,
    /// Probes sent per target (ZMap default 1; retries mask loss).
    ///
    /// Invariant: `attempts >= 1`. The builder and `with_attempts` clamp
    /// 0 to 1 (a "scan that sends nothing" config is always a bug);
    /// the engine additionally defends against a hand-rolled struct
    /// literal smuggling a 0 through direct field access.
    pub attempts: u8,
    /// Probe rate in packets per second of virtual time.
    pub rate_pps: u64,
    /// Permutation seed.
    pub seed: u64,
    /// DNS query name for the UDP/53 module.
    pub dns_qname: String,
    /// Base virtual-time backoff between retry attempts, in milliseconds.
    /// Attempt `i` (1-based retry) waits `retry_backoff_ms · 2^(i−1)`
    /// before re-probing, giving bursty loss time to clear; the waits are
    /// virtual (accounted in [`ScanStats::backoff_secs`]) and never sleep
    /// the real thread. `0` (the default) retries back-to-back, matching
    /// the engine's historical behaviour.
    #[serde(default)]
    pub retry_backoff_ms: u64,
}

impl Default for ScanConfig {
    fn default() -> ScanConfig {
        ScanConfig {
            threads: 4,
            attempts: 1,
            rate_pps: 100_000,
            seed: 0x5CA7,
            dns_qname: DEFAULT_DNS_QNAME.to_string(),
            retry_backoff_ms: 0,
        }
    }
}

impl ScanConfig {
    /// Starts a builder seeded with the default configuration.
    ///
    /// ```
    /// use sixdust_scan::ScanConfig;
    /// let cfg = ScanConfig::builder().threads(8).rate_pps(1_000_000).build();
    /// assert_eq!(cfg.threads, 8);
    /// ```
    pub fn builder() -> ScanConfigBuilder {
        ScanConfigBuilder::default()
    }

    /// Returns the config with the worker-thread count replaced.
    pub fn with_threads(mut self, threads: usize) -> ScanConfig {
        self.threads = threads;
        self
    }

    /// Returns the config with the per-target attempt count replaced,
    /// clamped to at least 1.
    pub fn with_attempts(mut self, attempts: u8) -> ScanConfig {
        self.attempts = attempts.max(1);
        self
    }

    /// Returns the config with the retry backoff base replaced.
    pub fn with_retry_backoff_ms(mut self, retry_backoff_ms: u64) -> ScanConfig {
        self.retry_backoff_ms = retry_backoff_ms;
        self
    }

    /// Returns the config with the probe rate replaced.
    pub fn with_rate_pps(mut self, rate_pps: u64) -> ScanConfig {
        self.rate_pps = rate_pps;
        self
    }

    /// Returns the config with the permutation seed replaced.
    pub fn with_seed(mut self, seed: u64) -> ScanConfig {
        self.seed = seed;
        self
    }

    /// Returns the config with the UDP/53 query name replaced.
    pub fn with_dns_qname(mut self, dns_qname: impl Into<String>) -> ScanConfig {
        self.dns_qname = dns_qname.into();
        self
    }
}

/// Builder for [`ScanConfig`]; starts from [`ScanConfig::default`].
#[derive(Debug, Clone, Default)]
pub struct ScanConfigBuilder {
    config: ScanConfig,
}

impl ScanConfigBuilder {
    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> ScanConfigBuilder {
        self.config.threads = threads;
        self
    }

    /// Sets the per-target attempt count, clamped to at least 1: a scan
    /// that never sends is always a misconfiguration, so `attempts(0)`
    /// yields 1 instead of a silently empty scan.
    pub fn attempts(mut self, attempts: u8) -> ScanConfigBuilder {
        self.config.attempts = attempts.max(1);
        self
    }

    /// Sets the base virtual-time backoff between retries (milliseconds).
    pub fn retry_backoff_ms(mut self, retry_backoff_ms: u64) -> ScanConfigBuilder {
        self.config.retry_backoff_ms = retry_backoff_ms;
        self
    }

    /// Sets the probe rate in packets per second of virtual time.
    pub fn rate_pps(mut self, rate_pps: u64) -> ScanConfigBuilder {
        self.config.rate_pps = rate_pps;
        self
    }

    /// Sets the permutation seed.
    pub fn seed(mut self, seed: u64) -> ScanConfigBuilder {
        self.config.seed = seed;
        self
    }

    /// Sets the DNS query name for the UDP/53 module.
    pub fn dns_qname(mut self, dns_qname: impl Into<String>) -> ScanConfigBuilder {
        self.config.dns_qname = dns_qname.into();
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> ScanConfig {
        self.config
    }
}

/// Per-target scan outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanOutcome {
    /// Probed address.
    pub target: Addr,
    /// Whether the module classified the target as responsive.
    pub success: bool,
    /// Response detail.
    pub detail: Detail,
}

/// Classification detail per protocol module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Detail {
    /// No response.
    Silent,
    /// ICMP echo reply.
    Echo,
    /// TCP SYN-ACK with fingerprint features.
    SynAck {
        /// Order-preserving options string.
        optionstext: String,
        /// Window size.
        window: u16,
        /// Window scale.
        wscale: u8,
        /// MSS.
        mss: u16,
        /// Initial TTL estimate.
        ittl: u8,
    },
    /// TCP RST (alive, port closed — not counted as success).
    Rst,
    /// DNS response(s).
    Dns {
        /// Number of responses received (GFW injects several).
        responses: u8,
        /// Whether any response carried injection markers.
        injected: bool,
    },
    /// QUIC version negotiation.
    QuicVn,
}

/// Aggregate statistics of one scan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScanStats {
    /// Probes sent.
    pub sent: u64,
    /// Responses received.
    pub received: u64,
    /// Targets classified responsive.
    pub hits: u64,
    /// Virtual scan duration in seconds (targets / rate), including any
    /// virtual retry backoff.
    pub duration_secs: f64,
    /// Probes beyond the first attempt per target (0 when `attempts` is 1
    /// or every target answered immediately).
    #[serde(default)]
    pub retries: u64,
    /// Online loss estimate in permille: of the targets that eventually
    /// responded, the fraction of their probe attempts that went
    /// unanswered — `failed · 1000 / (failed + responders)`. Silent
    /// targets are excluded (dark space is indistinguishable from loss),
    /// so with `attempts == 1` this is always 0; retries are what make
    /// loss observable.
    #[serde(default)]
    pub loss_estimate_permille: u32,
    /// Virtual seconds spent in retry backoff (already folded into
    /// `duration_secs`).
    #[serde(default)]
    pub backoff_secs: f64,
}

/// A completed scan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanResult {
    /// Scanned protocol.
    pub protocol: Protocol,
    /// Simulation day the scan ran.
    pub day: Day,
    /// Per-target outcomes, in probe order.
    pub outcomes: Vec<ScanOutcome>,
    /// Aggregate statistics.
    pub stats: ScanStats,
}

impl ScanResult {
    /// Iterates the responsive targets.
    pub fn hits(&self) -> impl Iterator<Item = Addr> + '_ {
        self.outcomes.iter().filter(|o| o.success).map(|o| o.target)
    }

    /// Iterates responsive targets that did NOT look GFW-injected — the
    /// cleaning filter this paper added to the service.
    pub fn clean_hits(&self) -> impl Iterator<Item = Addr> + '_ {
        self.outcomes
            .iter()
            .filter(|o| o.success && !matches!(o.detail, Detail::Dns { injected: true, .. }))
            .map(|o| o.target)
    }
}

/// The probe a protocol module sends.
pub fn probe_for(protocol: Protocol, dns_qname: &str) -> ProbeKind {
    match protocol {
        Protocol::Icmp => ProbeKind::IcmpEcho { size: 8 },
        Protocol::Tcp80 => ProbeKind::TcpSyn { port: 80 },
        Protocol::Tcp443 => ProbeKind::TcpSyn { port: 443 },
        Protocol::Udp53 => ProbeKind::Dns { qname: dns_qname.to_string() },
        Protocol::Udp443 => ProbeKind::Quic,
    }
}

/// Classifies semantic responses per module.
pub fn classify(protocol: Protocol, responses: &[Response]) -> (bool, Detail) {
    if responses.is_empty() {
        return (false, Detail::Silent);
    }
    match protocol {
        Protocol::Icmp => {
            if responses.iter().any(|r| matches!(r, Response::EchoReply { .. })) {
                (true, Detail::Echo)
            } else {
                (false, Detail::Silent)
            }
        }
        Protocol::Tcp80 | Protocol::Tcp443 => {
            for r in responses {
                if let Response::SynAck { fp } = r {
                    return (
                        true,
                        Detail::SynAck {
                            optionstext: fp.optionstext.clone(),
                            window: fp.window,
                            wscale: fp.wscale,
                            mss: fp.mss,
                            ittl: fp.ittl,
                        },
                    );
                }
            }
            if responses.iter().any(|r| matches!(r, Response::Rst)) {
                (false, Detail::Rst)
            } else {
                (false, Detail::Silent)
            }
        }
        Protocol::Udp53 => {
            let dns: Vec<&DnsMessage> = responses
                .iter()
                .filter_map(|r| match r {
                    Response::Dns(m) => Some(m),
                    _ => None,
                })
                .collect();
            if dns.is_empty() {
                (false, Detail::Silent)
            } else {
                // ZMap semantics: any response is success. The injection
                // marker is recorded for the post-scan cleaning filter.
                let injected = dns.iter().any(|m| sixdust_net::gfw::looks_injected(m));
                (true, Detail::Dns { responses: dns.len().min(255) as u8, injected })
            }
        }
        Protocol::Udp443 => {
            if responses.iter().any(|r| matches!(r, Response::QuicVn)) {
                (true, Detail::QuicVn)
            } else {
                (false, Detail::Silent)
            }
        }
    }
}

/// Per-segment probe accounting, merged into [`ScanStats`] once every
/// segment of a scan has run. Every field is a sum, so merging segment
/// tallies in any order yields the same totals — what lets a
/// work-stealing executor hand segments to arbitrary workers without
/// perturbing the assembled [`ScanResult`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SegmentTally {
    /// Probe attempts actually emitted (the retry loop stops early).
    pub sent: u64,
    /// Attempts beyond the first, per target.
    pub retries: u64,
    /// Unanswered attempts of targets that eventually responded — the
    /// numerator of the loss estimator. Silent targets never contribute.
    pub failed_of_responders: u64,
    /// Targets that produced at least one response.
    pub responders: u64,
    /// Accumulated exponential-backoff wait.
    pub backoff_ms: u64,
}

impl SegmentTally {
    /// Accumulates another segment's counts into this tally.
    pub fn merge(&mut self, other: SegmentTally) {
        self.sent += other.sent;
        self.retries += other.retries;
        self.failed_of_responders += other.failed_of_responders;
        self.responders += other.responders;
        self.backoff_ms += other.backoff_ms;
    }
}

/// Probes one contiguous range of a scan's permutation cycle and returns
/// the outcomes (in cycle order) plus the segment's tally.
///
/// This is the probing kernel [`scan_with`] fans out to its workers, made
/// public so external executors (the multi-vantage work-stealing
/// scheduler in `sixdust-vantage`) can partition a scan differently:
/// concatenating the outcome vectors of contiguous segments in cycle
/// order and merging their tallies reproduces `scan_with`'s result
/// byte-for-byte regardless of which thread ran which segment —
/// see [`assemble_scan`].
pub fn scan_segment(
    net: &Internet,
    protocol: Protocol,
    targets: &[Addr],
    day: Day,
    config: &ScanConfig,
    perm: &CyclicPermutation,
    start: u64,
    len: u64,
) -> (Vec<ScanOutcome>, SegmentTally) {
    let probe = probe_for(protocol, &config.dns_qname);
    let mut out = Vec::with_capacity(len.min(targets.len() as u64) as usize);
    let mut tally = SegmentTally::default();
    for i in perm.segment(start, len) {
        let target = targets[i as usize];
        let mut responses = Vec::new();
        // The retry loop stops on the first response, so count the
        // probes actually emitted instead of assuming `attempts` per
        // target. Each attempt draws an independent loss coin, so
        // retries mask transient loss rather than replaying it.
        let mut failed_before_response = 0u64;
        for attempt in 0..config.attempts.max(1) {
            if attempt > 0 {
                tally.retries += 1;
                tally.backoff_ms += config
                    .retry_backoff_ms
                    .saturating_mul(1u64 << (u64::from(attempt) - 1).min(32));
            }
            tally.sent += 1;
            responses = net.probe_attempt(target, &probe, day, attempt);
            if !responses.is_empty() {
                break;
            }
            failed_before_response += 1;
        }
        if !responses.is_empty() {
            tally.responders += 1;
            tally.failed_of_responders += failed_before_response;
        }
        let (success, detail) = classify(protocol, &responses);
        out.push(ScanOutcome { target, success, detail });
    }
    (out, tally)
}

/// Assembles a [`ScanResult`] from merged segment outcomes and the
/// summed tally, recording the scan's telemetry tail. `outcomes` must be
/// the concatenation of contiguous [`scan_segment`] ranges covering the
/// whole cycle, in cycle order.
pub fn assemble_scan(
    protocol: Protocol,
    day: Day,
    config: &ScanConfig,
    outcomes: Vec<ScanOutcome>,
    tally: SegmentTally,
    telemetry: Option<&Registry>,
) -> ScanResult {
    let received = outcomes.iter().filter(|o| !matches!(o.detail, Detail::Silent)).count() as u64;
    let hits = outcomes.iter().filter(|o| o.success).count() as u64;
    let loss_samples = tally.failed_of_responders + tally.responders;
    let loss_estimate_permille = if loss_samples == 0 {
        0
    } else {
        (tally.failed_of_responders * 1000 / loss_samples) as u32
    };
    if let Some(reg) = telemetry {
        let key = proto_metric_key(protocol);
        reg.counter(&format!("scan.{key}.probes_sent")).add(tally.sent);
        reg.counter(&format!("scan.{key}.responses")).add(received);
        reg.counter(&format!("scan.{key}.hits")).add(hits);
        reg.counter(&format!("scan.{key}.retries")).add(tally.retries);
        reg.gauge(&format!("scan.{key}.loss_estimate_permille"))
            .set(i64::from(loss_estimate_permille));
    }
    let backoff_secs = tally.backoff_ms as f64 / 1e3;
    ScanResult {
        protocol,
        day,
        outcomes,
        stats: ScanStats {
            sent: tally.sent,
            received,
            hits,
            duration_secs: tally.sent as f64 / config.rate_pps.max(1) as f64 + backoff_secs,
            retries: tally.retries,
            loss_estimate_permille,
            backoff_secs,
        },
    }
}

/// Renders a worker-panic payload as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Runs one protocol scan over the target list (semantic fast path).
pub fn scan(
    net: &Internet,
    protocol: Protocol,
    targets: &[Addr],
    day: Day,
    config: &ScanConfig,
) -> ScanResult {
    scan_with(net, protocol, targets, day, config, None)
}

/// [`scan`] with an optional telemetry registry attached.
///
/// With a registry, the scan records per-protocol counters
/// (`scan.<proto>.probes_sent` / `.responses` / `.hits`) and per-worker
/// chunk timings (`scan.worker.chunk_ms`). If the registry has a trace
/// journal installed (see [`Registry::install_tracer`]), the scan also
/// emits one `scan.<proto>` span covering the whole scan plus one
/// `scan.worker` span per worker chunk. With `None` the only cost over
/// the uninstrumented path is a handful of branches.
pub fn scan_with(
    net: &Internet,
    protocol: Protocol,
    targets: &[Addr],
    day: Day,
    config: &ScanConfig,
    telemetry: Option<&Registry>,
) -> ScanResult {
    let n = targets.len() as u64;
    let perm = CyclicPermutation::new(n, config.seed ^ u64::from(day.0));
    let threads = config.threads.clamp(1, 32);
    if threads != config.threads {
        // The clamp used to be silent; a configured 0 or 200 ran with a
        // different parallelism than asked and nothing recorded the fact.
        if let Some(t) = telemetry {
            t.counter("scan.config.threads_clamped").incr();
        }
    }
    // Partition the permutation's raw group cycle instead of materializing
    // the whole order (one u64 per target, five times a round): each worker
    // jumps to its contiguous range of cycle positions (O(log start) setup,
    // O(1) state) and walks it lazily. Concatenating the ranges in worker
    // order reproduces the materialized order exactly, so outcomes stay
    // byte-identical for any worker count.
    let cycle = perm.cycle_len();
    let per_worker = cycle.div_ceil(threads as u64).max(1);
    let ranges: Vec<(u64, u64)> = (0..cycle)
        .step_by(per_worker as usize)
        .map(|start| (start, per_worker.min(cycle - start)))
        .collect();
    let chunk_hist = telemetry.map(|t| t.histogram("scan.worker.chunk_ms"));
    // Resolved once per scan; workers clone the journal handle, not the
    // registry lookup.
    let tracer = telemetry.and_then(|t| t.tracer());
    let _scan_span = tracer.as_ref().map(|j| {
        j.span_with(
            &format!("scan.{}", proto_metric_key(protocol)),
            &[("day", day.0.to_string().as_str()), ("targets", n.to_string().as_str())],
        )
    });

    let mut outcomes: Vec<ScanOutcome> = Vec::with_capacity(targets.len());
    let mut tally = SegmentTally::default();
    let results: Vec<(Vec<ScanOutcome>, SegmentTally)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(worker, &(start, len))| {
                let chunk_hist = chunk_hist.clone();
                let worker_tracer = tracer.clone();
                let perm = &perm;
                let handle = s.spawn(move |_| {
                    let _span = chunk_hist.as_ref().map(SpanTimer::start);
                    let _trace_span = worker_tracer.as_ref().map(|j| {
                        j.span_with(
                            "scan.worker",
                            &[
                                ("worker", worker.to_string().as_str()),
                                ("chunk", len.to_string().as_str()),
                            ],
                        )
                    });
                    scan_segment(net, protocol, targets, day, config, perm, start, len)
                });
                (worker, start, len, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(|(worker, start, len, handle)| {
                handle.join().unwrap_or_else(|payload| {
                    panic!(
                        "scan worker {worker} ({protocol} day {}, cycle positions \
                         {start}..{}, {len} of them) panicked: {}",
                        day.0,
                        start + len,
                        panic_message(&*payload)
                    )
                })
            })
            .collect()
    })
    .unwrap_or_else(|payload| {
        panic!(
            "scan scope ({protocol} day {}, {n} targets) panicked: {}",
            day.0,
            panic_message(&*payload)
        )
    });
    for (r, segment_tally) in results {
        outcomes.extend(r);
        tally.merge(segment_tally);
    }
    assemble_scan(protocol, day, config, outcomes, tally, telemetry)
}

/// Runs the same scan through the byte-level wire path. Slower; used by
/// tests and benches to validate that the fast path is faithful.
pub fn scan_wire(
    net: &Internet,
    protocol: Protocol,
    targets: &[Addr],
    day: Day,
    config: &ScanConfig,
) -> ScanResult {
    scan_wire_with(net, protocol, targets, day, config, None)
}

/// [`scan_wire`] with an optional telemetry registry attached. Adds the
/// per-probe rate-limiter stall (`scan.rate.wait_us`, virtual
/// microseconds) on top of the per-protocol counters of [`scan_with`].
pub fn scan_wire_with(
    net: &Internet,
    protocol: Protocol,
    targets: &[Addr],
    day: Day,
    config: &ScanConfig,
    telemetry: Option<&Registry>,
) -> ScanResult {
    let src = net.registry().vantage_addr();
    let bucket = TokenBucket::new(config.rate_pps, 128);
    let clock = VirtualClock::new();
    let wait_hist = telemetry.map(|t| t.histogram("scan.rate.wait_us"));
    let mut outcomes = Vec::with_capacity(targets.len());
    for i in CyclicPermutation::new(targets.len() as u64, config.seed ^ u64::from(day.0)) {
        let target = targets[i as usize];
        let mut waited_us = 0u64;
        while !bucket.try_take(&clock) {
            let step = bucket.wait_hint_micros().max(1);
            waited_us += step;
            clock.advance(step);
        }
        if let Some(h) = &wait_hist {
            h.record(waited_us);
        }
        let probe_bytes = build_probe_bytes(protocol, src, target, &config.dns_qname, i as u32);
        let reply_bytes = reassemble_replies(net.send_bytes(&probe_bytes, day));
        let responses: Vec<Response> =
            reply_bytes.iter().filter_map(|b| parse_response(protocol, b)).collect();
        let (success, detail) = classify(protocol, &responses);
        outcomes.push(ScanOutcome { target, success, detail });
    }
    let received = outcomes.iter().filter(|o| !matches!(o.detail, Detail::Silent)).count() as u64;
    let hits = outcomes.iter().filter(|o| o.success).count() as u64;
    let sent = targets.len() as u64;
    if let Some(reg) = telemetry {
        let key = proto_metric_key(protocol);
        reg.counter(&format!("scan.{key}.probes_sent")).add(sent);
        reg.counter(&format!("scan.{key}.responses")).add(received);
        reg.counter(&format!("scan.{key}.hits")).add(hits);
    }
    ScanResult {
        protocol,
        day,
        outcomes,
        stats: ScanStats {
            sent,
            received,
            hits,
            duration_secs: clock.now_micros() as f64 / 1e6,
            ..ScanStats::default()
        },
    }
}

/// Reassembles fragment packets in a reply batch: fragments are grouped
/// by (source, identification), reassembled, and replaced by the whole
/// packet; non-fragments pass through. Undecodable fragment groups are
/// dropped, like a real receive path would time them out.
pub fn reassemble_replies(replies: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    use sixdust_wire::fragment;
    let mut out = Vec::with_capacity(replies.len());
    let mut groups: std::collections::HashMap<(Addr, u32), Vec<Vec<u8>>> = Default::default();
    for r in replies {
        if fragment::is_fragment(&r) {
            if let (Some(src), Some(ident)) = (fragment::src_of(&r), fragment::fragment_ident(&r)) {
                groups.entry((src, ident)).or_default().push(r);
            }
        } else {
            out.push(r);
        }
    }
    for (_, frags) in groups {
        if let Ok(whole) = fragment::reassemble(&frags) {
            out.push(whole);
        }
    }
    out
}

/// Builds the module's probe packet bytes.
pub fn build_probe_bytes(
    protocol: Protocol,
    src: Addr,
    dst: Addr,
    dns_qname: &str,
    nonce: u32,
) -> Vec<u8> {
    let transport = match protocol {
        Protocol::Icmp => Transport::Icmpv6(Icmpv6::EchoRequest {
            ident: (nonce >> 16) as u16,
            seq: nonce as u16,
            payload: vec![0u8; 8],
        }),
        Protocol::Tcp80 => {
            Transport::Tcp(TcpSegment::syn(80, 40_000 + (nonce % 20_000) as u16, nonce))
        }
        Protocol::Tcp443 => {
            Transport::Tcp(TcpSegment::syn(443, 40_000 + (nonce % 20_000) as u16, nonce))
        }
        Protocol::Udp53 => Transport::Udp(UdpDatagram {
            src_port: 40_000 + (nonce % 20_000) as u16,
            dst_port: 53,
            payload: DnsMessage::aaaa_query(nonce as u16, dns_qname).to_bytes(),
        }),
        Protocol::Udp443 => Transport::Udp(UdpDatagram {
            src_port: 40_000 + (nonce % 20_000) as u16,
            dst_port: 443,
            payload: QuicPacket::Initial {
                version: FORCE_VN_VERSION,
                dcid: nonce.to_be_bytes().to_vec(),
                scid: vec![0x51],
            }
            .to_bytes(),
        }),
    };
    Packet { ipv6: Ipv6Header::new(src, dst, 64), transport }.to_bytes()
}

fn parse_response(protocol: Protocol, bytes: &[u8]) -> Option<Response> {
    let pkt = Packet::parse(bytes).ok()?;
    match (protocol, pkt.transport) {
        (Protocol::Icmp, Transport::Icmpv6(Icmpv6::EchoReply { fragmented, .. })) => {
            Some(Response::EchoReply { fragmented })
        }
        (Protocol::Tcp80 | Protocol::Tcp443, Transport::Tcp(seg)) => {
            if seg.flags.syn && seg.flags.ack {
                Some(Response::SynAck {
                    fp: sixdust_net::fingerprint::TcpFingerprint {
                        optionstext: seg.optionstext(),
                        window: seg.window,
                        wscale: seg.window_scale().unwrap_or(0),
                        mss: seg.mss().unwrap_or(0),
                        ittl: pkt.ipv6.hop_limit.next_power_of_two(),
                    },
                })
            } else if seg.flags.rst {
                Some(Response::Rst)
            } else {
                None
            }
        }
        (Protocol::Udp53, Transport::Udp(d)) => {
            DnsMessage::parse(&d.payload).ok().map(Response::Dns)
        }
        (Protocol::Udp443, Transport::Udp(d)) => match QuicPacket::parse(&d.payload) {
            Ok(QuicPacket::VersionNegotiation { .. }) => Some(Response::QuicVn),
            _ => None,
        },
        _ => None,
    }
}
