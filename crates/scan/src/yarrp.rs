//! Yarrp-style randomized high-speed traceroute.
//!
//! Yarrp (Beverly, IMC 2016) probes the `(target, TTL)` space in a random
//! permutation, statelessly matching ICMPv6 Time Exceeded quotes back to
//! probes. The hitlist service runs it over all targets to harvest router
//! addresses as new input candidates — and that harvesting is precisely
//! what drags the rotating Chinese last-hop addresses (later GFW-polluted)
//! and rotating ISP CPE space into the input list (Sec. 4).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;
use sixdust_net::{Day, Internet, ProbeKind, Response};

use crate::permute::CyclicPermutation;

/// Traceroute engine configuration.
///
/// Construct via [`YarrpConfig::builder`] or the chainable `with_*`
/// methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YarrpConfig {
    /// Highest TTL probed.
    pub max_ttl: u8,
    /// Permutation seed.
    pub seed: u64,
}

impl Default for YarrpConfig {
    fn default() -> YarrpConfig {
        YarrpConfig { max_ttl: 12, seed: 0x7A99 }
    }
}

impl YarrpConfig {
    /// Starts a builder seeded with the default configuration.
    pub fn builder() -> YarrpConfigBuilder {
        YarrpConfigBuilder::default()
    }

    /// Returns the config with the highest probed TTL replaced.
    pub fn with_max_ttl(mut self, max_ttl: u8) -> YarrpConfig {
        self.max_ttl = max_ttl;
        self
    }

    /// Returns the config with the permutation seed replaced.
    pub fn with_seed(mut self, seed: u64) -> YarrpConfig {
        self.seed = seed;
        self
    }
}

/// Builder for [`YarrpConfig`]; starts from [`YarrpConfig::default`].
#[derive(Debug, Clone, Default)]
pub struct YarrpConfigBuilder {
    config: YarrpConfig,
}

impl YarrpConfigBuilder {
    /// Sets the highest TTL probed.
    pub fn max_ttl(mut self, max_ttl: u8) -> YarrpConfigBuilder {
        self.config.max_ttl = max_ttl;
        self
    }

    /// Sets the permutation seed.
    pub fn seed(mut self, seed: u64) -> YarrpConfigBuilder {
        self.config.seed = seed;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> YarrpConfig {
        self.config
    }
}

/// The trace toward one target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// The traced target.
    pub target: Addr,
    /// `(ttl, router)` pairs that answered with Time Exceeded.
    pub hops: Vec<(u8, Addr)>,
    /// Whether the destination itself answered at full TTL.
    pub reached: bool,
}

impl Trace {
    /// The last responsive hop: the destination if reached, otherwise the
    /// highest-TTL router (the address class the GFW analysis shows gets
    /// accumulated for Chinese networks).
    pub fn last_responsive_hop(&self) -> Option<Addr> {
        if self.reached {
            Some(self.target)
        } else {
            self.hops.iter().max_by_key(|(ttl, _)| *ttl).map(|(_, a)| *a)
        }
    }
}

/// The result of a Yarrp run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct YarrpResult {
    /// Per-target traces (targets with zero responses included).
    pub traces: Vec<Trace>,
    /// Probes sent.
    pub sent: u64,
}

impl YarrpResult {
    /// All distinct router addresses discovered.
    pub fn discovered_routers(&self) -> Vec<Addr> {
        let mut set: Vec<Addr> =
            self.traces.iter().flat_map(|t| t.hops.iter().map(|(_, a)| *a)).collect();
        set.sort_unstable();
        set.dedup();
        set
    }
}

/// Runs a randomized traceroute sweep over `targets`.
pub fn yarrp(net: &Internet, targets: &[Addr], day: Day, config: &YarrpConfig) -> YarrpResult {
    // Stateless probing needs unique targets to attribute replies.
    let mut targets: Vec<Addr> = targets.to_vec();
    targets.sort_unstable();
    targets.dedup();
    let targets = &targets[..];
    let max_ttl = u64::from(config.max_ttl.max(1));
    let space = targets.len() as u64 * max_ttl;
    let mut by_target: HashMap<Addr, Trace> = targets
        .iter()
        .map(|t| (*t, Trace { target: *t, hops: Vec::new(), reached: false }))
        .collect();
    let probe = ProbeKind::IcmpEcho { size: 16 };
    let mut sent = 0u64;
    for idx in CyclicPermutation::new(space, config.seed ^ u64::from(day.0)) {
        let target = targets[(idx / max_ttl) as usize];
        let ttl = (idx % max_ttl) as u8 + 1;
        sent += 1;
        match net.probe_ttl(target, ttl, &probe, day) {
            Some(Response::TimeExceeded { hop }) => {
                by_target.get_mut(&target).expect("known target").hops.push((ttl, hop));
            }
            Some(Response::EchoReply { .. }) => {
                by_target.get_mut(&target).expect("known target").reached = true;
            }
            _ => {}
        }
    }
    let mut traces: Vec<Trace> =
        targets.iter().map(|t| by_target.remove(t).expect("trace")).collect();
    for t in &mut traces {
        t.hops.sort_unstable_by_key(|(ttl, _)| *ttl);
        t.hops.dedup();
    }
    YarrpResult { traces, sent }
}
