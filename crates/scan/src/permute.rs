//! ZMap-style random permutation of the target space.
//!
//! ZMap iterates a multiplicative cyclic group modulo a prime just above
//! the target count, visiting every index exactly once in a pseudo-random
//! order with O(1) state. Randomized ordering spreads probe load across
//! networks (an ethical-scanning requirement the paper inherits) and is
//! reproduced here faithfully.

/// An iterator visiting `0..n` exactly once in pseudo-random order.
///
/// ```
/// use sixdust_scan::CyclicPermutation;
/// let mut seen: Vec<u64> = CyclicPermutation::new(100, 7).collect();
/// assert_ne!(seen, (0..100).collect::<Vec<_>>(), "scrambled order");
/// seen.sort_unstable();
/// assert_eq!(seen, (0..100).collect::<Vec<_>>(), "full coverage");
/// ```
#[derive(Debug, Clone)]
pub struct CyclicPermutation {
    n: u64,
    prime: u64,
    generator: u64,
    current: u64,
    first: u64,
    done: bool,
    emitted: u64,
}

impl CyclicPermutation {
    /// Creates a permutation of `0..n` seeded by `seed`.
    pub fn new(n: u64, seed: u64) -> CyclicPermutation {
        if n == 0 {
            return CyclicPermutation {
                n,
                prime: 2,
                generator: 1,
                current: 1,
                first: 1,
                done: true,
                emitted: 0,
            };
        }
        let prime = next_prime(n.max(2));
        // Any element generates a large-order subgroup for our purposes if
        // we step with multiplication by a fixed primitive-ish element and
        // fall back to exhaustive stepping. For correctness (full cycle) we
        // need a primitive root; for primes of form found here we search a
        // small candidate set.
        let generator = find_primitive_root(prime, seed);
        let first = 1 + seed % (prime - 1);
        CyclicPermutation { n, prime, generator, current: first, first, done: false, emitted: 0 }
    }

    /// Total number of indices that will be emitted.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The length of the underlying group cycle (`prime − 1`; 0 when the
    /// permutation is empty). The cycle visits every group element once;
    /// positions whose element exceeds `n` emit nothing, so partitioning
    /// `0..cycle_len()` into contiguous ranges and concatenating each
    /// range's [`CyclicPermutation::segment`] output reproduces the full
    /// permutation — without materializing it.
    pub fn cycle_len(&self) -> u64 {
        if self.n == 0 {
            0
        } else {
            self.prime - 1
        }
    }

    /// An iterator over the indices emitted by the raw cycle positions
    /// `start..start + len` (clamped to the cycle). O(log start) setup —
    /// the segment's first element is `first · generator^start` — and O(1)
    /// state, so workers can split a scan's permutation without anyone
    /// ever allocating the whole order.
    ///
    /// ```
    /// use sixdust_scan::CyclicPermutation;
    /// let perm = CyclicPermutation::new(100, 7);
    /// let full: Vec<u64> = perm.clone().collect();
    /// let split: Vec<u64> =
    ///     perm.segment(0, 40).chain(perm.segment(40, perm.cycle_len())).collect();
    /// assert_eq!(split, full);
    /// ```
    pub fn segment(&self, start: u64, len: u64) -> PermutationSegment {
        let remaining = len.min(self.cycle_len().saturating_sub(start));
        let current = if remaining == 0 {
            1
        } else {
            mulmod(self.first, powmod(self.generator, start, self.prime), self.prime)
        };
        PermutationSegment {
            n: self.n,
            prime: self.prime,
            generator: self.generator,
            current,
            remaining,
        }
    }
}

/// A contiguous slice of a [`CyclicPermutation`]'s raw cycle, yielding
/// only the in-range indices; see [`CyclicPermutation::segment`].
#[derive(Debug, Clone)]
pub struct PermutationSegment {
    n: u64,
    prime: u64,
    generator: u64,
    current: u64,
    remaining: u64,
}

impl Iterator for PermutationSegment {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.remaining > 0 {
            let value = self.current - 1; // group elements are 1..prime
            self.current = mulmod(self.current, self.generator, self.prime);
            self.remaining -= 1;
            if value < self.n {
                return Some(value);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining.min(self.n) as usize))
    }
}

impl Iterator for CyclicPermutation {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.done {
            return None;
        }
        loop {
            let value = self.current - 1; // group elements are 1..prime
            self.current = mulmod(self.current, self.generator, self.prime);
            let wrapped = self.current == self.first;
            if value < self.n {
                self.emitted += 1;
                if wrapped || self.emitted == self.n {
                    self.done = true;
                }
                return Some(value);
            }
            if wrapped {
                self.done = true;
                return None;
            }
        }
    }
}

fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Deterministic Miller-Rabin for u64.
    let mut d = n - 1;
    let mut s = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn next_prime(n: u64) -> u64 {
    let mut c = n + 1;
    while !is_prime(c) {
        c += 1;
    }
    c
}

fn factorize(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

fn find_primitive_root(p: u64, seed: u64) -> u64 {
    let phi = p - 1;
    let factors = factorize(phi);
    // Try seeded candidates, then small integers.
    let mut candidates: Vec<u64> =
        (0..32).map(|i| 2 + (seed.wrapping_add(i * 0x9e37) % (p - 2))).collect();
    candidates.extend(2..64.min(p));
    for g in candidates {
        if g <= 1 || g >= p {
            continue;
        }
        if factors.iter().all(|f| powmod(g, phi / f, p) != 1) {
            return g;
        }
    }
    // p >= 3 always has a primitive root; the candidate sweep above cannot
    // miss every one of 2..64 for the primes we construct, but fall back
    // safely anyway.
    2
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn visits_every_index_exactly_once() {
        for n in [1u64, 2, 7, 100, 1013, 5000] {
            for seed in [0u64, 1, 42] {
                let seen: Vec<u64> = CyclicPermutation::new(n, seed).collect();
                assert_eq!(seen.len() as u64, n, "n={n} seed={seed}");
                let set: HashSet<u64> = seen.iter().copied().collect();
                assert_eq!(set.len() as u64, n, "duplicates for n={n} seed={seed}");
                assert!(set.iter().all(|v| *v < n));
            }
        }
    }

    #[test]
    fn order_is_scrambled() {
        let seen: Vec<u64> = CyclicPermutation::new(1000, 7).collect();
        let sorted: Vec<u64> = (0..1000).collect();
        assert_ne!(seen, sorted, "must not be the identity order");
        // Consecutive outputs should rarely be consecutive integers.
        let adjacent = seen.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(adjacent < 50, "{adjacent} adjacent pairs");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = CyclicPermutation::new(500, 9).collect();
        let b: Vec<u64> = CyclicPermutation::new(500, 9).collect();
        let c: Vec<u64> = CyclicPermutation::new(500, 10).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(CyclicPermutation::new(0, 1).count(), 0);
        assert_eq!(CyclicPermutation::new(1, 1).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn segments_concatenate_to_the_full_permutation() {
        for n in [1u64, 2, 7, 100, 1013, 5000] {
            for seed in [0u64, 1, 42] {
                let perm = CyclicPermutation::new(n, seed);
                let full: Vec<u64> = perm.clone().collect();
                for workers in [1u64, 3, 4, 8] {
                    let per = perm.cycle_len().div_ceil(workers).max(1);
                    let mut split: Vec<u64> = Vec::new();
                    let mut start = 0;
                    while start < perm.cycle_len() {
                        split.extend(perm.segment(start, per));
                        start += per;
                    }
                    assert_eq!(split, full, "n={n} seed={seed} workers={workers}");
                }
            }
        }
    }

    #[test]
    fn segment_edges() {
        let perm = CyclicPermutation::new(100, 9);
        // Zero-length, past-the-end and over-long segments are safe.
        assert_eq!(perm.segment(0, 0).count(), 0);
        assert_eq!(perm.segment(perm.cycle_len(), 10).count(), 0);
        assert_eq!(perm.segment(0, u64::MAX).collect::<Vec<_>>(), perm.clone().collect::<Vec<_>>());
        // The empty permutation has no cycle at all.
        let empty = CyclicPermutation::new(0, 1);
        assert_eq!(empty.cycle_len(), 0);
        assert_eq!(empty.segment(0, 5).count(), 0);
    }

    #[test]
    fn primality_helpers() {
        assert!(is_prime(2));
        assert!(is_prime(1_000_003));
        assert!(!is_prime(1_000_001));
        assert_eq!(next_prime(100), 101);
        assert_eq!(factorize(100), vec![2, 5]);
    }
}
