//! A token-bucket rate limiter with a pluggable clock.
//!
//! The hitlist service scans "with a limited rate" (ethics, Sec. 3.3).
//! Inside the simulation no wall-clock time passes, so the limiter is
//! written against a [`Clock`] trait: production code can use
//! [`MonotonicClock`], the scan engine uses a [`VirtualClock`] it advances
//! as probes are accounted — the same arithmetic either way.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A time source measured in microseconds.
pub trait Clock {
    /// Microseconds since an arbitrary epoch.
    fn now_micros(&self) -> u64;
}

/// Wall-clock time.
#[derive(Debug)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// Creates a clock anchored at construction time.
    pub fn new() -> MonotonicClock {
        MonotonicClock { start: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// A manually advanced clock for simulation and tests.
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advances by `micros`.
    pub fn advance(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }
}

/// A token bucket: `rate_pps` probes per second sustained, `burst` tokens
/// of headroom.
#[derive(Debug)]
pub struct TokenBucket {
    rate_pps: u64,
    burst: u64,
    tokens_femto: AtomicU64, // tokens * 1e6 to keep integer math exact
    last_micros: AtomicU64,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    pub fn new(rate_pps: u64, burst: u64) -> TokenBucket {
        assert!(rate_pps > 0, "rate must be positive");
        TokenBucket {
            rate_pps,
            burst: burst.max(1),
            tokens_femto: AtomicU64::new(burst.max(1) * 1_000_000),
            last_micros: AtomicU64::new(0),
        }
    }

    /// Attempts to take one token at the clock's current time.
    pub fn try_take(&self, clock: &dyn Clock) -> bool {
        let now = clock.now_micros();
        let last = self.last_micros.swap(now, Ordering::Relaxed);
        let elapsed = now.saturating_sub(last);
        // Refill: elapsed_micros * rate tokens-per-second = tokens*1e6.
        let refill = elapsed.saturating_mul(self.rate_pps);
        let cap = self.burst * 1_000_000;
        let mut cur = self.tokens_femto.load(Ordering::Relaxed);
        cur = (cur + refill).min(cap);
        if cur >= 1_000_000 {
            self.tokens_femto.store(cur - 1_000_000, Ordering::Relaxed);
            true
        } else {
            self.tokens_femto.store(cur, Ordering::Relaxed);
            false
        }
    }

    /// Microseconds until a token would be available (0 when one is ready).
    pub fn wait_hint_micros(&self) -> u64 {
        let cur = self.tokens_femto.load(Ordering::Relaxed);
        if cur >= 1_000_000 {
            0
        } else {
            (1_000_000 - cur) / self.rate_pps.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_starve() {
        let clock = VirtualClock::new();
        let bucket = TokenBucket::new(1000, 5);
        // Burst allows 5 immediate probes...
        let got = (0..10).filter(|_| bucket.try_take(&clock)).count();
        assert_eq!(got, 5);
        // ...then the bucket is empty until time passes.
        assert!(!bucket.try_take(&clock));
        clock.advance(1_000); // 1 ms at 1000 pps = 1 token
        assert!(bucket.try_take(&clock));
        assert!(!bucket.try_take(&clock));
    }

    #[test]
    fn sustained_rate_enforced() {
        let clock = VirtualClock::new();
        let bucket = TokenBucket::new(100, 1);
        let mut sent = 0;
        // Simulate one second in 1 ms steps.
        for _ in 0..1000 {
            clock.advance(1_000);
            if bucket.try_take(&clock) {
                sent += 1;
            }
        }
        assert!((95..=105).contains(&sent), "sent {sent} at 100 pps");
    }

    #[test]
    fn refill_caps_at_burst() {
        let clock = VirtualClock::new();
        let bucket = TokenBucket::new(1000, 3);
        clock.advance(10_000_000); // ten seconds idle
        let got = (0..10).filter(|_| bucket.try_take(&clock)).count();
        assert_eq!(got, 3, "burst cap respected after idle");
    }

    #[test]
    fn wait_hint() {
        let clock = VirtualClock::new();
        let bucket = TokenBucket::new(1000, 1);
        assert!(bucket.try_take(&clock));
        assert!(bucket.wait_hint_micros() > 0);
        clock.advance(bucket.wait_hint_micros().max(1));
        assert!(bucket.try_take(&clock));
    }

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_micros();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now_micros() > a);
    }
}
