//! # sixdust-bench
//!
//! Criterion benchmarks for the sixdust reproduction:
//!
//! * `benches/components.rs` — micro-benchmarks of the substrate (prefix
//!   trie LPM, PRF/Feistel, cyclic permutation, wire codecs, the
//!   simulator's probe paths).
//! * `benches/experiments.rs` — one benchmark per paper table/figure,
//!   each running a miniature version of the harness that regenerates it
//!   (the full-size runs live in `sixdust-exp`; see EXPERIMENTS.md).
//! * `benches/ablations.rs` — runtime ablations of the design choices in
//!   DESIGN.md §7 (merge window, scan order, worker fan-out, DC knobs).
//!
//! Run with `cargo bench -p sixdust-bench`.
