//! Ablation benchmarks for the design choices DESIGN.md §7 calls out.
//! Runtime costs are measured here; the *quality* side of each ablation
//! (misclassification rates, spike magnitudes) is reported by
//! `sixdust-exp ablations`-style assertions in the test suite.

use std::sync::OnceLock;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sixdust_addr::Addr;
use sixdust_alias::{AliasDetector, DetectorConfig};
use sixdust_net::{Day, FaultConfig, Internet, Protocol, Scale};
use sixdust_scan::{scan, CyclicPermutation, ScanConfig};
use sixdust_tga::{DistanceClustering, TargetGenerator};

fn net() -> &'static Internet {
    static NET: OnceLock<Internet> = OnceLock::new();
    NET.get_or_init(|| Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless()))
}

fn targets() -> Vec<Addr> {
    net()
        .population()
        .enumerate_responsive(Day(300))
        .into_iter()
        .map(|(a, ..)| a)
        .take(3000)
        .collect()
}

/// Permutation scanning vs naive sequential order.
fn ablation_permutation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scan_order");
    let t = targets();
    g.bench_function("permuted", |b| {
        b.iter(|| scan(net(), Protocol::Icmp, &t, Day(300), &ScanConfig::default()).stats.hits)
    });
    g.bench_function("permutation_overhead_only", |b| {
        b.iter(|| CyclicPermutation::new(black_box(t.len() as u64), 7).sum::<u64>())
    });
    g.finish();
}

/// Alias-detection merge window width (the paper merges 3 prior rounds).
fn ablation_merge_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_alias_merge");
    g.sample_size(10);
    let day = Day(400);
    let prefixes: Vec<_> =
        net().population().aliased_groups(day).map(|g| g.prefix).take(150).collect();
    for merge_rounds in [0usize, 3] {
        g.bench_function(format!("merge_{merge_rounds}_rounds"), |b| {
            b.iter(|| {
                let mut det = AliasDetector::new(
                    DetectorConfig::builder().merge_rounds(merge_rounds).build(),
                );
                for gap in 0..=merge_rounds as u32 {
                    det.run_round(net(), &prefixes, day.plus(gap));
                }
                det.aliased().len()
            })
        });
    }
    g.finish();
}

/// Scan worker threads (the crossbeam fan-out).
fn ablation_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scan_threads");
    let t = targets();
    for threads in [1usize, 4, 8] {
        g.bench_function(format!("threads_{threads}"), |b| {
            let cfg = ScanConfig::builder().threads(threads).build();
            b.iter(|| scan(net(), Protocol::Icmp, &t, Day(300), &cfg).stats.hits)
        });
    }
    g.finish();
}

/// Distance clustering parameters (min cluster size / max gap).
fn ablation_dc_params(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dc_params");
    let day = Day(1200);
    let mut seeds: Vec<Addr> = net().population().dense_visible(day).into_iter().collect();
    seeds.sort_unstable();
    for (min_cluster, max_gap) in [(10usize, 64u128), (4, 64), (10, 256)] {
        g.bench_function(format!("min{min_cluster}_gap{max_gap}"), |b| {
            let dc = DistanceClustering { min_cluster, max_gap };
            b.iter(|| dc.generate(black_box(&seeds), 20_000).len())
        });
    }
    g.finish();
}

/// The candidate-construction pass of the alias detection (sorted walk).
fn ablation_candidates(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_candidates");
    g.sample_size(10);
    let input: Vec<Addr> =
        net().population().enumerate_responsive(Day(300)).into_iter().map(|(a, ..)| a).collect();
    for threshold in [100usize, 10] {
        g.bench_function(format!("long_prefix_threshold_{threshold}"), |b| {
            b.iter(|| sixdust_alias::candidates(net(), black_box(&input), threshold).len())
        });
    }
    g.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(20);
    targets = ablation_permutation, ablation_merge_window, ablation_threads, ablation_dc_params, ablation_candidates
);
criterion_main!(ablations);
