//! One benchmark per paper table/figure: each measures the harness that
//! regenerates that artifact, on a miniature (tiny-scale, shortened)
//! configuration so an iteration stays in benchmark territory. The
//! full-size regeneration lives in `sixdust-exp` (see EXPERIMENTS.md).

use std::sync::OnceLock;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sixdust_addr::Addr;
use sixdust_alias::{candidates, fingerprint_all, tbt_all, AliasDetector, DetectorConfig};
use sixdust_analysis::{OverlapMatrix, PlenHistogram, RankCdf};
use sixdust_hitlist::{newsources, HitlistService, ServiceConfig};
use sixdust_net::{Day, FaultConfig, Internet, Protocol, Scale};
use sixdust_scan::ScanConfig;
use sixdust_tga::{DistanceClustering, SixGan, SixGraph, SixTree, SixVecLm, TargetGenerator};

fn net() -> &'static Internet {
    static NET: OnceLock<Internet> = OnceLock::new();
    NET.get_or_init(|| {
        Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless().with_drop_permille(2))
    })
}

/// A short pre-run service shared by the figure benches that only need
/// its state (not its runtime).
fn service() -> &'static HitlistService {
    static SVC: OnceLock<HitlistService> = OnceLock::new();
    SVC.get_or_init(|| {
        let mut svc = HitlistService::new(ServiceConfig::default());
        svc.run(net(), Day(0), Day(60));
        svc
    })
}

fn seeds() -> Vec<Addr> {
    let day = Day(300);
    let mut s: Vec<Addr> = net()
        .population()
        .enumerate_responsive(day)
        .into_iter()
        .map(|(a, ..)| a)
        .filter(|a| !net().population().is_dense_member(*a))
        .collect();
    s.extend(net().population().dense_visible(day));
    s.sort_unstable();
    s.dedup();
    s
}

/// Figs. 3 & 4 and Table 1 all come from the longitudinal service loop;
/// the bench measures one month of it.
fn bench_service_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("service");
    g.sample_size(10);
    g.bench_function("bench_fig3_fig4_table1_service_month", |b| {
        b.iter(|| {
            let mut svc = HitlistService::new(ServiceConfig::default());
            svc.run(net(), Day(0), Day(30));
            black_box(svc.rounds().len())
        })
    });
    g.bench_function("bench_fig2_table5_as_cdfs", |b| {
        let svc = service();
        b.iter(|| {
            let mut counts: std::collections::HashMap<u32, u64> = Default::default();
            for a in svc.input() {
                if let Some(id) = net().registry().origin(*a) {
                    *counts.entry(id.0).or_insert(0) += 1;
                }
            }
            let cdf = RankCdf::new(counts.into_values().collect());
            black_box((cdf.top_share(), cdf.share_of_top(10)))
        })
    });
    g.finish();
}

/// Fig. 5, Fig. 6, Table 2 and the Sec. 5.1 measurements come from the
/// alias toolkit.
fn bench_alias_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("alias");
    g.sample_size(10);
    let day = Day(400);
    let svc = service();
    let input: Vec<Addr> = svc.input().iter().copied().take(4000).collect();
    g.bench_function("bench_fig5_detection_round", |b| {
        b.iter(|| {
            let cands = candidates(net(), &input, 100);
            let mut det = AliasDetector::new(DetectorConfig::default());
            let round = det.run_round(net(), &cands[..cands.len().min(800)], day);
            black_box(round.detected.len())
        })
    });
    let prefixes: Vec<_> =
        net().population().aliased_groups(day).map(|g| g.prefix).take(200).collect();
    g.bench_function("bench_fig6_minimal_cover", |b| {
        b.iter(|| sixdust_alias::minimal_cover(black_box(&prefixes)).len())
    });
    g.bench_function("bench_table2_alias_probe", |b| {
        let probe = sixdust_scan::engine::probe_for(Protocol::Tcp443, "www.google.com");
        b.iter(|| {
            prefixes
                .iter()
                .filter(|p| !net().probe(p.random_addr(1), &probe, day).is_empty())
                .count()
        })
    });
    g.bench_function("bench_fingerprints_tcp", |b| {
        b.iter(|| fingerprint_all(net(), &prefixes[..60], day, 3).1.fingerprintable)
    });
    g.bench_function("bench_fingerprints_tbt", |b| {
        b.iter(|| {
            net().reset_state();
            tbt_all(net(), &prefixes[..60], day, 4).1.successful
        })
    });
    g.bench_function("bench_fig5_histogram", |b| {
        b.iter(|| PlenHistogram::from_lens(prefixes.iter().map(|p| p.len())).share(64))
    });
    g.finish();
}

/// Tables 3 & 4 and Figs. 7 & 8: generation plus evaluation scans.
fn bench_newsource_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("newsources");
    g.sample_size(10);
    let seeds = seeds();
    g.bench_function("bench_table3_6graph", |b| {
        b.iter(|| SixGraph::default().generate(black_box(&seeds), 20_000).len())
    });
    g.bench_function("bench_table3_6tree", |b| {
        b.iter(|| SixTree::default().generate(black_box(&seeds), 10_000).len())
    });
    g.bench_function("bench_table3_6gan", |b| {
        b.iter(|| SixGan::default().generate(black_box(&seeds), 2_000).len())
    });
    g.bench_function("bench_table3_6veclm", |b| {
        b.iter(|| SixVecLm::default().generate(black_box(&seeds), 2_000).len())
    });
    g.bench_function("bench_table3_dc", |b| {
        b.iter(|| DistanceClustering::default().generate(black_box(&seeds), 5_000).len())
    });
    let candidates = SixGraph::default().generate(&seeds, 2_000);
    g.bench_function("bench_table4_evaluation_scan", |b| {
        b.iter(|| {
            newsources::evaluate_source(
                net(),
                "bench",
                black_box(&candidates),
                &sixdust_addr::PrefixSet::new(),
                &[Day(300)],
                &ScanConfig::default(),
            )
            .responsive
            .len()
        })
    });
    let sets: Vec<(String, Vec<Addr>)> = vec![
        ("a".into(), seeds.iter().step_by(2).copied().collect()),
        ("b".into(), seeds.iter().step_by(3).copied().collect()),
        ("c".into(), seeds.iter().step_by(5).copied().collect()),
    ];
    g.bench_function("bench_fig7_fig10_overlap_matrix", |b| {
        b.iter(|| OverlapMatrix::new(black_box(&sets)).pct.len())
    });
    g.bench_function("bench_fig8_fig9_rank_cdfs", |b| {
        b.iter(|| {
            let rows = newsources::by_as(net(), &seeds);
            RankCdf::new(rows.into_iter().map(|(_, _, n)| n as u64).collect()).skew()
        })
    });
    g.finish();
}

criterion_group!(
    name = experiments;
    config = Criterion::default();
    targets = bench_service_figures, bench_alias_figures, bench_newsource_figures
);
criterion_main!(experiments);
