//! Component micro-benchmarks: the data structures and codecs every
//! experiment leans on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sixdust_addr::{prf, Addr, Prefix, PrefixTrie};
use sixdust_net::pattern::Feistel64;
use sixdust_net::{Day, FaultConfig, Internet, ProbeKind, Scale};
use sixdust_scan::CyclicPermutation;
use sixdust_wire::dns::DnsMessage;
use sixdust_wire::icmpv6::Icmpv6;
use sixdust_wire::tcp::{TcpOption, TcpSegment};
use sixdust_wire::{Ipv6Header, Packet, Transport};

fn bench_trie(c: &mut Criterion) {
    let mut trie = PrefixTrie::new();
    for i in 0..10_000u128 {
        trie.insert(Prefix::new(Addr((0x2000 + i) << 100), 32), i as u32);
    }
    let probes: Vec<Addr> = (0..1000u128).map(|i| Addr((0x2000 + i * 7) << 100 | 0x42)).collect();
    c.bench_function("trie_lpm_lookup", |b| {
        b.iter(|| {
            let mut hits = 0;
            for p in &probes {
                if trie.lookup_value(black_box(*p)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_prf(c: &mut Criterion) {
    c.bench_function("prf_u128", |b| {
        let mut i = 0u128;
        b.iter(|| {
            i += 1;
            prf::prf_u128(black_box(7), black_box(i), 0x42)
        })
    });
    c.bench_function("feistel_permute_invert", |b| {
        let f = Feistel64::new(9);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            f.invert(f.permute(black_box(i)))
        })
    });
}

fn bench_permutation(c: &mut Criterion) {
    c.bench_function("cyclic_permutation_100k", |b| {
        b.iter(|| CyclicPermutation::new(black_box(100_000), 7).sum::<u64>())
    });
}

fn bench_wire(c: &mut Criterion) {
    let src: Addr = "2001:db8::1".parse().unwrap();
    let dst: Addr = "2a00:1450::5".parse().unwrap();
    let syn = Packet {
        ipv6: Ipv6Header::new(src, dst, 64),
        transport: Transport::Tcp(
            TcpSegment::syn(443, 40000, 7)
                .with_option(TcpOption::Mss(1440))
                .with_option(TcpOption::SackPermitted)
                .with_option(TcpOption::Timestamps(1, 0))
                .with_option(TcpOption::WindowScale(7)),
        ),
    };
    let syn_bytes = syn.to_bytes();
    c.bench_function("wire_tcp_syn_encode", |b| b.iter(|| black_box(&syn).to_bytes()));
    c.bench_function("wire_tcp_syn_parse", |b| {
        b.iter(|| Packet::parse(black_box(&syn_bytes)).expect("valid"))
    });
    let echo = Packet {
        ipv6: Ipv6Header::new(src, dst, 64),
        transport: Transport::Icmpv6(Icmpv6::EchoRequest { ident: 1, seq: 2, payload: vec![0; 8] }),
    };
    let echo_bytes = echo.to_bytes();
    c.bench_function("wire_icmp_echo_roundtrip", |b| {
        b.iter(|| Packet::parse(&black_box(&echo).to_bytes()).expect("valid"));
        black_box(&echo_bytes);
    });
    let query = DnsMessage::aaaa_query(7, "www.google.com");
    let qbytes = query.to_bytes();
    c.bench_function("wire_dns_query_parse", |b| {
        b.iter(|| DnsMessage::parse(black_box(&qbytes)).expect("valid"))
    });
}

fn bench_internet(c: &mut Criterion) {
    let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
    let day = Day(100);
    let targets: Vec<Addr> = net
        .population()
        .enumerate_responsive(day)
        .into_iter()
        .map(|(a, ..)| a)
        .take(1000)
        .collect();
    c.bench_function("internet_probe_semantic_1k", |b| {
        let probe = ProbeKind::IcmpEcho { size: 8 };
        b.iter(|| {
            let mut hits = 0;
            for t in &targets {
                hits += net.probe(black_box(*t), &probe, day).len();
            }
            hits
        })
    });
    c.bench_function("internet_probe_wire_100", |b| {
        let src = net.registry().vantage_addr();
        b.iter(|| {
            let mut hits = 0;
            for t in targets.iter().take(100) {
                let bytes = sixdust_scan::engine::build_probe_bytes(
                    sixdust_net::Protocol::Icmp,
                    src,
                    *t,
                    "www.google.com",
                    1,
                );
                hits += net.send_bytes(&bytes, day).len();
            }
            hits
        })
    });
    c.bench_function("population_lookup_dark", |b| {
        let dark = Addr(0x3fff_0000_0000_0000_0000_0000_0000_0001u128);
        b.iter(|| net.population().lookup(black_box(dark), day))
    });
    c.bench_function("internet_build_tiny", |b| {
        b.iter(|| Internet::build(black_box(Scale::tiny())))
    });
}

/// Overhead of the full fault-injection stack on the semantic probe path:
/// the lossless baseline above vs a net with bursty loss, duplication and
/// rate limiting armed. The fault coins are PRF draws, so this should stay
/// within a few percent of `internet_probe_semantic_1k`.
fn bench_faults(c: &mut Criterion) {
    let net = Internet::build(Scale::tiny()).with_faults(
        FaultConfig::lossless()
            .with_burst(sixdust_net::GilbertElliott {
                mean_good_days: 8,
                mean_bad_days: 4,
                good_drop_permille: 20,
                bad_drop_permille: 600,
            })
            .with_duplicate_permille(30)
            .with_icmp_rate_limit(sixdust_net::IcmpRateLimit { per_day: 100 }),
    );
    let day = Day(100);
    let targets: Vec<Addr> = net
        .population()
        .enumerate_responsive(day)
        .into_iter()
        .map(|(a, ..)| a)
        .take(1000)
        .collect();
    c.bench_function("internet_probe_semantic_1k_faulty", |b| {
        let probe = ProbeKind::IcmpEcho { size: 8 };
        b.iter(|| {
            let mut hits = 0;
            for t in &targets {
                hits += net.probe(black_box(*t), &probe, day).len();
            }
            hits
        })
    });
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_trie, bench_prf, bench_permutation, bench_wire, bench_internet, bench_faults
);
criterion_main!(components);
