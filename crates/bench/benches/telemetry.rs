//! Telemetry overhead benchmarks.
//!
//! The instrumented scan path (`scan_with`) is shipped as the *only* scan
//! path — `scan()` just passes `telemetry: None` — so the sink-less case
//! must cost essentially nothing. These benches pin that down:
//!
//! * `scan_icmp_1k_bare` vs `scan_icmp_1k_telemetry_off` — the same scan
//!   through `scan()` and through `scan_with(.., None)`; the two are the
//!   same code and should be within noise (< ~2%).
//! * `scan_icmp_1k_telemetry_on` — what an attached registry actually
//!   costs (counter adds + one histogram sample per worker).
//! * `scan_icmp_1k_telemetry_traced` — registry *plus* an installed trace
//!   journal (one scan span + one span per worker on top).
//! * `series_record_round` / `trace_span` / `trace_instant` — the
//!   longitudinal layer's per-round and per-event costs, pinning the
//!   recorder + journal overhead a service round pays.
//! * Micro-benches for the primitives themselves, to keep their cost in
//!   perspective against a single simulated probe.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sixdust_addr::Addr;
use sixdust_net::{Day, FaultConfig, Internet, Protocol, Scale};
use sixdust_scan::{scan, scan_with, ScanConfig};
use sixdust_telemetry::{Histogram, Registry, SeriesRecorder, TraceJournal};

fn scan_setup() -> (Internet, Vec<Addr>, ScanConfig) {
    let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
    let day = Day(100);
    let targets: Vec<Addr> = net
        .population()
        .enumerate_responsive(day)
        .into_iter()
        .map(|(a, ..)| a)
        .take(1000)
        .collect();
    (net, targets, ScanConfig::default())
}

fn bench_scan_overhead(c: &mut Criterion) {
    let (net, targets, cfg) = scan_setup();
    let day = Day(100);
    c.bench_function("scan_icmp_1k_bare", |b| {
        b.iter(|| scan(&net, Protocol::Icmp, black_box(&targets), day, &cfg))
    });
    c.bench_function("scan_icmp_1k_telemetry_off", |b| {
        b.iter(|| scan_with(&net, Protocol::Icmp, black_box(&targets), day, &cfg, None))
    });
    let registry = Registry::new();
    c.bench_function("scan_icmp_1k_telemetry_on", |b| {
        b.iter(|| scan_with(&net, Protocol::Icmp, black_box(&targets), day, &cfg, Some(&registry)))
    });
    let traced = Registry::new();
    traced.install_tracer(&TraceJournal::new());
    c.bench_function("scan_icmp_1k_telemetry_traced", |b| {
        b.iter(|| scan_with(&net, Protocol::Icmp, black_box(&targets), day, &cfg, Some(&traced)))
    });
}

fn bench_longitudinal(c: &mut Criterion) {
    // A registry shaped like a real service round: the service counters,
    // five protocols' scan counters and the phase histograms.
    let registry = Registry::new();
    for proto in ["icmp", "tcp443", "tcp80", "udp443", "udp53"] {
        registry.counter(&format!("scan.{proto}.probes_sent")).add(1);
        registry.counter(&format!("scan.{proto}.hits")).add(1);
        registry.counter(&format!("service.hits.published.{proto}")).add(1);
        registry.counter(&format!("service.hits.cleaned.{proto}")).add(1);
    }
    for phase in ["ingest", "alias", "select", "scan", "gfw", "traceroute", "churn"] {
        registry.histogram(&format!("service.round.phase.{phase}_ms")).record(3);
    }
    let mut recorder = SeriesRecorder::new(registry.clone(), 4096);
    c.bench_function("series_record_round", |b| {
        let mut key = 0u32;
        b.iter(|| {
            registry.counter("scan.icmp.hits").add(7);
            key = key.wrapping_add(1);
            recorder.record(black_box(key));
        })
    });

    let journal = TraceJournal::new();
    c.bench_function("trace_span", |b| {
        b.iter(|| {
            let _span = journal.span(black_box("service.round"));
        })
    });
    c.bench_function("trace_instant", |b| {
        b.iter(|| journal.instant(black_box("service.anomaly.udp53"), &[("day", "330")]))
    });
}

fn bench_primitives(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    c.bench_function("telemetry_counter_add", |b| b.iter(|| counter.add(black_box(3))));
    let hist = Histogram::new();
    c.bench_function("telemetry_histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(977);
            hist.record(black_box(v))
        })
    });
    c.bench_function("telemetry_registry_lookup", |b| {
        b.iter(|| registry.counter(black_box("bench.counter")))
    });
    c.bench_function("telemetry_snapshot", |b| {
        for i in 0..64u64 {
            registry.counter(&format!("bench.fill.{i}")).add(i);
            registry.histogram(&format!("bench.hist.{i}")).record(i);
        }
        b.iter(|| registry.snapshot())
    });
}

criterion_group!(
    name = telemetry;
    config = Criterion::default().sample_size(20);
    targets = bench_scan_overhead, bench_longitudinal, bench_primitives
);
criterion_main!(telemetry);
