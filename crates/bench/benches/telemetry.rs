//! Telemetry overhead benchmarks.
//!
//! The instrumented scan path (`scan_with`) is shipped as the *only* scan
//! path — `scan()` just passes `telemetry: None` — so the sink-less case
//! must cost essentially nothing. These benches pin that down:
//!
//! * `scan_icmp_1k_bare` vs `scan_icmp_1k_telemetry_off` — the same scan
//!   through `scan()` and through `scan_with(.., None)`; the two are the
//!   same code and should be within noise (< ~2%).
//! * `scan_icmp_1k_telemetry_on` — what an attached registry actually
//!   costs (counter adds + one histogram sample per worker).
//! * Micro-benches for the primitives themselves, to keep their cost in
//!   perspective against a single simulated probe.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sixdust_addr::Addr;
use sixdust_net::{Day, FaultConfig, Internet, Protocol, Scale};
use sixdust_scan::{scan, scan_with, ScanConfig};
use sixdust_telemetry::{Histogram, Registry};

fn scan_setup() -> (Internet, Vec<Addr>, ScanConfig) {
    let net = Internet::build(Scale::tiny()).with_faults(FaultConfig { drop_permille: 0 });
    let day = Day(100);
    let targets: Vec<Addr> = net
        .population()
        .enumerate_responsive(day)
        .into_iter()
        .map(|(a, ..)| a)
        .take(1000)
        .collect();
    (net, targets, ScanConfig::default())
}

fn bench_scan_overhead(c: &mut Criterion) {
    let (net, targets, cfg) = scan_setup();
    let day = Day(100);
    c.bench_function("scan_icmp_1k_bare", |b| {
        b.iter(|| scan(&net, Protocol::Icmp, black_box(&targets), day, &cfg))
    });
    c.bench_function("scan_icmp_1k_telemetry_off", |b| {
        b.iter(|| scan_with(&net, Protocol::Icmp, black_box(&targets), day, &cfg, None))
    });
    let registry = Registry::new();
    c.bench_function("scan_icmp_1k_telemetry_on", |b| {
        b.iter(|| {
            scan_with(&net, Protocol::Icmp, black_box(&targets), day, &cfg, Some(&registry))
        })
    });
}

fn bench_primitives(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    c.bench_function("telemetry_counter_add", |b| {
        b.iter(|| counter.add(black_box(3)))
    });
    let hist = Histogram::new();
    c.bench_function("telemetry_histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(977);
            hist.record(black_box(v))
        })
    });
    c.bench_function("telemetry_registry_lookup", |b| {
        b.iter(|| registry.counter(black_box("bench.counter")))
    });
    c.bench_function("telemetry_snapshot", |b| {
        for i in 0..64u64 {
            registry.counter(&format!("bench.fill.{i}")).add(i);
            registry.histogram(&format!("bench.hist.{i}")).record(i);
        }
        b.iter(|| registry.snapshot())
    });
}

criterion_group!(
    name = telemetry;
    config = Criterion::default().sample_size(20);
    targets = bench_scan_overhead, bench_primitives
);
criterion_main!(telemetry);
