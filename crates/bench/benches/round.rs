//! Round hot-path throughput: full `HitlistService` rounds per second at
//! several thread budgets, plus the sequential baseline the parallel path
//! must stay byte-identical with. `scripts/bench_round.sh` distils the
//! estimates into `BENCH_round.json` so future PRs have a trajectory to
//! compare against.

use std::sync::OnceLock;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sixdust_hitlist::{HitlistService, ServiceConfig};
use sixdust_net::{Day, FaultConfig, Internet, Scale};
use sixdust_scan::ScanConfig;

/// Days per iteration: long enough that round bookkeeping (churn, cumulative
/// table, snapshots) is exercised, short enough for benchmark territory.
const WINDOW_DAYS: u32 = 10;

fn net() -> &'static Internet {
    static NET: OnceLock<Internet> = OnceLock::new();
    NET.get_or_init(|| {
        Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless().with_drop_permille(2))
    })
}

fn run_window(config: ServiceConfig) -> usize {
    let mut svc = HitlistService::new(config);
    svc.run(net(), Day(0), Day(WINDOW_DAYS));
    svc.rounds().len()
}

/// Rounds/sec of the scan + merge hot path. `round_seq` runs the five
/// protocol scans strictly in `Protocol::ALL` order; `round_par_N` splits a
/// round-level budget of N threads across the five concurrent scans. The
/// merge stays sequential in all variants, so throughput is the only thing
/// that may differ — outputs are pinned byte-identical by
/// `parallel_rounds_identical_to_sequential_at_any_thread_budget`.
fn bench_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("round");
    g.sample_size(10);
    g.bench_function("round_seq", |b| {
        b.iter(|| {
            black_box(run_window(
                ServiceConfig::default()
                    .with_parallel_protocols(false)
                    .with_scan(ScanConfig::default().with_threads(4)),
            ))
        })
    });
    for budget in [1usize, 4, 8] {
        g.bench_function(format!("round_par_{budget}"), |b| {
            b.iter(|| {
                black_box(run_window(
                    ServiceConfig::default()
                        .with_parallel_protocols(true)
                        .with_scan(ScanConfig::default().with_threads(budget)),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = round;
    config = Criterion::default().sample_size(10);
    targets = bench_round
);
criterion_main!(round);
