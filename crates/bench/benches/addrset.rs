//! Hitlist-at-scale benchmarks for [`AddrSet`]: set-operation
//! micro-benches over dense and sparse populations, plus the
//! population-scale curve — full 10-day `HitlistService` windows at
//! 1×/10×/100× the tiny-scale population. `scripts/bench_addrset.sh`
//! distils the criterion estimates and the resident-set sizes recorded
//! here into `BENCH_addrset.json` (rounds/sec and peak set bytes per
//! population multiplier).

use std::fmt::Write as _;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sixdust_addr::AddrSet;
use sixdust_hitlist::{HitlistService, ServiceConfig};
use sixdust_net::{Day, FaultConfig, Internet, Scale};

/// Days per window: matches `benches/round.rs` so the x1 column here is
/// directly comparable with BENCH_round.json.
const WINDOW_DAYS: u32 = 10;

/// The population axis of the bench curve.
const MULTS: [u64; 3] = [1, 10, 100];

fn net_for(mult: u64) -> Internet {
    Internet::build(Scale::tiny().with_population_mult(mult))
        .with_faults(FaultConfig::lossless().with_drop_permille(2))
}

/// One full service window; returns (rounds completed, resident set
/// bytes across every AddrSet the service retains at the end).
fn run_window(net: &Internet) -> (usize, usize) {
    let mut svc = HitlistService::new(ServiceConfig::default());
    svc.run(net, Day(0), Day(WINDOW_DAYS));
    (svc.rounds().len(), svc.resident_set_bytes())
}

/// Set-operation micro-benches over the two shapes that matter: a dense
/// population (bitmap chunks) and a strided sparse one (sorted chunks).
fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("addrset_ops");
    let dense: AddrSet = (0..1_000_000u128).filter(|i| i % 3 != 0).collect();
    let sparse: AddrSet = (0..50_000u128).map(|i| i * 65_537).collect();
    let raw: Vec<u128> = (0..200_000u128).map(|i| (i * 2_654_435_761) % 3_000_000).collect();

    g.throughput(Throughput::Elements(raw.len() as u64));
    g.bench_function("from_unsorted_200k", |b| {
        b.iter(|| AddrSet::from_unsorted(black_box(raw.clone())).len())
    });
    g.throughput(Throughput::Elements(dense.len() as u64));
    g.bench_function("union_in_place_dense_sparse", |b| {
        b.iter(|| {
            let mut d = dense.clone();
            d.union_in_place(black_box(&sparse));
            d.len()
        })
    });
    g.bench_function("diff_count_dense_sparse", |b| {
        b.iter(|| black_box(&dense).diff_count(black_box(&sparse)))
    });
    g.bench_function("intersect_count_dense_sparse", |b| {
        b.iter(|| black_box(&dense).intersect_count(black_box(&sparse)))
    });
    g.bench_function("iterate_dense", |b| {
        b.iter(|| black_box(&dense).iter().fold(0u64, |acc, v| acc ^ v as u64))
    });
    g.finish();
}

/// The population-scale curve: rounds/sec at 1×/10×/100× population.
/// Resident-set sizes are measured once per multiplier outside the
/// timing loop and written to `target/addrset_resident.json` for the
/// bench script to merge.
fn bench_scale_curve(c: &mut Criterion) {
    let mut resident = String::from("{\n");
    let mut g = c.benchmark_group("addrset_scale");
    g.sample_size(10);
    for (i, mult) in MULTS.into_iter().enumerate() {
        let net = net_for(mult);
        let (rounds, bytes) = run_window(&net);
        let _ = writeln!(
            resident,
            "  \"x{mult}\": {{\"window_rounds\": {rounds}, \"resident_set_bytes\": {bytes}}}{}",
            if i + 1 < MULTS.len() { "," } else { "" }
        );
        g.bench_function(format!("window10_x{mult}"), |b| b.iter(|| black_box(run_window(&net).0)));
    }
    g.finish();
    resident.push('}');
    resident.push('\n');
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/addrset_resident.json", resident).ok();
}

criterion_group!(
    name = addrset;
    config = Criterion::default().sample_size(10);
    targets = bench_ops, bench_scale_curve
);
criterion_main!(addrset);
