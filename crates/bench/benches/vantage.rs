//! Multi-vantage fleet throughput: scheduler rounds per second at fleet
//! sizes N = 1, 2 and 4, over the work-stealing segment executor.
//! `scripts/bench_vantage.sh` distils the estimates into
//! `BENCH_vantage.json` so future PRs have a trajectory to compare
//! against. The N = 1 variant doubles as the overhead probe: it runs
//! the same rounds as the plain service (pinned byte-identical by
//! `tests/vantage.rs`), so any gap against `BENCH_round.json` is pure
//! scheduler cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sixdust_net::{Day, FaultConfig, Scale};
use sixdust_vantage::{FleetConfig, VantageFleet};

/// Days per iteration — enough batches for the heap and the executor to
/// matter, short enough for benchmark territory.
const WINDOW_DAYS: u32 = 8;

fn run_window(n: usize, threads: usize) -> usize {
    let config = FleetConfig::new(Scale::tiny(), n)
        .with_faults(FaultConfig::lossless().with_drop_permille(2))
        .with_threads(threads);
    let mut fleet = VantageFleet::build(config);
    fleet.run(Day(0), Day(WINDOW_DAYS));
    (0..fleet.len()).map(|v| fleet.service(v).rounds().len()).sum()
}

/// Fleet rounds/sec. `vantage_1_t4` is the single-vantage scheduler
/// overhead probe; `vantage_2_t4` and `vantage_4_t4` scale the roster at
/// a fixed four-worker budget; `vantage_4_t8` doubles the workers at the
/// widest roster to show executor scaling.
fn bench_vantage(c: &mut Criterion) {
    let mut g = c.benchmark_group("vantage");
    g.sample_size(10);
    for (n, threads) in [(1usize, 4usize), (2, 4), (4, 4), (4, 8)] {
        g.bench_function(format!("vantage_{n}_t{threads}"), |b| {
            b.iter(|| black_box(run_window(n, threads)))
        });
    }
    g.finish();
}

criterion_group!(
    name = vantage;
    config = Criterion::default().sample_size(10);
    targets = bench_vantage
);
criterion_main!(vantage);
