//! Serve-layer benchmarks: the delta codec's encode/decode throughput,
//! shard reads racing a concurrent publisher (the atomic-swap claim,
//! measured), and the full simulated consumer day in requests/sec
//! (distilled into `BENCH_serve.json` by `scripts/bench_serve.sh`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sixdust_addr::AddrSet;
use sixdust_serve::codec::{apply_delta, decode_full, encode_delta, encode_full};
use sixdust_serve::{
    run_chaos_day, run_day, ArtifactKind, ChaosDayConfig, FleetConfig, FrontendConfig, MirrorTier,
    MirrorTierConfig, ServeFaultConfig, SessionShape, SnapshotStore, StoreConfig, TimedPublish,
};

/// A hitlist-shaped item set: mostly structured strides with a sprinkle
/// of isolated addresses, `n` items total.
fn item_set(n: u128, salt: u128) -> AddrSet {
    AddrSet::from_unsorted(
        (0..n)
            .map(|i| {
                if i % 17 == 0 {
                    // Isolated: break the stride so the codec sees both shapes.
                    (0x2001u128 << 112) + i * i + salt * 13
                } else {
                    (0x2001u128 << 112) + i * 256 + salt
                }
            })
            .collect(),
    )
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_codec");
    let items = item_set(100_000, 0);
    // ~2% churn, like consecutive hitlist rounds.
    let mut next: AddrSet = items.iter().filter(|a| a % 53 != 0).collect();
    next.union_in_place(&item_set(2_000, 9_999_999));

    g.throughput(Throughput::Elements(items.len() as u64));
    g.bench_function("encode_full_100k", |b| b.iter(|| encode_full(black_box(&items)).len()));
    let encoded = encode_full(&items);
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("decode_full_100k", |b| {
        b.iter(|| decode_full(black_box(&encoded)).expect("valid").len())
    });
    g.throughput(Throughput::Elements(items.len() as u64));
    g.bench_function("encode_delta_2pct_churn", |b| {
        b.iter(|| encode_delta(black_box(&items), black_box(&next)).len())
    });
    let delta = encode_delta(&items, &next);
    g.bench_function("apply_delta_2pct_churn", |b| {
        b.iter(|| apply_delta(black_box(&items), black_box(&delta)).expect("applies").len())
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_store");
    g.sample_size(20);

    // Publication cost with structural sharing: round 2 differs from
    // round 1 by ~2%, so most shards carry over untouched.
    g.bench_function("publish_round_100k_2pct_churn", |b| {
        let base = item_set(100_000, 0);
        let churned: AddrSet = base.iter().filter(|a| a % 53 != 0).collect();
        b.iter(|| {
            let store = SnapshotStore::new(StoreConfig::default());
            store.publish_round(1, "d1", vec![(ArtifactKind::Responsive, base.clone())]);
            store.publish_round(2, "d2", vec![(ArtifactKind::Responsive, churned.clone())]);
            store.current_round()
        })
    });

    // Concurrent shard reads while a publisher keeps swapping
    // generations: readers never block on the publish, so per-read cost
    // should stay flat versus an idle store.
    g.bench_function("shard_reads_during_publication", |b| {
        let store = Arc::new(SnapshotStore::new(StoreConfig::default()));
        store.publish_round(1, "d1", vec![(ArtifactKind::Responsive, item_set(50_000, 0))]);
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let store = store.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut round = 2u64;
                while !stop.load(Ordering::Relaxed) {
                    let items = item_set(50_000, u128::from(round));
                    store.publish_round(round, "d", vec![(ArtifactKind::Responsive, items)]);
                    round += 1;
                }
            })
        };
        let shards = store.shard_count();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % shards;
            store.shard(ArtifactKind::Responsive, i).map(|s| s.items().len() + s.round() as usize)
        });
        stop.store(true, Ordering::Relaxed);
        publisher.join().expect("publisher thread");
    });
    g.finish();
}

/// Workspace-root `target/` path for a side-fact file: `cargo bench`
/// runs with the *package* directory as cwd, so a relative `target/`
/// would land in `crates/bench/target/` where the distillation script
/// never looks. Built without cargo (no `CARGO_MANIFEST_DIR`), fall
/// back to `target/` under the invoker's cwd.
fn side_fact_path(name: &str) -> std::path::PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map_or_else(
            || std::path::PathBuf::from("target"),
            |m| std::path::Path::new(m).join("../../target"),
        )
        .join(name)
}

fn write_side_facts(name: &str, body: String) {
    let path = side_fact_path(name);
    if let Err(e) = path
        .parent()
        .map_or(Ok(()), std::fs::create_dir_all)
        .and_then(|()| std::fs::write(&path, body))
    {
        eprintln!("[bench] could not write {}: {e}", path.display());
    }
}

/// A store that looks like a live service: every artifact kind present,
/// three published rounds so delta fetches have a base to diff against.
fn day_store() -> Arc<SnapshotStore> {
    let store = SnapshotStore::new(StoreConfig::default());
    for round in 1..=3u64 {
        let artifacts = ArtifactKind::ALL
            .iter()
            .map(|&kind| {
                let base = (0x2001u128 << 112) + kind.index() as u128 * 1_000_000;
                let n = 50_000 + round as u128 * 1_000;
                (kind, (0..n).map(|i| base + i * 7).collect::<AddrSet>())
            })
            .collect();
        store.publish_round(round, "day", artifacts);
    }
    Arc::new(store)
}

fn bench_day(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_day");
    g.sample_size(10);
    let store = day_store();
    let fleet = FleetConfig::default();
    // Elements = requests, so criterion's throughput line *is* the
    // requests/sec figure the distilled BENCH_serve.json reports.
    g.throughput(Throughput::Elements(fleet.requests));
    g.bench_function("simulate_day_100k_requests", |b| {
        b.iter(|| {
            run_day(black_box(&fleet), FrontendConfig::default(), &store, None).totals.requests
        })
    });
    g.finish();

    // Side facts the distillation script joins with criterion's mean:
    // the request count (for requests/sec) and one representative
    // report's savings counters.
    let report = run_day(&fleet, FrontendConfig::default(), &store, None);
    let side = format!(
        "{{\"requests\": {}, \"clients\": {}, \"bytes_sent\": {}, \
         \"bytes_saved_by_delta\": {}, \"not_modified\": {}, \
         \"shed\": {}, \"latency_p99_us\": {}}}\n",
        report.totals.requests,
        report.clients,
        report.totals.bytes_sent,
        report.bytes_saved_by_delta,
        report.totals.not_modified,
        report.totals.shed_client + report.totals.shed_global,
        report.latency_p99_us,
    );
    write_side_facts("serve_day.json", side);
}

/// The flash-crowd day through the event-loop front end: one million
/// session-based virtual clients (heavy-tailed request counts, think
/// time) with 40% of sessions piling onto two publication spikes — the
/// ROADMAP's "serve path to millions of clients" figure. Single sample:
/// the day replays several million requests.
fn bench_flash_day(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_flash_day");
    g.sample_size(10);
    let store = day_store();
    let day = FleetConfig::default().day_micros;
    let shape = SessionShape::builder()
        .with_spike(day / 3, 1_800_000_000)
        .with_spike(2 * day / 3, 1_800_000_000);
    let fleet = FleetConfig::builder()
        .with_clients(1_000_000)
        .with_session(shape)
        .build()
        .expect("valid fleet");
    let requests =
        run_day(&fleet, FrontendConfig::default(), &store, None).totals.requests;
    g.throughput(Throughput::Elements(requests));
    g.bench_function("flash_crowd_day_1m_clients", |b| {
        b.iter(|| {
            run_day(black_box(&fleet), FrontendConfig::default(), &store, None).totals.requests
        })
    });
    g.finish();

    let report = run_day(&fleet, FrontendConfig::default(), &store, None);
    let side = format!(
        "{{\"requests\": {}, \"clients\": {}, \"flash_arrivals\": {}, \"bytes_sent\": {}, \
         \"shed\": {}, \"latency_p99_us\": {}}}\n",
        report.totals.requests,
        report.clients,
        report.flash_arrivals,
        report.totals.bytes_sent,
        report.totals.shed_client + report.totals.shed_global,
        report.latency_p99_us,
    );
    write_side_facts("serve_flash_day.json", side);
}

/// The chaos day over a mirror tier: same store shape and fleet as
/// `bench_day`, driven through the resilient client path (affinity,
/// failover, seeded-backoff retries, hedging, circuit breakers) under
/// the representative `ServeFaultConfig::chaos` bad day. The 1-vs-4
/// pair prices the tier itself: mirrors_1 is the resilience machinery
/// with nowhere to fail over, mirrors_4 the full fan-out.
fn bench_mirror_day(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_mirror_day");
    g.sample_size(10);
    let fleet = FleetConfig::default();
    // Two publishes land mid-day so the sync path (deltas, checksum
    // rejections, stale-while-revalidate) is priced in, not just the
    // client walk.
    let plan: Vec<TimedPublish> = (0..2u64)
        .map(|i| TimedPublish {
            at_us: 86_400_000_000 / 3 * (i + 1),
            round: 4 + i,
            date: "day".to_string(),
            artifacts: ArtifactKind::ALL
                .iter()
                .map(|&kind| {
                    let base = (0x2001u128 << 112) + kind.index() as u128 * 1_000_000;
                    let n = 50_000 + (4 + i) as u128 * 1_000;
                    (kind, (0..n).map(|j| base + j * 7).collect::<AddrSet>())
                })
                .collect(),
        })
        .collect();
    g.throughput(Throughput::Elements(fleet.requests));
    for mirrors in [1usize, 4] {
        g.bench_function(format!("chaos_day_100k_requests_mirrors_{mirrors}"), |b| {
            b.iter(|| {
                let mut tier = MirrorTier::new(
                    MirrorTierConfig::builder().with_mirrors(mirrors),
                    day_store(),
                    ServeFaultConfig::chaos(fleet.seed, mirrors),
                );
                let config = ChaosDayConfig::builder().with_fleet(black_box(fleet.clone()));
                run_chaos_day(&config, &mut tier, &plan, None).resilience.hard_failures
            })
        });
    }
    g.finish();

    // Side facts for the distillation: the 4-mirror chaos day's
    // resilience ledger (hard_failures must be zero).
    let mut tier = MirrorTier::new(
        MirrorTierConfig::builder().with_mirrors(4),
        day_store(),
        ServeFaultConfig::chaos(fleet.seed, 4),
    );
    let config = ChaosDayConfig::builder().with_fleet(fleet);
    let report = run_chaos_day(&config, &mut tier, &plan, None);
    let r = &report.resilience;
    let side = format!(
        "{{\"mirrors\": {}, \"requests\": {}, \"attempts\": {}, \"retries\": {}, \
         \"failovers\": {}, \"hedged\": {}, \"hedge_wins\": {}, \"breaker_opened\": {}, \
         \"stale_served\": {}, \"syncs\": {}, \"sync_rejected\": {}, \"hard_failures\": {}, \
         \"latency_p99_us\": {}}}\n",
        r.mirrors,
        r.logical_requests,
        r.attempts,
        r.retries,
        r.failovers,
        r.hedged,
        r.hedge_wins,
        r.breaker_opened,
        r.stale_served,
        r.syncs,
        r.sync_rejected,
        r.hard_failures,
        report.latency_p99_us,
    );
    write_side_facts("serve_mirror_day.json", side);
}

criterion_group!(benches, bench_codec, bench_store, bench_day, bench_flash_day, bench_mirror_day);
criterion_main!(benches);
