//! A binary trie over IPv6 prefixes with longest-prefix-match lookup.
//!
//! This is the data structure behind every routing-flavoured question in
//! sixdust: "which AS originates this address?" (BGP table), "is this
//! address inside a known aliased prefix?", "is this address blocklisted?".
//!
//! The trie is a straightforward bit-per-level binary trie over an arena of
//! nodes. Path compression is deliberately omitted (smoltcp's "simplicity
//! over tricks" principle): IPv6 routing prefixes are ≤ /64 in practice and
//! lookups are a handful of cache lines either way.

use serde::{Deserialize, Serialize};

use crate::{Addr, Prefix};

const NO_NODE: u32 = u32::MAX;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node<V> {
    children: [u32; 2],
    value: Option<V>,
}

impl<V> Node<V> {
    fn empty() -> Node<V> {
        Node { children: [NO_NODE, NO_NODE], value: None }
    }
}

/// A map from [`Prefix`] to `V` supporting exact and longest-prefix-match
/// lookups.
///
/// ```
/// use sixdust_addr::{PrefixTrie, Prefix, Addr};
/// let mut t = PrefixTrie::new();
/// t.insert("2001:db8::/32".parse().unwrap(), "coarse");
/// t.insert("2001:db8:1::/48".parse().unwrap(), "fine");
/// let addr: Addr = "2001:db8:1::42".parse().unwrap();
/// assert_eq!(t.lookup(addr), Some((&"fine", "2001:db8:1::/48".parse().unwrap())));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> PrefixTrie<V> {
        PrefixTrie { nodes: vec![Node::empty()], len: 0 }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a prefix, returning the previous value if it was present.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = 0u32;
        for bit_idx in 0..prefix.len() {
            let bit = prefix.network().bit(bit_idx) as usize;
            let child = self.nodes[node as usize].children[bit];
            node = if child == NO_NODE {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::empty());
                self.nodes[node as usize].children[bit] = idx;
                idx
            } else {
                child
            };
        }
        let prev = self.nodes[node as usize].value.replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Exact-match lookup for a prefix.
    pub fn get(&self, prefix: Prefix) -> Option<&V> {
        let mut node = 0u32;
        for bit_idx in 0..prefix.len() {
            let bit = prefix.network().bit(bit_idx) as usize;
            node = self.nodes[node as usize].children[bit];
            if node == NO_NODE {
                return None;
            }
        }
        self.nodes[node as usize].value.as_ref()
    }

    /// Mutable exact-match lookup.
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut V> {
        let mut node = 0u32;
        for bit_idx in 0..prefix.len() {
            let bit = prefix.network().bit(bit_idx) as usize;
            node = self.nodes[node as usize].children[bit];
            if node == NO_NODE {
                return None;
            }
        }
        self.nodes[node as usize].value.as_mut()
    }

    /// Longest-prefix-match: the most specific stored prefix covering
    /// `addr`, together with that prefix.
    pub fn lookup(&self, addr: Addr) -> Option<(&V, Prefix)> {
        let mut node = 0u32;
        let mut best: Option<(u32, u8)> = None;
        for depth in 0u8..=128 {
            if self.nodes[node as usize].value.is_some() {
                best = Some((node, depth));
            }
            if depth == 128 {
                break;
            }
            let bit = addr.bit(depth) as usize;
            let child = self.nodes[node as usize].children[bit];
            if child == NO_NODE {
                break;
            }
            node = child;
        }
        best.map(|(n, depth)| {
            let value = self.nodes[n as usize].value.as_ref().expect("marked node");
            (value, Prefix::new(addr, depth))
        })
    }

    /// Shorthand: the value of the longest matching prefix, if any.
    pub fn lookup_value(&self, addr: Addr) -> Option<&V> {
        self.lookup(addr).map(|(v, _)| v)
    }

    /// Whether any stored prefix covers `addr`.
    pub fn covers(&self, addr: Addr) -> bool {
        self.lookup(addr).is_some()
    }

    /// Iterates over all `(prefix, value)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> + '_ {
        // Depth-first traversal with an explicit stack carrying the bits
        // accumulated so far.
        let mut stack: Vec<(u32, u128, u8)> = vec![(0, 0, 0)];
        std::iter::from_fn(move || {
            while let Some((node, bits, depth)) = stack.pop() {
                let n = &self.nodes[node as usize];
                // Push right child first so left (0-bit) pops first: sorted order.
                if depth < 128 {
                    for bit in [1u8, 0u8] {
                        let child = n.children[bit as usize];
                        if child != NO_NODE {
                            let shifted = bits | (u128::from(bit) << (127 - depth));
                            stack.push((child, shifted, depth + 1));
                        }
                    }
                }
                if let Some(v) = &n.value {
                    return Some((Prefix::new(Addr(bits), depth), v));
                }
            }
            None
        })
    }
}

impl<V> FromIterator<(Prefix, V)> for PrefixTrie<V> {
    fn from_iter<I: IntoIterator<Item = (Prefix, V)>>(iter: I) -> PrefixTrie<V> {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }
    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie() {
        let t: PrefixTrie<u32> = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(a("::1")), None);
    }

    #[test]
    fn exact_and_lpm() {
        let mut t = PrefixTrie::new();
        t.insert(p("2001:db8::/32"), 1);
        t.insert(p("2001:db8:1::/48"), 2);
        t.insert(p("::/0"), 0);
        assert_eq!(t.len(), 3);

        assert_eq!(t.get(p("2001:db8::/32")), Some(&1));
        assert_eq!(t.get(p("2001:db8::/33")), None);

        assert_eq!(t.lookup_value(a("2001:db8:1::9")), Some(&2));
        assert_eq!(t.lookup_value(a("2001:db8:2::9")), Some(&1));
        assert_eq!(t.lookup_value(a("9999::1")), Some(&0));
        let (_, matched) = t.lookup(a("2001:db8:1::9")).unwrap();
        assert_eq!(matched, p("2001:db8:1::/48"));
    }

    #[test]
    fn insert_replaces() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("2001:db8::/32"), 1), None);
        assert_eq!(t.insert(p("2001:db8::/32"), 5), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("2001:db8::/32")), Some(&5));
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(p("2001:db8::1/128"), 7);
        assert_eq!(t.lookup_value(a("2001:db8::1")), Some(&7));
        assert_eq!(t.lookup_value(a("2001:db8::2")), None);
    }

    #[test]
    fn no_default_no_match() {
        let mut t = PrefixTrie::new();
        t.insert(p("fd00::/8"), 1);
        assert!(!t.covers(a("fe00::1")));
        assert!(t.covers(a("fd12::1")));
    }

    #[test]
    fn iter_sorted() {
        let mut t = PrefixTrie::new();
        for (i, s) in
            ["2001:db8:2::/48", "2001:db8::/32", "2001:db8:1::/48", "::/0"].iter().enumerate()
        {
            t.insert(p(s), i);
        }
        let got: Vec<Prefix> = t.iter().map(|(p, _)| p).collect();
        assert_eq!(
            got,
            vec![p("::/0"), p("2001:db8::/32"), p("2001:db8:1::/48"), p("2001:db8:2::/48")]
        );
    }

    #[test]
    fn lpm_matches_naive_scan() {
        // Differential test against a brute-force implementation.
        let prefixes = [
            ("2001::/16", 1),
            ("2001:db8::/32", 2),
            ("2001:db8:8000::/33", 3),
            ("2001:db8:8000::/48", 4),
            ("2400::/12", 5),
        ];
        let t: PrefixTrie<i32> = prefixes.iter().map(|(s, v)| (p(s), *v)).collect();
        let probes = [
            "2001:db8:8000::1",
            "2001:db8:8001::1",
            "2001:db8::1",
            "2001:1::1",
            "2400:cb00::1",
            "3000::1",
        ];
        for s in probes {
            let addr = a(s);
            let naive = prefixes
                .iter()
                .filter(|(q, _)| p(q).contains(addr))
                .max_by_key(|(q, _)| p(q).len())
                .map(|(_, v)| *v);
            assert_eq!(t.lookup_value(addr).copied(), naive, "probe {s}");
        }
    }
}
