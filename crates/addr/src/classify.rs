//! Interface-identifier classification.
//!
//! The TGA literature the paper builds on (Gasser 2018's hitlist analysis,
//! 6GAN's "multi-pattern" seed classes) sorts addresses by how their IID
//! was assigned. These categories drive the bias analyses: low-byte IIDs
//! mean manually numbered servers, EUI-64 means SLAAC CPE, embedded-IPv4
//! means dual-stack conventions, high-entropy means privacy extensions or
//! load balancers.

use serde::{Deserialize, Serialize};

use crate::{Addr, Eui64};

/// How an address's interface identifier appears to have been assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IidClass {
    /// Small-integer IIDs (`::1`, `::2:15`) — manually numbered hosts.
    LowByte,
    /// MAC-derived SLAAC IIDs with the `ff:fe` marker.
    Eui64,
    /// An IPv4 address embedded in the IID (`::192.0.2.1` conventions,
    /// hex- or dotted-style).
    EmbeddedIpv4,
    /// IIDs built from the service port or repeated "word" nibbles
    /// (`::80`, `::53:53`, `::cafe`, `::beef`).
    PortOrWord,
    /// Everything else: privacy extensions, hashes, load-balancer draws.
    Random,
}

impl IidClass {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            IidClass::LowByte => "low-byte",
            IidClass::Eui64 => "eui-64",
            IidClass::EmbeddedIpv4 => "embedded-ipv4",
            IidClass::PortOrWord => "port/word",
            IidClass::Random => "random",
        }
    }
}

/// Hex "words" that show up in hand-assigned IIDs.
const WORDS: [u16; 8] = [0xcafe, 0xbeef, 0xdead, 0xbabe, 0xface, 0xf00d, 0xc0de, 0xabba];

/// Common service ports used as vanity IIDs.
const PORTS: [u64; 6] = [25, 53, 80, 110, 143, 443];

/// Classifies an address's interface identifier.
///
/// ```
/// use sixdust_addr::{classify_iid, IidClass};
/// assert_eq!(classify_iid("2001:db8::1".parse().unwrap()), IidClass::LowByte);
/// assert_eq!(classify_iid("2001:db8::443".parse().unwrap()), IidClass::PortOrWord);
/// ```
pub fn classify_iid(addr: Addr) -> IidClass {
    let iid = addr.iid();
    if Eui64::addr_is_eui64(addr) {
        return IidClass::Eui64;
    }
    let groups = [(iid >> 48) as u16, (iid >> 32) as u16, (iid >> 16) as u16, iid as u16];
    // The group's hex digits read as a decimal number <= 255.
    let hexdec =
        |g: u16| -> Option<u64> { format!("{g:x}").parse::<u64>().ok().filter(|v| *v <= 255) };
    // Hex-embedded IPv4: all four groups hold octet values written in
    // decimal digits and the leading group is set (::192:0:2:1).
    if groups[0] != 0 && groups.iter().all(|g| hexdec(*g).is_some()) {
        return IidClass::EmbeddedIpv4;
    }
    // Dotted-style embedding packed into the low 32 bits of a private or
    // classic range (::c0a8:101 = 192.168.1.1).
    if iid > 0 && iid >> 32 == 0 {
        let octets = (iid as u32).to_be_bytes();
        if octets[0] == 10 || (octets[0] == 192 && octets[1] == 168) || octets[0] == 172 {
            return IidClass::EmbeddedIpv4;
        }
    }
    // Vanity service ports, read the way operators write them (`::443`
    // means the hex digits "443").
    if iid > 0 && iid < 0x1_0000 {
        if let Some(v) = hexdec(groups[3]).or_else(|| format!("{iid:x}").parse().ok()) {
            if PORTS.contains(&v) {
                return IidClass::PortOrWord;
            }
        }
    }
    // Vanity words anywhere in the IID's groups.
    if groups.iter().any(|g| WORDS.contains(g)) {
        return IidClass::PortOrWord;
    }
    // Small integers confined to the low nibbles: hand-numbered hosts.
    if iid > 0 && iid < 1 << 24 {
        return IidClass::LowByte;
    }
    IidClass::Random
}

/// Classification counts over a corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IidBreakdown {
    /// Count per class, in [`IidClass`] declaration order.
    pub counts: [u64; 5],
    /// Total classified.
    pub total: u64,
}

impl IidBreakdown {
    /// Classifies a corpus.
    pub fn of(addrs: impl IntoIterator<Item = Addr>) -> IidBreakdown {
        let mut b = IidBreakdown::default();
        for a in addrs {
            let idx = match classify_iid(a) {
                IidClass::LowByte => 0,
                IidClass::Eui64 => 1,
                IidClass::EmbeddedIpv4 => 2,
                IidClass::PortOrWord => 3,
                IidClass::Random => 4,
            };
            b.counts[idx] += 1;
            b.total += 1;
        }
        b
    }

    /// Share of a class (0..=1).
    pub fn share(&self, class: IidClass) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = match class {
            IidClass::LowByte => 0,
            IidClass::Eui64 => 1,
            IidClass::EmbeddedIpv4 => 2,
            IidClass::PortOrWord => 3,
            IidClass::Random => 4,
        };
        self.counts[idx] as f64 / self.total as f64
    }

    /// `(label, count)` rows in declaration order.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        [
            IidClass::LowByte,
            IidClass::Eui64,
            IidClass::EmbeddedIpv4,
            IidClass::PortOrWord,
            IidClass::Random,
        ]
        .iter()
        .zip(self.counts.iter())
        .map(|(c, n)| (c.label(), *n))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn low_byte() {
        assert_eq!(classify_iid(a("2001:db8::1")), IidClass::LowByte);
        assert_eq!(classify_iid(a("2001:db8::2:15")), IidClass::LowByte);
        assert_ne!(classify_iid(a("2001:db8::")), IidClass::LowByte, "zero IID");
    }

    #[test]
    fn eui64() {
        let e = Eui64::from_oui_serial(0x001422, 7).apply_to(a("2001:db8::"));
        assert_eq!(classify_iid(e), IidClass::Eui64);
    }

    #[test]
    fn embedded_ipv4() {
        assert_eq!(classify_iid(a("2001:db8::192:0:2:1")), IidClass::EmbeddedIpv4);
        assert_eq!(classify_iid(a("2001:db8::10:20:30:40")), IidClass::EmbeddedIpv4);
        // Low-32 dotted embedding of a private range: c0a8:0101 = 192.168.1.1.
        assert_eq!(classify_iid(a("2001:db8::c0a8:101")), IidClass::EmbeddedIpv4);
    }

    #[test]
    fn ports_and_words() {
        assert_eq!(classify_iid(a("2001:db8::443")), IidClass::PortOrWord);
        assert_eq!(classify_iid(a("2001:db8::53")), IidClass::PortOrWord);
        assert_eq!(classify_iid(a("2001:db8::dead:beef")), IidClass::PortOrWord);
        assert_eq!(classify_iid(a("2001:db8::1:cafe:0:1")), IidClass::PortOrWord);
    }

    #[test]
    fn random_fallback() {
        assert_eq!(classify_iid(a("2001:db8::89ab:cdef:1234:5678")), IidClass::Random);
    }

    #[test]
    fn breakdown_counts() {
        let corpus = vec![
            a("2001:db8::1"),
            a("2001:db8::2"),
            a("2001:db8::443"),
            a("2001:db8::89ab:cdef:1234:5678"),
        ];
        let b = IidBreakdown::of(corpus);
        assert_eq!(b.total, 4);
        assert_eq!(b.share(IidClass::LowByte), 0.5);
        assert_eq!(b.share(IidClass::PortOrWord), 0.25);
        assert_eq!(b.rows().len(), 5);
        assert_eq!(b.rows()[0], ("low-byte", 2));
    }

    #[test]
    fn empty_breakdown() {
        let b = IidBreakdown::of(Vec::<Addr>::new());
        assert_eq!(b.share(IidClass::Random), 0.0);
    }
}
