//! [`AddrSet`] — the chunked address-set type every crate boundary
//! speaks.
//!
//! The paper's pipeline tracked hundreds of millions of candidates (134 M
//! GFW-polluted addresses alone); a flat sorted `Vec<u128>` spends 16
//! bytes per address no matter how clustered the population is, and leaks
//! that representation into every API that touches a set. `AddrSet`
//! buckets addresses by their top 32 bits (the routing /32) into chunks,
//! roaring-bitmap style, and picks each chunk's representation by
//! density:
//!
//! * **sorted block** — a sorted, deduplicated `Vec<u128>`; the sparse
//!   default, merged with the same linear kernels the round hot path has
//!   always used.
//! * **bitmap** — a base offset plus a `u64` bit array; chosen exactly
//!   when it is no larger than the sorted block it replaces, which makes
//!   the representation a pure function of the chunk's *content*. Two
//!   sets holding the same addresses are structurally identical no matter
//!   how they were built, so `PartialEq` derives and snapshots stay
//!   byte-stable.
//!
//! Iteration is ascending and streaming (chunk by chunk, never
//! materializing the whole set), identical to the order a normalized
//! `Vec<u128>` would give. Serde writes the same plain sequence of
//! integers a `Vec<Addr>` writes, so existing checkpoints and manifests
//! parse unchanged.

use serde::de::{SeqAccess, Visitor};
use serde::ser::SerializeSeq;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::sorted;
use crate::Addr;

/// A chunk's bucket key: the top 32 bits of the address (its /32).
fn key_of(value: u128) -> u32 {
    (value >> 96) as u32
}

/// Per-chunk payload. The variant is canonical: [`ChunkData::from_vec`]
/// picks the bitmap exactly when its backing array is no larger than the
/// sorted block, so equal content always yields equal structure.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ChunkData {
    /// Sorted, deduplicated values (full 128-bit form).
    Sorted(Vec<u128>),
    /// Dense range: bit `i` set means `base + i` is a member.
    Bitmap {
        /// The lowest member; bit 0 of `words[0]`.
        base: u128,
        /// The bit array, little-endian within each word.
        words: Vec<u64>,
    },
}

impl ChunkData {
    /// Builds the canonical representation of a sorted, deduplicated,
    /// non-empty value list.
    fn from_vec(values: Vec<u128>) -> ChunkData {
        debug_assert!(!values.is_empty());
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]));
        let base = values[0];
        let span = values[values.len() - 1] - base + 1;
        // Bitmap bytes = ceil(span/64)·8; sorted bytes = n·16. The bitmap
        // wins exactly when span ≤ 128·n — at least one member per 16
        // bytes of bit array, the break-even density.
        if values.len() >= 2 && span <= 128 * values.len() as u128 {
            let word_count = span.div_ceil(64) as usize;
            let mut words = vec![0u64; word_count];
            for &v in &values {
                let offset = (v - base) as usize;
                words[offset / 64] |= 1 << (offset % 64);
            }
            ChunkData::Bitmap { base, words }
        } else {
            ChunkData::Sorted(values)
        }
    }

    fn len(&self) -> usize {
        match self {
            ChunkData::Sorted(v) => v.len(),
            ChunkData::Bitmap { words, .. } => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    fn contains(&self, value: u128) -> bool {
        match self {
            ChunkData::Sorted(v) => v.binary_search(&value).is_ok(),
            ChunkData::Bitmap { base, words } => {
                if value < *base {
                    return false;
                }
                let offset = value - base;
                let word = (offset / 64) as usize;
                word < words.len() && words[word] & (1 << (offset % 64)) != 0
            }
        }
    }

    /// Appends the chunk's values, ascending, onto `out`.
    fn extend_into(&self, out: &mut Vec<u128>) {
        match self {
            ChunkData::Sorted(v) => out.extend_from_slice(v),
            ChunkData::Bitmap { base, words } => {
                for (i, &word) in words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let bit = bits.trailing_zeros();
                        out.push(base + (i as u128) * 64 + u128::from(bit));
                        bits &= bits - 1;
                    }
                }
            }
        }
    }

    /// Heap bytes held by the chunk payload.
    fn heap_bytes(&self) -> usize {
        match self {
            ChunkData::Sorted(v) => v.capacity() * std::mem::size_of::<u128>(),
            ChunkData::Bitmap { words, .. } => words.capacity() * std::mem::size_of::<u64>(),
        }
    }
}

/// One /32 bucket of the set.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Chunk {
    key: u32,
    data: ChunkData,
}

impl Chunk {
    fn from_vec(key: u32, values: Vec<u128>) -> Chunk {
        Chunk { key, data: ChunkData::from_vec(values) }
    }
}

/// A set of 128-bit addresses, chunked by /32 prefix with per-density
/// chunk representations. The address-set currency at every sixdust
/// crate boundary; see the [module docs](self) for the layout.
///
/// Deterministic: iteration is ascending, equal content means equal
/// structure, and serde output matches a sorted `Vec<Addr>` element for
/// element.
///
/// ```
/// use sixdust_addr::AddrSet;
/// let set: AddrSet = [3u128, 1, 2, 3].into_iter().collect();
/// assert_eq!(set.len(), 3);
/// assert_eq!(set.iter().collect::<Vec<u128>>(), vec![1, 2, 3]);
/// assert!(set.contains(2));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddrSet {
    chunks: Vec<Chunk>,
    len: usize,
}

impl AddrSet {
    /// Creates an empty set. `const`, so a `static` empty set costs
    /// nothing.
    pub const fn new() -> AddrSet {
        AddrSet { chunks: Vec::new(), len: 0 }
    }

    /// Builds from a sorted, strictly increasing (deduplicated) vector.
    /// This is the zero-comparison fast path used when the caller already
    /// holds canonical order — debug builds assert it.
    pub fn from_sorted(values: Vec<u128>) -> AddrSet {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "input must be strictly increasing");
        let mut set = AddrSet::new();
        set.len = values.len();
        let mut values = values.into_iter().peekable();
        while let Some(&first) = values.peek() {
            let key = key_of(first);
            let mut chunk_values = Vec::new();
            while let Some(&v) = values.peek() {
                if key_of(v) != key {
                    break;
                }
                chunk_values.push(v);
                values.next();
            }
            set.chunks.push(Chunk::from_vec(key, chunk_values));
        }
        set
    }

    /// Builds from values in any order, with duplicates allowed.
    pub fn from_unsorted(mut values: Vec<u128>) -> AddrSet {
        sorted::normalize(&mut values);
        AddrSet::from_sorted(values)
    }

    /// Builds from a sorted, strictly increasing slice of [`Addr`]s — the
    /// form the scan merge path produces.
    pub fn from_sorted_addrs(addrs: &[Addr]) -> AddrSet {
        AddrSet::from_sorted(addrs.iter().map(|a| a.0).collect())
    }

    /// Number of addresses in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks (distinct /32 buckets).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Number of chunks currently stored as bitmaps (dense buckets).
    pub fn bitmap_chunk_count(&self) -> usize {
        self.chunks.iter().filter(|c| matches!(c.data, ChunkData::Bitmap { .. })).count()
    }

    /// Resident bytes: the struct itself plus all heap the chunks hold.
    /// This is what the population-scale bench curve tracks.
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<AddrSet>()
            + self.chunks.capacity() * std::mem::size_of::<Chunk>()
            + self.chunks.iter().map(|c| c.data.heap_bytes()).sum::<usize>()
    }

    fn chunk_index(&self, key: u32) -> Result<usize, usize> {
        self.chunks.binary_search_by_key(&key, |c| c.key)
    }

    /// Whether `value` is a member.
    pub fn contains(&self, value: u128) -> bool {
        match self.chunk_index(key_of(value)) {
            Ok(i) => self.chunks[i].data.contains(value),
            Err(_) => false,
        }
    }

    /// Whether `addr` is a member.
    pub fn contains_addr(&self, addr: Addr) -> bool {
        self.contains(addr.0)
    }

    /// Inserts one value; returns `true` if it was new. Prefer the bulk
    /// operations ([`AddrSet::union_in_place`]) on hot paths — a single
    /// insert rebuilds its chunk.
    pub fn insert(&mut self, value: u128) -> bool {
        let key = key_of(value);
        match self.chunk_index(key) {
            Ok(i) => {
                if self.chunks[i].data.contains(value) {
                    return false;
                }
                let mut values = Vec::with_capacity(self.chunks[i].data.len() + 1);
                self.chunks[i].data.extend_into(&mut values);
                let at = values.binary_search(&value).expect_err("not a member");
                values.insert(at, value);
                self.chunks[i] = Chunk::from_vec(key, values);
                self.len += 1;
                true
            }
            Err(i) => {
                self.chunks.insert(i, Chunk::from_vec(key, vec![value]));
                self.len += 1;
                true
            }
        }
    }

    /// Removes one value; returns `true` if it was a member.
    pub fn remove(&mut self, value: u128) -> bool {
        let key = key_of(value);
        let Ok(i) = self.chunk_index(key) else { return false };
        if !self.chunks[i].data.contains(value) {
            return false;
        }
        let mut values = Vec::with_capacity(self.chunks[i].data.len());
        self.chunks[i].data.extend_into(&mut values);
        values.retain(|&v| v != value);
        if values.is_empty() {
            self.chunks.remove(i);
        } else {
            self.chunks[i] = Chunk::from_vec(key, values);
        }
        self.len -= 1;
        true
    }

    /// Merges `other` into `self`, chunk by chunk: untouched chunks of
    /// either side are moved or cloned whole, overlapping /32 buckets go
    /// through the linear union kernel. Never materializes more than one
    /// bucket at a time.
    pub fn union_in_place(&mut self, other: &AddrSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        let mut merged: Vec<Chunk> = Vec::with_capacity(self.chunks.len() + other.chunks.len());
        let mut len = 0usize;
        let mut ours = std::mem::take(&mut self.chunks).into_iter().peekable();
        let mut theirs = other.chunks.iter().peekable();
        let mut a_scratch: Vec<u128> = Vec::new();
        let mut b_scratch: Vec<u128> = Vec::new();
        let mut out_scratch: Vec<u128> = Vec::new();
        loop {
            let chunk = match (ours.peek(), theirs.peek()) {
                (Some(a), Some(b)) if a.key == b.key => {
                    let a = ours.next().expect("peeked");
                    let b = theirs.next().expect("peeked");
                    a_scratch.clear();
                    b_scratch.clear();
                    a.data.extend_into(&mut a_scratch);
                    b.data.extend_into(&mut b_scratch);
                    sorted::union_into(&a_scratch, &b_scratch, &mut out_scratch);
                    Chunk::from_vec(a.key, out_scratch.clone())
                }
                (Some(a), Some(b)) if a.key < b.key => ours.next().expect("peeked"),
                (Some(_), Some(_)) => theirs.next().expect("peeked").clone(),
                (Some(_), None) => ours.next().expect("peeked"),
                (None, Some(_)) => theirs.next().expect("peeked").clone(),
                (None, None) => break,
            };
            len += chunk.data.len();
            merged.push(chunk);
        }
        self.chunks = merged;
        self.len = len;
    }

    /// Merges a sorted, strictly increasing [`Addr`] slice — the per-round
    /// scan-merge hot path, equivalent to the old
    /// `sorted::union_in_place` over flat vectors.
    pub fn union_sorted_addrs(&mut self, addrs: &[Addr]) {
        if addrs.is_empty() {
            return;
        }
        self.union_in_place(&AddrSet::from_sorted_addrs(addrs));
    }

    /// Returns `self \ other` as a new set (chunks absent from `other`
    /// are cloned whole; overlapping buckets go through the diff kernel).
    pub fn diff(&self, other: &AddrSet) -> AddrSet {
        let mut out = AddrSet::new();
        let mut a_scratch: Vec<u128> = Vec::new();
        let mut b_scratch: Vec<u128> = Vec::new();
        let mut d_scratch: Vec<u128> = Vec::new();
        for chunk in &self.chunks {
            match other.chunk_index(chunk.key) {
                Err(_) => {
                    out.len += chunk.data.len();
                    out.chunks.push(chunk.clone());
                }
                Ok(i) => {
                    a_scratch.clear();
                    b_scratch.clear();
                    chunk.data.extend_into(&mut a_scratch);
                    other.chunks[i].data.extend_into(&mut b_scratch);
                    sorted::diff_into(&a_scratch, &b_scratch, &mut d_scratch);
                    if !d_scratch.is_empty() {
                        out.len += d_scratch.len();
                        out.chunks.push(Chunk::from_vec(chunk.key, d_scratch.clone()));
                    }
                }
            }
        }
        out
    }

    /// Counts `|self \ other|` without materializing the difference.
    pub fn diff_count(&self, other: &AddrSet) -> usize {
        let mut count = 0usize;
        let mut a_scratch: Vec<u128> = Vec::new();
        let mut b_scratch: Vec<u128> = Vec::new();
        for chunk in &self.chunks {
            match other.chunk_index(chunk.key) {
                Err(_) => count += chunk.data.len(),
                Ok(i) => {
                    a_scratch.clear();
                    b_scratch.clear();
                    chunk.data.extend_into(&mut a_scratch);
                    other.chunks[i].data.extend_into(&mut b_scratch);
                    count += sorted::diff_count(&a_scratch, &b_scratch);
                }
            }
        }
        count
    }

    /// Counts `|self ∩ other|` without materializing the intersection.
    pub fn intersect_count(&self, other: &AddrSet) -> usize {
        let mut count = 0usize;
        let mut a_scratch: Vec<u128> = Vec::new();
        let mut b_scratch: Vec<u128> = Vec::new();
        for chunk in &self.chunks {
            if let Ok(i) = other.chunk_index(chunk.key) {
                a_scratch.clear();
                b_scratch.clear();
                chunk.data.extend_into(&mut a_scratch);
                other.chunks[i].data.extend_into(&mut b_scratch);
                count += a_scratch.len() - sorted::diff_count(&a_scratch, &b_scratch);
            }
        }
        count
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersect(&self, other: &AddrSet) -> AddrSet {
        let mut out = AddrSet::new();
        let mut a_scratch: Vec<u128> = Vec::new();
        let mut b_scratch: Vec<u128> = Vec::new();
        let mut i_scratch: Vec<u128> = Vec::new();
        for chunk in &self.chunks {
            if let Ok(i) = other.chunk_index(chunk.key) {
                a_scratch.clear();
                b_scratch.clear();
                chunk.data.extend_into(&mut a_scratch);
                other.chunks[i].data.extend_into(&mut b_scratch);
                sorted::intersect_into(&a_scratch, &b_scratch, &mut i_scratch);
                if !i_scratch.is_empty() {
                    out.len += i_scratch.len();
                    out.chunks.push(Chunk::from_vec(chunk.key, i_scratch.clone()));
                }
            }
        }
        out
    }

    /// Streaming ascending iteration over the raw 128-bit values —
    /// exactly the order a normalized `Vec<u128>` iterates in. Exact-size
    /// and cloneable, so encoders can write a count first.
    pub fn iter(&self) -> Iter<'_> {
        Iter { chunks: self.chunks.iter(), current: ChunkCursor::Empty, remaining: self.len }
    }

    /// Streaming ascending iteration as [`Addr`]s.
    pub fn addrs(&self) -> impl ExactSizeIterator<Item = Addr> + Clone + '_ {
        self.iter().map(Addr)
    }

    /// Materializes the set as a sorted `Vec<u128>` (compatibility edges
    /// only — prefer [`AddrSet::iter`]).
    pub fn to_vec(&self) -> Vec<u128> {
        let mut out = Vec::with_capacity(self.len);
        for chunk in &self.chunks {
            chunk.data.extend_into(&mut out);
        }
        out
    }

    /// Materializes the set as a sorted `Vec<Addr>`.
    pub fn to_addr_vec(&self) -> Vec<Addr> {
        self.addrs().collect()
    }
}

/// Per-chunk cursor of the streaming iterator.
#[derive(Debug, Clone)]
enum ChunkCursor<'a> {
    Empty,
    Sorted(std::slice::Iter<'a, u128>),
    Bitmap { base: u128, words: &'a [u64], word_index: usize, bits: u64 },
}

/// Streaming ascending iterator over an [`AddrSet`]; see
/// [`AddrSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    chunks: std::slice::Iter<'a, Chunk>,
    current: ChunkCursor<'a>,
    remaining: usize,
}

impl Iterator for Iter<'_> {
    type Item = u128;

    fn next(&mut self) -> Option<u128> {
        loop {
            match &mut self.current {
                ChunkCursor::Sorted(it) => {
                    if let Some(&v) = it.next() {
                        self.remaining -= 1;
                        return Some(v);
                    }
                }
                ChunkCursor::Bitmap { base, words, word_index, bits } => loop {
                    if *bits != 0 {
                        let bit = bits.trailing_zeros();
                        *bits &= *bits - 1;
                        self.remaining -= 1;
                        return Some(*base + (*word_index as u128 - 1) * 64 + u128::from(bit));
                    }
                    if *word_index >= words.len() {
                        break;
                    }
                    *bits = words[*word_index];
                    *word_index += 1;
                },
                ChunkCursor::Empty => {}
            }
            let chunk = self.chunks.next()?;
            self.current = match &chunk.data {
                ChunkData::Sorted(v) => ChunkCursor::Sorted(v.iter()),
                ChunkData::Bitmap { base, words } => {
                    ChunkCursor::Bitmap { base: *base, words, word_index: 0, bits: 0 }
                }
            };
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a AddrSet {
    type Item = u128;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<u128> for AddrSet {
    fn from_iter<I: IntoIterator<Item = u128>>(iter: I) -> AddrSet {
        AddrSet::from_unsorted(iter.into_iter().collect())
    }
}

impl FromIterator<Addr> for AddrSet {
    fn from_iter<I: IntoIterator<Item = Addr>>(iter: I) -> AddrSet {
        iter.into_iter().map(|a| a.0).collect()
    }
}

impl From<Vec<u128>> for AddrSet {
    fn from(values: Vec<u128>) -> AddrSet {
        AddrSet::from_unsorted(values)
    }
}

impl Serialize for AddrSet {
    /// Serializes as a plain ascending sequence of integers — the exact
    /// shape a sorted `Vec<Addr>` (or `Vec<u128>`) serializes to, so
    /// checkpoints and artifacts stay byte-identical across the
    /// representation change.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len))?;
        for v in self.iter() {
            seq.serialize_element(&v)?;
        }
        seq.end()
    }
}

impl<'de> Deserialize<'de> for AddrSet {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<AddrSet, D::Error> {
        struct SetVisitor;
        impl<'de> Visitor<'de> for SetVisitor {
            type Value = AddrSet;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a sequence of 128-bit addresses")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<AddrSet, A::Error> {
                let mut values: Vec<u128> = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(v) = seq.next_element::<u128>()? {
                    values.push(v);
                }
                Ok(AddrSet::from_unsorted(values))
            }
        }
        deserializer.deserialize_seq(SetVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// A clustered population: `n` addresses spread over `prefixes` /32
    /// buckets, dense strides inside each — the shape real hitlists have.
    fn clustered(n: u128, prefixes: u128) -> Vec<u128> {
        (0..n)
            .map(|i| {
                let key = (0x2001_0000 + (i % prefixes)) << 96;
                key | ((i / prefixes) * 3)
            })
            .collect()
    }

    #[test]
    fn canonical_representation_is_construction_independent() {
        let values = clustered(1000, 7);
        let a = AddrSet::from_unsorted(values.clone());
        let mut b = AddrSet::new();
        for &v in values.iter().rev() {
            b.insert(v);
        }
        let mut c = AddrSet::new();
        let (lo, hi) = values.split_at(values.len() / 2);
        c.union_in_place(&AddrSet::from_unsorted(hi.to_vec()));
        c.union_in_place(&AddrSet::from_unsorted(lo.to_vec()));
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.chunk_count(), 7);
        assert!(a.bitmap_chunk_count() > 0, "stride-3 buckets are dense enough for bitmaps");
    }

    #[test]
    fn iteration_matches_normalized_vec() {
        let mut values = clustered(5000, 11);
        values.extend_from_slice(&[0, u128::MAX, 1 << 96, (1 << 96) + 1]);
        let set = AddrSet::from_unsorted(values.clone());
        sorted::normalize(&mut values);
        assert_eq!(set.len(), values.len());
        assert_eq!(set.iter().len(), values.len());
        assert_eq!(set.to_vec(), values);
        let iterated: Vec<u128> = set.iter().collect();
        assert_eq!(iterated, values);
    }

    #[test]
    fn insert_remove_contains_against_btreeset() {
        let mut set = AddrSet::new();
        let mut model: BTreeSet<u128> = BTreeSet::new();
        for i in 0u128..2000 {
            let v = ((i % 5) << 96) | ((i * i) % 701);
            assert_eq!(set.insert(v), model.insert(v), "insert {v}");
            if i % 3 == 0 {
                let w = ((i % 5) << 96) | ((i * 7) % 701);
                assert_eq!(set.remove(w), model.remove(&w), "remove {w}");
            }
            assert_eq!(set.len(), model.len());
        }
        assert_eq!(set.to_vec(), model.iter().copied().collect::<Vec<u128>>());
        for v in model.iter().take(50) {
            assert!(set.contains(*v));
            assert!(set.contains_addr(Addr(*v)));
        }
        assert!(!set.contains(u128::MAX));
    }

    #[test]
    fn set_algebra_matches_btreeset() {
        let a_vals = clustered(800, 5);
        let b_vals = clustered(600, 3);
        let a = AddrSet::from_unsorted(a_vals.clone());
        let b = AddrSet::from_unsorted(b_vals.clone());
        let ma: BTreeSet<u128> = a_vals.into_iter().collect();
        let mb: BTreeSet<u128> = b_vals.into_iter().collect();

        let mut union = a.clone();
        union.union_in_place(&b);
        assert_eq!(union.to_vec(), ma.union(&mb).copied().collect::<Vec<u128>>());

        let diff = a.diff(&b);
        assert_eq!(diff.to_vec(), ma.difference(&mb).copied().collect::<Vec<u128>>());
        assert_eq!(a.diff_count(&b), ma.difference(&mb).count());
        assert_eq!(b.diff_count(&a), mb.difference(&ma).count());

        let inter = a.intersect(&b);
        assert_eq!(inter.to_vec(), ma.intersection(&mb).copied().collect::<Vec<u128>>());
        assert_eq!(a.intersect_count(&b), ma.intersection(&mb).count());
    }

    #[test]
    fn union_sorted_addrs_is_the_round_merge() {
        let mut acc = AddrSet::new();
        let batch1: Vec<Addr> = [1u128, 5, 9].into_iter().map(Addr).collect();
        let batch2: Vec<Addr> = [2u128, 5, (7 << 96) + 1].into_iter().map(Addr).collect();
        acc.union_sorted_addrs(&batch1);
        acc.union_sorted_addrs(&batch2);
        acc.union_sorted_addrs(&[]);
        assert_eq!(acc.to_vec(), vec![1, 2, 5, 9, (7 << 96) + 1]);
    }

    #[test]
    fn empty_set_edges() {
        let empty = AddrSet::new();
        assert!(empty.is_empty());
        assert_eq!(empty.iter().count(), 0);
        assert_eq!(empty.diff(&empty), AddrSet::new());
        assert_eq!(empty.diff_count(&empty), 0);
        assert_eq!(empty.intersect_count(&empty), 0);
        let some = AddrSet::from_sorted(vec![1, 2]);
        assert_eq!(some.diff(&empty), some);
        assert_eq!(empty.diff(&some), empty);
        let mut u = AddrSet::new();
        u.union_in_place(&some);
        assert_eq!(u, some);
    }

    #[test]
    fn serde_matches_vec_of_addrs_byte_for_byte() {
        let values = clustered(300, 4);
        let set = AddrSet::from_unsorted(values.clone());
        let vec: Vec<Addr> = set.addrs().collect();
        let set_json = serde_json::to_string(&set).expect("set serializes");
        let vec_json = serde_json::to_string(&vec).expect("vec serializes");
        assert_eq!(set_json, vec_json, "AddrSet must serialize exactly like a sorted Vec<Addr>");
        let back: AddrSet = serde_json::from_str(&set_json).expect("round trip");
        assert_eq!(back, set);
        // A legacy unsorted Vec<Addr> payload still parses (and
        // normalizes) — backward compatibility with v2 checkpoints.
        let legacy: AddrSet = serde_json::from_str("[3, 1, 2, 3]").expect("legacy payload");
        assert_eq!(legacy.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn dense_chunks_use_less_memory_than_flat_vecs() {
        // A fully dense /32 bucket: 100k consecutive addresses.
        let dense: Vec<u128> = (0..100_000u128).map(|i| (0x2001u128 << 96) + i).collect();
        let flat_bytes = dense.len() * std::mem::size_of::<u128>();
        let set = AddrSet::from_sorted(dense);
        assert_eq!(set.bitmap_chunk_count(), 1);
        assert!(
            set.mem_bytes() < flat_bytes / 8,
            "dense bitmap ({} B) should be far under the flat vec ({} B)",
            set.mem_bytes(),
            flat_bytes
        );
        // A sparse population stays a sorted block and costs about the
        // same as the flat vec.
        let sparse: Vec<u128> = (0..1000u128).map(|i| i << 80).collect();
        let set = AddrSet::from_sorted(sparse);
        assert_eq!(set.bitmap_chunk_count(), 0);
    }

    #[test]
    fn bitmap_threshold_is_exact_break_even() {
        // Two values spanning exactly 256 positions: bitmap (4 words,
        // 32 B) equals sorted (2 × 16 B) — the rule prefers the bitmap at
        // break-even. One position wider and the sorted block wins.
        let at = AddrSet::from_sorted(vec![0, 255]);
        assert_eq!(at.bitmap_chunk_count(), 1);
        let over = AddrSet::from_sorted(vec![0, 256]);
        assert_eq!(over.bitmap_chunk_count(), 0);
        // Both still iterate identically.
        assert_eq!(at.to_vec(), vec![0, 255]);
        assert_eq!(over.to_vec(), vec![0, 256]);
    }
}
