//! Merge kernels over sorted slices — crate-private plumbing behind
//! [`AddrSet`](crate::AddrSet).
//!
//! The hitlist service's round hot path used to shuffle its responsive
//! sets through `HashSet` clones and rebuilds — one hash per address per
//! protocol per round. These kernels replace that bookkeeping with linear
//! merges over sorted, deduplicated `Vec`s: every operation is a single
//! pass, the output buffers are caller-owned and reusable across rounds,
//! and the resulting sets are canonically ordered (which also makes
//! snapshots and published artifacts byte-stable for free). Since the
//! `AddrSet` redesign these free functions are no longer exported; every
//! external caller goes through the set type, which applies them one
//! chunk at a time.
//!
//! All kernels require their inputs sorted ascending and free of
//! duplicates; [`normalize`] produces that form. Outputs are cleared
//! first and are themselves sorted and deduplicated.

/// Sorts `v` ascending and removes duplicates — the canonical form every
/// other kernel in this module expects.
pub fn normalize<T: Ord>(v: &mut Vec<T>) {
    v.sort_unstable();
    v.dedup();
}

/// Whether sorted slice `s` contains `item` (binary search).
#[allow(dead_code)] // kept with the other merge kernels for the next caller
pub fn contains<T: Ord>(s: &[T], item: &T) -> bool {
    s.binary_search(item).is_ok()
}

/// Writes `a ∪ b` into `out` (cleared first).
pub fn union_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    out.clear();
    out.reserve(a.len().max(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Merges `b` into the accumulator `acc` in place, using `scratch` as the
/// reusable merge buffer (its capacity is retained across calls — the
/// allocation-free steady state of a per-round accumulation loop).
#[allow(dead_code)] // kept with the other merge kernels for the next caller
pub fn union_in_place<T: Ord + Copy>(acc: &mut Vec<T>, b: &[T], scratch: &mut Vec<T>) {
    if b.is_empty() {
        return;
    }
    if acc.is_empty() {
        acc.extend_from_slice(b);
        return;
    }
    union_into(acc, b, scratch);
    std::mem::swap(acc, scratch);
}

/// Writes `a \ b` into `out` (cleared first).
pub fn diff_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    out.clear();
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
}

/// Counts `|a \ b|` without materializing the difference.
pub fn diff_count<T: Ord>(a: &[T], b: &[T]) -> usize {
    let mut j = 0;
    let mut count = 0;
    for x in a {
        while j < b.len() && b[j] < *x {
            j += 1;
        }
        if j >= b.len() || b[j] != *x {
            count += 1;
        }
    }
    count
}

/// Writes `a ∩ b` into `out` (cleared first).
pub fn intersect_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;
    use std::collections::HashSet;

    fn addrs(v: &[u128]) -> Vec<Addr> {
        v.iter().map(|x| Addr(*x)).collect()
    }

    #[test]
    fn union_diff_intersect_basic() {
        let a = addrs(&[1, 3, 5, 7]);
        let b = addrs(&[2, 3, 6, 7, 9]);
        let mut out = Vec::new();
        union_into(&a, &b, &mut out);
        assert_eq!(out, addrs(&[1, 2, 3, 5, 6, 7, 9]));
        diff_into(&a, &b, &mut out);
        assert_eq!(out, addrs(&[1, 5]));
        assert_eq!(diff_count(&a, &b), 2);
        diff_into(&b, &a, &mut out);
        assert_eq!(out, addrs(&[2, 6, 9]));
        assert_eq!(diff_count(&b, &a), 3);
        intersect_into(&a, &b, &mut out);
        assert_eq!(out, addrs(&[3, 7]));
    }

    #[test]
    fn empty_and_disjoint_edges() {
        let a = addrs(&[1, 2]);
        let empty: Vec<Addr> = Vec::new();
        let mut out = Vec::new();
        union_into(&a, &empty, &mut out);
        assert_eq!(out, a);
        union_into(&empty, &a, &mut out);
        assert_eq!(out, a);
        diff_into(&a, &empty, &mut out);
        assert_eq!(out, a);
        diff_into(&empty, &a, &mut out);
        assert!(out.is_empty());
        assert_eq!(diff_count(&empty, &a), 0);
        intersect_into(&a, &addrs(&[3, 4]), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn union_in_place_reuses_scratch() {
        let mut acc: Vec<Addr> = Vec::new();
        let mut scratch: Vec<Addr> = Vec::new();
        union_in_place(&mut acc, &addrs(&[5, 9]), &mut scratch);
        union_in_place(&mut acc, &addrs(&[1, 5, 7]), &mut scratch);
        union_in_place(&mut acc, &[], &mut scratch);
        assert_eq!(acc, addrs(&[1, 5, 7, 9]));
        union_in_place(&mut acc, &addrs(&[2]), &mut scratch);
        assert_eq!(acc, addrs(&[1, 2, 5, 7, 9]));
        assert!(scratch.capacity() > 0, "scratch keeps a reusable buffer after the swap");
    }

    #[test]
    fn normalize_and_contains() {
        let mut v = addrs(&[9, 1, 9, 4, 1]);
        normalize(&mut v);
        assert_eq!(v, addrs(&[1, 4, 9]));
        assert!(contains(&v, &Addr(4)));
        assert!(!contains(&v, &Addr(5)));
        assert!(!contains::<Addr>(&[], &Addr(5)));
    }

    #[test]
    fn kernels_agree_with_hashsets() {
        // Pseudo-random cross-check against the HashSet reference on a few
        // hundred deterministic draws.
        let mut a: Vec<u128> =
            (0..400).map(|i: u128| i.wrapping_mul(2_654_435_761) % 512).collect();
        let mut b: Vec<u128> = (0..300).map(|i: u128| i.wrapping_mul(40_503) % 512).collect();
        normalize(&mut a);
        normalize(&mut b);
        let sa: HashSet<u128> = a.iter().copied().collect();
        let sb: HashSet<u128> = b.iter().copied().collect();
        let mut out = Vec::new();

        union_into(&a, &b, &mut out);
        let mut want: Vec<u128> = sa.union(&sb).copied().collect();
        want.sort_unstable();
        assert_eq!(out, want);

        diff_into(&a, &b, &mut out);
        let mut want: Vec<u128> = sa.difference(&sb).copied().collect();
        want.sort_unstable();
        assert_eq!(out, want);
        assert_eq!(diff_count(&a, &b), want.len());

        intersect_into(&a, &b, &mut out);
        let mut want: Vec<u128> = sa.intersection(&sb).copied().collect();
        want.sort_unstable();
        assert_eq!(out, want);
    }
}
