//! The [`Addr`] newtype: a 128-bit IPv6 address with nibble-level access.

use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A 128-bit IPv6 address.
///
/// Stored as a big-endian-interpreted `u128` so that ordinary integer
/// ordering matches lexicographic address ordering, which the distance
/// clustering algorithm and the prefix trie both rely on.
///
/// ```
/// use sixdust_addr::Addr;
/// let a: Addr = "2001:db8::1".parse().unwrap();
/// assert_eq!(a.nibble(0), 0x2);
/// assert_eq!(a.nibble(1), 0x0);
/// assert_eq!(a.nibble(31), 0x1);
/// assert_eq!(a.to_string(), "2001:db8::1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u128);

impl Addr {
    /// The unspecified address `::`.
    pub const UNSPECIFIED: Addr = Addr(0);

    /// Number of nibbles (4-bit groups) in an IPv6 address.
    pub const NIBBLES: usize = 32;

    /// Builds an address from eight 16-bit segments, mirroring
    /// [`Ipv6Addr::new`].
    #[allow(clippy::too_many_arguments)] // mirrors std's Ipv6Addr::new
    pub const fn new(a: u16, b: u16, c: u16, d: u16, e: u16, f: u16, g: u16, h: u16) -> Addr {
        Addr(
            (a as u128) << 112
                | (b as u128) << 96
                | (c as u128) << 80
                | (d as u128) << 64
                | (e as u128) << 48
                | (f as u128) << 32
                | (g as u128) << 16
                | (h as u128),
        )
    }

    /// Returns the `i`-th nibble (0 = most significant), `0..=0xf`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[inline]
    pub fn nibble(self, i: usize) -> u8 {
        assert!(i < Self::NIBBLES, "nibble index {i} out of range");
        ((self.0 >> (124 - 4 * i)) & 0xf) as u8
    }

    /// Returns a copy of the address with the `i`-th nibble replaced.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32` or `v > 0xf`.
    #[inline]
    pub fn with_nibble(self, i: usize, v: u8) -> Addr {
        assert!(i < Self::NIBBLES, "nibble index {i} out of range");
        assert!(v <= 0xf, "nibble value {v} out of range");
        let shift = 124 - 4 * i;
        Addr((self.0 & !(0xfu128 << shift)) | ((v as u128) << shift))
    }

    /// Returns all 32 nibbles, most significant first.
    pub fn nibbles(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.nibble(i);
        }
        out
    }

    /// Reconstructs an address from 32 nibbles (most significant first).
    pub fn from_nibbles(nibbles: &[u8; 32]) -> Addr {
        let mut v = 0u128;
        for &n in nibbles.iter() {
            debug_assert!(n <= 0xf);
            v = (v << 4) | (n as u128 & 0xf);
        }
        Addr(v)
    }

    /// Returns the `i`-th bit (0 = most significant).
    #[inline]
    pub fn bit(self, i: u8) -> bool {
        debug_assert!(i < 128);
        (self.0 >> (127 - i)) & 1 == 1
    }

    /// The upper 64 bits: the network/subnet part under the conventional
    /// /64 split.
    #[inline]
    pub fn network_u64(self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// The lower 64 bits: the interface identifier (IID) under the
    /// conventional /64 split.
    #[inline]
    pub fn iid(self) -> u64 {
        self.0 as u64
    }

    /// Replaces the low 64 bits (the IID).
    #[inline]
    pub fn with_iid(self, iid: u64) -> Addr {
        Addr((self.0 & !0xffff_ffff_ffff_ffffu128) | iid as u128)
    }

    /// Absolute distance between two addresses as unsigned integers.
    #[inline]
    pub fn distance(self, other: Addr) -> u128 {
        self.0.abs_diff(other.0)
    }

    /// Saturating integer addition; used by cluster-filling generators.
    #[inline]
    pub fn saturating_add(self, delta: u128) -> Addr {
        Addr(self.0.saturating_add(delta))
    }

    /// Conversion to the standard library representation.
    #[inline]
    pub fn to_ipv6(self) -> Ipv6Addr {
        Ipv6Addr::from(self.0)
    }
}

impl From<Ipv6Addr> for Addr {
    fn from(a: Ipv6Addr) -> Addr {
        Addr(u128::from(a))
    }
}

impl From<Addr> for Ipv6Addr {
    fn from(a: Addr) -> Ipv6Addr {
        a.to_ipv6()
    }
}

impl From<u128> for Addr {
    fn from(v: u128) -> Addr {
        Addr(v)
    }
}

impl From<Addr> for u128 {
    fn from(a: Addr) -> u128 {
        a.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_ipv6().fmt(f)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({})", self.to_ipv6())
    }
}

impl FromStr for Addr {
    type Err = std::net::AddrParseError;

    fn from_str(s: &str) -> Result<Addr, Self::Err> {
        Ipv6Addr::from_str(s).map(Addr::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_roundtrip() {
        let a: Addr = "2001:db8:1234:5678:9abc:def0:1122:3344".parse().unwrap();
        assert_eq!(Addr::from_nibbles(&a.nibbles()), a);
    }

    #[test]
    fn nibble_indexing_matches_text() {
        let a: Addr = "fedc:ba98:7654:3210:0123:4567:89ab:cdef".parse().unwrap();
        let expect = [
            0xf, 0xe, 0xd, 0xc, 0xb, 0xa, 0x9, 0x8, 0x7, 0x6, 0x5, 0x4, 0x3, 0x2, 0x1, 0x0, 0x0,
            0x1, 0x2, 0x3, 0x4, 0x5, 0x6, 0x7, 0x8, 0x9, 0xa, 0xb, 0xc, 0xd, 0xe, 0xf,
        ];
        assert_eq!(a.nibbles(), expect);
    }

    #[test]
    fn with_nibble_sets_only_target() {
        let a: Addr = "2001:db8::".parse().unwrap();
        let b = a.with_nibble(31, 0xf);
        assert_eq!(b.to_string(), "2001:db8::f");
        assert_eq!(b.with_nibble(31, 0), a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nibble_index_bound() {
        Addr::UNSPECIFIED.nibble(32);
    }

    #[test]
    fn bit_access() {
        let a = Addr(1u128 << 127);
        assert!(a.bit(0));
        assert!(!a.bit(1));
        let b = Addr(1);
        assert!(b.bit(127));
    }

    #[test]
    fn iid_split() {
        let a: Addr = "2001:db8::1:2:3:4".parse().unwrap();
        assert_eq!(a.network_u64(), 0x2001_0db8_0000_0000);
        assert_eq!(a.iid(), 0x0001_0002_0003_0004);
        assert_eq!(a.with_iid(0xff), "2001:db8::ff".parse().unwrap());
    }

    #[test]
    fn ordering_matches_numeric() {
        let lo: Addr = "2001:db8::1".parse().unwrap();
        let hi: Addr = "2001:db8::2".parse().unwrap();
        assert!(lo < hi);
        assert_eq!(lo.distance(hi), 1);
        assert_eq!(hi.distance(lo), 1);
    }

    #[test]
    fn display_is_canonical() {
        let a: Addr = "2001:0db8:0000:0000:0000:0000:0000:0001".parse().unwrap();
        assert_eq!(a.to_string(), "2001:db8::1");
    }

    #[test]
    fn new_matches_parse() {
        let a = Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1);
        assert_eq!(a, "2001:db8::1".parse().unwrap());
    }
}
