//! EUI-64 interface identifiers.
//!
//! SLAAC historically derived the 64-bit IID from the interface MAC address
//! by flipping the universal/local bit and splicing `ff:fe` into the middle
//! (RFC 4291 §2.5.1). The paper shows 282 M input addresses of the IPv6
//! Hitlist carry EUI-64 IIDs derived from only 22.7 M distinct MACs — CPE
//! devices whose ISPs rotate prefixes — and that the most frequent EUI-64
//! value (a ZTE OUI) appears in 240 k distinct addresses. This module
//! provides the embed/extract primitives that analysis is built on.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Addr;

/// A MAC address, the source material of an EUI-64 IID.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Eui64 {
    mac: [u8; 6],
}

impl Eui64 {
    /// Wraps a raw MAC address.
    pub const fn from_mac(mac: [u8; 6]) -> Eui64 {
        Eui64 { mac }
    }

    /// Builds a MAC from a 24-bit OUI and a 24-bit device serial.
    pub fn from_oui_serial(oui: u32, serial: u32) -> Eui64 {
        Eui64 {
            mac: [
                (oui >> 16) as u8,
                (oui >> 8) as u8,
                oui as u8,
                (serial >> 16) as u8,
                (serial >> 8) as u8,
                serial as u8,
            ],
        }
    }

    /// The raw MAC bytes.
    pub fn mac(self) -> [u8; 6] {
        self.mac
    }

    /// The Organizationally Unique Identifier (vendor part).
    pub fn oui(self) -> u32 {
        // Mask the U/L and group bits: OUI registries list the universal
        // form of the first octet.
        (u32::from(self.mac[0] & 0xfc) << 16)
            | (u32::from(self.mac[1]) << 8)
            | u32::from(self.mac[2])
    }

    /// Encodes as a modified EUI-64 IID: flip the U/L bit, insert `ff:fe`.
    pub fn to_iid(self) -> u64 {
        let m = self.mac;
        u64::from(m[0] ^ 0x02) << 56
            | u64::from(m[1]) << 48
            | u64::from(m[2]) << 40
            | 0xff << 32
            | 0xfe << 24
            | u64::from(m[3]) << 16
            | u64::from(m[4]) << 8
            | u64::from(m[5])
    }

    /// Decodes an IID back into a MAC if it has the `ff:fe` marker.
    pub fn from_iid(iid: u64) -> Option<Eui64> {
        if (iid >> 24) & 0xffff != 0xfffe {
            return None;
        }
        Some(Eui64 {
            mac: [
                ((iid >> 56) as u8) ^ 0x02,
                (iid >> 48) as u8,
                (iid >> 40) as u8,
                (iid >> 16) as u8,
                (iid >> 8) as u8,
                iid as u8,
            ],
        })
    }

    /// Extracts the embedded MAC from a full address, if its IID is EUI-64.
    pub fn from_addr(addr: Addr) -> Option<Eui64> {
        Eui64::from_iid(addr.iid())
    }

    /// `true` if the address IID carries the `ff:fe` EUI-64 marker.
    pub fn addr_is_eui64(addr: Addr) -> bool {
        (addr.iid() >> 24) & 0xffff == 0xfffe
    }

    /// Places this EUI-64 IID into the host part of a /64 network.
    pub fn apply_to(self, network: Addr) -> Addr {
        network.with_iid(self.to_iid())
    }

    /// Looks the OUI up in the bundled registry.
    pub fn vendor(self) -> Option<&'static OuiVendor> {
        let oui = self.oui();
        OUI_REGISTRY.iter().find(|v| v.oui == oui)
    }
}

impl fmt::Display for Eui64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.mac;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", m[0], m[1], m[2], m[3], m[4], m[5])
    }
}

impl fmt::Debug for Eui64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Eui64({self})")
    }
}

/// A vendor entry in the bundled OUI registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OuiVendor {
    /// 24-bit OUI (universal form).
    pub oui: u32,
    /// Vendor name.
    pub name: &'static str,
}

/// A miniature OUI registry: the handful of CPE vendors the paper's EUI-64
/// analysis surfaces (ZTE being the dominant one) plus common infrastructure
/// vendors the simulated population draws from.
#[allow(clippy::unusual_byte_groupings)] // grouped as the MAC reads: XX:XX:XX
pub const OUI_REGISTRY: &[OuiVendor] = &[
    OuiVendor { oui: 0x001422, name: "ZTE" },
    OuiVendor { oui: 0x0019C6, name: "ZTE" },
    OuiVendor { oui: 0x002686, name: "AVM" },
    OuiVendor { oui: 0x0024FE, name: "AVM" },
    OuiVendor { oui: 0x0018E7, name: "Huawei" },
    OuiVendor { oui: 0x00259E, name: "Huawei" },
    OuiVendor { oui: 0x00000C, name: "Cisco" },
    OuiVendor { oui: 0x000585, name: "Juniper" },
    OuiVendor { oui: 0x005056, name: "VMware" },
    OuiVendor { oui: 0x00900B, name: "Lanner" },
    OuiVendor { oui: 0x000732, name: "AAEON" },
    OuiVendor { oui: 0x003088, name: "Ericsson" },
];

/// The OUI the simulation uses for the "most frequent EUI-64" finding
/// (mapped to ZTE in the paper, Sec. 4.1).
#[allow(clippy::unusual_byte_groupings)] // grouped as the MAC reads
pub const ZTE_OUI: u32 = 0x001422;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embed_extract_roundtrip() {
        let e = Eui64::from_mac([0x00, 0x14, 0x22, 0xab, 0xcd, 0xef]);
        let iid = e.to_iid();
        assert_eq!(Eui64::from_iid(iid), Some(e));
    }

    #[test]
    fn known_vector() {
        // RFC 4291 example: MAC 34-56-78-9A-BC-DE -> 3656:78ff:fe9a:bcde
        let e = Eui64::from_mac([0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde]);
        assert_eq!(e.to_iid(), 0x3656_78ff_fe9a_bcde);
    }

    #[test]
    fn non_eui64_iids_rejected() {
        assert_eq!(Eui64::from_iid(0x1234_5678_9abc_def0), None);
        assert!(!Eui64::addr_is_eui64("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn address_detection_and_extraction() {
        let net: Addr = "2001:db8:1:2::".parse().unwrap();
        let e = Eui64::from_oui_serial(ZTE_OUI, 0x010203);
        let a = e.apply_to(net);
        assert!(Eui64::addr_is_eui64(a));
        assert_eq!(Eui64::from_addr(a), Some(e));
        assert_eq!(a.network_u64(), net.network_u64(), "network part untouched");
    }

    #[test]
    fn oui_masks_local_bit() {
        // After IID embedding, the extracted MAC's OUI must match the
        // registry form regardless of the U/L flip.
        let e = Eui64::from_oui_serial(ZTE_OUI, 42);
        let back = Eui64::from_iid(e.to_iid()).unwrap();
        assert_eq!(back.oui(), ZTE_OUI);
        assert_eq!(back.vendor().map(|v| v.name), Some("ZTE"));
    }

    #[test]
    fn display_format() {
        let e = Eui64::from_mac([0, 0x14, 0x22, 1, 2, 3]);
        assert_eq!(e.to_string(), "00:14:22:01:02:03");
    }

    #[test]
    fn same_mac_different_networks_same_iid() {
        // The paper's rotating-prefix finding: one MAC shows up in many
        // addresses, identical IID, distinct networks.
        let e = Eui64::from_oui_serial(ZTE_OUI, 7);
        let a1 = e.apply_to("2001:db8:aaaa::".parse().unwrap());
        let a2 = e.apply_to("2001:db8:bbbb::".parse().unwrap());
        assert_ne!(a1, a2);
        assert_eq!(a1.iid(), a2.iid());
    }
}
