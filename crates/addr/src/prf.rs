//! A small deterministic pseudo-random function (PRF).
//!
//! The simulated Internet must answer "does address X respond to protocol P
//! on day D?" identically every time it is asked, without storing a record
//! per address (the paper's input list has hundreds of millions of entries).
//! Every such decision is therefore a pure function of a seed and the
//! question, computed with the SplitMix64 finalizer — a well-studied mixer
//! with full avalanche behaviour that is more than random enough for
//! statistical modelling and orders of magnitude faster than a
//! cryptographic hash.

/// SplitMix64 finalizer: a bijective mixer over `u64`.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combines two words into one mixed word (not commutative).
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b ^ 0x6a09_e667_f3bc_c909))
}

/// PRF over a 128-bit value (e.g. an address) plus a seed and a domain tag.
///
/// The `tag` separates independent decision streams (liveness vs. churn vs.
/// fingerprint choice) so they are uncorrelated even for the same address.
#[inline]
pub fn prf_u128(seed: u64, value: u128, tag: u64) -> u64 {
    let hi = (value >> 64) as u64;
    let lo = value as u64;
    mix64(mix2(mix2(seed, tag), hi) ^ mix64(lo))
}

/// Uniform coin flip with probability `p_num / p_den`.
///
/// # Panics
///
/// Panics if `p_den == 0`.
#[inline]
pub fn chance(seed: u64, value: u128, tag: u64, p_num: u64, p_den: u64) -> bool {
    assert!(p_den > 0, "zero denominator");
    if p_num >= p_den {
        return true;
    }
    prf_u128(seed, value, tag) % p_den < p_num
}

/// Uniform draw in `0..bound` (`bound > 0`).
#[inline]
pub fn uniform(seed: u64, value: u128, tag: u64, bound: u64) -> u64 {
    assert!(bound > 0, "zero bound");
    prf_u128(seed, value, tag) % bound
}

/// A tiny deterministic stream generator for when a sequence of values is
/// needed (e.g. drawing several probe addresses). Equivalent to SplitMix64
/// seeded from the PRF.
#[derive(Debug, Clone)]
pub struct PrfStream {
    state: u64,
}

impl PrfStream {
    /// Creates a stream keyed by `(seed, value, tag)`.
    pub fn new(seed: u64, value: u128, tag: u64) -> PrfStream {
        PrfStream { state: prf_u128(seed, value, tag) }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Next value uniform in `0..bound`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Next coin flip with probability `p` (clamped to `[0,1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn tags_separate_streams() {
        let v = 0x2001_0db8_u128 << 96;
        assert_ne!(prf_u128(1, v, 0), prf_u128(1, v, 1));
        assert_ne!(prf_u128(1, v, 0), prf_u128(2, v, 0));
    }

    #[test]
    fn chance_extremes() {
        assert!(chance(1, 42, 0, 1, 1));
        assert!(chance(1, 42, 0, 5, 3), "num >= den is always true");
        assert!(!chance(1, 42, 0, 0, 10));
    }

    #[test]
    fn chance_is_roughly_uniform() {
        let hits = (0..10_000u128).filter(|&i| chance(7, i, 3, 1, 4)).count();
        // 1/4 of 10k = 2500; allow generous tolerance.
        assert!((2100..2900).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniform_in_bounds() {
        for i in 0..1000u128 {
            assert!(uniform(9, i, 1, 17) < 17);
        }
    }

    #[test]
    fn stream_reproducible() {
        let mut a = PrfStream::new(3, 99, 5);
        let mut b = PrfStream::new(3, 99, 5);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = PrfStream::new(3, 99, 6);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn stream_bool_probability() {
        let mut s = PrfStream::new(11, 0, 0);
        let hits = (0..10_000).filter(|_| s.next_bool(0.9)).count();
        assert!(hits > 8700 && hits < 9300, "hits = {hits}");
    }
}
