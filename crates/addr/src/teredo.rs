//! Teredo (RFC 4380) address encoding and detection.
//!
//! Teredo tunnels IPv6 over UDP/IPv4 and embeds both the Teredo server's
//! IPv4 address and the client's (obfuscated) IPv4 address and port in the
//! IPv6 address. Teredo is deprecated, which is exactly why the paper uses
//! it as a *tell*: the Great Firewall's 2021/2022 era DNS injections
//! answered AAAA queries with Teredo addresses whose embedded IPv4 belonged
//! to operators unrelated to the queried domain. The cleaning filter
//! extracts the embedded IPv4 and checks plausibility.

use crate::{Addr, Prefix};

/// The Teredo service prefix `2001::/32`.
pub fn teredo_prefix() -> Prefix {
    Prefix::new(Addr(0x2001_0000_u128 << 96), 32)
}

/// Whether the address lies inside the Teredo prefix.
pub fn is_teredo(addr: Addr) -> bool {
    teredo_prefix().contains(addr)
}

/// The components encoded in a Teredo address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeredoParts {
    /// IPv4 address of the Teredo server (plain).
    pub server_v4: u32,
    /// Flags field (bit 15 = cone NAT in the original spec).
    pub flags: u16,
    /// Client's external UDP port (deobfuscated).
    pub client_port: u16,
    /// Client's external IPv4 address (deobfuscated).
    pub client_v4: u32,
}

/// Encodes Teredo components into an address under `2001::/32`.
///
/// Per RFC 4380 the client port and address are stored bit-inverted
/// ("obfuscated") to survive naive NAT ALGs.
pub fn encode(parts: TeredoParts) -> Addr {
    let v: u128 = (0x2001_0000_u128 << 96)
        | (u128::from(parts.server_v4) << 64)
        | (u128::from(parts.flags) << 48)
        | (u128::from(!parts.client_port) << 32)
        | u128::from(!parts.client_v4);
    Addr(v)
}

/// Decodes a Teredo address into its components, or `None` if the address
/// is not inside `2001::/32`.
pub fn decode(addr: Addr) -> Option<TeredoParts> {
    if !is_teredo(addr) {
        return None;
    }
    let v = addr.0;
    Some(TeredoParts {
        server_v4: (v >> 64) as u32,
        flags: (v >> 48) as u16,
        client_port: !((v >> 32) as u16),
        client_v4: !(v as u32),
    })
}

/// Formats an IPv4 address stored as `u32` in dotted quad form (helper for
/// diagnostics about embedded addresses).
pub fn fmt_v4(v4: u32) -> String {
    format!("{}.{}.{}.{}", (v4 >> 24) & 0xff, (v4 >> 16) & 0xff, (v4 >> 8) & 0xff, v4 & 0xff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let parts = TeredoParts {
            server_v4: 0x4137_8906, // 65.55.137.6, a classic Teredo server
            flags: 0x8000,
            client_port: 40000,
            client_v4: 0xc0a8_0101, // 192.168.1.1
        };
        let addr = encode(parts);
        assert!(is_teredo(addr));
        assert_eq!(decode(addr), Some(parts));
    }

    #[test]
    fn rfc_obfuscation_applied() {
        // Client 0.0.0.0 port 0 must encode as all-ones in the low bits.
        let parts = TeredoParts { server_v4: 1, flags: 0, client_port: 0, client_v4: 0 };
        let addr = encode(parts);
        assert_eq!(addr.0 as u32, u32::MAX);
        assert_eq!(((addr.0 >> 32) as u16), u16::MAX);
    }

    #[test]
    fn non_teredo_rejected() {
        assert_eq!(decode("2001:db8::1".parse().unwrap()), None);
        assert!(!is_teredo("2002::1".parse().unwrap()));
        // 2001:db8 is NOT Teredo despite sharing the first 16 bits:
        // the prefix is 2001:0000::/32.
        assert!(is_teredo("2001:0:1234::1".parse().unwrap()));
    }

    #[test]
    fn v4_formatting() {
        assert_eq!(fmt_v4(0x7f00_0001), "127.0.0.1");
        assert_eq!(fmt_v4(0), "0.0.0.0");
    }
}
