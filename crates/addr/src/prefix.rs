//! CIDR prefixes with the operations the aliased-prefix machinery needs.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::prf;
use crate::Addr;

/// An IPv6 CIDR prefix such as `2001:db8::/32`.
///
/// The address part is always stored in canonical (masked) form: bits past
/// the prefix length are zero. Ordering is `(network, len)` so that a sorted
/// list groups covering prefixes before their more-specifics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    network: Addr,
    len: u8,
}

/// Error returned when parsing a [`Prefix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePrefixError {
    /// Missing `/` separator.
    MissingSlash,
    /// The address part failed to parse.
    BadAddress,
    /// The length part failed to parse or exceeded 128.
    BadLength,
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePrefixError::MissingSlash => write!(f, "prefix is missing '/' separator"),
            ParsePrefixError::BadAddress => write!(f, "invalid IPv6 address in prefix"),
            ParsePrefixError::BadLength => write!(f, "invalid prefix length"),
        }
    }
}

impl std::error::Error for ParsePrefixError {}

impl Prefix {
    /// The whole IPv6 address space, `::/0`.
    pub const ALL: Prefix = Prefix { network: Addr(0), len: 0 };

    /// Creates a prefix, masking the address to its canonical network form.
    ///
    /// # Panics
    ///
    /// Panics if `len > 128`.
    pub fn new(addr: Addr, len: u8) -> Prefix {
        assert!(len <= 128, "prefix length {len} out of range");
        Prefix { network: Addr(addr.0 & mask(len)), len }
    }

    /// The canonical (masked) network address.
    #[inline]
    pub fn network(self) -> Addr {
        self.network
    }

    /// The prefix length in bits.
    ///
    /// (Not a container length — `is_empty` would be meaningless; see
    /// [`Prefix::is_default`] for the `/0` check.)
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// `true` only for `::/0`.
    #[inline]
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// The highest address inside the prefix.
    #[inline]
    pub fn last(self) -> Addr {
        Addr(self.network.0 | !mask(self.len))
    }

    /// Number of addresses covered, as a power of two exponent
    /// (`128 - len`). Avoids overflow for short prefixes.
    #[inline]
    pub fn size_log2(self) -> u8 {
        128 - self.len
    }

    /// Whether `addr` falls inside this prefix.
    #[inline]
    pub fn contains(self, addr: Addr) -> bool {
        addr.0 & mask(self.len) == self.network.0
    }

    /// Whether `other` is fully covered by this prefix (including equality).
    #[inline]
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.network)
    }

    /// The immediately covering prefix one bit shorter, or `None` at `/0`.
    pub fn supernet(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.network, self.len - 1))
        }
    }

    /// The covering prefix of the given (shorter or equal) length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is longer than this prefix's length.
    pub fn trim(self, len: u8) -> Prefix {
        assert!(len <= self.len, "cannot trim /{} to longer /{len}", self.len);
        Prefix::new(self.network, len)
    }

    /// Iterator over the 16 sub-prefixes four bits longer — the nibble
    /// expansion the multi-level aliased prefix detection probes
    /// (`2001:db8::/32` → `2001:db8:[0-f]000::/36`).
    ///
    /// # Panics
    ///
    /// Panics if the prefix is longer than /124.
    pub fn nibble_subprefixes(self) -> SubPrefixes {
        assert!(self.len <= 124, "/{} has no nibble sub-prefixes", self.len);
        SubPrefixes { base: self, next: 0 }
    }

    /// The `i`-th (0..16) nibble sub-prefix.
    pub fn nibble_subprefix(self, i: u8) -> Prefix {
        assert!(i < 16 && self.len <= 124);
        let shift = 128 - u32::from(self.len) - 4;
        Prefix::new(Addr(self.network.0 | (u128::from(i) << shift)), self.len + 4)
    }

    /// Draws a deterministic pseudo-random address inside the prefix.
    ///
    /// The same `(prefix, seed)` pair always yields the same address, which
    /// keeps alias-detection probe sets reproducible across scan rounds,
    /// mirroring how the IPv6 Hitlist seeds its per-prefix probes.
    pub fn random_addr(self, seed: u64) -> Addr {
        let host_bits = 128 - u32::from(self.len);
        if host_bits == 0 {
            return self.network;
        }
        let hi = prf::mix64(seed ^ self.network.network_u64() ^ 0xa5a5_5a5a);
        let lo = prf::mix64(seed.wrapping_add(self.network.iid()).wrapping_add(1));
        let rand = ((hi as u128) << 64 | lo as u128) & !mask(self.len);
        Addr(self.network.0 | rand)
    }

    /// Enumerates the first `count` addresses of the prefix in order.
    pub fn first_addrs(self, count: usize) -> impl Iterator<Item = Addr> {
        let base = self.network.0;
        let cap = if self.size_log2() >= 64 { u64::MAX } else { 1u64 << self.size_log2() };
        (0..count as u64).take_while(move |i| *i < cap).map(move |i| Addr(base + i as u128))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Prefix, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(ParsePrefixError::MissingSlash)?;
        let addr: Addr = addr.parse().map_err(|_| ParsePrefixError::BadAddress)?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError::BadLength)?;
        if len > 128 {
            return Err(ParsePrefixError::BadLength);
        }
        Ok(Prefix::new(addr, len))
    }
}

/// Iterator over the 16 nibble sub-prefixes of a prefix.
#[derive(Debug, Clone)]
pub struct SubPrefixes {
    base: Prefix,
    next: u8,
}

impl Iterator for SubPrefixes {
    type Item = Prefix;

    fn next(&mut self) -> Option<Prefix> {
        if self.next >= 16 {
            return None;
        }
        let p = self.base.nibble_subprefix(self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (16 - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for SubPrefixes {}

/// Bit mask with the top `len` bits set.
#[inline]
fn mask(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - u32::from(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(p("2001:db8::/32").to_string(), "2001:db8::/32");
        assert_eq!(p("2001:db8::1/32").to_string(), "2001:db8::/32", "masked");
        assert_eq!("x/32".parse::<Prefix>(), Err(ParsePrefixError::BadAddress));
        assert_eq!("::1".parse::<Prefix>(), Err(ParsePrefixError::MissingSlash));
        assert_eq!("::/200".parse::<Prefix>(), Err(ParsePrefixError::BadLength));
    }

    #[test]
    fn contains_and_covers() {
        let net = p("2001:db8::/32");
        assert!(net.contains("2001:db8:ffff::1".parse().unwrap()));
        assert!(!net.contains("2001:db9::".parse().unwrap()));
        assert!(net.covers(p("2001:db8:1::/48")));
        assert!(net.covers(net));
        assert!(!p("2001:db8:1::/48").covers(net));
    }

    #[test]
    fn last_address() {
        assert_eq!(
            p("2001:db8::/32").last(),
            "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff".parse().unwrap()
        );
        assert_eq!(p("::1/128").last(), "::1".parse().unwrap());
    }

    #[test]
    fn default_route() {
        assert!(Prefix::ALL.is_default());
        assert!(Prefix::ALL.contains("abcd::1".parse().unwrap()));
        assert_eq!(Prefix::ALL.supernet(), None);
    }

    #[test]
    fn nibble_subprefixes_cover_exactly() {
        let net = p("2001:db8::/32");
        let subs: Vec<Prefix> = net.nibble_subprefixes().collect();
        assert_eq!(subs.len(), 16);
        assert_eq!(subs[0], p("2001:db8::/36"));
        assert_eq!(subs[1], p("2001:db8:1000::/36"));
        assert_eq!(subs[15], p("2001:db8:f000::/36"));
        for s in &subs {
            assert!(net.covers(*s));
        }
        // Disjoint: each address in the parent is in exactly one child.
        let probe: Addr = "2001:db8:4abc::99".parse().unwrap();
        assert_eq!(subs.iter().filter(|s| s.contains(probe)).count(), 1);
    }

    #[test]
    fn random_addr_is_inside_and_deterministic() {
        let net = p("2001:db8:4000::/36");
        let a = net.random_addr(7);
        let b = net.random_addr(7);
        let c = net.random_addr(8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds draw different addresses");
        assert!(net.contains(a));
        assert!(net.contains(c));
    }

    #[test]
    fn random_addr_full_length() {
        let host = p("2001:db8::1/128");
        assert_eq!(host.random_addr(1), "2001:db8::1".parse().unwrap());
    }

    #[test]
    fn trim_to_shorter() {
        assert_eq!(p("2001:db8:abcd::/48").trim(32), p("2001:db8::/32"));
    }

    #[test]
    #[should_panic(expected = "cannot trim")]
    fn trim_to_longer_panics() {
        p("2001:db8::/32").trim(48);
    }

    #[test]
    fn first_addrs_enumerates() {
        let addrs: Vec<Addr> = p("2001:db8::/126").first_addrs(10).collect();
        assert_eq!(addrs.len(), 4, "stops at prefix capacity");
        assert_eq!(addrs[3], "2001:db8::3".parse().unwrap());
    }

    #[test]
    fn ordering_groups_parents_first() {
        let mut v = [p("2001:db8::/48"), p("2001:db8::/32"), p("2001:db8:1::/48")];
        v.sort();
        assert_eq!(v[0], p("2001:db8::/32"));
    }
}
