//! IPv6 address primitives for the sixdust project.
//!
//! This crate provides the address-level building blocks that every other
//! sixdust crate relies on:
//!
//! * [`Addr`] — a compact, ordered 128-bit IPv6 address newtype with nibble
//!   accessors and conversions to/from [`std::net::Ipv6Addr`].
//! * [`Prefix`] — a CIDR prefix (`2001:db8::/32`) with containment tests,
//!   sub-prefix enumeration and pseudo-random address drawing, exactly the
//!   operations the multi-level aliased prefix detection needs.
//! * [`Eui64`] — embedding and extraction of EUI-64 interface identifiers
//!   (MAC-derived `ff:fe` IIDs) plus a small OUI vendor registry; the paper
//!   uses these to explain the input-list bias of the IPv6 Hitlist.
//! * [`teredo`] — Teredo (RFC 4380) tunnel-address encoding/decoding; the
//!   Great Firewall's 2021/2022 DNS injections carried Teredo AAAA records,
//!   which is the detection signal the paper's cleaning filter keys on.
//! * [`PrefixTrie`] / [`PrefixSet`] — binary radix tries for longest-prefix
//!   match (BGP-style lookups) and prefix-set membership (blocklists,
//!   aliased-prefix filters).
//! * [`classify`] — interface-identifier taxonomy (low-byte, EUI-64,
//!   embedded IPv4, port/word, random) used by the bias analyses and the
//!   6GAN-style seed classes.
//! * [`prf`] — a small deterministic pseudo-random function used everywhere
//!   a reproducible per-address coin flip is required (host liveness, churn,
//!   probe address generation).
//! * [`AddrSet`] — the chunked address-set type every crate boundary
//!   speaks: /32-bucketed, per-density sorted-block or bitmap chunks,
//!   streaming ascending iteration, and serde output identical to a sorted
//!   `Vec<Addr>`. The linear merge kernels (union/diff/intersect over
//!   sorted slices) that used to be public as `sorted::*` are now
//!   crate-private plumbing behind this type.
//!
//! All types are `Copy` where possible, serializable, and allocate only when
//! a collection genuinely must.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod addrset;
pub mod classify;
mod eui64;
mod prefix;
pub mod prf;
mod set;
pub(crate) mod sorted;
pub mod teredo;
mod trie;

pub use addr::Addr;
pub use addrset::{AddrSet, Iter as AddrSetIter};
pub use classify::{classify_iid, IidBreakdown, IidClass};
pub use eui64::{Eui64, OuiVendor, OUI_REGISTRY, ZTE_OUI};
pub use prefix::{ParsePrefixError, Prefix, SubPrefixes};
pub use set::PrefixSet;
pub use trie::PrefixTrie;
