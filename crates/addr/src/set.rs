//! [`PrefixSet`]: a set of prefixes with coverage queries.
//!
//! Used for the blocklist filter, the aliased-prefix filter and the GFW
//! impacted-address bookkeeping of the hitlist pipeline.

use serde::{Deserialize, Serialize};

use crate::{Addr, Prefix, PrefixTrie};

/// A set of IPv6 prefixes answering "is this address covered?" and
/// "is this prefix (partially) covered?".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrefixSet {
    trie: PrefixTrie<()>,
}

impl PrefixSet {
    /// Creates an empty set.
    pub fn new() -> PrefixSet {
        PrefixSet::default()
    }

    /// Number of distinct prefixes stored.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Inserts a prefix. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, prefix: Prefix) -> bool {
        self.trie.insert(prefix, ()).is_none()
    }

    /// Whether this exact prefix is in the set.
    pub fn contains_exact(&self, prefix: Prefix) -> bool {
        self.trie.get(prefix).is_some()
    }

    /// Whether any stored prefix covers the address.
    pub fn covers_addr(&self, addr: Addr) -> bool {
        self.trie.covers(addr)
    }

    /// Whether any stored prefix covers the *whole* given prefix
    /// (i.e. a stored prefix at least as short contains it).
    pub fn covers_prefix(&self, prefix: Prefix) -> bool {
        // A stored prefix covers `prefix` iff it covers its network address
        // with length <= prefix.len(). LPM on the network address finds the
        // most specific covering prefix of the network address; any stored
        // covering prefix of the full range must also cover the network
        // address, so checking all covering lengths via repeated trims is
        // equivalent to one LPM walk — but the LPM result may be *longer*
        // than `prefix`. Walk up from the LPM match instead.
        let mut cur = Some(prefix);
        while let Some(p) = cur {
            if self.contains_exact(p) {
                return true;
            }
            cur = p.supernet();
        }
        false
    }

    /// Iterates the stored prefixes in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.trie.iter().map(|(p, _)| p)
    }

    /// Adds every prefix of `other` into `self`.
    pub fn extend_from(&mut self, other: &PrefixSet) {
        for p in other.iter() {
            self.insert(p);
        }
    }
}

impl FromIterator<Prefix> for PrefixSet {
    fn from_iter<I: IntoIterator<Item = Prefix>>(iter: I) -> PrefixSet {
        let mut s = PrefixSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<Prefix> for PrefixSet {
    fn extend<I: IntoIterator<Item = Prefix>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }
    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_membership() {
        let mut s = PrefixSet::new();
        assert!(s.insert(p("2001:db8::/32")));
        assert!(!s.insert(p("2001:db8::/32")), "duplicate");
        assert_eq!(s.len(), 1);
        assert!(s.covers_addr(a("2001:db8::1")));
        assert!(!s.covers_addr(a("2001:db9::1")));
    }

    #[test]
    fn covers_prefix_semantics() {
        let s: PrefixSet = [p("2001:db8::/32")].into_iter().collect();
        assert!(s.covers_prefix(p("2001:db8:1::/48")), "more specific covered");
        assert!(s.covers_prefix(p("2001:db8::/32")), "exact covered");
        assert!(!s.covers_prefix(p("2001::/16")), "shorter not covered");
        assert!(!s.covers_prefix(p("2001:db9::/48")));
    }

    #[test]
    fn exact_membership_vs_coverage() {
        let s: PrefixSet = [p("2001:db8::/32")].into_iter().collect();
        assert!(!s.contains_exact(p("2001:db8:1::/48")));
        assert!(s.contains_exact(p("2001:db8::/32")));
    }

    #[test]
    fn extend_unions() {
        let mut a_set: PrefixSet = [p("2001:db8::/32")].into_iter().collect();
        let b_set: PrefixSet = [p("2400::/12"), p("2001:db8::/32")].into_iter().collect();
        a_set.extend_from(&b_set);
        assert_eq!(a_set.len(), 2);
        assert!(a_set.covers_addr(a("2400::1")));
    }

    #[test]
    fn iter_sorted() {
        let s: PrefixSet = [p("fd00::/8"), p("2001:db8::/32")].into_iter().collect();
        let got: Vec<Prefix> = s.iter().collect();
        assert_eq!(got, vec![p("2001:db8::/32"), p("fd00::/8")]);
    }
}
