//! Property tests for [`AddrSet`]: every operation must agree with the
//! obviously-correct model (`BTreeSet<u128>`) regardless of which chunk
//! representation — sorted block or bitmap — each /32 bucket lands in,
//! and the serialized form must stay byte-identical to a sorted
//! `Vec<Addr>`.

use std::collections::BTreeSet;

use proptest::prelude::*;
use sixdust_addr::{Addr, AddrSet};

/// Raw items mixing dense runs (bitmap chunks), strided mid-density
/// buckets, several distinct /32 keys, and fully random sparse values.
fn arb_items(max_len: usize) -> impl Strategy<Value = Vec<u128>> {
    prop::collection::vec(
        prop_oneof![
            0..10_000u128,
            (0..4u128, 0..2_000u128).prop_map(|(h, l)| (h << 96) + l * 17),
            any::<u64>().prop_map(u128::from),
            any::<u128>(),
            Just(u128::MAX),
        ],
        0..max_len,
    )
}

fn model(items: &[u128]) -> BTreeSet<u128> {
    items.iter().copied().collect()
}

proptest! {
    #[test]
    fn construction_matches_model(items in arb_items(400)) {
        let set = AddrSet::from_unsorted(items.clone());
        let reference = model(&items);
        prop_assert_eq!(set.len(), reference.len());
        prop_assert!(set.iter().eq(reference.iter().copied()), "iteration order is sorted");
        prop_assert_eq!(set.to_vec(), reference.iter().copied().collect::<Vec<_>>());
        // Bulk and incremental construction canonicalize identically.
        let mut incremental = AddrSet::new();
        for &item in &items {
            incremental.insert(item);
        }
        prop_assert_eq!(&incremental, &set);
        prop_assert_eq!(incremental.bitmap_chunk_count(), set.bitmap_chunk_count());
    }

    #[test]
    fn contains_matches_model(items in arb_items(200), probes in arb_items(50)) {
        let set = AddrSet::from_unsorted(items.clone());
        let reference = model(&items);
        for p in items.iter().chain(probes.iter()) {
            prop_assert_eq!(set.contains(*p), reference.contains(p));
        }
    }

    #[test]
    fn insert_remove_match_model(items in arb_items(200), ops in arb_items(60), mask in any::<u64>()) {
        let mut set = AddrSet::from_unsorted(items.clone());
        let mut reference = model(&items);
        for (i, &v) in ops.iter().enumerate() {
            if mask >> (i % 64) & 1 == 0 {
                prop_assert_eq!(set.insert(v), reference.insert(v));
            } else {
                prop_assert_eq!(set.remove(v), reference.remove(&v));
            }
            prop_assert_eq!(set.len(), reference.len());
        }
        prop_assert!(set.iter().eq(reference.iter().copied()));
    }

    #[test]
    fn set_algebra_matches_model(a in arb_items(250), b in arb_items(250)) {
        let sa = AddrSet::from_unsorted(a.clone());
        let sb = AddrSet::from_unsorted(b.clone());
        let ma = model(&a);
        let mb = model(&b);

        let mut union = sa.clone();
        union.union_in_place(&sb);
        prop_assert!(union.iter().eq(ma.union(&mb).copied()));

        let diff = sa.diff(&sb);
        prop_assert!(diff.iter().eq(ma.difference(&mb).copied()));
        prop_assert_eq!(sa.diff_count(&sb), ma.difference(&mb).count());

        let inter = sa.intersect(&sb);
        prop_assert!(inter.iter().eq(ma.intersection(&mb).copied()));
        prop_assert_eq!(sa.intersect_count(&sb), ma.intersection(&mb).count());

        // Counting shortcuts agree with materializing.
        prop_assert_eq!(sa.diff_count(&sb), diff.len());
        prop_assert_eq!(sa.intersect_count(&sb), inter.len());
    }

    #[test]
    fn serde_is_byte_identical_to_sorted_vec(items in arb_items(200)) {
        let set = AddrSet::from_unsorted(items.clone());
        let flat: Vec<Addr> = model(&items).into_iter().map(Addr).collect();
        let via_set = serde_json::to_string(&set).expect("set serializes");
        let via_vec = serde_json::to_string(&flat).expect("vec serializes");
        prop_assert_eq!(&via_set, &via_vec, "AddrSet wire form is the sorted Vec<Addr> wire form");
        let back: AddrSet = serde_json::from_str(&via_set).expect("round trip");
        prop_assert_eq!(back, set);
    }

    #[test]
    fn mem_bytes_accounts_every_chunk(items in arb_items(300)) {
        let set = AddrSet::from_unsorted(items);
        // Lower bound: the bookkeeping itself, plus at least one byte of
        // payload per chunk; dense buckets must come in under the flat
        // 16-bytes-per-item cost they replace.
        if set.is_empty() {
            prop_assert_eq!(set.chunk_count(), 0);
        } else {
            prop_assert!(set.mem_bytes() > 0);
            prop_assert!(set.chunk_count() >= 1);
        }
    }
}

#[test]
fn dense_bucket_is_a_bitmap_and_cheap() {
    // 100k consecutive addresses: one bucket, bitmap-packed, far below
    // the 1.6 MB a Vec<u128> would spend.
    let set: AddrSet = (0..100_000u128).collect();
    assert_eq!(set.len(), 100_000);
    assert!(set.bitmap_chunk_count() >= 1, "a solid run packs as bitmap");
    assert!(
        set.mem_bytes() < 100_000 * 16 / 4,
        "bitmap run far cheaper than flat vec: {} bytes",
        set.mem_bytes()
    );
}
