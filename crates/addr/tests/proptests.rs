//! Property-based tests for the sixdust-addr primitives.

use proptest::prelude::*;
use sixdust_addr::{teredo, Addr, Eui64, Prefix, PrefixSet, PrefixTrie};

fn arb_addr() -> impl Strategy<Value = Addr> {
    any::<u128>().prop_map(Addr)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(v, len)| Prefix::new(Addr(v), len))
}

proptest! {
    #[test]
    fn nibbles_roundtrip(addr in arb_addr()) {
        prop_assert_eq!(Addr::from_nibbles(&addr.nibbles()), addr);
    }

    #[test]
    fn display_parse_roundtrip(addr in arb_addr()) {
        let s = addr.to_string();
        let back: Addr = s.parse().unwrap();
        prop_assert_eq!(back, addr);
    }

    #[test]
    fn with_nibble_then_read(addr in arb_addr(), i in 0usize..32, v in 0u8..=0xf) {
        let b = addr.with_nibble(i, v);
        prop_assert_eq!(b.nibble(i), v);
        // All other nibbles untouched.
        for j in 0..32 {
            if j != i {
                prop_assert_eq!(b.nibble(j), addr.nibble(j));
            }
        }
    }

    #[test]
    fn prefix_contains_its_network_and_last(prefix in arb_prefix()) {
        prop_assert!(prefix.contains(prefix.network()));
        prop_assert!(prefix.contains(prefix.last()));
    }

    #[test]
    fn prefix_parse_roundtrip(prefix in arb_prefix()) {
        let s = prefix.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(back, prefix);
    }

    #[test]
    fn supernet_covers(prefix in arb_prefix()) {
        if let Some(sup) = prefix.supernet() {
            prop_assert!(sup.covers(prefix));
        }
    }

    #[test]
    fn random_addr_inside(prefix in arb_prefix(), seed in any::<u64>()) {
        prop_assert!(prefix.contains(prefix.random_addr(seed)));
    }

    #[test]
    fn nibble_subprefixes_partition(prefix_v in any::<u128>(), len in 0u8..=124, probe_low in any::<u128>()) {
        let prefix = Prefix::new(Addr(prefix_v), len);
        // A probe inside the parent must be in exactly one nibble child.
        let host_mask = if len == 0 { u128::MAX } else { !(u128::MAX << (128 - len as u32)) };
        let probe = Addr(prefix.network().0 | (probe_low & host_mask));
        prop_assert!(prefix.contains(probe));
        let n = prefix.nibble_subprefixes().filter(|s| s.contains(probe)).count();
        prop_assert_eq!(n, 1);
    }

    #[test]
    fn eui64_roundtrip(mac in any::<[u8; 6]>()) {
        let e = Eui64::from_mac(mac);
        prop_assert_eq!(Eui64::from_iid(e.to_iid()), Some(e));
    }

    #[test]
    fn teredo_roundtrip(server in any::<u32>(), flags in any::<u16>(), port in any::<u16>(), client in any::<u32>()) {
        let parts = teredo::TeredoParts { server_v4: server, flags, client_port: port, client_v4: client };
        prop_assert_eq!(teredo::decode(teredo::encode(parts)), Some(parts));
    }

    #[test]
    fn trie_lpm_matches_naive(
        entries in proptest::collection::vec((any::<u128>(), 0u8..=64), 1..40),
        probes in proptest::collection::vec(any::<u128>(), 1..20),
    ) {
        let prefixes: Vec<(Prefix, usize)> = entries
            .iter()
            .enumerate()
            .map(|(i, (v, len))| (Prefix::new(Addr(*v), *len), i))
            .collect();
        let trie: PrefixTrie<usize> = prefixes.iter().cloned().collect();
        for v in probes {
            let addr = Addr(v);
            // Naive: longest covering prefix; ties by length share the same
            // canonical network, and later insert wins in both impls.
            let naive = prefixes
                .iter()
                .filter(|(p, _)| p.contains(addr))
                .max_by(|(p1, i1), (p2, i2)| p1.len().cmp(&p2.len()).then(i1.cmp(i2)))
                .map(|(_, i)| *i);
            prop_assert_eq!(trie.lookup_value(addr).copied(), naive);
        }
    }

    #[test]
    fn prefix_set_covers_agrees_with_scan(
        entries in proptest::collection::vec((any::<u128>(), 8u8..=64), 1..30),
        probe in any::<u128>(),
    ) {
        let prefixes: Vec<Prefix> = entries.iter().map(|(v, l)| Prefix::new(Addr(*v), *l)).collect();
        let set: PrefixSet = prefixes.iter().cloned().collect();
        let addr = Addr(probe);
        let naive = prefixes.iter().any(|p| p.contains(addr));
        prop_assert_eq!(set.covers_addr(addr), naive);
    }
}
