//! The metric primitives: counters, gauges, log-bucketed histograms and
//! RAII span timers.
//!
//! Every handle is a cheap [`Arc`] clone around lock-free atomics, so hot
//! paths can hold pre-resolved handles and record with a single relaxed
//! atomic operation — no registry lookup, no lock, no allocation. Handles
//! created with `new()` start *detached*: they count, but nothing reads
//! them until they are registered in a
//! [`Registry`](crate::registry::Registry).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of histogram buckets: one per power of two of `u64`, plus a
/// dedicated bucket for zero.
pub const BUCKETS: usize = 65;

/// A monotonically increasing event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a detached counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// A signed gauge for level-style metrics (queue depths, pool sizes).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    inner: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a detached gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.inner.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `d` to the gauge.
    #[inline]
    pub fn add(&self, d: i64) {
        self.inner.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.inner.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram of `u64` samples (latencies in milliseconds,
/// sizes in bytes, …).
///
/// Bucket `0` holds the value `0`; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. Recording is five relaxed atomic operations and never
/// allocates.
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramCore>,
}

/// The bucket a value falls into: `0` for zero, otherwise
/// `floor(log2(value)) + 1`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The smallest value belonging to bucket `index` (inverse of
/// [`bucket_index`]).
pub fn bucket_floor(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

impl Histogram {
    /// Creates a detached, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let core = &*self.inner;
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in whole milliseconds (the unit every `*_ms`
    /// metric uses). Sub-millisecond but non-zero durations saturate **up**
    /// to `1` so fast phases land in the `[1, 2)` bucket instead of
    /// collapsing indistinguishably into the zero bucket; a literally
    /// zero duration still records `0`.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        let ms = d.as_millis().min(u128::from(u64::MAX)) as u64;
        self.record(if ms == 0 && d.as_nanos() > 0 { 1 } else { ms });
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.inner.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.inner.max.load(Ordering::Relaxed))
        }
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.inner;
        let count = core.count.load(Ordering::Relaxed);
        let buckets: Vec<(u64, u64)> = (0..BUCKETS)
            .filter_map(|i| {
                let c = core.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_floor(i), c))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { core.min.load(Ordering::Relaxed) },
            max: core.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).field("sum", &self.sum()).finish()
    }
}

/// A point-in-time copy of one histogram: totals plus the non-empty
/// buckets as `(bucket lower bound, sample count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (`0` when empty).
    pub min: u64,
    /// Largest sample (`0` when empty).
    pub max: u64,
    /// Non-empty buckets, ascending by lower bound.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by locating the
    /// bucket holding the ranked sample and interpolating linearly within
    /// the bucket's `[2^(i-1), 2^i)` range. The estimate is clamped to
    /// the recorded `min`/`max`, so degenerate one-sample histograms
    /// return the exact value. Returns `0` when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(floor, bucket_count) in &self.buckets {
            if cumulative + bucket_count >= rank {
                if floor == 0 {
                    return 0;
                }
                // The bucket spans [floor, 2*floor); spread its samples
                // evenly and pick the ranked one's position.
                let into = (rank - cumulative) as f64 / bucket_count as f64;
                let est = floor as f64 + into * (floor as f64 - 1.0);
                return (est as u64).clamp(self.min, self.max);
            }
            cumulative += bucket_count;
        }
        self.max
    }

    /// Median estimate; see [`HistogramSnapshot::percentile`].
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate; see [`HistogramSnapshot::percentile`].
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate; see [`HistogramSnapshot::percentile`].
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

/// An RAII span timer: starts on construction, records the elapsed wall
/// time into its histogram (in milliseconds) when dropped.
///
/// ```
/// use sixdust_telemetry::{Histogram, SpanTimer};
/// let h = Histogram::new();
/// {
///     let _span = SpanTimer::start(&h);
///     // … timed work …
/// }
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Histogram,
    started: Instant,
}

impl SpanTimer {
    /// Starts timing against `histogram`.
    pub fn start(histogram: &Histogram) -> SpanTimer {
        SpanTimer { histogram: histogram.clone(), started: Instant::now() }
    }

    /// Stops the span early and returns the elapsed time (also recorded).
    pub fn stop(self) -> Duration {
        let elapsed = self.started.elapsed();
        drop(self);
        elapsed
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.histogram.record_duration(self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Clones share the underlying cell.
        let c2 = c.clone();
        c2.incr();
        assert_eq!(c.get(), 43);

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_edges() {
        // Zero gets its own bucket.
        assert_eq!(bucket_index(0), 0);
        // Powers of two open a new bucket; their predecessors close one.
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
        // bucket_floor inverts bucket_index on bucket lower bounds.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        // 0 → bucket 0; 1 → [1,2); 2 and 3 → [2,4); 1000 → [512,1024).
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (2, 2), (512, 1)]);
        assert!((snap.mean() - 201.2).abs() < 1e-9);
    }

    #[test]
    fn sub_millisecond_durations_round_up_to_one() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(250));
        h.record_duration(Duration::from_nanos(1));
        h.record_duration(Duration::from_millis(5));
        h.record_duration(Duration::ZERO);
        assert_eq!(h.count(), 4);
        let snap = h.snapshot();
        // 250µs and 1ns → bucket [1,2); 5ms → [4,8); 0 → zero bucket.
        assert_eq!(snap.buckets, vec![(0, 1), (1, 2), (4, 1)]);
        assert_eq!(h.min(), Some(0));
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        let p50 = snap.p50();
        assert!((32..=64).contains(&p50), "p50={p50}");
        let p90 = snap.p90();
        assert!((64..=100).contains(&p90), "p90={p90}");
        let p99 = snap.p99();
        assert!((90..=100).contains(&p99), "p99={p99}");
        assert!(p50 <= p90 && p90 <= p99, "monotone: {p50} {p90} {p99}");
        assert_eq!(snap.percentile(0.0), snap.percentile(0.001));
        assert_eq!(snap.percentile(1.0), 100, "p100 clamps to max");
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(Histogram::new().snapshot().p50(), 0, "empty histogram");
        let h = Histogram::new();
        h.record(777);
        let snap = h.snapshot();
        // One sample: every percentile is that sample (min/max clamp).
        assert_eq!(snap.p50(), 777);
        assert_eq!(snap.p99(), 777);
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.snapshot().p90(), 0, "zero bucket");
    }

    #[test]
    fn span_timer_records_on_drop_and_stop() {
        let h = Histogram::new();
        {
            let _span = SpanTimer::start(&h);
        }
        assert_eq!(h.count(), 1);
        let span = SpanTimer::start(&h);
        let _elapsed = span.stop();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_is_shared_across_clones_and_threads() {
        let h = Histogram::new();
        let h2 = h.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for v in 0..100u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h2.count(), 400);
    }
}
