//! Self-contained static HTML ops dashboard: series sparklines, SLO
//! burn state, the round-health timeline and flight-recorder captures,
//! rendered into one file with zero external dependencies.
//!
//! The renderer is a pure function of the recorded telemetry: inline
//! SVG sparklines, inline CSS, no scripts, no fonts, no timestamps.
//! Only deterministic series columns (see
//! [`is_deterministic_metric`](crate::is_deterministic_metric)) are
//! drawn, so two runs at the same seed produce **byte-identical** HTML —
//! pinned by the root `tests/observability.rs` suite and cheap to diff
//! in CI or archive next to a published hitlist round.

use std::fmt::Write as _;

use crate::flight::FlightRecorder;
use crate::series::{is_deterministic_metric, SeriesRecorder, SeriesRound};
use crate::slo::SloEngine;

/// Maximum points per sparkline; longer series are downsampled by
/// bucket-maximum so spikes survive.
const SPARK_POINTS: usize = 160;
/// Maximum breach-log rows rendered (the count of omitted rows is
/// stated, never silent).
const MAX_BREACH_ROWS: usize = 100;

/// Borrowed inputs for one dashboard render.
pub struct Dashboard<'a> {
    /// Page title.
    pub title: &'a str,
    /// Subtitle line (seed, scale, …) — must itself be deterministic.
    pub subtitle: &'a str,
    /// The recorded series, required.
    pub series: &'a SeriesRecorder,
    /// SLO engine state, if one was attached.
    pub slo: Option<&'a SloEngine>,
    /// Flight recorder, if one was attached.
    pub flight: Option<&'a FlightRecorder>,
}

impl Dashboard<'_> {
    /// Renders the complete HTML document.
    pub fn render(&self) -> String {
        let rounds: Vec<&SeriesRound> = self.series.rounds().collect();
        let mut out = String::with_capacity(64 * 1024);
        self.head(&mut out);
        self.tiles(&mut out, &rounds);
        self.slo_section(&mut out);
        self.timeline(&mut out, &rounds);
        self.sparklines(&mut out, &rounds);
        self.captures(&mut out);
        out.push_str(
            "<footer>sixdust ops dashboard · deterministic render \
                      (wall-clock series excluded)</footer>\n</body>\n</html>\n",
        );
        out
    }

    fn head(&self, out: &mut String) {
        out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
        out.push_str("<title>");
        escape_html(self.title, out);
        out.push_str("</title>\n<style>\n");
        out.push_str(CSS);
        out.push_str("</style>\n</head>\n<body>\n<h1>");
        escape_html(self.title, out);
        out.push_str("</h1>\n<p class=\"sub\">");
        escape_html(self.subtitle, out);
        out.push_str("</p>\n");
    }

    fn tiles(&self, out: &mut String, rounds: &[&SeriesRound]) {
        let sum = |metric: &str| -> u64 { rounds.iter().filter_map(|r| r.value(metric)).sum() };
        let breach_rounds: u64 =
            self.slo.map(|s| s.status().iter().map(|st| st.breach_rounds).sum()).unwrap_or(0);
        let captures = self.flight.map(|f| f.captures_len() as u64).unwrap_or(0);
        out.push_str("<div class=\"tiles\">\n");
        tile(out, "rounds", rounds.len() as u64);
        tile(out, "degraded rounds", sum("service.degraded_rounds"));
        tile(out, "anomaly flags", sum("service.anomalies"));
        tile(out, "SLO breach rounds", breach_rounds);
        tile(out, "flight captures", captures);
        tile(out, "requests served", sum("serve.requests"));
        out.push_str("</div>\n");
    }

    fn slo_section(&self, out: &mut String) {
        let Some(engine) = self.slo else { return };
        out.push_str(
            "<h2>Service-level objectives</h2>\n<table>\n<tr><th>SLO</th>\
                      <th>budget</th><th>burn (short)</th><th>burn (long)</th>\
                      <th>breached rounds</th><th>observed</th><th>state</th></tr>\n",
        );
        for st in engine.status() {
            out.push_str("<tr><td>");
            escape_html(&st.name, out);
            let _ = write!(
                out,
                "</td><td>{}‰</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>",
                st.budget_permille,
                burn(st.burn_short_milli),
                burn(st.burn_long_milli),
                st.breach_rounds,
                st.observed_rounds
            );
            out.push_str(if st.breached_now {
                "<td class=\"bad\">BREACH</td></tr>\n"
            } else {
                "<td class=\"ok\">ok</td></tr>\n"
            });
        }
        out.push_str("</table>\n");

        let breaches = engine.breaches();
        if !breaches.is_empty() {
            out.push_str(
                "<h3>Breach log</h3>\n<table>\n<tr><th>round</th><th>SLO</th>\
                          <th>bad</th><th>burn short</th><th>burn long</th><th>onset</th></tr>\n",
            );
            for b in breaches.iter().take(MAX_BREACH_ROWS) {
                let _ = write!(out, "<tr><td>{}</td><td>", b.key);
                escape_html(&b.slo, out);
                let _ = writeln!(
                    out,
                    "</td><td>{}‰</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                    b.bad_permille,
                    burn(b.burn_short_milli),
                    burn(b.burn_long_milli),
                    if b.onset { "●" } else { "" }
                );
            }
            if breaches.len() > MAX_BREACH_ROWS {
                let _ = writeln!(
                    out,
                    "<tr><td colspan=\"6\">… and {} more (see breach log JSONL)</td></tr>",
                    breaches.len() - MAX_BREACH_ROWS
                );
            }
            out.push_str("</table>\n");
            if engine.dropped_breaches() > 0 {
                let _ = writeln!(
                    out,
                    "<p class=\"sub\">{} older breach entries aged out of the log.</p>",
                    engine.dropped_breaches()
                );
            }
        }
    }

    /// One cell per round: red = degraded, amber = anomaly-flagged,
    /// green = clean. Downsampled worst-state-wins so an incident can't
    /// vanish between pixels.
    fn timeline(&self, out: &mut String, rounds: &[&SeriesRound]) {
        if rounds.is_empty() {
            return;
        }
        // 0 = clean, 1 = anomalous, 2 = degraded.
        let states: Vec<u64> = rounds
            .iter()
            .map(|r| {
                if r.value("service.degraded_rounds").unwrap_or(0) > 0 {
                    2
                } else if r.value("service.anomalies").unwrap_or(0) > 0 {
                    1
                } else {
                    0
                }
            })
            .collect();
        let cells = downsample_max(&states, 320);
        let w = 3u64;
        out.push_str("<h2>Round health</h2>\n");
        let _ = write!(
            out,
            "<svg class=\"strip\" width=\"{}\" height=\"14\" viewBox=\"0 0 {} 14\">",
            cells.len() as u64 * w,
            cells.len() as u64 * w
        );
        for (i, s) in cells.iter().enumerate() {
            let color = match s {
                2 => "#c53030",
                1 => "#dd8a12",
                _ => "#2f855a",
            };
            let _ = write!(
                out,
                "<rect x=\"{}\" y=\"0\" width=\"{}\" height=\"14\" fill=\"{}\"/>",
                i as u64 * w,
                w,
                color
            );
        }
        out.push_str("</svg>\n");
        let _ = writeln!(
            out,
            "<p class=\"sub\">rounds {} – {} · red degraded · amber anomaly · green clean</p>",
            rounds.first().expect("non-empty").key,
            rounds.last().expect("non-empty").key
        );
    }

    fn sparklines(&self, out: &mut String, rounds: &[&SeriesRound]) {
        let names: Vec<String> =
            self.series.metric_names().into_iter().filter(|n| is_deterministic_metric(n)).collect();
        let mut flat_zero = 0usize;
        out.push_str("<h2>Metric series</h2>\n");
        let mut group = "";
        let mut open = false;
        for name in &names {
            let values: Vec<u64> = rounds.iter().map(|r| r.value(name).unwrap_or(0)).collect();
            let Some(&max) = values.iter().max() else { continue };
            if max == 0 {
                flat_zero += 1;
                continue;
            }
            let this_group = name.split('.').next().unwrap_or("");
            if this_group != group {
                if open {
                    out.push_str("</div>\n");
                }
                group = this_group;
                out.push_str("<h3>");
                escape_html(group, out);
                out.push_str("</h3>\n<div class=\"grid\">\n");
                open = true;
            }
            let min = *values.iter().min().expect("non-empty");
            let last = *values.last().expect("non-empty");
            out.push_str("<div class=\"card\"><div class=\"mname\">");
            escape_html(name, out);
            out.push_str("</div>");
            sparkline_svg(&downsample_max(&values, SPARK_POINTS), out);
            let _ = writeln!(
                out,
                "<div class=\"mstat\">last {last} · min {min} · max {max}</div></div>"
            );
        }
        if open {
            out.push_str("</div>\n");
        }
        let _ = writeln!(
            out,
            "<p class=\"sub\">{} deterministic metrics ({} flat-zero omitted); \
             wall-clock duration series excluded by design.</p>",
            names.len(),
            flat_zero
        );
    }

    fn captures(&self, out: &mut String) {
        let Some(flight) = self.flight else { return };
        let captures = flight.captures();
        if captures.is_empty() {
            return;
        }
        out.push_str("<h2>Flight-recorder captures</h2>\n");
        for c in &captures {
            out.push_str("<details><summary>");
            escape_html(&c.reason, out);
            let _ = write!(
                out,
                " · round {} · {} events · {} rounds of context</summary><pre>",
                c.key,
                c.events.len(),
                c.rounds.len()
            );
            escape_html(&c.to_json(), out);
            out.push_str("</pre></details>\n");
        }
        if flight.dropped_captures() > 0 {
            let _ = writeln!(
                out,
                "<p class=\"sub\">{} further incidents fired after the capture bound.</p>",
                flight.dropped_captures()
            );
        }
    }
}

/// Downsamples to at most `cap` buckets taking each bucket's maximum,
/// so spikes survive compression. Pure integer math.
fn downsample_max(values: &[u64], cap: usize) -> Vec<u64> {
    if values.len() <= cap {
        return values.to_vec();
    }
    (0..cap)
        .map(|b| {
            let lo = b * values.len() / cap;
            let hi = ((b + 1) * values.len() / cap).max(lo + 1);
            values[lo..hi].iter().copied().max().unwrap_or(0)
        })
        .collect()
}

/// Renders one inline-SVG sparkline. Integer coordinates only, so the
/// byte output is a pure function of the values.
fn sparkline_svg(values: &[u64], out: &mut String) {
    const W: u64 = 240;
    const H: u64 = 36;
    const PAD: u64 = 3;
    let min = values.iter().copied().min().unwrap_or(0);
    let max = values.iter().copied().max().unwrap_or(0);
    let span = (max - min).max(1);
    let _ =
        write!(out, "<svg class=\"spark\" width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\">");
    if values.len() == 1 {
        let _ = write!(out, "<circle cx=\"{}\" cy=\"{}\" r=\"2\" fill=\"#2b6cb0\"/>", W / 2, H / 2);
    } else {
        out.push_str("<polyline fill=\"none\" stroke=\"#2b6cb0\" stroke-width=\"1\" points=\"");
        let n = values.len() as u64;
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let x = PAD + (i as u64) * (W - 2 * PAD) / (n - 1);
            let y = H - PAD - (v - min) * (H - 2 * PAD) / span;
            let _ = write!(out, "{x},{y}");
        }
        out.push_str("\"/>");
    }
    out.push_str("</svg>");
}

fn tile(out: &mut String, label: &str, value: u64) {
    let _ =
        write!(out, "<div class=\"tile\"><div class=\"tval\">{value}</div><div class=\"tlbl\">");
    escape_html(label, out);
    out.push_str("</div></div>\n");
}

/// Burn rate in milli rendered as a fixed one-decimal multiplier
/// (`1500` → `1.5×`) — no float formatting anywhere.
fn burn(milli: u64) -> String {
    format!("{}.{}×", milli / 1000, (milli % 1000) / 100)
}

fn escape_html(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

const CSS: &str = "\
body{font-family:system-ui,sans-serif;margin:24px auto;max-width:1080px;color:#1a202c;background:#fbfbf8}
h1{margin-bottom:2px}h2{margin-top:28px;border-bottom:1px solid #e2e8f0}
.sub{color:#718096;font-size:13px;margin-top:2px}
.tiles{display:flex;flex-wrap:wrap;gap:10px;margin:16px 0}
.tile{background:#fff;border:1px solid #e2e8f0;border-radius:6px;padding:10px 16px;min-width:110px}
.tval{font-size:22px;font-weight:600}.tlbl{font-size:12px;color:#718096}
table{border-collapse:collapse;font-size:13px}
td,th{border:1px solid #e2e8f0;padding:4px 10px;text-align:left}
th{background:#edf2f7}.ok{color:#2f855a;font-weight:600}.bad{color:#c53030;font-weight:600}
.grid{display:flex;flex-wrap:wrap;gap:10px}
.card{background:#fff;border:1px solid #e2e8f0;border-radius:6px;padding:8px;width:256px}
.mname{font-size:12px;font-weight:600;word-break:break-all}
.mstat{font-size:11px;color:#718096}
.spark{display:block;margin:4px 0}.strip{display:block;border:1px solid #e2e8f0}
details{margin:6px 0}summary{cursor:pointer;font-size:13px}
pre{background:#fff;border:1px solid #e2e8f0;border-radius:6px;padding:8px;font-size:11px;overflow-x:auto;white-space:pre-wrap;word-break:break-all}
footer{margin-top:32px;color:#a0aec0;font-size:12px}
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::slo::SloSpec;

    fn build() -> String {
        let reg = Registry::new();
        let mut rec = SeriesRecorder::new(reg.clone(), 64);
        let mut slo = SloEngine::new(vec![SloSpec::ratio("avail", "bad", "total", 50, 1, 2, 2000)]);
        let flight = FlightRecorder::new();
        for k in 0..6u32 {
            reg.counter("total").add(100);
            reg.counter("bad").add(if k >= 3 { 30 } else { 0 });
            reg.gauge("service.publish.staleness_rounds").set(i64::from(k));
            reg.histogram("service.round.phase.scan_ms").record(5);
            let r = rec.record(k).clone();
            flight.note_round(&r);
            for b in slo.observe(&r) {
                if b.onset {
                    flight.capture(k, &format!("slo:{}", b.slo));
                }
            }
        }
        Dashboard {
            title: "test <dash>",
            subtitle: "seed 0x1",
            series: &rec,
            slo: Some(&slo),
            flight: Some(&flight),
        }
        .render()
    }

    #[test]
    fn render_is_deterministic_and_self_contained() {
        let a = build();
        assert_eq!(a, build(), "same telemetry, same bytes");
        assert!(a.starts_with("<!DOCTYPE html>"));
        assert!(a.ends_with("</html>\n"));
        assert!(!a.contains("http://") && !a.contains("https://"), "no external refs");
        assert!(!a.contains("<script"), "no scripts");
    }

    #[test]
    fn render_escapes_excludes_wall_clock_and_shows_breaches() {
        let html = build();
        assert!(html.contains("test &lt;dash&gt;"), "title escaped");
        assert!(!html.contains("scan_ms"), "wall-clock series excluded");
        assert!(html.contains("slo:avail"), "capture rendered");
        assert!(html.contains("BREACH") || html.contains("breach"), "slo state shown");
        assert!(html.contains("service.publish.staleness_rounds"), "gauge sparkline present");
    }

    #[test]
    fn downsample_keeps_spikes() {
        let mut v = vec![1u64; 1000];
        v[777] = 999;
        let d = downsample_max(&v, 160);
        assert_eq!(d.len(), 160);
        assert_eq!(d.iter().copied().max(), Some(999));
        // Short inputs pass through untouched.
        assert_eq!(downsample_max(&[5, 6], 160), vec![5, 6]);
    }

    #[test]
    fn burn_formatting_is_fixed_point() {
        assert_eq!(burn(0), "0.0×");
        assert_eq!(burn(1000), "1.0×");
        assert_eq!(burn(2567), "2.5×");
        assert_eq!(burn(20_000), "20.0×");
    }
}
