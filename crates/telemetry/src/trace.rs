//! A structured trace journal: spans and instant events, exported as
//! Chrome trace-event JSON.
//!
//! Where the metric primitives aggregate (a histogram forgets *when* a
//! slow round happened), the journal keeps the timeline: every recorded
//! span carries its start offset, duration, thread and key/value
//! arguments. The export is the [Chrome trace-event format] — load the
//! file in `chrome://tracing` (or <https://ui.perfetto.dev>) and a whole
//! service run becomes an inspectable flame chart: rounds, per-protocol
//! scans, worker chunks, alias-detection sweeps.
//!
//! Handles follow the same pattern as [`Counter`](crate::Counter): a
//! [`TraceJournal`] is a cheap `Arc` clone, recording takes one short
//! mutex push, and the buffer is bounded ([`TraceJournal::dropped`]
//! counts what overflowed). A journal can be installed into a
//! [`Registry`](crate::Registry) so already-instrumented code paths find
//! it without new plumbing.
//!
//! [Chrome trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! ```
//! use sixdust_telemetry::TraceJournal;
//! let journal = TraceJournal::new();
//! {
//!     let _round = journal.span_with("service.round", &[("day", "330")]);
//!     journal.instant("service.anomaly", &[("proto", "udp53")]);
//! }
//! assert_eq!(journal.len(), 2);
//! assert!(journal.to_chrome_json().contains("\"traceEvents\""));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::json;

/// Default journal capacity in events. A four-year paper-scale service
/// run emits a few events per round per protocol — well under this.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stable per-thread id for trace events (Chrome's `tid` field).
    static TRACE_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    TRACE_TID.with(|t| *t)
}

/// The kind of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete span (`ph: "X"`): start + duration.
    Complete,
    /// An instant event (`ph: "i"`).
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (dot-separated, like metric names).
    pub name: String,
    /// Span or instant.
    pub phase: TracePhase,
    /// Start offset from journal creation, microseconds.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Recording thread's stable id.
    pub tid: u64,
    /// Key/value arguments.
    pub args: Vec<(String, String)>,
}

#[derive(Debug)]
struct TraceCore {
    epoch: Instant,
    capacity: usize,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

/// A shared, bounded journal of trace events.
///
/// Clones share the same buffer; the handle is `Send + Sync` and cheap to
/// move into worker threads.
#[derive(Clone, Debug)]
pub struct TraceJournal {
    inner: Arc<TraceCore>,
}

impl Default for TraceJournal {
    fn default() -> TraceJournal {
        TraceJournal::new()
    }
}

impl TraceJournal {
    /// Creates a journal with [`DEFAULT_TRACE_CAPACITY`].
    pub fn new() -> TraceJournal {
        TraceJournal::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a journal holding at most `capacity` events (0 is treated
    /// as 1). Events past capacity are counted in [`dropped`] and
    /// discarded — a full journal never blocks or reallocates the world.
    ///
    /// [`dropped`]: TraceJournal::dropped
    pub fn with_capacity(capacity: usize) -> TraceJournal {
        TraceJournal {
            inner: Arc::new(TraceCore {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Microseconds since the journal was created.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    fn push(&self, event: TraceEvent) {
        let mut events = self.inner.events.lock();
        if events.len() < self.inner.capacity {
            events.push(event);
        } else {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an instant event.
    pub fn instant(&self, name: &str, args: &[(&str, &str)]) {
        self.push(TraceEvent {
            name: name.to_string(),
            phase: TracePhase::Instant,
            ts_us: self.now_us(),
            dur_us: 0,
            tid: current_tid(),
            args: own_args(args),
        });
    }

    /// Starts a span; the event is recorded when the returned guard drops
    /// (or [`TraceSpan::end`] is called).
    pub fn span(&self, name: &str) -> TraceSpan {
        self.span_with(name, &[])
    }

    /// [`span`](TraceJournal::span) with key/value arguments attached.
    pub fn span_with(&self, name: &str, args: &[(&str, &str)]) -> TraceSpan {
        TraceSpan {
            journal: self.clone(),
            name: name.to_string(),
            args: own_args(args),
            started_us: self.now_us(),
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the journal was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the retained events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().clone()
    }

    /// Serializes the journal as a Chrome trace-event JSON document
    /// (object format: `{"traceEvents": [...]}`), loadable in
    /// `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\": [\n");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  {\"name\": ");
            json::escape(&e.name, &mut out);
            out.push_str(", \"cat\": ");
            let cat = e.name.split('.').next().unwrap_or("trace");
            json::escape(cat, &mut out);
            match e.phase {
                TracePhase::Complete => {
                    out.push_str(&format!(
                        ", \"ph\": \"X\", \"ts\": {}, \"dur\": {}",
                        e.ts_us, e.dur_us
                    ));
                }
                TracePhase::Instant => {
                    out.push_str(&format!(", \"ph\": \"i\", \"ts\": {}, \"s\": \"t\"", e.ts_us));
                }
            }
            out.push_str(&format!(", \"pid\": 1, \"tid\": {}", e.tid));
            if !e.args.is_empty() {
                out.push_str(", \"args\": {");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    json::escape(k, &mut out);
                    out.push_str(": ");
                    json::escape(v, &mut out);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

fn own_args(args: &[(&str, &str)]) -> Vec<(String, String)> {
    args.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

/// RAII guard for an in-flight span; records a complete (`"X"`) event
/// covering construction-to-drop when dropped.
#[derive(Debug)]
pub struct TraceSpan {
    journal: TraceJournal,
    name: String,
    args: Vec<(String, String)>,
    started_us: u64,
}

impl TraceSpan {
    /// Attaches one more argument to the span (recorded at drop).
    pub fn arg(&mut self, key: &str, value: &str) {
        self.args.push((key.to_string(), value.to_string()));
    }

    /// Ends the span now and returns its duration in microseconds.
    pub fn end(self) -> u64 {
        let dur = self.journal.now_us().saturating_sub(self.started_us);
        drop(self);
        dur
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let now = self.journal.now_us();
        self.journal.push(TraceEvent {
            name: std::mem::take(&mut self.name),
            phase: TracePhase::Complete,
            ts_us: self.started_us,
            dur_us: now.saturating_sub(self.started_us),
            tid: current_tid(),
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_with_duration() {
        let j = TraceJournal::new();
        {
            let _outer = j.span("service.round");
            let _inner = j.span_with("scan.icmp", &[("targets", "1000")]);
        }
        // Inner drops first.
        let events = j.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "scan.icmp");
        assert_eq!(events[1].name, "service.round");
        assert!(events[1].ts_us <= events[0].ts_us);
        assert_eq!(events[0].args, vec![("targets".to_string(), "1000".to_string())]);
        assert_eq!(events[0].phase, TracePhase::Complete);
    }

    #[test]
    fn instants_and_args() {
        let j = TraceJournal::new();
        j.instant("service.anomaly", &[("proto", "udp53"), ("z", "12.5")]);
        let events = j.events();
        assert_eq!(events[0].phase, TracePhase::Instant);
        assert_eq!(events[0].dur_us, 0);
        assert_eq!(events[0].args.len(), 2);
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        let j = TraceJournal::with_capacity(2);
        for i in 0..5 {
            j.instant(&format!("e{i}"), &[]);
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
    }

    #[test]
    fn chrome_export_shape() {
        let j = TraceJournal::new();
        {
            let mut s = j.span("scan.udp53");
            s.arg("day", "330");
        }
        j.instant("marker \"quoted\"", &[]);
        let json = j.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"cat\": \"scan\""));
        assert!(json.contains("\"args\": {\"day\": \"330\"}"));
        assert!(json.contains("\\\"quoted\\\""), "names are JSON-escaped");
    }

    #[test]
    fn explicit_end_returns_duration() {
        let j = TraceJournal::new();
        let span = j.span("x");
        let dur = span.end();
        assert_eq!(j.len(), 1);
        assert_eq!(j.events()[0].dur_us, dur);
    }

    #[test]
    fn clones_share_and_threads_get_distinct_tids() {
        let j = TraceJournal::new();
        let j2 = j.clone();
        let main_tid = {
            let _s = j.span("main");
            current_tid()
        };
        std::thread::scope(|s| {
            s.spawn(|| {
                j2.instant("worker", &[]);
            });
        });
        let events = j.events();
        assert_eq!(events.len(), 2);
        let worker = events.iter().find(|e| e.name == "worker").unwrap();
        assert_ne!(worker.tid, main_tid);
    }

    #[test]
    fn empty_journal_exports_valid_document() {
        let j = TraceJournal::new();
        assert!(j.is_empty());
        assert_eq!(j.to_chrome_json(), "{\"traceEvents\": [\n\n]}\n");
    }
}
