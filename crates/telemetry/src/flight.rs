//! Black-box flight recorder: a bounded ring of recent events and
//! metric-delta rounds, frozen into deterministic JSON captures when
//! something goes wrong.
//!
//! An aircraft flight recorder is useless if it only starts writing
//! after the crash; this one continuously retains the last
//! [`DEFAULT_FLIGHT_EVENTS`] structured events (anomaly verdicts, shed
//! decisions, SLO breaches) and the last [`DEFAULT_FLIGHT_ROUNDS`]
//! series rounds, so the moment a degraded round, MAD anomaly or SLO
//! breach fires, [`FlightRecorder::capture`] snapshots the ring into a
//! [`FlightCapture`] — the state *leading up to* the incident, not just
//! the incident itself.
//!
//! Everything is keyed by round keys and monotone sequence numbers —
//! never wall-clock — and rounds are filtered through
//! [`is_deterministic_metric`](crate::is_deterministic_metric), so a
//! capture (and its JSON) is byte-identical across runs at the same
//! seed. The handle is `Arc`-backed and cheap to clone into the service
//! and the serve frontend.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::json;
use crate::series::{is_deterministic_metric, SeriesRound};

/// Default bound on the event ring.
pub const DEFAULT_FLIGHT_EVENTS: usize = 128;
/// Default bound on the retained series-round ring.
pub const DEFAULT_FLIGHT_ROUNDS: usize = 16;
/// Default bound on retained captures (later incidents are counted but
/// not stored — the earliest black boxes are the valuable ones).
pub const DEFAULT_FLIGHT_CAPTURES: usize = 32;

/// One recorded event: what happened, in which round, in what order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number across the recorder's lifetime.
    pub seq: u64,
    /// Round key (scan day) the event belongs to.
    pub key: u32,
    /// Dot-separated event kind, e.g. `service.anomaly.udp53`.
    pub kind: String,
    /// Free-form `(name, value)` detail pairs.
    pub args: Vec<(String, String)>,
}

/// A frozen copy of the ring at incident time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightCapture {
    /// Sequence number at capture time (orders captures globally).
    pub seq: u64,
    /// Round key the incident fired on.
    pub key: u32,
    /// Why the capture fired, e.g. `degraded-round` or
    /// `slo:publish-freshness`.
    pub reason: String,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
    /// The retained (deterministic-column) series rounds, oldest first.
    pub rounds: Vec<SeriesRound>,
}

impl FlightCapture {
    /// Serializes the capture as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"reason\": ");
        json::escape(&self.reason, &mut out);
        out.push_str(&format!(", \"key\": {}, \"seq\": {}, \"events\": [", self.key, self.seq));
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{{\"seq\": {}, \"key\": {}, \"kind\": ", e.seq, e.key));
            json::escape(&e.kind, &mut out);
            out.push_str(", \"args\": {");
            for (j, (name, value)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json::escape(name, &mut out);
                out.push_str(": ");
                json::escape(value, &mut out);
            }
            out.push_str("}}");
        }
        out.push_str("], \"rounds\": [");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{{\"key\": {}, \"values\": {{", r.key));
            for (j, (name, value)) in r.values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json::escape(name, &mut out);
                out.push_str(&format!(": {value}"));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

struct Inner {
    max_events: usize,
    max_rounds: usize,
    max_captures: usize,
    seq: u64,
    events: VecDeque<FlightEvent>,
    rounds: VecDeque<SeriesRound>,
    captures: Vec<FlightCapture>,
    dropped_events: u64,
    dropped_captures: u64,
}

/// The shared flight-recorder handle. Cloning shares the ring.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<Inner>>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default ring bounds.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(
            DEFAULT_FLIGHT_EVENTS,
            DEFAULT_FLIGHT_ROUNDS,
            DEFAULT_FLIGHT_CAPTURES,
        )
    }

    /// A recorder retaining at most `events` events, `rounds` series
    /// rounds and `captures` captures (each at least 1).
    pub fn with_capacity(events: usize, rounds: usize, captures: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(Inner {
                max_events: events.max(1),
                max_rounds: rounds.max(1),
                max_captures: captures.max(1),
                seq: 0,
                events: VecDeque::new(),
                rounds: VecDeque::new(),
                captures: Vec::new(),
                dropped_events: 0,
                dropped_captures: 0,
            })),
        }
    }

    /// Records one event into the ring.
    pub fn note(&self, key: u32, kind: &str, args: &[(&str, &str)]) {
        let mut inner = self.inner.lock();
        if inner.events.len() == inner.max_events {
            inner.events.pop_front();
            inner.dropped_events += 1;
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.events.push_back(FlightEvent {
            seq,
            key,
            kind: kind.to_string(),
            args: args.iter().map(|(n, v)| (n.to_string(), v.to_string())).collect(),
        });
    }

    /// Retains one series round (deterministic columns only) in the
    /// round ring.
    pub fn note_round(&self, round: &SeriesRound) {
        let filtered = SeriesRound {
            key: round.key,
            values: round
                .values
                .iter()
                .filter(|(name, _)| is_deterministic_metric(name))
                .cloned()
                .collect(),
        };
        let mut inner = self.inner.lock();
        if inner.rounds.len() == inner.max_rounds {
            inner.rounds.pop_front();
        }
        inner.rounds.push_back(filtered);
    }

    /// Freezes the ring into a capture. Returns `false` when the capture
    /// bound is reached (the incident is still counted, see
    /// [`FlightRecorder::dropped_captures`]).
    pub fn capture(&self, key: u32, reason: &str) -> bool {
        let mut inner = self.inner.lock();
        if inner.captures.len() >= inner.max_captures {
            inner.dropped_captures += 1;
            return false;
        }
        let seq = inner.seq;
        inner.seq += 1;
        let capture = FlightCapture {
            seq,
            key,
            reason: reason.to_string(),
            events: inner.events.iter().cloned().collect(),
            rounds: inner.rounds.iter().cloned().collect(),
        };
        inner.captures.push(capture);
        true
    }

    /// Every retained capture, oldest first.
    pub fn captures(&self) -> Vec<FlightCapture> {
        self.inner.lock().captures.clone()
    }

    /// Retained capture count.
    pub fn captures_len(&self) -> usize {
        self.inner.lock().captures.len()
    }

    /// Incidents that fired after the capture bound was reached.
    pub fn dropped_captures(&self) -> u64 {
        self.inner.lock().dropped_captures
    }

    /// Events aged out of the ring so far.
    pub fn dropped_events(&self) -> u64 {
        self.inner.lock().dropped_events
    }

    /// Every retained capture as one deterministic JSON array.
    pub fn captures_json(&self) -> String {
        let captures = self.captures();
        let mut out = String::from("[");
        for (i, c) in captures.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n ");
            }
            out.push_str(&c.to_json());
        }
        out.push(']');
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FlightRecorder")
            .field("events", &inner.events.len())
            .field("rounds", &inner.rounds.len())
            .field("captures", &inner.captures.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(key: u32, values: &[(&str, u64)]) -> SeriesRound {
        let mut values: Vec<(String, u64)> =
            values.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        values.sort_by(|a, b| a.0.cmp(&b.0));
        SeriesRound { key, values }
    }

    #[test]
    fn capture_freezes_ring_state_before_the_incident() {
        let fr = FlightRecorder::with_capacity(4, 2, 8);
        fr.note(1, "service.anomaly.udp53", &[("z", "-8.0")]);
        fr.note_round(&round(1, &[("scan.udp53.hits", 12)]));
        fr.note(2, "service.degraded", &[("loss_permille", "400")]);
        fr.note_round(&round(2, &[("scan.udp53.hits", 0)]));
        assert!(fr.capture(2, "degraded-round"));
        // Later traffic doesn't alter the frozen capture.
        fr.note(3, "noise", &[]);
        let caps = fr.captures();
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].reason, "degraded-round");
        assert_eq!(caps[0].events.len(), 2);
        assert_eq!(caps[0].rounds.len(), 2);
        assert_eq!(caps[0].rounds[1].value("scan.udp53.hits"), Some(0));
    }

    #[test]
    fn rings_are_bounded_and_drops_are_counted() {
        let fr = FlightRecorder::with_capacity(2, 1, 1);
        for i in 0..5 {
            fr.note(i, "e", &[]);
        }
        assert_eq!(fr.dropped_events(), 3);
        assert!(fr.capture(5, "first"));
        assert!(!fr.capture(6, "over-bound"));
        assert_eq!(fr.captures_len(), 1);
        assert_eq!(fr.dropped_captures(), 1);
        // The retained events are the most recent ones.
        assert_eq!(fr.captures()[0].events[0].seq, 3);
    }

    #[test]
    fn note_round_drops_wall_clock_columns() {
        let fr = FlightRecorder::new();
        fr.note_round(&round(
            7,
            &[("scan.icmp.hits", 5), ("scan.worker.chunk_ms.p50", 12), ("alias.round_ms.sum", 9)],
        ));
        fr.capture(7, "test");
        let caps = fr.captures();
        assert_eq!(caps[0].rounds[0].values, vec![("scan.icmp.hits".to_string(), 5)]);
    }

    #[test]
    fn capture_json_is_deterministic_and_escaped() {
        let make = || {
            let fr = FlightRecorder::new();
            fr.note(1, "kind\"quote", &[("arg", "value\n")]);
            fr.note_round(&round(1, &[("c", 3)]));
            fr.capture(1, "slo:avail");
            fr.captures_json()
        };
        let a = make();
        assert_eq!(a, make(), "same inputs, same bytes");
        assert!(a.contains("\"kind\\\"quote\""));
        assert!(a.contains("\"value\\n\""));
        assert!(a.starts_with("[{\"reason\": \"slo:avail\""));
    }
}
