//! Online anomaly detection over metric series: rolling median + MAD
//! z-scores.
//!
//! The paper's headline cleaning result (Sec. 4.2) is a cautionary tale
//! about *not* having this: 134 M GFW-injected UDP/53 "responders" sat in
//! the published time series for years because nobody watched the
//! trajectory, only per-round totals. [`MadDetector`] is the live version
//! of that post-hoc analysis — feed it one value per scan round and it
//! flags the round the moment the series departs from its recent robust
//! baseline.
//!
//! The statistic is the classic robust z-score: with `m` the median and
//! `MAD` the median absolute deviation of the recent window,
//!
//! ```text
//! z = 0.6745 · (x − m) / MAD
//! ```
//!
//! (0.6745 rescales MAD to the standard deviation of a normal
//! distribution). Values with `|z|` above the threshold are anomalous.
//! Anomalous values are **not** absorbed into the window, so a
//! multi-round injection era stays flagged from its first round to its
//! last instead of becoming the new normal — exactly the failure mode
//! that hid the GFW eras in the real service. The one escape hatch is
//! [`MadConfig::max_streak`]: after that many *consecutive* anomalies the
//! detector concedes a regime change and adopts the new level, so a
//! legitimate step change (a big new source, a config change) cannot
//! freeze the baseline and alarm forever.

use std::collections::VecDeque;

/// Configuration for a [`MadDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct MadConfig {
    /// Rolling window length (number of accepted samples kept).
    pub window: usize,
    /// Robust z-score magnitude above which a value is anomalous.
    pub threshold: f64,
    /// Minimum accepted samples before any value can be flagged; the
    /// warm-up values are absorbed unconditionally.
    pub min_history: usize,
    /// After this many *consecutive* anomalous values the detector
    /// concedes a regime change: the recent anomalous values replace the
    /// baseline window and subsequent values at the new level are normal.
    /// Without this bound a step change (organic growth, a config change)
    /// would freeze the baseline and flag every round forever. `0`
    /// disables the concession. The default (40) outlasts the paper's
    /// eras at its scan cadence, so those stay flagged end to end; an
    /// era longer than the streak is conceded mid-way and its *end* then
    /// flags as a drop, delimiting the era at both edges either way.
    pub max_streak: usize,
}

impl Default for MadConfig {
    fn default() -> MadConfig {
        MadConfig { window: 25, threshold: 5.0, min_history: 5, max_streak: 40 }
    }
}

/// The verdict for one observed value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Whether the value is anomalous against the current window.
    pub anomalous: bool,
    /// The robust z-score (`0.0` during warm-up).
    pub z: f64,
    /// Median of the window the value was judged against.
    pub median: f64,
    /// Median absolute deviation of that window.
    pub mad: f64,
}

impl Verdict {
    fn normal(z: f64, median: f64, mad: f64) -> Verdict {
        Verdict { anomalous: false, z, median, mad }
    }
}

/// An online rolling median + MAD anomaly detector for one series.
///
/// ```
/// use sixdust_telemetry::{MadConfig, MadDetector};
/// let mut det = MadDetector::new(MadConfig::default());
/// for _ in 0..10 {
///     assert!(!det.observe(100.0).anomalous); // steady baseline
/// }
/// assert!(det.observe(9_000.0).anomalous); // a GFW-era spike
/// assert!(!det.observe(101.0).anomalous); // back to baseline
/// ```
#[derive(Debug, Clone)]
pub struct MadDetector {
    config: MadConfig,
    history: VecDeque<f64>,
    /// The most recent consecutive anomalous values (capped at `window`),
    /// promoted to the new baseline when the streak reaches `max_streak`.
    streak_values: VecDeque<f64>,
    streak: usize,
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

impl MadDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: MadConfig) -> MadDetector {
        MadDetector { config, history: VecDeque::new(), streak_values: VecDeque::new(), streak: 0 }
    }

    /// Number of accepted (non-anomalous) samples currently in the window.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Length of the current run of consecutive anomalous values.
    pub fn streak_len(&self) -> usize {
        self.streak
    }

    /// Judges `value` against the current window, then absorbs it if (and
    /// only if) it is not anomalous. A run of `max_streak` consecutive
    /// anomalies is conceded as a regime change (see [`MadConfig`]).
    pub fn observe(&mut self, value: f64) -> Verdict {
        let verdict = self.judge(value);
        if verdict.anomalous {
            self.streak += 1;
            self.streak_values.push_back(value);
            while self.streak_values.len() > self.config.window.max(1) {
                self.streak_values.pop_front();
            }
            if self.config.max_streak > 0 && self.streak >= self.config.max_streak {
                // The "anomaly" has been the operating reality for a full
                // streak: adopt it as the baseline instead of flagging
                // every round until the end of time.
                self.history = std::mem::take(&mut self.streak_values);
                self.streak = 0;
            }
        } else {
            self.streak = 0;
            self.streak_values.clear();
            self.history.push_back(value);
            while self.history.len() > self.config.window.max(1) {
                self.history.pop_front();
            }
        }
        verdict
    }

    /// Judges `value` against the current window without absorbing it.
    pub fn judge(&self, value: f64) -> Verdict {
        if self.history.len() < self.config.min_history {
            return Verdict::normal(0.0, value, 0.0);
        }
        let mut sorted: Vec<f64> = self.history.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        let median = median_of(&sorted);
        let mut devs: Vec<f64> = sorted.iter().map(|v| (v - median).abs()).collect();
        devs.sort_by(f64::total_cmp);
        let mad = median_of(&devs);
        let z = if mad > 0.0 {
            0.6745 * (value - median) / mad
        } else {
            // Degenerate window (more than half the values identical): fall
            // back to fractional deviation from the median, scaled so the
            // same threshold applies. The tolerance is floored at
            // `max(√median, 1)` because the series are Poisson-ish counts:
            // a ±1 tick off a perfectly constant small-count window is
            // ordinary shot noise, not an event.
            let tolerance = (0.1 * median.abs()).max(median.abs().sqrt()).max(1.0);
            self.config.threshold * (value - median) / tolerance
        };
        Verdict { anomalous: z.abs() > self.config.threshold, z, median, mad }
    }
}

/// Runs a [`MadDetector`] over a whole `(day, value)` series and returns
/// the flagged days — the batch form of the online monitor, used to
/// cross-check against `sixdust-analysis`' median-factor spike detector.
pub fn flag_series(points: &[(u32, u64)], config: &MadConfig) -> Vec<u32> {
    let mut det = MadDetector::new(config.clone());
    points.iter().filter(|(_, v)| det.observe(*v as f64).anomalous).map(|(d, _)| *d).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_baseline(i: u32) -> u64 {
        100 + u64::from(i % 7)
    }

    #[test]
    fn steady_series_never_flags() {
        let mut det = MadDetector::new(MadConfig::default());
        for _ in 0..100 {
            assert!(!det.observe(42.0).anomalous);
        }
    }

    #[test]
    fn noisy_baseline_never_flags() {
        let pts: Vec<(u32, u64)> = (0..100).map(|d| (d, noisy_baseline(d))).collect();
        assert_eq!(flag_series(&pts, &MadConfig::default()), Vec::<u32>::new());
    }

    #[test]
    fn spike_era_stays_flagged_throughout() {
        let mut pts: Vec<(u32, u64)> = (0..100).map(|d| (d, noisy_baseline(d))).collect();
        for d in 40..60 {
            pts[d as usize] = (d, 20_000 + u64::from(d));
        }
        let flagged = flag_series(&pts, &MadConfig::default());
        assert_eq!(flagged, (40..60).collect::<Vec<u32>>());
    }

    #[test]
    fn recovers_after_era_ends() {
        let mut det = MadDetector::new(MadConfig::default());
        for i in 0..30u32 {
            det.observe(f64::from(noisy_baseline(i) as u32));
        }
        for _ in 0..10 {
            assert!(det.observe(50_000.0).anomalous);
        }
        // Post-era values are judged against the uncontaminated window.
        assert!(!det.observe(103.0).anomalous);
    }

    #[test]
    fn warm_up_absorbs_unconditionally() {
        let mut det = MadDetector::new(MadConfig { min_history: 5, ..MadConfig::default() });
        for v in [1.0, 1e9, 3.0, -7.0] {
            assert!(!det.observe(v).anomalous, "warm-up must not flag");
        }
        assert_eq!(det.history_len(), 4);
    }

    #[test]
    fn degenerate_window_uses_fractional_fallback() {
        let mut det = MadDetector::new(MadConfig::default());
        for _ in 0..20 {
            det.observe(1000.0);
        }
        let v = det.judge(1040.0); // 4% off a constant series: fine
        assert!(!v.anomalous, "z={}", v.z);
        let v = det.judge(3000.0); // 3x a constant series: anomalous
        assert!(v.anomalous);
        assert_eq!(v.mad, 0.0);
    }

    #[test]
    fn small_count_shot_noise_never_flags() {
        // A UDP/53 baseline of 3 responsive addresses, constant for weeks,
        // then an ordinary ±1 tick: shot noise, not a GFW era.
        let mut det = MadDetector::new(MadConfig::default());
        for _ in 0..40 {
            det.observe(3.0);
        }
        assert!(!det.judge(4.0).anomalous);
        assert!(!det.judge(2.0).anomalous);
        // A real injection era is still two orders of magnitude out.
        assert!(det.judge(375.0).anomalous);
    }

    #[test]
    fn long_regime_change_becomes_the_new_normal() {
        let config = MadConfig { max_streak: 10, ..MadConfig::default() };
        let mut det = MadDetector::new(config);
        for i in 0..30u32 {
            det.observe(f64::from(noisy_baseline(i) as u32));
        }
        // A permanent step to ~50x: flagged for max_streak rounds, then
        // conceded as the new operating level.
        for i in 0..10 {
            assert!(det.observe(5_000.0 + f64::from(i)).anomalous, "round {i} still anomalous");
        }
        assert!(!det.observe(5_010.0).anomalous, "regime conceded after the streak");
        assert_eq!(det.streak_len(), 0);
        // And departures from the NEW baseline flag again.
        assert!(det.observe(100.0).anomalous);
    }

    #[test]
    fn judge_does_not_absorb() {
        let det = MadDetector::new(MadConfig::default());
        let before = det.history_len();
        det.judge(5.0);
        assert_eq!(det.history_len(), before);
    }

    #[test]
    fn downward_spikes_flag_too() {
        let mut pts: Vec<(u32, u64)> = (0..60).map(|d| (d, 10_000 + u64::from(d % 5))).collect();
        pts[30] = (30, 0);
        let flagged = flag_series(&pts, &MadConfig::default());
        assert_eq!(flagged, vec![30]);
    }
}
