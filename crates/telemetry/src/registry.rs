//! The named-metric registry: a thread-safe map from metric names to
//! metric handles, cheap to clone and share across the whole pipeline.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::json;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::trace::TraceJournal;

#[derive(Default)]
struct Inner {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    tracer: RwLock<Option<TraceJournal>>,
}

/// A thread-safe collection of named metrics.
///
/// Cloning a `Registry` clones an [`Arc`]; all clones see the same
/// metrics. Lookups take a read lock only; the write lock is taken once
/// per metric name, on first creation. Hot paths should resolve their
/// handles once up front and record through the handles.
///
/// ```
/// use sixdust_telemetry::Registry;
/// let reg = Registry::new();
/// let hits = reg.counter("scan.icmp.hits");
/// hits.add(3);
/// assert_eq!(reg.snapshot().counter("scan.icmp.hits"), Some(3));
/// ```
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it at zero if absent.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().get(name) {
            return c.clone();
        }
        self.inner.counters.write().entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it at zero if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.gauges.read().get(name) {
            return g.clone();
        }
        self.inner.gauges.write().entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram named `name`, creating it empty if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.histograms.read().get(name) {
            return h.clone();
        }
        self.inner.histograms.write().entry(name.to_string()).or_default().clone()
    }

    /// Attaches an existing counter handle under `name`, so always-on
    /// counters created before the registry existed become visible in
    /// snapshots. Replaces any counter previously registered under the
    /// same name.
    pub fn register_counter(&self, name: &str, counter: &Counter) {
        self.inner.counters.write().insert(name.to_string(), counter.clone());
    }

    /// Attaches an existing gauge handle under `name`.
    pub fn register_gauge(&self, name: &str, gauge: &Gauge) {
        self.inner.gauges.write().insert(name.to_string(), gauge.clone());
    }

    /// Attaches an existing histogram handle under `name`.
    pub fn register_histogram(&self, name: &str, histogram: &Histogram) {
        self.inner.histograms.write().insert(name.to_string(), histogram.clone());
    }

    /// Installs a trace journal: code paths that already hold this
    /// registry can then emit spans and instant events without any new
    /// plumbing (see [`Registry::tracer`]). Replaces a previously
    /// installed journal.
    pub fn install_tracer(&self, journal: &TraceJournal) {
        *self.inner.tracer.write() = Some(journal.clone());
    }

    /// The installed trace journal, if any. Callers should resolve this
    /// once per scan/round (like metric handles), not per event.
    pub fn tracer(&self) -> Option<TraceJournal> {
        self.inner.tracer.read().clone()
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .inner
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self.inner.gauges.read().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self
                .inner
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.inner.counters.read().len())
            .field("gauges", &self.inner.gauges.read().len())
            .field("histograms", &self.inner.histograms.read().len())
            .finish()
    }
}

/// A point-in-time copy of a [`Registry`]'s contents.
///
/// All entries are sorted by metric name (the registry stores them in
/// `BTreeMap`s), so snapshots of identical state compare equal and the
/// JSON export is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Value of the gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// State of the histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Serializes the snapshot to a deterministic JSON document.
    pub fn to_json(&self) -> String {
        json::snapshot_to_json(self)
    }

    /// Parses a snapshot back from [`Snapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        json::snapshot_from_json(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(reg.counter("x").get(), 5);

        let h1 = reg.histogram("h");
        let h2 = reg.histogram("h");
        h1.record(1);
        h2.record(2);
        assert_eq!(reg.histogram("h").count(), 2);
    }

    #[test]
    fn register_attaches_preexisting_handles() {
        let detached = Counter::new();
        detached.add(7);
        let reg = Registry::new();
        reg.register_counter("net.probes", &detached);
        // Later increments through the original handle are visible.
        detached.incr();
        assert_eq!(reg.snapshot().counter("net.probes"), Some(8));
    }

    #[test]
    fn clones_share_state_and_snapshots_are_sorted() {
        let reg = Registry::new();
        let reg2 = reg.clone();
        reg.counter("b").add(1);
        reg2.counter("a").add(2);
        reg2.gauge("g").set(-4);
        reg.histogram("h").record(9);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 2), ("b".to_string(), 1)]);
        assert_eq!(snap.gauge("g"), Some(-4));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn tracer_installs_and_shares_across_clones() {
        let reg = Registry::new();
        assert!(reg.tracer().is_none());
        let journal = crate::trace::TraceJournal::new();
        reg.install_tracer(&journal);
        let via_clone = reg.clone().tracer().expect("installed");
        via_clone.instant("x", &[]);
        assert_eq!(journal.len(), 1, "clones resolve the same journal");
    }

    #[test]
    fn concurrent_get_or_create_is_consistent() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let reg = reg.clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        reg.counter(&format!("c{}", i % 5)).incr();
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let total: u64 = snap.counters.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 400);
        assert_eq!(snap.counters.len(), 5);
    }
}
