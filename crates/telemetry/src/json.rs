//! Hand-rolled JSON export/import for [`Snapshot`]s.
//!
//! The telemetry crate deliberately avoids a serde dependency so it can
//! sit below every other crate in the workspace. The emitted document is
//! deterministic (metric names are sorted) and uses a fixed shape:
//!
//! ```json
//! {
//!   "counters": { "scan.icmp.hits": 12 },
//!   "gauges": { "pool.size": -3 },
//!   "histograms": {
//!     "scan.worker.chunk_ms": {
//!       "count": 4, "sum": 10, "min": 1, "max": 5,
//!       "p50": 2, "p90": 5, "p99": 5,
//!       "buckets": [[1, 2], [4, 2]]
//!     }
//!   }
//! }
//! ```
//!
//! `p50`/`p90`/`p99` are derived from the buckets on export and ignored
//! on import (the buckets are authoritative), so documents round-trip.
//!
//! The parser accepts exactly this shape (plus arbitrary whitespace); it
//! is not a general JSON parser.

use crate::metrics::HistogramSnapshot;
use crate::registry::Snapshot;

/// Escapes a metric name for use as a JSON string literal. Shared with
/// the series and trace exporters.
pub(crate) fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn snapshot_to_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\n  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        escape(name, &mut out);
        out.push_str(&format!(": {value}"));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        escape(name, &mut out);
        out.push_str(&format!(": {value}"));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        escape(name, &mut out);
        out.push_str(&format!(
            ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
            h.count,
            h.sum,
            h.min,
            h.max,
            h.p50(),
            h.p90(),
            h.p99()
        ));
        for (j, (floor, count)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{floor}, {count}]"));
        }
        out.push_str("]}");
    }
    out.push_str("\n  }\n}\n");
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {} of telemetry JSON", c as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string in telemetry JSON".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape in telemetry JSON".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or("invalid \\u codepoint".to_string())?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid UTF-8 in telemetry JSON")?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn integer(&mut self) -> Result<i128, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        // The scanned range is '-' and ASCII digits only, but never trust
        // an unwrap on parser state: truncated or exotic input must come
        // back as Err, not a panic.
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid bytes at {start} of telemetry JSON"))?
            .parse::<i128>()
            .map_err(|_| format!("expected integer at byte {start} of telemetry JSON"))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let v = self.integer()?;
        u64::try_from(v).map_err(|_| format!("value {v} out of range for u64"))
    }

    fn i64(&mut self) -> Result<i64, String> {
        let v = self.integer()?;
        i64::try_from(v).map_err(|_| format!("value {v} out of range for i64"))
    }

    /// Parses `{ "name": <V>, ... }` with `parse_value` handling each value.
    fn object<V>(
        &mut self,
        mut parse_value: impl FnMut(&mut Self) -> Result<V, String>,
    ) -> Result<Vec<(String, V)>, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            out.push((key, parse_value(self)?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn histogram(&mut self) -> Result<HistogramSnapshot, String> {
        let mut snap = HistogramSnapshot { count: 0, sum: 0, min: 0, max: 0, buckets: vec![] };
        let fields = self.object(|p| {
            if p.peek() == Some(b'[') {
                // buckets: [[floor, count], ...]
                p.expect(b'[')?;
                let mut buckets = Vec::new();
                if p.peek() == Some(b']') {
                    p.pos += 1;
                } else {
                    loop {
                        p.expect(b'[')?;
                        let floor = p.u64()?;
                        p.expect(b',')?;
                        let count = p.u64()?;
                        p.expect(b']')?;
                        buckets.push((floor, count));
                        match p.peek() {
                            Some(b',') => p.pos += 1,
                            Some(b']') => {
                                p.pos += 1;
                                break;
                            }
                            _ => return Err("malformed bucket list".to_string()),
                        }
                    }
                }
                Ok(Field::Buckets(buckets))
            } else {
                Ok(Field::Number(p.u64()?))
            }
        })?;
        for (key, value) in fields {
            match (key.as_str(), value) {
                ("count", Field::Number(v)) => snap.count = v,
                ("sum", Field::Number(v)) => snap.sum = v,
                ("min", Field::Number(v)) => snap.min = v,
                ("max", Field::Number(v)) => snap.max = v,
                // Percentiles are derived from the buckets; accepted and
                // ignored so exports round-trip.
                ("p50" | "p90" | "p99", Field::Number(_)) => {}
                ("buckets", Field::Buckets(b)) => snap.buckets = b,
                (other, _) => return Err(format!("unknown histogram field '{other}'")),
            }
        }
        Ok(snap)
    }
}

enum Field {
    Number(u64),
    Buckets(Vec<(u64, u64)>),
}

pub(crate) fn snapshot_from_json(text: &str) -> Result<Snapshot, String> {
    let mut snap = Snapshot::default();
    let mut p = Parser::new(text);
    p.expect(b'{')?;
    if p.peek() == Some(b'}') {
        return Ok(snap);
    }
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "counters" => snap.counters = p.object(|p| p.u64())?,
            "gauges" => snap.gauges = p.object(|p| p.i64())?,
            "histograms" => snap.histograms = p.object(|p| p.histogram())?,
            other => return Err(format!("unknown section '{other}' in telemetry JSON")),
        }
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => break,
            _ => return Err(format!("expected ',' or '}}' at byte {}", p.pos)),
        }
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        let json = snap.to_json();
        assert_eq!(Snapshot::from_json(&json).unwrap(), snap);
    }

    #[test]
    fn populated_snapshot_round_trips() {
        let reg = Registry::new();
        reg.counter("scan.icmp.hits").add(12);
        reg.counter("scan.tcp80.probes_sent").add(9_000_000_000);
        reg.gauge("pool.size").set(-3);
        let h = reg.histogram("scan.worker.chunk_ms");
        for v in [0, 1, 1, 5, 5, 700] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("scan.icmp.hits"), Some(12));
        assert_eq!(back.histogram("scan.worker.chunk_ms").unwrap().count, 6);
    }

    #[test]
    fn names_with_escapes_round_trip() {
        let reg = Registry::new();
        reg.counter("weird \"name\"\\with\nescapes\tand µnicode").add(1);
        let snap = reg.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Snapshot::from_json("").is_err());
        assert!(Snapshot::from_json("{\"counters\": {").is_err());
        assert!(Snapshot::from_json("{\"bogus\": {}}").is_err());
        assert!(Snapshot::from_json("{\"gauges\": {\"g\": 99999999999999999999}}").is_err());
    }

    #[test]
    fn percentiles_exported_and_ignored_on_import() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"p50\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
        assert_eq!(Snapshot::from_json(&json).unwrap(), snap);
    }

    /// A tiny deterministic LCG so the structured "fuzz" tests below are
    /// reproducible without a proptest dependency (the full proptest
    /// suite lives in `tests/proptests.rs`).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    fn random_snapshot(seed: u64) -> Snapshot {
        let mut rng = Lcg(seed);
        let reg = Registry::new();
        for i in 0..rng.next() % 8 {
            reg.counter(&format!("c.{i}")).add(rng.next());
        }
        for i in 0..rng.next() % 8 {
            reg.gauge(&format!("g.{i}")).set(rng.next() as i64);
        }
        for i in 0..rng.next() % 4 {
            let h = reg.histogram(&format!("h.{i}"));
            for _ in 0..rng.next() % 64 {
                h.record(rng.next() % (1 << (rng.next() % 40)).max(1));
            }
        }
        reg.snapshot()
    }

    #[test]
    fn random_snapshots_round_trip() {
        for seed in 0..64 {
            let snap = random_snapshot(seed);
            let back =
                Snapshot::from_json(&snap.to_json()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(back, snap, "seed {seed}");
        }
    }

    #[test]
    fn every_truncation_errs_instead_of_panicking() {
        let snap = random_snapshot(7);
        let json = snap.to_json();
        for len in 0..json.len() - 1 {
            if !json.is_char_boundary(len) {
                continue;
            }
            let result = Snapshot::from_json(&json[..len]);
            // No truncated prefix of a valid document is itself valid —
            // and none may panic.
            assert!(result.is_err(), "prefix of {len} bytes parsed: {:?}", result);
        }
    }

    #[test]
    fn garbage_bytes_err_instead_of_panicking() {
        let mut rng = Lcg(99);
        for _ in 0..256 {
            let len = (rng.next() % 64) as usize;
            let garbage: String = (0..len)
                .map(|_| char::from_u32((rng.next() % 0x80) as u32).unwrap_or('?'))
                .collect();
            let _ = Snapshot::from_json(&garbage); // must not panic
        }
        assert!(Snapshot::from_json("{\"counters\": {\"\\u00").is_err());
        assert!(Snapshot::from_json("{\"counters\": {\"a\": -1}}").is_err());
    }
}
