//! Declarative service-level objectives with multi-window burn-rate
//! alerting, evaluated over the [`SeriesRecorder`](crate::SeriesRecorder)
//! stream.
//!
//! The raw telemetry layers record what happened; this module *judges*
//! it. An [`SloSpec`] names an objective, a per-round badness signal
//! derived from series columns, an error budget, and two evaluation
//! windows. Each recorded round is reduced to a badness fraction in
//! permille; the **burn rate** of a window is how fast that window is
//! consuming the error budget (`1000` milli = exactly on budget). A
//! breach fires only when *both* the short and the long window burn
//! faster than the threshold — the classic SRE multi-window rule: the
//! short window makes alerts fast to clear, the long window keeps a
//! single noisy round from paging anyone.
//!
//! Breaches are appended to a bounded machine-readable log
//! ([`SloEngine::breach_log_jsonl`]) and, when a [`Registry`] is
//! attached, emitted as `slo.<name>.burn_short_milli` /
//! `slo.<name>.burn_long_milli` gauges, a `slo.<name>.breach_rounds`
//! counter, and a `slo.breach` tracer instant.
//!
//! ```
//! use sixdust_telemetry::{Registry, SeriesRecorder, SloEngine, SloSpec};
//! let reg = Registry::new();
//! let mut rec = SeriesRecorder::new(reg.clone(), 64);
//! let mut slo = SloEngine::new(vec![SloSpec::ratio("avail", "shed", "reqs", 50, 2, 4, 2000)]);
//! for round in 0..4 {
//!     reg.counter("reqs").add(100);
//!     reg.counter("shed").add(40); // 400 permille bad, budget 50 permille
//!     let r = rec.record(round).clone();
//!     slo.observe(&r);
//! }
//! assert!(!slo.breaches().is_empty());
//! ```

use std::collections::VecDeque;

use crate::json;
use crate::metrics::{Counter, Gauge};
use crate::registry::Registry;
use crate::series::SeriesRound;

/// Retained breach-log entries before the oldest are dropped (the drop
/// count is kept, so truncation is never silent).
pub const MAX_BREACH_LOG: usize = 4096;

/// The per-round badness signal of an SLO, computed from series columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SloSignal {
    /// Bad-event ratio: `bad` and `total` name counter-delta columns;
    /// the round's badness is `bad * 1000 / total` permille. Rounds with
    /// zero `total` carry no observation (no traffic is not good
    /// traffic) and are skipped.
    Ratio {
        /// Series column counting bad events this round.
        bad: String,
        /// Series column counting all events this round.
        total: String,
    },
    /// Threshold objective: the round is fully bad (1000 permille) when
    /// the column's value exceeds `max`, else fully good. Rounds where
    /// the column is absent (e.g. a percentile with no samples) are
    /// skipped.
    Above {
        /// Series column holding the judged value.
        metric: String,
        /// Largest acceptable value; anything greater is a bad round.
        max: u64,
    },
}

impl SloSignal {
    /// The round's badness in permille, or `None` when the round carries
    /// no observation for this SLO.
    fn bad_permille(&self, round: &SeriesRound) -> Option<u32> {
        match self {
            SloSignal::Ratio { bad, total } => {
                let total = round.value(total)?;
                if total == 0 {
                    return None;
                }
                let bad = round.value(bad).unwrap_or(0).min(total);
                Some((bad * 1000 / total) as u32)
            }
            SloSignal::Above { metric, max } => {
                let v = round.value(metric)?;
                Some(if v > *max { 1000 } else { 0 })
            }
        }
    }
}

/// One declarative SLO: a named signal, an error budget and the
/// multi-window burn-rate alerting policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloSpec {
    /// Objective name (`serve-availability`, `publish-freshness`, …);
    /// becomes part of the emitted metric names, so keep it
    /// dot-and-space free.
    pub name: String,
    /// How each round's badness is measured.
    pub signal: SloSignal,
    /// Error budget: the acceptable long-run badness in permille.
    pub budget_permille: u32,
    /// Rounds in the short (fast-trigger) window.
    pub short_window: usize,
    /// Rounds in the long (sustained-burn) window; also bounds retained
    /// history.
    pub long_window: usize,
    /// Burn-rate threshold in milli (1000 = consuming budget exactly at
    /// the allowed rate). Both windows must burn at or above this for a
    /// breach to fire.
    pub burn_threshold_milli: u64,
}

impl SloSpec {
    /// A ratio SLO (`bad / total` counter-delta columns).
    pub fn ratio(
        name: &str,
        bad: &str,
        total: &str,
        budget_permille: u32,
        short_window: usize,
        long_window: usize,
        burn_threshold_milli: u64,
    ) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            signal: SloSignal::Ratio { bad: bad.to_string(), total: total.to_string() },
            budget_permille: budget_permille.max(1),
            short_window: short_window.max(1),
            long_window: long_window.max(short_window).max(1),
            burn_threshold_milli,
        }
    }

    /// A threshold SLO (column value must stay at or below `max`).
    pub fn above(
        name: &str,
        metric: &str,
        max: u64,
        budget_permille: u32,
        short_window: usize,
        long_window: usize,
        burn_threshold_milli: u64,
    ) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            signal: SloSignal::Above { metric: metric.to_string(), max },
            budget_permille: budget_permille.max(1),
            short_window: short_window.max(1),
            long_window: long_window.max(short_window).max(1),
            burn_threshold_milli,
        }
    }
}

/// One fired breach: an observed round where both windows burned over
/// threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloBreach {
    /// Name of the breached SLO.
    pub slo: String,
    /// Round key (scan day) the breach fired on.
    pub key: u32,
    /// This round's badness in permille.
    pub bad_permille: u32,
    /// Short-window burn rate in milli at breach time.
    pub burn_short_milli: u64,
    /// Long-window burn rate in milli at breach time.
    pub burn_long_milli: u64,
    /// Whether this is the first breached round of a breach episode
    /// (the previous observation was healthy) — capture triggers key off
    /// onsets so a long outage produces one black box, not hundreds.
    pub onset: bool,
}

/// Point-in-time state of one SLO, for dashboards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloStatus {
    /// SLO name.
    pub name: String,
    /// Error budget in permille.
    pub budget_permille: u32,
    /// Burn threshold in milli.
    pub burn_threshold_milli: u64,
    /// Most recent short-window burn rate in milli.
    pub burn_short_milli: u64,
    /// Most recent long-window burn rate in milli.
    pub burn_long_milli: u64,
    /// Total breached rounds so far.
    pub breach_rounds: u64,
    /// Rounds that carried an observation for this SLO.
    pub observed_rounds: u64,
    /// Whether the most recent observation was in breach.
    pub breached_now: bool,
}

struct SloState {
    spec: SloSpec,
    window: VecDeque<u32>,
    observed_rounds: u64,
    breach_rounds: u64,
    breached_now: bool,
    burn_short_milli: u64,
    burn_long_milli: u64,
    gauge_short: Option<Gauge>,
    gauge_long: Option<Gauge>,
    breach_counter: Option<Counter>,
}

impl SloState {
    fn burn_over(&self, rounds: usize) -> u64 {
        let n = rounds.min(self.window.len()).max(1) as u64;
        let sum: u64 = self.window.iter().rev().take(n as usize).map(|&b| u64::from(b)).sum();
        sum * 1000 / (n * u64::from(self.spec.budget_permille))
    }
}

/// Evaluates a set of [`SloSpec`]s against successive series rounds.
pub struct SloEngine {
    slos: Vec<SloState>,
    registry: Option<Registry>,
    breaches: Vec<SloBreach>,
    dropped_breaches: u64,
}

impl SloEngine {
    /// An engine over the given specs, with no registry emission.
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        let slos = specs
            .into_iter()
            .map(|spec| SloState {
                spec,
                window: VecDeque::new(),
                observed_rounds: 0,
                breach_rounds: 0,
                breached_now: false,
                burn_short_milli: 0,
                burn_long_milli: 0,
                gauge_short: None,
                gauge_long: None,
                breach_counter: None,
            })
            .collect();
        SloEngine { slos, registry: None, breaches: Vec::new(), dropped_breaches: 0 }
    }

    /// The standard sixdust objective set, judging the hitlist service
    /// and the serve frontend:
    ///
    /// * `serve-availability` — shed requests within a 5% budget;
    /// * `serve-latency-p99` — request p99 at or below 50 ms (virtual
    ///   time, `serve.latency_us.p99`);
    /// * `publish-freshness` — at most 2 rounds since the last *clean*
    ///   publish (`service.publish.staleness_rounds` gauge);
    /// * `degraded-rounds` — degraded rounds within a 5% budget;
    /// * `mirror-availability` — client attempts that hit a dead mirror
    ///   (`serve.mirror.down_attempts` over `serve.retry.attempts`)
    ///   within a 10% budget. Rounds without a mirror tier carry no
    ///   `serve.retry.attempts` column and are skipped, so the spec is
    ///   inert for single-frontend and hitlist-only runs.
    pub fn standard() -> SloEngine {
        SloEngine::new(vec![
            SloSpec::ratio("serve-availability", "serve.shed", "serve.requests", 50, 1, 4, 2000),
            SloSpec::above("serve-latency-p99", "serve.latency_us.p99", 50_000, 100, 1, 4, 2000),
            SloSpec::above(
                "publish-freshness",
                "service.publish.staleness_rounds",
                2,
                100,
                2,
                8,
                2000,
            ),
            SloSpec::ratio(
                "degraded-rounds",
                "service.degraded_rounds",
                "service.rounds",
                50,
                3,
                12,
                2000,
            ),
            SloSpec::ratio(
                "mirror-availability",
                "serve.mirror.down_attempts",
                "serve.retry.attempts",
                100,
                1,
                4,
                2000,
            ),
        ])
    }

    /// Attaches a registry: burn rates become `slo.<name>.*` gauges, a
    /// breach increments `slo.<name>.breach_rounds` and emits a
    /// `slo.breach` tracer instant (handles resolved once, here).
    pub fn with_registry(mut self, registry: &Registry) -> SloEngine {
        for st in &mut self.slos {
            let name = &st.spec.name;
            st.gauge_short = Some(registry.gauge(&format!("slo.{name}.burn_short_milli")));
            st.gauge_long = Some(registry.gauge(&format!("slo.{name}.burn_long_milli")));
            st.breach_counter = Some(registry.counter(&format!("slo.{name}.breach_rounds")));
        }
        self.registry = Some(registry.clone());
        self
    }

    /// Feeds one recorded round through every SLO; returns the breaches
    /// fired by this round (also appended to the breach log).
    pub fn observe(&mut self, round: &SeriesRound) -> Vec<SloBreach> {
        let tracer = self.registry.as_ref().and_then(|r| r.tracer());
        let mut fired = Vec::new();
        for st in &mut self.slos {
            let Some(bad) = st.spec.signal.bad_permille(round) else {
                continue;
            };
            st.observed_rounds += 1;
            if st.window.len() == st.spec.long_window {
                st.window.pop_front();
            }
            st.window.push_back(bad);
            st.burn_short_milli = st.burn_over(st.spec.short_window);
            st.burn_long_milli = st.burn_over(st.window.len());
            if let Some(g) = &st.gauge_short {
                g.set(st.burn_short_milli as i64);
            }
            if let Some(g) = &st.gauge_long {
                g.set(st.burn_long_milli as i64);
            }
            // Warm-up guard: no verdict until the short window is full.
            let breached = st.window.len() >= st.spec.short_window
                && st.burn_short_milli >= st.spec.burn_threshold_milli
                && st.burn_long_milli >= st.spec.burn_threshold_milli;
            if breached {
                st.breach_rounds += 1;
                if let Some(c) = &st.breach_counter {
                    c.incr();
                }
                let breach = SloBreach {
                    slo: st.spec.name.clone(),
                    key: round.key,
                    bad_permille: bad,
                    burn_short_milli: st.burn_short_milli,
                    burn_long_milli: st.burn_long_milli,
                    onset: !st.breached_now,
                };
                if let Some(t) = &tracer {
                    t.instant(
                        "slo.breach",
                        &[
                            ("slo", st.spec.name.as_str()),
                            ("key", &round.key.to_string()),
                            ("bad_permille", &bad.to_string()),
                            ("burn_short_milli", &st.burn_short_milli.to_string()),
                            ("burn_long_milli", &st.burn_long_milli.to_string()),
                        ],
                    );
                }
                fired.push(breach);
            }
            st.breached_now = breached;
        }
        for b in &fired {
            if self.breaches.len() == MAX_BREACH_LOG {
                self.breaches.remove(0);
                self.dropped_breaches += 1;
            }
            self.breaches.push(b.clone());
        }
        fired
    }

    /// Every breach fired so far, oldest first (bounded by
    /// [`MAX_BREACH_LOG`]).
    pub fn breaches(&self) -> &[SloBreach] {
        &self.breaches
    }

    /// Breach-log entries dropped to the ring bound.
    pub fn dropped_breaches(&self) -> u64 {
        self.dropped_breaches
    }

    /// Current status of every SLO, in spec order.
    pub fn status(&self) -> Vec<SloStatus> {
        self.slos
            .iter()
            .map(|st| SloStatus {
                name: st.spec.name.clone(),
                budget_permille: st.spec.budget_permille,
                burn_threshold_milli: st.spec.burn_threshold_milli,
                burn_short_milli: st.burn_short_milli,
                burn_long_milli: st.burn_long_milli,
                breach_rounds: st.breach_rounds,
                observed_rounds: st.observed_rounds,
                breached_now: st.breached_now,
            })
            .collect()
    }

    /// The breach log as JSON Lines, one object per breach.
    pub fn breach_log_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.breaches.len() * 96);
        for b in &self.breaches {
            out.push_str("{\"slo\": ");
            json::escape(&b.slo, &mut out);
            out.push_str(&format!(
                ", \"key\": {}, \"bad_permille\": {}, \"burn_short_milli\": {}, \
                 \"burn_long_milli\": {}, \"onset\": {}}}\n",
                b.key, b.bad_permille, b.burn_short_milli, b.burn_long_milli, b.onset
            ));
        }
        out
    }
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("slos", &self.slos.len())
            .field("breaches", &self.breaches.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::series::SeriesRecorder;

    fn round(key: u32, values: &[(&str, u64)]) -> SeriesRound {
        let mut values: Vec<(String, u64)> =
            values.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        values.sort_by(|a, b| a.0.cmp(&b.0));
        SeriesRound { key, values }
    }

    #[test]
    fn ratio_burn_rate_math_is_exact() {
        // Budget 50 permille, short window 2, long window 4, threshold 2x.
        let mut eng = SloEngine::new(vec![SloSpec::ratio("avail", "bad", "total", 50, 2, 4, 2000)]);
        // Two clean rounds, then 100 permille bad (2x budget) forever.
        for k in 0..2 {
            assert!(eng.observe(&round(k, &[("bad", 0), ("total", 100)])).is_empty());
        }
        // Round 2: short window = [0, 100] -> avg 50 -> burn exactly 1000.
        assert!(eng.observe(&round(2, &[("bad", 10), ("total", 100)])).is_empty());
        let st = &eng.status()[0];
        assert_eq!(st.burn_short_milli, 1000, "avg 50 permille over budget 50 = 1.0x");
        assert_eq!(st.burn_long_milli, 666, "100 permille over 3 rounds / 50 = 0.666x");
        // Rounds 3-4: short window fully bad at 100 permille -> burn 2000.
        assert!(eng.observe(&round(3, &[("bad", 10), ("total", 100)])).is_empty());
        let fired = eng.observe(&round(4, &[("bad", 10), ("total", 100)]));
        // Long window [0, 100, 100, 100] -> avg 75 -> 1500 < 2000: still ok.
        assert!(fired.is_empty(), "long window still diluted: {fired:?}");
        let fired = eng.observe(&round(5, &[("bad", 10), ("total", 100)]));
        assert_eq!(fired.len(), 1, "long window now all-bad");
        assert_eq!(fired[0].burn_short_milli, 2000);
        assert_eq!(fired[0].burn_long_milli, 2000);
        assert!(fired[0].onset);
        // The following breached round is not an onset.
        let fired = eng.observe(&round(6, &[("bad", 10), ("total", 100)]));
        assert_eq!(fired.len(), 1);
        assert!(!fired[0].onset);
    }

    #[test]
    fn zero_total_rounds_carry_no_observation() {
        let mut eng = SloEngine::new(vec![SloSpec::ratio("avail", "bad", "total", 50, 1, 2, 1000)]);
        for k in 0..5 {
            assert!(eng.observe(&round(k, &[("bad", 0), ("total", 0)])).is_empty());
        }
        assert_eq!(eng.status()[0].observed_rounds, 0);
        // A single fully-bad round with traffic then breaches (short=1).
        // Long window holds only observations, so silence didn't dilute.
        eng.observe(&round(5, &[("bad", 100), ("total", 100)]));
        let fired = eng.observe(&round(6, &[("bad", 100), ("total", 100)]));
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn above_objective_judges_levels_and_skips_missing() {
        let mut eng = SloEngine::new(vec![SloSpec::above("fresh", "stale", 2, 100, 2, 4, 2000)]);
        // Missing column: skipped entirely.
        assert!(eng.observe(&round(0, &[("other", 9)])).is_empty());
        assert_eq!(eng.status()[0].observed_rounds, 0);
        // Level 3 > max 2 -> fully bad rounds; breach once short window
        // (2) fills and long-window average clears 2x of the 100
        // permille budget.
        assert!(eng.observe(&round(1, &[("stale", 3)])).is_empty(), "short window not full");
        let fired = eng.observe(&round(2, &[("stale", 4)]));
        assert_eq!(fired.len(), 1);
        // Recovery: the breach clears only once the short window drains
        // of bad rounds — one healthy round leaves it half bad.
        let fired = eng.observe(&round(3, &[("stale", 0)]));
        assert_eq!(fired.len(), 1, "short window still half bad");
        let fired = eng.observe(&round(4, &[("stale", 0)]));
        assert!(fired.is_empty());
        assert!(!eng.status()[0].breached_now);
    }

    #[test]
    fn registry_emission_and_breach_log() {
        let reg = Registry::new();
        let mut rec = SeriesRecorder::new(reg.clone(), 16);
        let mut eng = SloEngine::new(vec![SloSpec::ratio("avail", "shed", "reqs", 50, 1, 2, 2000)])
            .with_registry(&reg);
        for k in 0..3 {
            reg.counter("reqs").add(10);
            reg.counter("shed").add(5);
            let r = rec.record(k).clone();
            eng.observe(&r);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("slo.avail.breach_rounds"), Some(3));
        assert_eq!(snap.gauge("slo.avail.burn_short_milli"), Some(10_000));
        let log = eng.breach_log_jsonl();
        assert_eq!(log.lines().count(), 3);
        assert!(log.starts_with("{\"slo\": \"avail\", \"key\": 0,"), "log: {log}");
        assert!(log.contains("\"onset\": true"));
        assert!(log.contains("\"onset\": false"));
    }

    #[test]
    fn standard_set_names_are_stable() {
        let names: Vec<String> =
            SloEngine::standard().status().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "serve-availability",
                "serve-latency-p99",
                "publish-freshness",
                "degraded-rounds",
                "mirror-availability"
            ]
        );
    }
}
