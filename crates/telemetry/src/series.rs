//! Longitudinal metric series: per-round deltas diffed out of successive
//! [`Registry`] snapshots.
//!
//! A [`Snapshot`](crate::Snapshot) is point-in-time; the paper's GFW
//! lesson (Sec. 4.2) is that point-in-time totals hide exactly the events
//! that matter — only the *trajectory* shows a 134 M-address injection
//! spike. [`SeriesRecorder`] turns the cumulative registry into per-round
//! series: call [`SeriesRecorder::record`] once per scan round (or day)
//! and it diffs the new snapshot against the previous one, producing one
//! delta point per metric:
//!
//! * **counters** — the per-round increment (`cur − prev`);
//! * **gauges** — the current level (clamped at zero);
//! * **histograms** — the per-round sample count and sum under
//!   `<name>.count` / `<name>.sum`, plus interpolated `p50`/`p90`/`p99`
//!   of the round's own samples (diffed bucket-by-bucket) when any were
//!   recorded.
//!
//! Rounds are held in a bounded ring buffer ([`SeriesRecorder::evicted`]
//! counts what aged out) and export as JSONL (one object per round) or
//! CSV (one column per metric). [`SeriesRecorder::points`] extracts one
//! metric as `(key, value)` pairs — the exact shape
//! `sixdust_analysis::Series` consumes, so the existing spike/CDF
//! machinery runs directly on live telemetry.

use std::collections::VecDeque;

use crate::json;
use crate::metrics::HistogramSnapshot;
use crate::registry::{Registry, Snapshot};

/// Default ring-buffer capacity: four years of daily rounds with room to
/// spare.
pub const DEFAULT_SERIES_CAPACITY: usize = 2048;

/// Whether a series column reproduces exactly across runs at a fixed
/// seed.
///
/// Everything the pipeline records is driven by seeded PRFs or virtual
/// time — except wall-clock duration metrics (`*_ms` histograms and the
/// `.count`/`.sum`/percentile columns derived from them, and `*_us`
/// timers such as `scan.rate.wait_us`), which vary run to run. The one
/// `_us` family that *is* deterministic is the serve frontend's
/// `latency_us`, which is measured in simulated (virtual) time. The
/// dashboard renderer and the flight recorder both filter through this
/// predicate so their output is byte-identical across runs.
pub fn is_deterministic_metric(name: &str) -> bool {
    let base = name
        .strip_suffix(".count")
        .or_else(|| name.strip_suffix(".sum"))
        .or_else(|| name.strip_suffix(".p50"))
        .or_else(|| name.strip_suffix(".p90"))
        .or_else(|| name.strip_suffix(".p99"))
        .unwrap_or(name);
    if base.ends_with("_ms") {
        return false;
    }
    if base.ends_with("_us") {
        // Virtual-time latency histograms (serve.latency_us and the
        // per-artifact-kind serve.kind.<stem>.latency_us) are exact.
        return base.ends_with("latency_us");
    }
    true
}

/// One recorded round: the key (round index or simulation day) plus every
/// metric's delta value, sorted by metric name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesRound {
    /// Round key (scan day, round index, …) as supplied to `record`.
    pub key: u32,
    /// `(metric name, value)` pairs, ascending by name.
    pub values: Vec<(String, u64)>,
}

impl SeriesRound {
    /// The value recorded for `metric` this round, if any.
    pub fn value(&self, metric: &str) -> Option<u64> {
        self.values
            .binary_search_by(|(name, _)| name.as_str().cmp(metric))
            .ok()
            .map(|i| self.values[i].1)
    }
}

/// Diffs successive registry snapshots into bounded per-round series.
///
/// ```
/// use sixdust_telemetry::{Registry, SeriesRecorder};
/// let reg = Registry::new();
/// let mut rec = SeriesRecorder::new(reg.clone(), 512);
/// reg.counter("scan.udp53.hits").add(10);
/// rec.record(1);
/// reg.counter("scan.udp53.hits").add(90);
/// rec.record(2);
/// assert_eq!(rec.points("scan.udp53.hits"), vec![(1, 10), (2, 90)]);
/// ```
#[derive(Debug)]
pub struct SeriesRecorder {
    registry: Registry,
    capacity: usize,
    prev: Snapshot,
    rounds: VecDeque<SeriesRound>,
    evicted: u64,
}

impl SeriesRecorder {
    /// Creates a recorder over `registry` keeping at most `capacity`
    /// rounds (0 is treated as 1).
    pub fn new(registry: Registry, capacity: usize) -> SeriesRecorder {
        SeriesRecorder {
            registry,
            capacity: capacity.max(1),
            prev: Snapshot::default(),
            rounds: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Snapshots the registry, diffs against the previous snapshot and
    /// appends one round keyed by `key`. Returns the recorded round.
    pub fn record(&mut self, key: u32) -> &SeriesRound {
        let cur = self.registry.snapshot();
        let mut values: Vec<(String, u64)> =
            Vec::with_capacity(cur.counters.len() + cur.gauges.len() + cur.histograms.len() * 5);

        // All three sections are sorted by name, so each diff is a single
        // merge walk against the previous snapshot.
        let mut prev_it = self.prev.counters.iter().peekable();
        for (name, value) in &cur.counters {
            let prev = loop {
                match prev_it.peek() {
                    Some((pn, pv)) if pn == name => break *pv,
                    Some((pn, _)) if pn.as_str() < name.as_str() => {
                        prev_it.next();
                    }
                    _ => break 0,
                }
            };
            values.push((name.clone(), value.saturating_sub(prev)));
        }
        for (name, value) in &cur.gauges {
            // Gauges are levels, not increments; negative levels clamp to
            // zero so the whole row stays uniformly unsigned.
            values.push((name.clone(), u64::try_from(*value).unwrap_or(0)));
        }
        let mut prev_it = self.prev.histograms.iter().peekable();
        for (name, h) in &cur.histograms {
            let prev = loop {
                match prev_it.peek() {
                    Some((pn, ph)) if pn == name => break Some(ph),
                    Some((pn, _)) if pn.as_str() < name.as_str() => {
                        prev_it.next();
                    }
                    _ => break None,
                }
            };
            let delta = diff_histogram(h, prev);
            values.push((format!("{name}.count"), delta.count));
            values.push((format!("{name}.sum"), delta.sum));
            if delta.count > 0 {
                values.push((format!("{name}.p50"), delta.p50()));
                values.push((format!("{name}.p90"), delta.p90()));
                values.push((format!("{name}.p99"), delta.p99()));
            }
        }
        values.sort_by(|a, b| a.0.cmp(&b.0));

        self.prev = cur;
        if self.rounds.len() == self.capacity {
            self.rounds.pop_front();
            self.evicted += 1;
        }
        self.rounds.push_back(SeriesRound { key, values });
        self.rounds.back().expect("just pushed")
    }

    /// The registry this recorder diffs.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Recorded rounds, oldest first.
    pub fn rounds(&self) -> impl Iterator<Item = &SeriesRound> {
        self.rounds.iter()
    }

    /// Number of retained rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Rounds evicted from the ring buffer so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Extracts one metric as `(key, value)` points, oldest first —
    /// directly consumable by `sixdust_analysis::Series::new`. Rounds in
    /// which the metric was absent are skipped.
    pub fn points(&self, metric: &str) -> Vec<(u32, u64)> {
        self.rounds.iter().filter_map(|r| r.value(metric).map(|v| (r.key, v))).collect()
    }

    /// Every metric name appearing in any retained round, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.rounds.iter().flat_map(|r| r.values.iter().map(|(n, _)| n.clone())).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Exports every retained round as JSON Lines: one object per round
    /// with a `"key"` field plus one field per metric, names sorted.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.rounds.len() * 128);
        for round in &self.rounds {
            out.push_str(&format!("{{\"key\": {}", round.key));
            for (name, value) in &round.values {
                out.push_str(", ");
                json::escape(name, &mut out);
                out.push_str(&format!(": {value}"));
            }
            out.push_str("}\n");
        }
        out
    }

    /// Exports every retained round as CSV: a `key` column followed by
    /// one column per metric (the union across rounds, sorted); cells for
    /// metrics absent in a round are left empty.
    pub fn to_csv(&self) -> String {
        let names = self.metric_names();
        let mut out = String::from("key");
        for n in &names {
            out.push(',');
            // Metric names are dot-separated identifiers; commas/quotes
            // never appear, so no CSV quoting is needed.
            out.push_str(n);
        }
        out.push('\n');
        for round in &self.rounds {
            out.push_str(&round.key.to_string());
            for n in &names {
                out.push(',');
                if let Some(v) = round.value(n) {
                    out.push_str(&v.to_string());
                }
            }
            out.push('\n');
        }
        out
    }
}

/// The distribution of samples recorded *between* two snapshots of one
/// histogram, reconstructed bucket-by-bucket.
fn diff_histogram(cur: &HistogramSnapshot, prev: Option<&HistogramSnapshot>) -> HistogramSnapshot {
    let Some(prev) = prev else {
        return cur.clone();
    };
    let count = cur.count.saturating_sub(prev.count);
    let sum = cur.sum.saturating_sub(prev.sum);
    let mut buckets: Vec<(u64, u64)> = Vec::with_capacity(cur.buckets.len());
    let mut prev_it = prev.buckets.iter().peekable();
    for &(floor, c) in &cur.buckets {
        let pc = loop {
            match prev_it.peek() {
                Some((pf, pc)) if *pf == floor => break *pc,
                Some((pf, _)) if *pf < floor => {
                    prev_it.next();
                }
                _ => break 0,
            }
        };
        if c > pc {
            buckets.push((floor, c - pc));
        }
    }
    // min/max of just this round are unknowable from cumulative state;
    // bound them by the occupied delta buckets.
    let min = buckets.first().map(|(f, _)| *f).unwrap_or(0);
    let max = buckets.last().map(|(f, _)| if *f == 0 { 0 } else { 2 * f - 1 }).unwrap_or(0);
    HistogramSnapshot { count, sum, min, max, buckets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_diff_gauges_level() {
        let reg = Registry::new();
        let mut rec = SeriesRecorder::new(reg.clone(), 16);
        reg.counter("c").add(5);
        reg.gauge("g").set(7);
        let r1 = rec.record(1).clone();
        assert_eq!(r1.value("c"), Some(5));
        assert_eq!(r1.value("g"), Some(7));
        reg.counter("c").add(3);
        reg.gauge("g").set(-2);
        let r2 = rec.record(2).clone();
        assert_eq!(r2.value("c"), Some(3), "counter delta, not total");
        assert_eq!(r2.value("g"), Some(0), "negative gauge clamps");
    }

    #[test]
    fn metrics_created_mid_run_join_the_series() {
        let reg = Registry::new();
        let mut rec = SeriesRecorder::new(reg.clone(), 16);
        reg.counter("a").add(1);
        rec.record(0);
        reg.counter("b").add(9);
        rec.record(1);
        assert_eq!(rec.points("b"), vec![(1, 9)]);
        assert_eq!(rec.points("a"), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn histogram_deltas_and_percentiles() {
        let reg = Registry::new();
        let mut rec = SeriesRecorder::new(reg.clone(), 16);
        let h = reg.histogram("phase_ms");
        for v in [10, 10, 10, 10] {
            h.record(v);
        }
        let r1 = rec.record(1).clone();
        assert_eq!(r1.value("phase_ms.count"), Some(4));
        assert_eq!(r1.value("phase_ms.sum"), Some(40));
        // This round's samples all sit in bucket [8,16).
        let p50 = r1.value("phase_ms.p50").unwrap();
        assert!((8..16).contains(&p50), "p50={p50}");
        // A quiet round records zero count and no percentiles.
        let r2 = rec.record(2).clone();
        assert_eq!(r2.value("phase_ms.count"), Some(0));
        assert_eq!(r2.value("phase_ms.p50"), None);
        // The next round's percentiles reflect only the new samples.
        h.record(1000);
        let r3 = rec.record(3).clone();
        assert_eq!(r3.value("phase_ms.count"), Some(1));
        let p50 = r3.value("phase_ms.p50").unwrap();
        assert!((512..1024).contains(&p50), "p50={p50} must be in the new bucket");
    }

    #[test]
    fn ring_buffer_bounds_and_counts_evictions() {
        let reg = Registry::new();
        let mut rec = SeriesRecorder::new(reg.clone(), 3);
        for i in 0..10 {
            reg.counter("c").incr();
            rec.record(i);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.evicted(), 7);
        assert_eq!(rec.points("c"), vec![(7, 1), (8, 1), (9, 1)]);
    }

    #[test]
    fn jsonl_one_object_per_round() {
        let reg = Registry::new();
        let mut rec = SeriesRecorder::new(reg.clone(), 8);
        reg.counter("scan.hits").add(12);
        rec.record(100);
        reg.counter("scan.hits").add(1);
        rec.record(101);
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"key\": 100, \"scan.hits\": 12}");
        assert_eq!(lines[1], "{\"key\": 101, \"scan.hits\": 1}");
    }

    #[test]
    fn csv_union_of_columns() {
        let reg = Registry::new();
        let mut rec = SeriesRecorder::new(reg.clone(), 8);
        reg.counter("a").add(1);
        rec.record(0);
        reg.counter("b").add(2);
        rec.record(1);
        let csv = rec.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "key,a,b");
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "1,0,2");
    }

    #[test]
    fn deterministic_metric_predicate_splits_wall_clock_from_virtual() {
        // Wall-clock durations are excluded, including derived columns.
        for name in [
            "service.round.phase.scan_ms",
            "scan.worker.chunk_ms.count",
            "alias.round_ms.p99",
            "serve.publish.encode_ms.sum",
            "scan.rate.wait_us",
            "scan.rate.wait_us.p50",
        ] {
            assert!(!is_deterministic_metric(name), "{name} must be excluded");
        }
        // Seeded counts, gauges and virtual-time latency stay in.
        for name in [
            "scan.icmp.hits",
            "service.degraded_rounds",
            "service.loss_estimate_permille",
            "serve.latency_us.p99",
            "serve.kind.responsive.latency_us.count",
        ] {
            assert!(is_deterministic_metric(name), "{name} must be included");
        }
    }

    #[test]
    fn empty_recorder_exports_empty() {
        let rec = SeriesRecorder::new(Registry::new(), 4);
        assert!(rec.is_empty());
        assert_eq!(rec.to_jsonl(), "");
        assert_eq!(rec.to_csv(), "key\n");
        assert_eq!(rec.points("x"), vec![]);
    }
}
