//! Lightweight always-on metrics for the sixdust pipeline.
//!
//! This crate sits below every other crate in the workspace and provides
//! the four primitives the pipeline instruments itself with:
//!
//! - [`Counter`] — monotone event counts (probes sent, hits, rounds);
//! - [`Gauge`] — signed levels (queue depths, pool sizes);
//! - [`Histogram`] — log-bucketed `u64` samples (phase latencies in
//!   milliseconds, chunk sizes);
//! - [`SpanTimer`] — RAII wall-clock spans recording into a histogram.
//!
//! Handles are `Arc`-backed and record with relaxed atomics, so cloning
//! them into worker threads is free and recording never locks or
//! allocates. A [`Registry`] names the metrics and produces deterministic
//! [`Snapshot`]s exportable to JSON (see [`Snapshot::to_json`]); the
//! format is hand-rolled so this crate needs no serde dependency.
//!
//! On top of the point-in-time primitives sit three longitudinal layers
//! (added after the GFW post-mortem showed snapshots alone hide exactly
//! the events that matter):
//!
//! - [`SeriesRecorder`] — diffs successive registry snapshots into
//!   bounded per-round delta series, exported as JSONL/CSV and
//!   convertible to `sixdust_analysis::Series`;
//! - [`TraceJournal`] — a structured span/instant event journal exported
//!   as Chrome trace-event JSON (`chrome://tracing`-loadable), installed
//!   into a [`Registry`] so instrumented code finds it for free;
//! - [`MadDetector`] — an online rolling median + MAD anomaly monitor
//!   that flags a metric's round the moment it departs its baseline.
//!
//! Above the recording layers sits the *judgment-and-presentation*
//! layer (PR 7):
//!
//! - [`SloEngine`] — declarative SLOs with multi-window burn-rate
//!   alerting over the series stream, plus a machine-readable breach
//!   log;
//! - [`FlightRecorder`] — a bounded black-box ring of recent events and
//!   metric deltas, frozen into deterministic JSON captures when a
//!   degraded round, MAD anomaly or SLO breach fires;
//! - [`Dashboard`] — a self-contained static HTML ops dashboard
//!   (inline SVG sparklines, zero dependencies, byte-identical across
//!   runs at a fixed seed).
//!
//! # Naming scheme
//!
//! Metric names are dot-separated, lower-case paths:
//! `<subsystem>.<object>.<measure>[_<unit>]`, e.g. `scan.icmp.hits`,
//! `scan.worker.chunk_ms`, `service.round.phase.alias_ms`, `net.probes`.
//! Durations are histograms in milliseconds with an `_ms` suffix;
//! microsecond metrics use `_us`. Millisecond durations round **up** to
//! at least `1`, so a fast-but-real phase is distinguishable from one
//! that never ran (`0`); phases needing finer resolution should use a
//! `_us` metric instead.
//!
//! # Example
//!
//! ```
//! use sixdust_telemetry::{Registry, SpanTimer};
//!
//! let reg = Registry::new();
//! let hits = reg.counter("scan.icmp.hits");
//! let chunk_ms = reg.histogram("scan.worker.chunk_ms");
//! {
//!     let _span = SpanTimer::start(&chunk_ms);
//!     hits.add(3);
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("scan.icmp.hits"), Some(3));
//! assert_eq!(snap.histogram("scan.worker.chunk_ms").unwrap().count, 1);
//! let json = snap.to_json();
//! assert_eq!(sixdust_telemetry::Snapshot::from_json(&json).unwrap(), snap);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anomaly;
mod flight;
mod json;
mod metrics;
mod registry;
mod report;
mod series;
mod slo;
mod trace;

pub use anomaly::{flag_series, MadConfig, MadDetector, Verdict};
pub use flight::{
    FlightCapture, FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPTURES, DEFAULT_FLIGHT_EVENTS,
    DEFAULT_FLIGHT_ROUNDS,
};
pub use metrics::{
    bucket_floor, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, SpanTimer, BUCKETS,
};
pub use registry::{Registry, Snapshot};
pub use report::Dashboard;
pub use series::{is_deterministic_metric, SeriesRecorder, SeriesRound, DEFAULT_SERIES_CAPACITY};
pub use slo::{SloBreach, SloEngine, SloSignal, SloSpec, SloStatus, MAX_BREACH_LOG};
pub use trace::{TraceEvent, TraceJournal, TracePhase, TraceSpan, DEFAULT_TRACE_CAPACITY};

/// Records the elapsed milliseconds since `started` into the histogram
/// named `name`, if a registry is attached. The no-registry path is a
/// single branch, keeping uninstrumented runs free of overhead.
pub fn record_phase(registry: Option<&Registry>, name: &str, started: std::time::Instant) {
    if let Some(reg) = registry {
        reg.histogram(name).record_duration(started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_phase_is_a_noop_without_a_registry() {
        record_phase(None, "service.round.phase.scan_ms", std::time::Instant::now());
    }

    #[test]
    fn record_phase_records_into_named_histogram() {
        let reg = Registry::new();
        record_phase(Some(&reg), "service.round.phase.scan_ms", std::time::Instant::now());
        assert_eq!(reg.histogram("service.round.phase.scan_ms").count(), 1);
    }
}
