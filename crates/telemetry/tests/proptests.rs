//! Property tests for the hand-rolled telemetry JSON codec: arbitrary
//! registries must round-trip exactly, and no malformed input may panic
//! the parser.

use proptest::prelude::*;
use sixdust_telemetry::{Registry, Snapshot};

/// Strategy for metric names: plausible dot-paths plus hostile strings
/// exercising every escape path.
fn name_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9_.]{0,24}",
        // Quotes, backslashes, control characters, non-ASCII.
        "[ -~]{0,12}",
        proptest::string::string_regex("[\\x00-\\x1f\"\\\\µ→]{1,8}").unwrap(),
    ]
}

fn snapshot_strategy() -> impl Strategy<Value = Snapshot> {
    let counters = proptest::collection::vec((name_strategy(), any::<u64>()), 0..6);
    let gauges = proptest::collection::vec((name_strategy(), any::<i64>()), 0..6);
    let histograms = proptest::collection::vec(
        (name_strategy(), proptest::collection::vec(any::<u64>(), 0..32)),
        0..4,
    );
    (counters, gauges, histograms).prop_map(|(counters, gauges, histograms)| {
        let reg = Registry::new();
        for (name, v) in counters {
            reg.counter(&name).add(v);
        }
        for (name, v) in gauges {
            reg.gauge(&name).set(v);
        }
        for (name, samples) in histograms {
            let h = reg.histogram(&name);
            for s in samples {
                h.record(s);
            }
        }
        reg.snapshot()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_registries_round_trip(snap in snapshot_strategy()) {
        let json = snap.to_json();
        let back = Snapshot::from_json(&json);
        prop_assert_eq!(back.as_ref().ok(), Some(&snap), "json: {}", json);
    }

    #[test]
    fn truncated_documents_err_without_panicking(
        snap in snapshot_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let json = snap.to_json();
        let mut cut = (json.len() as f64 * cut_frac) as usize;
        while cut > 0 && !json.is_char_boundary(cut) {
            cut -= 1;
        }
        // `cut + 1 < len` excludes the full document and the full
        // document minus its trailing newline (both parse fine); every
        // shorter prefix must fail cleanly, never panic.
        if cut + 1 < json.len() {
            prop_assert!(Snapshot::from_json(&json[..cut]).is_err());
        }
    }

    #[test]
    fn arbitrary_garbage_never_panics(input in "\\PC{0,64}") {
        let _ = Snapshot::from_json(&input);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = Snapshot::from_json(text);
        }
    }
}
