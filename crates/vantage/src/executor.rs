//! A work-stealing task executor for scan segments.
//!
//! The fleet scheduler cuts every protocol scan of a batch into
//! contiguous permutation-cycle segments and hands the whole pile to
//! [`execute`]. Tasks are dealt round-robin onto per-worker deques;
//! each worker drains its own queue from the front and, when empty,
//! steals from the *back* of a sibling's queue — the classic
//! work-stealing discipline, so one vantage's slow scan is finished by
//! whatever workers run dry first.
//!
//! Determinism does not depend on the schedule: every task returns into
//! the slot of its submission index, so the caller sees results in
//! submission order no matter which worker ran what, or in what order.
//! The only schedule-dependent output is [`ExecutorStats::stolen`],
//! which is telemetry, never an input to any round artifact.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What an [`execute`] run did: how many tasks ran, and how many of
/// them ran on a worker other than the one they were dealt to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Tasks executed (always the number submitted).
    pub executed: u64,
    /// Tasks that ran via a steal rather than the owner's own queue.
    /// Scheduling noise — varies with thread timing — and therefore
    /// only ever exported as telemetry.
    pub stolen: u64,
}

impl ExecutorStats {
    /// Accumulates another run's stats into this one.
    pub fn merge(&mut self, other: ExecutorStats) {
        self.executed += other.executed;
        self.stolen += other.stolen;
    }
}

/// Runs `tasks` across `threads` workers with work stealing and returns
/// their results in submission order.
///
/// `threads` is clamped to `1..=32` (matching the scan engine's budget
/// clamp) and never exceeds the task count. With one worker the loop
/// degenerates to sequential execution of the deque — same results,
/// zero steals.
pub fn execute<T, F>(threads: usize, tasks: Vec<F>) -> (Vec<T>, ExecutorStats)
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n = tasks.len();
    if n == 0 {
        return (Vec::new(), ExecutorStats::default());
    }
    let threads = threads.clamp(1, 32).min(n);
    // Deal round-robin so every worker starts with an even share of
    // every (vantage, protocol) scan rather than one vantage's whole
    // workload.
    let queues: Vec<Mutex<VecDeque<(usize, F)>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        queues[i % threads].lock().expect("queue lock").push_back((i, task));
    }
    let stolen = AtomicU64::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let queues = &queues;
                let stolen = &stolen;
                s.spawn(move || {
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Own queue first (front), then scan siblings
                        // and steal from the back. Tasks never spawn
                        // tasks, so "all queues empty" is terminal.
                        let mut grabbed = queues[w].lock().expect("queue lock").pop_front();
                        if grabbed.is_none() {
                            for k in 1..queues.len() {
                                let victim = (w + k) % queues.len();
                                grabbed = queues[victim].lock().expect("queue lock").pop_back();
                                if grabbed.is_some() {
                                    stolen.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        match grabbed {
                            Some((idx, task)) => done.push((idx, task())),
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (idx, value) in handle.join().expect("executor worker panicked") {
                slots[idx] = Some(value);
            }
        }
    });
    let results: Vec<T> =
        slots.into_iter().map(|slot| slot.expect("every submitted task ran")).collect();
    (results, ExecutorStats { executed: n as u64, stolen: stolen.load(Ordering::Relaxed) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 4, 8] {
            let tasks: Vec<_> = (0..37).map(|i| move || i * 3).collect();
            let (results, stats) = execute(threads, tasks);
            assert_eq!(results, (0..37).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(stats.executed, 37);
        }
    }

    #[test]
    fn single_worker_never_steals() {
        let tasks: Vec<_> = (0..16).map(|i| move || i).collect();
        let (_, stats) = execute(1, tasks);
        assert_eq!(stats.stolen, 0);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let (results, stats) = execute(4, Vec::<Box<dyn FnOnce() -> u32 + Send>>::new());
        assert!(results.is_empty());
        assert_eq!(stats, ExecutorStats::default());
    }

    #[test]
    fn uneven_tasks_all_complete() {
        // Tasks with wildly different costs: stealing or not, every
        // result lands in its slot.
        let tasks: Vec<_> = (0..24u64)
            .map(|i| {
                move || {
                    let spin = if i % 7 == 0 { 20_000 } else { 10 };
                    let mut acc = i;
                    for k in 0..spin {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    (i, acc)
                }
            })
            .collect();
        let (results, stats) = execute(4, tasks);
        assert_eq!(stats.executed, 24);
        for (i, (idx, _)) in results.iter().enumerate() {
            assert_eq!(*idx, i as u64);
        }
    }
}
