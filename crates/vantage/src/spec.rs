//! Vantage-point rosters.

use serde::{Deserialize, Serialize};

/// The ASN of the service's historical single vantage (the Munich
/// measurement network every pre-fleet round scanned from). A fleet's
/// vantage 0 always carries this ASN so `N = 1` reproduces today's
/// pipeline byte-for-byte.
pub const DEFAULT_VANTAGE_ASN: u32 = 64496;

/// One vantage point: where a scanner stands.
///
/// The ASN identifies (and, for non-default vantages, allocates) the
/// source AS in the registry; the country code decides regional policy —
/// `"CN"` puts the vantage behind the Great Firewall, so its UDP/53
/// probes for blocked names are egress-filtered during filtering eras
/// and it never sees the injected answers foreign vantages mistake for
/// responsiveness.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VantageSpec {
    /// Source AS number.
    pub asn: u32,
    /// Registry display name.
    pub name: String,
    /// ISO country code; drives GFW position and disagreement labels.
    pub country: String,
}

impl VantageSpec {
    /// Builds a spec.
    pub fn new(asn: u32, name: &str, country: &str) -> VantageSpec {
        VantageSpec { asn, name: name.to_string(), country: country.to_string() }
    }

    /// The default N-vantage roster. Index 0 is always the historical
    /// Munich vantage (already present in every registry); 1 adds a US
    /// vantage, 2 a Chinese vantage behind the GFW, and further slots
    /// cycle through additional neutral regions. Deterministic: the same
    /// `n` always yields the same roster.
    pub fn default_roster(n: usize) -> Vec<VantageSpec> {
        const EXTRA: [(&str, &str); 4] = [
            ("NL", "SIXDUST-MSM-NL"),
            ("JP", "SIXDUST-MSM-JP"),
            ("BR", "SIXDUST-MSM-BR"),
            ("AU", "SIXDUST-MSM-AU"),
        ];
        let mut roster = Vec::with_capacity(n.max(1));
        roster.push(VantageSpec::new(DEFAULT_VANTAGE_ASN, "SIXDUST-MSM", "DE"));
        if n > 1 {
            roster.push(VantageSpec::new(64497, "SIXDUST-MSM-US", "US"));
        }
        if n > 2 {
            roster.push(VantageSpec::new(64498, "SIXDUST-MSM-CN", "CN"));
        }
        for i in 3..n {
            let (country, name) = EXTRA[(i - 3) % EXTRA.len()];
            roster.push(VantageSpec::new(64499 + (i as u32 - 3), name, country));
        }
        roster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_starts_with_the_historical_vantage() {
        for n in 1..=6 {
            let roster = VantageSpec::default_roster(n);
            assert_eq!(roster.len(), n);
            assert_eq!(roster[0].asn, DEFAULT_VANTAGE_ASN);
            assert_eq!(roster[0].country, "DE");
        }
    }

    #[test]
    fn roster_is_deterministic_and_asn_unique() {
        let a = VantageSpec::default_roster(7);
        let b = VantageSpec::default_roster(7);
        assert_eq!(a, b);
        let mut asns: Vec<u32> = a.iter().map(|v| v.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), 7, "every vantage gets its own ASN");
    }

    #[test]
    fn third_vantage_is_behind_the_gfw() {
        let roster = VantageSpec::default_roster(3);
        assert_eq!(roster[2].country, "CN");
    }
}
