//! Multi-vantage scanning: N simulated vantage points, one scheduler.
//!
//! The IPv6 Hitlist service scans from a single measurement network in
//! Europe; the paper's GFW analysis is the textbook consequence — what a
//! scan "sees" depends on where it stands. This crate runs N vantage
//! points over the *same* simulated Internet, each with its own source
//! AS, regional position (EU / US / behind-GFW CN) and fault exposure,
//! under one deterministic discrete-event round scheduler:
//!
//! * **Roster** ([`VantageSpec`]): vantage 0 is always the service's
//!   historical Munich vantage, so an `N = 1` fleet *is* today's
//!   single-vantage pipeline — byte-identical rounds, snapshots and
//!   checkpoints at any thread budget (pinned by `tests/vantage.rs`).
//! * **Scheduler** ([`VantageFleet`]): a min-heap of `(day, vantage)`
//!   events replays the historical scan cadence per vantage; all
//!   vantages due on the same day form one synchronized batch.
//! * **Executor** ([`executor::execute`]): every protocol scan of a
//!   batch is cut into lazy [`sixdust_scan::CyclicPermutation`] cycle
//!   segments — no materialized permutations — and fanned out across a
//!   work-stealing deque; idle workers steal segments from busy
//!   siblings, so a slow vantage's scan is finished by the whole fleet.
//!   Segment outcomes merge in cycle order, which keeps results
//!   byte-identical no matter which worker ran which segment.
//! * **Disagreement analysis** ([`VantageReport`]): per synchronized
//!   batch, the per-vantage responsive sets are merged with
//!   [`sixdust_addr::AddrSet`] union/intersection kernels and every
//!   address responsive from one region but silent from another is
//!   classified per origin AS — `gfw` when the origin sits behind the
//!   Great Firewall (injection visible from abroad, egress-filtered at
//!   home), `fault` otherwise.
//!
//! Everything is a pure function of the scale seed: same inputs, same
//! fleet, same disagreements, at any worker count.

mod executor;
mod fleet;
mod report;
mod spec;
mod state;

pub use executor::{execute, ExecutorStats};
pub use fleet::{FleetConfig, VantageFleet};
pub use report::{AddrSample, AsDisagreement, DisagreementClass, VantageReport};
pub use spec::VantageSpec;
pub use state::FleetState;
