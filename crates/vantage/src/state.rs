//! Fleet checkpoints.
//!
//! A multi-vantage run checkpoints the same way the single-vantage
//! service does — crash-safe atomic writes, versioned JSON — but carries
//! one [`ServiceState`] per vantage plus the disagreement reports
//! accumulated so far. `services[0]` is always a plain, unmodified
//! [`ServiceState`] capture of the primary vantage, so an `N = 1` fleet
//! checkpoint's service payload is exactly what the single-vantage
//! pipeline would have written.

use std::path::Path;

use serde::{Deserialize, Serialize};
use sixdust_hitlist::ServiceState;

use crate::fleet::VantageFleet;
use crate::report::VantageReport;
use crate::spec::VantageSpec;

/// Current fleet checkpoint format version.
pub const FLEET_STATE_VERSION: u32 = 1;

/// A serializable checkpoint of a whole vantage fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetState {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The roster the fleet ran with; restore refuses a different one.
    pub specs: Vec<VantageSpec>,
    /// One service checkpoint per vantage, roster order.
    pub services: Vec<ServiceState>,
    /// Disagreement reports for every synchronized batch completed.
    pub reports: Vec<VantageReport>,
}

impl FleetState {
    /// Captures a checkpoint from a running fleet.
    pub fn capture(fleet: &VantageFleet) -> FleetState {
        FleetState {
            version: FLEET_STATE_VERSION,
            specs: fleet.specs().to_vec(),
            services: fleet.services().map(ServiceState::capture).collect(),
            reports: fleet.reports().to_vec(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet state serializes")
    }

    /// Parses a fleet checkpoint, rejecting unknown versions.
    pub fn from_json(json: &str) -> Result<FleetState, String> {
        let state: FleetState =
            serde_json::from_str(json).map_err(|e| format!("fleet checkpoint parse: {e}"))?;
        if state.version != FLEET_STATE_VERSION {
            return Err(format!(
                "fleet checkpoint version {} unsupported (expected {FLEET_STATE_VERSION})",
                state.version
            ));
        }
        Ok(state)
    }

    /// Consistency checks before trusting a checkpoint: the roster and
    /// service list must agree, and every per-vantage service state must
    /// itself validate.
    pub fn validate(&self) -> Result<(), String> {
        if self.specs.is_empty() {
            return Err("fleet checkpoint has an empty roster".to_string());
        }
        if self.specs.len() != self.services.len() {
            return Err(format!(
                "fleet checkpoint has {} specs but {} services",
                self.specs.len(),
                self.services.len()
            ));
        }
        for (i, svc) in self.services.iter().enumerate() {
            svc.validate().map_err(|e| format!("vantage {i} state: {e}"))?;
        }
        Ok(())
    }

    /// Writes the checkpoint crash-safely (temp file + atomic rename),
    /// mirroring [`ServiceState::save_atomic`].
    pub fn save_atomic(&self, path: &Path) -> std::io::Result<()> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads, parses and validates a checkpoint written by
    /// [`FleetState::save_atomic`].
    pub fn load(path: &Path) -> Result<FleetState, String> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("fleet checkpoint read {}: {e}", path.display()))?;
        let state = FleetState::from_json(&json)?;
        state.validate()?;
        Ok(state)
    }
}
