//! Vantage-disagreement analysis.
//!
//! After every synchronized batch (all vantages scanned the same day),
//! the fleet merges the per-vantage responsive sets with
//! [`AddrSet`] union/intersection kernels and explains the difference:
//! every address responsive from at least one vantage but silent from
//! at least one other is grouped by its origin AS and classified.
//! `Gfw` means the origin sits behind the Great Firewall — foreign
//! vantages "see" the address through injected DNS answers while the
//! Chinese vantage's own probes are egress-filtered, the exact
//! visibility split the paper's cleaning filter exists for. Everything
//! else is `Fault`: per-vantage loss, outages, or rate-limiting that
//! happened to break differently across source networks.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sixdust_addr::{Addr, AddrSet};
use sixdust_net::{AsRegistry, Day};

/// How many concrete example addresses each per-AS entry carries.
const SAMPLES_PER_AS: usize = 8;

/// Why a set of addresses looks responsive from one vantage and silent
/// from another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisagreementClass {
    /// Origin AS is behind the Great Firewall: injection makes the
    /// address visible from abroad, egress filtering hides it at home.
    Gfw,
    /// Plain per-vantage fault realization (loss, outage, rate limits).
    Fault,
}

/// One concrete disagreeing address with the split that condemned it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrSample {
    /// The address.
    pub addr: Addr,
    /// Vantage ASNs whose scans found it responsive this round.
    pub responsive_from: Vec<u32>,
    /// Vantage ASNs whose scans found it silent this round.
    pub silent_from: Vec<u32>,
}

/// All disagreeing addresses originated by one AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsDisagreement {
    /// Origin AS number (`0` for addresses with no BGP origin).
    pub asn: u32,
    /// Origin country code (empty for unrouted space).
    pub country: String,
    /// The classification for this AS's disagreements.
    pub class: DisagreementClass,
    /// How many distinct addresses disagreed.
    pub addrs: u64,
    /// Up to [`SAMPLES_PER_AS`] example addresses, lowest first —
    /// deterministic because the union set iterates in address order.
    pub samples: Vec<AddrSample>,
}

/// One synchronized batch's cross-vantage merge and disagreement
/// breakdown. Serialized as the `vantage_disagreement.json` artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VantageReport {
    /// The batch day.
    pub day: Day,
    /// Vantage ASNs that scanned this day, fleet order.
    pub vantages: Vec<u32>,
    /// `|union|` of the per-vantage responsive sets.
    pub union: u64,
    /// `|intersection|` of the per-vantage responsive sets.
    pub intersection: u64,
    /// `union - intersection`: addresses at least one vantage missed.
    pub disagreements: u64,
    /// Disagreements whose origin AS is behind the GFW.
    pub gfw_disagreements: u64,
    /// Per-origin-AS breakdown, ascending ASN.
    pub by_as: Vec<AsDisagreement>,
}

impl VantageReport {
    /// Builds the report for one synchronized batch from the raw
    /// (pre-cleaning) per-vantage responsive sets. `sets[i]` belongs to
    /// the vantage with ASN `vantage_asns[i]`; `registry` resolves
    /// origins (identical across the fleet's per-vantage worlds).
    pub fn build(
        day: Day,
        vantage_asns: &[u32],
        sets: &[AddrSet],
        registry: &AsRegistry,
    ) -> VantageReport {
        assert_eq!(vantage_asns.len(), sets.len());
        let mut union = AddrSet::new();
        for set in sets {
            union.union_in_place(set);
        }
        let intersection = match sets.split_first() {
            None => AddrSet::new(),
            Some((first, rest)) => {
                let mut acc = first.clone();
                for set in rest {
                    acc = acc.intersect(set);
                }
                acc
            }
        };
        let disagreeing = union.diff(&intersection);

        // Group by origin AS, iterating the diff set in address order so
        // the per-AS sample lists are deterministic.
        struct Entry {
            country: String,
            class: DisagreementClass,
            addrs: u64,
            samples: Vec<AddrSample>,
        }
        let mut by_as: BTreeMap<u32, Entry> = BTreeMap::new();
        for addr in disagreeing.addrs() {
            let (asn, country, behind_gfw) = match registry.origin(addr) {
                Some(id) => {
                    let info = registry.get(id);
                    (info.asn, info.country.clone(), info.behind_gfw())
                }
                None => (0, String::new(), false),
            };
            let entry = by_as.entry(asn).or_insert_with(|| Entry {
                country,
                class: if behind_gfw { DisagreementClass::Gfw } else { DisagreementClass::Fault },
                addrs: 0,
                samples: Vec::new(),
            });
            entry.addrs += 1;
            if entry.samples.len() < SAMPLES_PER_AS {
                let mut responsive_from = Vec::new();
                let mut silent_from = Vec::new();
                for (i, set) in sets.iter().enumerate() {
                    if set.contains_addr(addr) {
                        responsive_from.push(vantage_asns[i]);
                    } else {
                        silent_from.push(vantage_asns[i]);
                    }
                }
                entry.samples.push(AddrSample { addr, responsive_from, silent_from });
            }
        }

        let gfw_disagreements =
            by_as.values().filter(|e| e.class == DisagreementClass::Gfw).map(|e| e.addrs).sum();
        VantageReport {
            day,
            vantages: vantage_asns.to_vec(),
            union: union.len() as u64,
            intersection: intersection.len() as u64,
            disagreements: disagreeing.len() as u64,
            gfw_disagreements,
            by_as: by_as
                .into_iter()
                .map(|(asn, e)| AsDisagreement {
                    asn,
                    country: e.country,
                    class: e.class,
                    addrs: e.addrs,
                    samples: e.samples,
                })
                .collect(),
        }
    }

    /// The per-AS entry for `asn`, if any address of that AS disagreed.
    pub fn for_as(&self, asn: u32) -> Option<&AsDisagreement> {
        self.by_as.iter().find(|e| e.asn == asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_net::{Internet, Scale};

    fn set_of(addrs: &[Addr]) -> AddrSet {
        let mut sorted = addrs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        AddrSet::from_sorted_addrs(&sorted)
    }

    #[test]
    fn agreeing_sets_produce_no_disagreements() {
        let net = Internet::build(Scale::tiny());
        let addrs: Vec<Addr> =
            net.population().enumerate_responsive(Day(5)).iter().take(10).map(|e| e.0).collect();
        let sets = vec![set_of(&addrs), set_of(&addrs)];
        let report = VantageReport::build(Day(5), &[64496, 64497], &sets, net.registry());
        assert_eq!(report.union, report.intersection);
        assert_eq!(report.disagreements, 0);
        assert!(report.by_as.is_empty());
    }

    #[test]
    fn split_sets_classify_by_origin() {
        let net = Internet::build(Scale::tiny());
        let addrs: Vec<Addr> =
            net.population().enumerate_responsive(Day(5)).iter().take(6).map(|e| e.0).collect();
        let (shared, only_a) = addrs.split_at(4);
        let a = set_of(&[shared, only_a].concat());
        let b = set_of(shared);
        let report = VantageReport::build(Day(5), &[64496, 64497], &[a, b], net.registry());
        assert_eq!(report.disagreements, 2);
        let total: u64 = report.by_as.iter().map(|e| e.addrs).sum();
        assert_eq!(total, 2);
        for entry in &report.by_as {
            for sample in &entry.samples {
                assert_eq!(sample.responsive_from, vec![64496]);
                assert_eq!(sample.silent_from, vec![64497]);
            }
        }
    }
}
