//! The vantage fleet: N services, N vantage worlds, one scheduler.
//!
//! Each vantage owns its *own* [`Internet`] instance built from the
//! same [`Scale`] — the simulated world is a pure function of the seed,
//! so the instances agree on every host, route and fault plan — with
//! the full roster registered in identical order and the vantage's own
//! AS installed as the probe source. Per-vantage divergence (fault
//! salt, GFW egress position, vantage-scoped outages) then comes
//! entirely from [`Internet::with_source_vantage`].
//!
//! The scheduler is a discrete-event loop over a min-heap of
//! `(day, vantage)` events. Every vantage replays the historical scan
//! cadence ([`events::scan_gap`]); vantages due on the same day form a
//! *synchronized batch*: their rounds are prepared together, all their
//! protocol scans are cut into permutation-cycle segments and executed
//! on one work-stealing pool ([`crate::executor::execute`]), and their
//! rounds complete in roster order. Segment outcomes are merged in
//! cycle order, so every round artifact is byte-identical at any
//! thread budget — with one vantage, identical to
//! [`HitlistService::run_with`] itself.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use sixdust_addr::{Addr, AddrSet};
use sixdust_hitlist::{HitlistService, PreparedRound, ServiceConfig};
use sixdust_net::{events, Day, FaultConfig, Internet, Protocol, Scale};
use sixdust_scan::{
    assemble_scan, scan_segment, CyclicPermutation, ScanOutcome, ScanResult, SegmentTally,
};
use sixdust_telemetry::Registry;

use crate::executor::{execute, ExecutorStats};
use crate::report::VantageReport;
use crate::spec::VantageSpec;
use crate::state::FleetState;

/// One work-stealing unit: a contiguous permutation-cycle segment of
/// one vantage's protocol scan.
type SegmentTask<'a> = Box<dyn FnOnce() -> (Vec<ScanOutcome>, SegmentTally) + Send + 'a>;

/// Everything a fleet needs to exist: the world, the faults, the
/// per-vantage service configuration, the roster, and a worker budget.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Scale the per-vantage worlds are built at.
    pub scale: Scale,
    /// Fault plan shared by every vantage world (each vantage evaluates
    /// it under its own source salt).
    pub faults: FaultConfig,
    /// Service configuration, cloned per vantage.
    pub service: ServiceConfig,
    /// The roster; index 0 must be the historical default vantage.
    pub specs: Vec<VantageSpec>,
    /// Worker-thread budget for the work-stealing executor.
    pub threads: usize,
}

impl FleetConfig {
    /// A fleet of `n` default-roster vantages at `scale`, lossless
    /// faults, default service configuration, four workers.
    pub fn new(scale: Scale, n: usize) -> FleetConfig {
        FleetConfig {
            scale,
            faults: FaultConfig::lossless(),
            service: ServiceConfig::builder().build(),
            specs: VantageSpec::default_roster(n),
            threads: 4,
        }
    }

    /// Replaces the fault plan.
    pub fn with_faults(mut self, faults: FaultConfig) -> FleetConfig {
        self.faults = faults;
        self
    }

    /// Replaces the per-vantage service configuration.
    pub fn with_service(mut self, service: ServiceConfig) -> FleetConfig {
        self.service = service;
        self
    }

    /// Replaces the roster.
    pub fn with_specs(mut self, specs: Vec<VantageSpec>) -> FleetConfig {
        self.specs = specs;
        self
    }

    /// Replaces the executor worker budget.
    pub fn with_threads(mut self, threads: usize) -> FleetConfig {
        self.threads = threads;
        self
    }
}

/// One vantage: its spec, its world, its service.
struct VantageUnit {
    spec: VantageSpec,
    net: Internet,
    svc: HitlistService,
}

/// The running fleet. See the module docs for the execution model.
pub struct VantageFleet {
    config: FleetConfig,
    telemetry: Option<Registry>,
    units: Vec<VantageUnit>,
    reports: Vec<VantageReport>,
    stats: ExecutorStats,
}

impl VantageFleet {
    /// Builds a fresh fleet.
    pub fn build(config: FleetConfig) -> VantageFleet {
        VantageFleet::assemble(config, None, None)
    }

    /// Builds a fresh fleet with a telemetry registry attached to the
    /// fleet's own `vantage.*` metrics and to the *primary* vantage's
    /// world and service (secondary vantages run uninstrumented, so the
    /// registry's `service.*`/`scan.*` metrics keep their historical
    /// single-pipeline meaning).
    pub fn build_with_telemetry(config: FleetConfig, registry: &Registry) -> VantageFleet {
        VantageFleet::assemble(config, Some(registry), None)
    }

    /// Restores a fleet from a checkpoint. The checkpoint's roster must
    /// match `config.specs` exactly — a fleet cannot change shape
    /// mid-run.
    pub fn restore(config: FleetConfig, state: &FleetState) -> VantageFleet {
        VantageFleet::assemble(config, None, Some(state))
    }

    /// [`VantageFleet::restore`] with telemetry, wired like
    /// [`VantageFleet::build_with_telemetry`].
    pub fn restore_with_telemetry(
        config: FleetConfig,
        registry: &Registry,
        state: &FleetState,
    ) -> VantageFleet {
        VantageFleet::assemble(config, Some(registry), Some(state))
    }

    fn assemble(
        config: FleetConfig,
        telemetry: Option<&Registry>,
        state: Option<&FleetState>,
    ) -> VantageFleet {
        assert!(!config.specs.is_empty(), "a fleet needs at least one vantage");
        if let Some(state) = state {
            assert_eq!(
                state.specs, config.specs,
                "fleet checkpoint roster does not match the configured roster"
            );
            assert_eq!(state.services.len(), config.specs.len());
        }
        let units: Vec<VantageUnit> = config
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let primary = i == 0;
                // Every world registers the *full* roster in roster
                // order, so block allocation, BGP tables and origin
                // lookups agree across all fleet members. Registering
                // the default vantage is a no-op (it is born in the
                // registry), which is what keeps an N = 1 world
                // byte-identical to a plain `Internet::build`.
                let mut net = Internet::build(config.scale);
                for s in &config.specs {
                    net.register_vantage(s.asn, &s.name, &s.country);
                }
                let id = net.registry().by_asn(spec.asn).expect("vantage just registered");
                net = net.with_faults(config.faults.clone()).with_source_vantage(id);
                if primary {
                    if let Some(reg) = telemetry {
                        net = net.with_telemetry(reg);
                    }
                }
                let mut svc = match state {
                    Some(state) => state.services[i].restore(config.service.clone()),
                    None => HitlistService::new(config.service.clone()),
                };
                if primary {
                    if let Some(reg) = telemetry {
                        svc = svc.with_telemetry(reg.clone());
                    }
                }
                VantageUnit { spec: spec.clone(), net, svc }
            })
            .collect();
        if let Some(reg) = telemetry {
            reg.gauge("vantage.fleet.size").set(units.len() as i64);
        }
        VantageFleet {
            config,
            telemetry: telemetry.cloned(),
            units,
            reports: state.map(|s| s.reports.clone()).unwrap_or_default(),
            stats: ExecutorStats::default(),
        }
    }

    /// The roster.
    pub fn specs(&self) -> &[VantageSpec] {
        &self.config.specs
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of vantages.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the fleet is empty (it never is; see `assemble`).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Vantage `i`'s service.
    pub fn service(&self, i: usize) -> &HitlistService {
        &self.units[i].svc
    }

    /// Vantage `i`'s world.
    pub fn net(&self, i: usize) -> &Internet {
        &self.units[i].net
    }

    /// Every vantage's service, roster order.
    pub fn services(&self) -> impl Iterator<Item = &HitlistService> {
        self.units.iter().map(|u| &u.svc)
    }

    /// Disagreement reports for every synchronized batch so far.
    pub fn reports(&self) -> &[VantageReport] {
        &self.reports
    }

    /// Cumulative executor statistics.
    pub fn stats(&self) -> ExecutorStats {
        self.stats
    }

    /// Runs the fleet from `from` to `until` (inclusive) with the
    /// historical scan cadence.
    pub fn run(&mut self, from: Day, until: Day) {
        self.run_with(from, until, |_, _| {});
    }

    /// Like [`VantageFleet::run`], but invokes `hook` with the fleet
    /// and the day after every completed batch — the integration point
    /// for checkpointing.
    ///
    /// A restored fleet resumes where it left off: each vantage skips
    /// every scheduled day it has already recorded a round for, so
    /// calling `run_with` with the original `(from, until)` window
    /// after a restore completes the run exactly as if it had never
    /// stopped.
    pub fn run_with(&mut self, from: Day, until: Day, mut hook: impl FnMut(&VantageFleet, Day)) {
        let days = cadence(from, until);
        // Min-heap of (day, vantage) events; `Reverse` turns std's
        // max-heap around, and the tuple order makes same-day events
        // pop in roster order.
        let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
        let mut cursor: Vec<usize> = Vec::with_capacity(self.units.len());
        for (v, unit) in self.units.iter().enumerate() {
            let done_through = unit.svc.rounds().last().map(|r| r.day);
            let next = match done_through {
                None => 0,
                Some(last) => days.partition_point(|&d| d <= last),
            };
            cursor.push(next);
            if next < days.len() {
                heap.push(Reverse((days[next].0, v)));
            }
        }
        while let Some(&Reverse((day, _))) = heap.peek() {
            let mut batch = Vec::new();
            while let Some(&Reverse((d, v))) = heap.peek() {
                if d != day {
                    break;
                }
                heap.pop();
                batch.push(v);
            }
            let day = Day(day);
            self.run_batch(day, &batch);
            hook(self, day);
            for v in batch {
                cursor[v] += 1;
                if cursor[v] < days.len() {
                    heap.push(Reverse((days[cursor[v]].0, v)));
                }
            }
        }
    }

    /// Runs one synchronized batch: prepare every due vantage's round,
    /// fan all their protocol scans out as permutation segments on the
    /// work-stealing pool, reassemble, complete in roster order, then
    /// (if the whole fleet scanned) build the day's disagreement
    /// report.
    fn run_batch(&mut self, day: Day, batch: &[usize]) {
        // Stage 1: prepare (sources, alias detection, target selection).
        let mut prepared: Vec<PreparedRound> = Vec::with_capacity(batch.len());
        for &v in batch {
            let unit = &mut self.units[v];
            prepared.push(unit.svc.prepare_round(&unit.net, day));
        }

        // Stage 2: cut every (vantage, protocol) scan into contiguous
        // cycle segments. The segment size is the executor's even
        // share; outcomes are concatenated in cycle order afterwards,
        // so the cut is a scheduling decision, not a semantic one.
        let threads = self.config.threads.clamp(1, 32);
        struct Plan {
            slot: usize,
            proto: Protocol,
            perm: CyclicPermutation,
            ranges: Vec<(u64, u64)>,
        }
        let mut plans: Vec<Plan> = Vec::with_capacity(batch.len() * Protocol::ALL.len());
        for (slot, &v) in batch.iter().enumerate() {
            let cfg = &self.units[v].svc.config().scan;
            let n = prepared[slot].targets.len() as u64;
            for proto in Protocol::ALL {
                let perm = CyclicPermutation::new(n, cfg.seed ^ u64::from(day.0));
                let cycle = perm.cycle_len();
                let per_seg = cycle.div_ceil(threads as u64).max(1);
                let ranges: Vec<(u64, u64)> = (0..cycle)
                    .step_by(per_seg as usize)
                    .map(|start| (start, per_seg.min(cycle - start)))
                    .collect();
                plans.push(Plan { slot, proto, perm, ranges });
            }
        }

        // Stage 3: one flat task list for the whole batch — this is
        // where an idle vantage's workers drain a busy one's segments.
        let scan_started = Instant::now();
        let units = &self.units;
        let mut tasks: Vec<SegmentTask<'_>> = Vec::new();
        for plan in &plans {
            let v = batch[plan.slot];
            let net = &units[v].net;
            let cfg = &units[v].svc.config().scan;
            let targets = &prepared[plan.slot].targets;
            for &(start, len) in &plan.ranges {
                let perm = &plan.perm;
                let proto = plan.proto;
                tasks.push(Box::new(move || {
                    scan_segment(net, proto, targets, day, cfg, perm, start, len)
                }));
            }
        }
        let (segment_results, stats) = execute(threads, tasks);
        let scan_elapsed = scan_started.elapsed();
        self.stats.merge(stats);

        // Stage 4: reassemble per (vantage, protocol) in cycle order —
        // segment results come back in submission order, so each plan's
        // segments are contiguous.
        let mut results_by_slot: Vec<Vec<ScanResult>> =
            (0..batch.len()).map(|_| Vec::new()).collect();
        let mut segments = segment_results.into_iter();
        for plan in &plans {
            let mut outcomes = Vec::new();
            let mut tally = SegmentTally::default();
            for _ in &plan.ranges {
                let (mut segment_outcomes, segment_tally) =
                    segments.next().expect("one result per submitted segment");
                outcomes.append(&mut segment_outcomes);
                tally.merge(segment_tally);
            }
            let v = batch[plan.slot];
            let telemetry = if v == 0 { self.units[0].svc.telemetry() } else { None };
            let cfg = &self.units[v].svc.config().scan;
            results_by_slot[plan.slot]
                .push(assemble_scan(plan.proto, day, cfg, outcomes, tally, telemetry));
        }

        // Stage 5: raw (pre-cleaning) responsive sets for the
        // disagreement merge, then complete every round in roster
        // order. The scan-phase histogram gets its one sample per round
        // here, since stage 3 bypassed `scan_prepared`.
        let raw_sets: Vec<AddrSet> =
            results_by_slot.iter().map(|results| raw_hits(results)).collect();
        for ((&v, prep), results) in
            batch.iter().zip(prepared.into_iter()).zip(results_by_slot.into_iter())
        {
            let unit = &mut self.units[v];
            unit.svc.record_external_scan_phase(scan_elapsed);
            unit.svc.complete_round(&unit.net, prep, results);
        }

        // Stage 6: cross-vantage merge + disagreement analysis, only
        // when the whole fleet scanned this day (a partially resumed
        // fleet skips the days it cannot compare).
        if batch.len() == self.units.len() {
            let asns: Vec<u32> = batch.iter().map(|&v| self.units[v].spec.asn).collect();
            let report =
                VantageReport::build(day, &asns, &raw_sets, self.units[batch[0]].net.registry());
            if let Some(reg) = &self.telemetry {
                reg.counter("vantage.disagreements").add(report.disagreements);
                reg.counter("vantage.disagreements.gfw").add(report.gfw_disagreements);
                reg.gauge("vantage.merge.union").set(report.union as i64);
                reg.gauge("vantage.merge.intersection").set(report.intersection as i64);
            }
            self.reports.push(report);
        }
        if let Some(reg) = &self.telemetry {
            reg.counter("vantage.rounds").add(batch.len() as u64);
            reg.counter("vantage.segments.executed").add(stats.executed);
            reg.counter("vantage.segments.stolen").add(stats.stolen);
        }
    }
}

/// The union of every successful probe target across a round's scan
/// results — the raw, pre-cleaning responsive set the disagreement
/// analysis compares across vantages. (The *cleaned* sets would hide
/// the GFW split: cleaning exists precisely to delete it.)
fn raw_hits(results: &[ScanResult]) -> AddrSet {
    let mut addrs: Vec<Addr> = results
        .iter()
        .flat_map(|r| r.outcomes.iter().filter(|o| o.success).map(|o| o.target))
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    AddrSet::from_sorted_addrs(&addrs)
}

/// The historical scan-cadence day list for `[from, until]`, exactly as
/// [`HitlistService::run_with`] walks it: every round day plus a final
/// round pinned to `until`.
fn cadence(from: Day, until: Day) -> Vec<Day> {
    let mut days = Vec::new();
    let mut day = from;
    while day < until {
        days.push(day);
        let next = day.plus(events::scan_gap(day));
        day = if next > until { until } else { next };
    }
    days.push(until);
    days
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_matches_the_service_walk() {
        let days = cadence(Day(0), Day(10));
        assert_eq!(days.first(), Some(&Day(0)));
        assert_eq!(days.last(), Some(&Day(10)));
        for pair in days.windows(2) {
            assert!(pair[0] < pair[1], "strictly increasing");
        }
        // Degenerate window still lands the final round on `until`.
        assert_eq!(cadence(Day(7), Day(7)), vec![Day(7)]);
    }

    #[test]
    fn one_vantage_fleet_matches_the_plain_service() {
        let scale = Scale::tiny();
        let faults = FaultConfig::lossless().with_drop_permille(2);
        let config = ServiceConfig::builder().build();

        let net = Internet::build(scale).with_faults(faults.clone());
        let mut svc = HitlistService::new(config.clone());
        svc.run(&net, Day(0), Day(12));

        let fleet_config =
            FleetConfig::new(scale, 1).with_faults(faults).with_service(config).with_threads(3);
        let mut fleet = VantageFleet::build(fleet_config);
        fleet.run(Day(0), Day(12));

        assert_eq!(fleet.service(0).rounds(), svc.rounds());
        assert_eq!(fleet.service(0).current_responsive(), svc.current_responsive());
    }

    #[test]
    fn three_vantage_fleet_reports_every_batch() {
        let scale = Scale::tiny();
        let mut fleet = VantageFleet::build(FleetConfig::new(scale, 3).with_threads(4));
        fleet.run(Day(0), Day(6));
        assert_eq!(fleet.reports().len(), 7, "one report per synchronized day");
        for report in fleet.reports() {
            assert_eq!(report.vantages.len(), 3);
            assert!(report.union >= report.intersection);
        }
        assert!(fleet.stats().executed > 0);
    }
}
