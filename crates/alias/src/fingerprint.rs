//! TCP fingerprinting of fully responsive prefixes (Sec. 5.1).
//!
//! For each prefix the 16 nibble probes' SYN-ACKs are compared on five
//! features: Optionstext, window size, window scale, MSS and iTTL. Uniform
//! values are consistent with a single host behind the prefix; differing
//! values indicate multiple hosts. The paper finds 99.5 % uniform, with the
//! window size being by far the most common differing feature (154 of 160).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Prefix};
use sixdust_net::{Day, Internet, ProbeKind, Response};

/// Per-feature uniformity of one prefix's fingerprints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixFingerprint {
    /// The prefix under test.
    pub prefix: Prefix,
    /// SYN-ACKs collected (of 16 probes).
    pub responses: u8,
    /// Distinct Optionstext values seen.
    pub optionstext_variants: u8,
    /// Distinct window sizes seen.
    pub window_variants: u8,
    /// Distinct window scale values seen.
    pub wscale_variants: u8,
    /// Distinct MSS values seen.
    pub mss_variants: u8,
    /// Distinct iTTLs seen.
    pub ittl_variants: u8,
}

impl PrefixFingerprint {
    /// All five features uniform?
    pub fn uniform(&self) -> bool {
        self.optionstext_variants <= 1
            && self.window_variants <= 1
            && self.wscale_variants <= 1
            && self.mss_variants <= 1
            && self.ittl_variants <= 1
    }

    /// Uniform ignoring the window size (the weak feature: single hosts
    /// legitimately vary it across connections).
    pub fn uniform_ignoring_window(&self) -> bool {
        self.optionstext_variants <= 1
            && self.wscale_variants <= 1
            && self.mss_variants <= 1
            && self.ittl_variants <= 1
    }
}

/// Summary across all fingerprinted prefixes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FingerprintSummary {
    /// Prefixes with at least one TCP/80 SYN-ACK.
    pub fingerprintable: usize,
    /// Fully uniform prefixes.
    pub uniform: usize,
    /// Prefixes differing only in window size.
    pub window_only_diff: usize,
    /// Prefixes differing in other features too.
    pub other_diff: usize,
}

/// Fingerprints one prefix with 16 TCP/80 probes (one per nibble sub).
pub fn fingerprint_prefix(
    net: &Internet,
    prefix: Prefix,
    day: Day,
    seed: u64,
) -> Option<PrefixFingerprint> {
    let mut opts = HashSet::new();
    let mut windows = HashSet::new();
    let mut wscales = HashSet::new();
    let mut msses = HashSet::new();
    let mut ittls = HashSet::new();
    let mut responses = 0u8;
    for (i, sub) in prefix.nibble_subprefixes().enumerate() {
        let target = sub.random_addr(prf::mix2(seed, 0x1000 + i as u64));
        for r in net.probe(target, &ProbeKind::TcpSyn { port: 80 }, day) {
            if let Response::SynAck { fp } = r {
                responses += 1;
                opts.insert(fp.optionstext.clone());
                windows.insert(fp.window);
                wscales.insert(fp.wscale);
                msses.insert(fp.mss);
                ittls.insert(fp.ittl);
            }
        }
    }
    if responses == 0 {
        return None;
    }
    Some(PrefixFingerprint {
        prefix,
        responses,
        optionstext_variants: opts.len() as u8,
        window_variants: windows.len() as u8,
        wscale_variants: wscales.len() as u8,
        mss_variants: msses.len() as u8,
        ittl_variants: ittls.len() as u8,
    })
}

/// Fingerprints a list of prefixes and summarizes (Sec. 5.1's headline
/// numbers: fingerprintable count, uniform share, window-only cohort).
pub fn fingerprint_all(
    net: &Internet,
    prefixes: &[Prefix],
    day: Day,
    seed: u64,
) -> (Vec<PrefixFingerprint>, FingerprintSummary) {
    let mut out = Vec::new();
    let mut summary = FingerprintSummary::default();
    for p in prefixes {
        if let Some(fp) = fingerprint_prefix(net, *p, day, prf::mix2(seed, p.network().iid())) {
            summary.fingerprintable += 1;
            if fp.uniform() {
                summary.uniform += 1;
            } else if fp.uniform_ignoring_window() {
                summary.window_only_diff += 1;
            } else {
                summary.other_diff += 1;
            }
            out.push(fp);
        }
    }
    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_net::{BackendMode, FaultConfig, GroupKind, Internet, Protocol, Scale};

    fn net() -> Internet {
        Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless())
    }

    #[test]
    fn uniform_single_host_prefix() {
        let net = net();
        let day = Day(100);
        let g = net
            .population()
            .aliased_groups(day)
            .find(|g| {
                g.protos.contains(Protocol::Tcp80)
                    && matches!(
                        g.kind,
                        GroupKind::Aliased {
                            backends: BackendMode::Single,
                            hetero_window: false,
                            ..
                        }
                    )
            })
            .expect("single-host TCP alias");
        let fp = fingerprint_prefix(&net, g.prefix, day, 7).expect("fingerprintable");
        assert_eq!(fp.responses, 16);
        assert!(fp.uniform(), "{fp:?}");
    }

    #[test]
    fn hetero_window_prefix_differs_only_in_window() {
        let net = net();
        let day = Day(100);
        let g = net.population().aliased_groups(day).find(|g| {
            g.protos.contains(Protocol::Tcp80)
                && matches!(g.kind, GroupKind::Aliased { hetero_window: true, .. })
        });
        let Some(g) = g else {
            return; // tiny scale may have no heterogeneous group
        };
        let fp = fingerprint_prefix(&net, g.prefix, day, 7).expect("fingerprintable");
        assert!(!fp.uniform());
        assert!(fp.uniform_ignoring_window(), "{fp:?}");
    }

    #[test]
    fn icmp_only_prefix_not_fingerprintable() {
        let net = net();
        let day = sixdust_net::events::TRAFFICFORCE_FLOOD.plus(2);
        let g = net
            .population()
            .aliased_groups(day)
            .find(|g| !g.protos.contains(Protocol::Tcp80))
            .expect("icmp-only alias");
        assert!(fingerprint_prefix(&net, g.prefix, day, 7).is_none());
    }

    #[test]
    fn summary_shape() {
        let net = net();
        let day = Day(100);
        let prefixes: Vec<Prefix> = net
            .population()
            .aliased_groups(day)
            .filter(|g| g.protos.contains(Protocol::Tcp80))
            .map(|g| g.prefix)
            .take(120)
            .collect();
        let (fps, summary) = fingerprint_all(&net, &prefixes, day, 3);
        assert_eq!(fps.len(), summary.fingerprintable);
        assert!(summary.fingerprintable > 50);
        let uniform_share = summary.uniform as f64 / summary.fingerprintable as f64;
        assert!(uniform_share > 0.9, "uniform share {uniform_share}");
        assert!(summary.window_only_diff >= summary.other_diff);
    }
}
