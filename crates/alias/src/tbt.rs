//! The Too Big Trick (Beverly et al. 2013; applied to fully responsive
//! prefixes by Song et al. 2022 and Sec. 5.1 of the paper).
//!
//! IPv6 routers never fragment; only end hosts do, and they remember the
//! path MTU per destination. So:
//!
//! 1. verify eight addresses in the prefix answer 1300-byte echoes
//!    unfragmented,
//! 2. send an ICMPv6 Packet Too Big (MTU 1280) to *one* of them,
//! 3. re-probe all; addresses sharing the seeded host's PMTU cache now
//!    reply fragmented.
//!
//! All eight fragmenting ⇒ one host owns the prefix (a true alias); none ⇒
//! independent per-address state; two-to-seven ⇒ a load-balanced pool
//! (the Akamai/Cloudflare cohort).

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr, Prefix};
use sixdust_net::{Day, Internet, ProbeKind, Response};
use sixdust_wire::IPV6_MIN_MTU;

/// Number of addresses probed per prefix.
pub const TBT_ADDRS: usize = 8;
/// Echo payload size used for the oversized probes.
pub const TBT_PROBE_SIZE: u16 = 1300;

/// The classification of one prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TbtOutcome {
    /// Preconditions failed (no unfragmented baseline from all addresses).
    Unsuitable,
    /// All probed addresses fragmented after seeding one: shared cache,
    /// single host.
    SharedAll,
    /// No other address fragmented: every address keeps its own state.
    SharedNone,
    /// `n` of the other seven shared the seeded cache: load balancing.
    SharedPartial(u8),
}

/// A full TBT measurement of one prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TbtResult {
    /// The prefix under test.
    pub prefix: Prefix,
    /// Outcome classification.
    pub outcome: TbtOutcome,
    /// The probed addresses.
    pub addrs: Vec<Addr>,
}

/// Runs the Too Big Trick on one prefix.
pub fn too_big_trick(net: &Internet, prefix: Prefix, day: Day, seed: u64) -> TbtResult {
    let addrs: Vec<Addr> = (0..TBT_ADDRS)
        .map(|i| {
            // Spread across nibble subs like the detection probes.
            prefix.nibble_subprefix((i * 2) as u8).random_addr(prf::mix2(seed, 0x7B7 + i as u64))
        })
        .collect();

    // Step 1: all addresses must answer 1300 B unfragmented.
    let echo = ProbeKind::IcmpEcho { size: TBT_PROBE_SIZE };
    for a in &addrs {
        let ok = net
            .probe(*a, &echo, day)
            .iter()
            .any(|r| matches!(r, Response::EchoReply { fragmented: false }));
        if !ok {
            return TbtResult { prefix, outcome: TbtOutcome::Unsuitable, addrs };
        }
    }

    // Step 2: seed the PMTU cache via the first address.
    net.probe(addrs[0], &ProbeKind::TooBig { mtu: IPV6_MIN_MTU }, day);

    // The seeded address itself must now fragment; otherwise the target
    // ignores PTB and the methodology yields nothing.
    let seeded_fragmented = net
        .probe(addrs[0], &echo, day)
        .iter()
        .any(|r| matches!(r, Response::EchoReply { fragmented: true }));
    if !seeded_fragmented {
        return TbtResult { prefix, outcome: TbtOutcome::Unsuitable, addrs };
    }

    // Step 3: probe the remaining addresses without further error messages.
    let mut shared = 0u8;
    for a in &addrs[1..] {
        let fragmented = net
            .probe(*a, &echo, day)
            .iter()
            .any(|r| matches!(r, Response::EchoReply { fragmented: true }));
        if fragmented {
            shared += 1;
        }
    }
    let outcome = match shared as usize {
        n if n == TBT_ADDRS - 1 => TbtOutcome::SharedAll,
        0 => TbtOutcome::SharedNone,
        n => TbtOutcome::SharedPartial(n as u8),
    };
    TbtResult { prefix, outcome, addrs }
}

/// Aggregate TBT statistics over many prefixes (the Sec. 5.1 table).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TbtSummary {
    /// Prefixes with successful preconditions.
    pub successful: usize,
    /// Prefixes where the methodology could not run.
    pub unsuitable: usize,
    /// Fully shared (single host).
    pub shared_all: usize,
    /// No sharing.
    pub shared_none: usize,
    /// Partial sharing (load balancing).
    pub shared_partial: usize,
}

/// Runs the TBT over a prefix list.
pub fn tbt_all(
    net: &Internet,
    prefixes: &[Prefix],
    day: Day,
    seed: u64,
) -> (Vec<TbtResult>, TbtSummary) {
    let mut results = Vec::with_capacity(prefixes.len());
    let mut summary = TbtSummary::default();
    for p in prefixes {
        let r = too_big_trick(net, *p, day, prf::mix2(seed, p.network().iid()));
        match r.outcome {
            TbtOutcome::Unsuitable => summary.unsuitable += 1,
            TbtOutcome::SharedAll => {
                summary.successful += 1;
                summary.shared_all += 1;
            }
            TbtOutcome::SharedNone => {
                summary.successful += 1;
                summary.shared_none += 1;
            }
            TbtOutcome::SharedPartial(_) => {
                summary.successful += 1;
                summary.shared_partial += 1;
            }
        }
        results.push(r);
    }
    (results, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_net::{BackendMode, FaultConfig, GroupKind, Protocol, Scale};

    fn net() -> Internet {
        Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless())
    }

    fn find_prefix(net: &Internet, day: Day, want: BackendMode) -> Option<Prefix> {
        net.population()
            .aliased_groups(day)
            .find(|g| {
                g.protos.contains(Protocol::Icmp)
                    && match (&g.kind, want) {
                        (
                            GroupKind::Aliased { backends: BackendMode::Single, .. },
                            BackendMode::Single,
                        ) => true,
                        (
                            GroupKind::Aliased { backends: BackendMode::PerAddr, .. },
                            BackendMode::PerAddr,
                        ) => true,
                        (
                            GroupKind::Aliased { backends: BackendMode::LoadBalanced(_), .. },
                            BackendMode::LoadBalanced(_),
                        ) => true,
                        _ => false,
                    }
            })
            .map(|g| g.prefix)
    }

    #[test]
    fn single_host_prefix_shares_fully() {
        let net = net();
        let day = Day(100);
        let p = find_prefix(&net, day, BackendMode::Single).expect("single alias");
        net.reset_state();
        let r = too_big_trick(&net, p, day, 1);
        assert_eq!(r.outcome, TbtOutcome::SharedAll);
        assert_eq!(r.addrs.len(), TBT_ADDRS);
    }

    #[test]
    fn per_addr_prefix_shares_nothing() {
        let net = net();
        let day = Day(100);
        let p = find_prefix(&net, day, BackendMode::PerAddr).expect("per-addr alias");
        net.reset_state();
        let r = too_big_trick(&net, p, day, 1);
        assert_eq!(r.outcome, TbtOutcome::SharedNone);
    }

    #[test]
    fn load_balanced_prefix_shares_partially() {
        let net = net();
        let day = Day(100);
        // Partial sharing is probabilistic per prefix (addresses hash to
        // backends); check the aggregate over several prefixes.
        let prefixes: Vec<Prefix> = net
            .population()
            .aliased_groups(day)
            .filter(|g| {
                g.protos.contains(Protocol::Icmp)
                    && matches!(
                        g.kind,
                        GroupKind::Aliased { backends: BackendMode::LoadBalanced(_), .. }
                    )
            })
            .map(|g| g.prefix)
            .take(30)
            .collect();
        assert!(!prefixes.is_empty());
        net.reset_state();
        let (_, summary) = tbt_all(&net, &prefixes, day, 2);
        assert!(summary.successful > 0);
        assert!(
            summary.shared_partial > 0,
            "load-balanced pools must show partial sharing: {summary:?}"
        );
        assert_eq!(summary.shared_all, 0, "k>=2 backends cannot share fully: {summary:?}");
    }

    #[test]
    fn unresponsive_prefix_unsuitable() {
        let net = net();
        let r = too_big_trick(&net, "3fff:dead::/64".parse().unwrap(), Day(100), 1);
        assert_eq!(r.outcome, TbtOutcome::Unsuitable);
    }

    #[test]
    fn icmp_only_trafficforce_is_suitable() {
        // Trafficforce prefixes answer ICMP, which is all the TBT needs.
        let net = net();
        let day = sixdust_net::events::TRAFFICFORCE_FLOOD.plus(2);
        let tf = net.registry().by_asn(212144).unwrap();
        let p = net
            .population()
            .aliased_groups(day)
            .find(|g| g.asid == tf)
            .map(|g| g.prefix)
            .expect("trafficforce prefix");
        net.reset_state();
        let r = too_big_trick(&net, p, day, 3);
        assert_eq!(r.outcome, TbtOutcome::SharedAll);
    }

    #[test]
    fn aggregate_summary_counts_consistent() {
        let net = net();
        let day = Day(100);
        let prefixes: Vec<Prefix> =
            net.population().aliased_groups(day).map(|g| g.prefix).take(60).collect();
        net.reset_state();
        let (results, summary) = tbt_all(&net, &prefixes, day, 4);
        assert_eq!(results.len(), prefixes.len());
        assert_eq!(
            summary.successful + summary.unsuitable,
            prefixes.len(),
            "every prefix classified"
        );
        assert_eq!(
            summary.shared_all + summary.shared_none + summary.shared_partial,
            summary.successful
        );
    }
}
