//! # sixdust-alias — aliased ("fully responsive") prefix analysis
//!
//! The three methodologies of the paper's Sec. 5, built on `sixdust-net`
//! and `sixdust-scan`:
//!
//! * [`detect`] — the IPv6 Hitlist's multi-level aliased prefix detection:
//!   BGP / per-/64 / long-prefix candidates, 16 nibble-spread pseudo-random
//!   probes on ICMP + TCP/80, and the three-round merge that makes labels
//!   robust to packet loss.
//! * [`fingerprint`] — TCP handshake fingerprinting (Optionstext, window,
//!   window scale, MSS, iTTL) across each labeled prefix.
//! * [`tbt`] — the Too Big Trick: PMTU-cache sharing distinguishes a true
//!   single-host alias from a load-balanced CDN pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detect;
pub mod fingerprint;
pub mod tbt;

pub use detect::{
    candidates, minimal_cover, AliasDetector, DetectedPrefix, DetectionRound, DetectorConfig,
    DetectorConfigBuilder,
};
pub use fingerprint::{fingerprint_all, fingerprint_prefix, FingerprintSummary, PrefixFingerprint};
pub use tbt::{tbt_all, too_big_trick, TbtOutcome, TbtResult, TbtSummary};
