//! Multi-level aliased prefix detection, as deployed by the IPv6 Hitlist
//! service (Gasser et al. 2018; described in Sec. 3.1 of the paper).
//!
//! Candidate prefixes:
//!
//! 1. every IPv6 prefix announced in BGP,
//! 2. every /64 with at least one address in the service input,
//! 3. longer prefixes (in 4-bit steps: /68 … /124) holding at least 100
//!    input addresses.
//!
//! For each candidate the detector draws **one pseudo-random address in
//! each of its 16 nibble sub-prefixes** and probes ICMP and TCP/80. If all
//! 16 answer (on either protocol), the prefix is *fully responsive*.
//! Results are merged with the previous three detection rounds so that a
//! single lossy round cannot clear (or set) the label — the ablation bench
//! shows the misclassification rate without that merge.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr, Prefix, PrefixSet};
use sixdust_net::{Day, Internet, ProbeKind, Response};
use sixdust_telemetry::{Registry, SpanTimer};

/// Detector configuration.
///
/// Construct via [`DetectorConfig::builder`] or the chainable `with_*`
/// methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Minimum input addresses for longer-than-/64 candidates.
    pub min_addrs_long: usize,
    /// How many past rounds are merged into the current label.
    pub merge_rounds: usize,
    /// Per-round probe seed basis.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig { min_addrs_long: 100, merge_rounds: 3, seed: 0xA11A5 }
    }
}

impl DetectorConfig {
    /// Starts a builder seeded with the default configuration.
    pub fn builder() -> DetectorConfigBuilder {
        DetectorConfigBuilder::default()
    }

    /// Returns the config with the long-prefix address floor replaced.
    pub fn with_min_addrs_long(mut self, min_addrs_long: usize) -> DetectorConfig {
        self.min_addrs_long = min_addrs_long;
        self
    }

    /// Returns the config with the merge-window size replaced.
    pub fn with_merge_rounds(mut self, merge_rounds: usize) -> DetectorConfig {
        self.merge_rounds = merge_rounds;
        self
    }

    /// Returns the config with the probe seed basis replaced.
    pub fn with_seed(mut self, seed: u64) -> DetectorConfig {
        self.seed = seed;
        self
    }
}

/// Builder for [`DetectorConfig`]; starts from [`DetectorConfig::default`].
#[derive(Debug, Clone, Default)]
pub struct DetectorConfigBuilder {
    config: DetectorConfig,
}

impl DetectorConfigBuilder {
    /// Sets the minimum input addresses for longer-than-/64 candidates.
    pub fn min_addrs_long(mut self, min_addrs_long: usize) -> DetectorConfigBuilder {
        self.config.min_addrs_long = min_addrs_long;
        self
    }

    /// Sets how many past rounds merge into the current label.
    pub fn merge_rounds(mut self, merge_rounds: usize) -> DetectorConfigBuilder {
        self.config.merge_rounds = merge_rounds;
        self
    }

    /// Sets the per-round probe seed basis.
    pub fn seed(mut self, seed: u64) -> DetectorConfigBuilder {
        self.config.seed = seed;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> DetectorConfig {
        self.config
    }
}

/// A prefix labeled fully responsive, with the protocols that answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectedPrefix {
    /// The fully responsive prefix.
    pub prefix: Prefix,
    /// Whether all 16 probes answered ICMP.
    pub icmp: bool,
    /// Whether all 16 probes answered TCP/80.
    pub tcp80: bool,
}

/// One detection round's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionRound {
    /// Day the round ran.
    pub day: Day,
    /// Prefixes fully responsive in *this* round.
    pub detected: Vec<DetectedPrefix>,
    /// Candidates probed.
    pub candidates: usize,
    /// Probes sent (16 per candidate and protocol).
    pub probes: u64,
}

/// The stateful detector (holds the merge window).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AliasDetector {
    history: Vec<HashSet<Prefix>>,
    last_round_info: HashMap<Prefix, DetectedPrefix>,
    config: DetectorConfig,
    /// Optional metrics sink; not part of checkpointed state.
    #[serde(skip)]
    telemetry: Option<Registry>,
}

/// Builds the candidate prefix list from the BGP table and the service
/// input. Pure function of public data — no ground truth consulted.
///
/// Memory-conscious: the input can hold hundreds of thousands of
/// addresses, so the per-length counting walks a sorted copy instead of
/// hashing every (address, length) pair.
pub fn candidates(net: &Internet, input: &[Addr], min_addrs_long: usize) -> Vec<Prefix> {
    let mut set: HashSet<Prefix> = HashSet::new();
    // 1. BGP-announced prefixes (only those that can have 16 nibble subs).
    for (p, _) in net.registry().announced_prefixes() {
        if p.len() <= 124 {
            set.insert(p);
        }
    }
    let mut sorted: Vec<Addr> = input.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    // 2. /64s with at least one input address.
    for a in &sorted {
        set.insert(Prefix::new(*a, 64));
    }
    // 3. Longer prefixes (4-bit steps) with >= min_addrs_long addresses:
    // consecutive runs in sorted order share prefixes, so one linear pass
    // per length suffices.
    for plen in (68..=124u8).step_by(4) {
        let shift = 128 - u32::from(plen);
        let mut run_start = 0usize;
        for i in 1..=sorted.len() {
            let boundary =
                i == sorted.len() || (sorted[i].0 >> shift) != (sorted[run_start].0 >> shift);
            if boundary {
                if i - run_start >= min_addrs_long {
                    set.insert(Prefix::new(sorted[run_start], plen));
                }
                run_start = i;
            }
        }
    }
    let mut v: Vec<Prefix> = set.into_iter().collect();
    v.sort_unstable();
    v
}

/// Renders a worker-panic payload as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

impl AliasDetector {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> AliasDetector {
        AliasDetector {
            history: Vec::new(),
            last_round_info: HashMap::new(),
            config,
            telemetry: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Attaches a metrics registry: every subsequent [`run_round`]
    /// records `alias.rounds` / `alias.candidates` / `alias.probes` /
    /// `alias.detected` counters and the `alias.round_ms` histogram.
    ///
    /// [`run_round`]: AliasDetector::run_round
    pub fn set_telemetry(&mut self, registry: Registry) {
        self.telemetry = Some(registry);
    }

    /// Probes one candidate: 16 pseudo-random addresses, one per nibble
    /// sub-prefix, on ICMP and TCP/80. Returns per-protocol all-16 flags.
    fn probe_prefix(net: &Internet, prefix: Prefix, day: Day, seed: u64) -> (bool, bool, u64) {
        let mut icmp_all = true;
        let mut tcp_all = true;
        let mut probes = 0u64;
        for (i, sub) in prefix.nibble_subprefixes().enumerate() {
            let target = sub.random_addr(prf::mix2(seed, i as u64));
            if icmp_all {
                probes += 1;
                let ok = net
                    .probe(target, &ProbeKind::IcmpEcho { size: 8 }, day)
                    .iter()
                    .any(|r| matches!(r, Response::EchoReply { .. }));
                icmp_all &= ok;
            }
            if tcp_all {
                probes += 1;
                let ok = net
                    .probe(target, &ProbeKind::TcpSyn { port: 80 }, day)
                    .iter()
                    .any(|r| matches!(r, Response::SynAck { .. }));
                tcp_all &= ok;
            }
            if !icmp_all && !tcp_all {
                // Early exit: candidate already disqualified on both.
                break;
            }
        }
        (icmp_all, tcp_all, probes)
    }

    /// Runs a detection round over the given candidates and merges it into
    /// the label window.
    pub fn run_round(&mut self, net: &Internet, cands: &[Prefix], day: Day) -> DetectionRound {
        let _round_span =
            self.telemetry.as_ref().map(|t| SpanTimer::start(&t.histogram("alias.round_ms")));
        let _trace_span = self.telemetry.as_ref().and_then(|t| t.tracer()).map(|j| {
            j.span_with(
                "alias.round",
                &[
                    ("day", day.0.to_string().as_str()),
                    ("candidates", cands.len().to_string().as_str()),
                ],
            )
        });
        let seed = prf::mix2(self.config.seed, u64::from(day.0));
        let mut detected = Vec::new();
        let mut probes = 0u64;
        let chunk = cands.len().div_ceil(8).max(1);
        let results: Vec<(Prefix, bool, bool, u64)> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = cands
                .chunks(chunk)
                .enumerate()
                .map(|(worker, chunk_cands)| {
                    let handle = s.spawn(move |_| {
                        chunk_cands
                            .iter()
                            .map(|p| {
                                let ps = prf::mix2(seed, p.network().iid() ^ u64::from(p.len()));
                                let (icmp, tcp, n) = Self::probe_prefix(net, *p, day, ps);
                                (*p, icmp, tcp, n)
                            })
                            .collect::<Vec<_>>()
                    });
                    (worker, chunk_cands.len(), handle)
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|(worker, len, handle)| {
                    handle.join().unwrap_or_else(|payload| {
                        let start = worker * chunk;
                        panic!(
                            "alias detector worker {worker} (day {}, candidates \
                             {start}..{}, {len} prefixes) panicked: {}",
                            day.0,
                            start + len,
                            panic_message(&*payload)
                        )
                    })
                })
                .collect()
        })
        .unwrap_or_else(|payload| {
            panic!(
                "alias detector scope (day {}, {} candidates) panicked: {}",
                day.0,
                cands.len(),
                panic_message(&*payload)
            )
        });
        for (p, icmp, tcp80, n) in results {
            probes += n;
            if icmp || tcp80 {
                let d = DetectedPrefix { prefix: p, icmp, tcp80 };
                self.last_round_info.insert(p, d);
                detected.push(d);
            }
        }
        let this_round: HashSet<Prefix> = detected.iter().map(|d| d.prefix).collect();
        self.history.push(this_round);
        if self.history.len() > self.config.merge_rounds + 1 {
            self.history.remove(0);
        }
        if let Some(reg) = &self.telemetry {
            reg.counter("alias.rounds").incr();
            reg.counter("alias.candidates").add(cands.len() as u64);
            reg.counter("alias.probes").add(probes);
            reg.counter("alias.detected").add(detected.len() as u64);
        }
        DetectionRound { day, detected, candidates: cands.len(), probes }
    }

    /// The current label set: the union over the merge window.
    pub fn aliased(&self) -> PrefixSet {
        let mut set = PrefixSet::new();
        for round in &self.history {
            for p in round {
                set.insert(*p);
            }
        }
        set
    }

    /// All labeled prefixes with their per-protocol detection detail.
    pub fn detected_details(&self) -> Vec<DetectedPrefix> {
        let labels = self.aliased();
        let mut v: Vec<DetectedPrefix> =
            labels.iter().filter_map(|p| self.last_round_info.get(&p).copied()).collect();
        v.sort_unstable_by_key(|d| d.prefix);
        v
    }
}

/// Removes prefixes covered by another prefix in the set (keeps the
/// shortest covering labels); used for per-AS aliased-space accounting
/// (Fig. 6) so a /64 inside a labeled /48 is not double counted.
pub fn minimal_cover(prefixes: &[Prefix]) -> Vec<Prefix> {
    let mut sorted: Vec<Prefix> = prefixes.to_vec();
    sorted.sort_unstable();
    let mut out: Vec<Prefix> = Vec::new();
    for p in sorted {
        if let Some(last) = out.last() {
            if last.covers(p) {
                continue;
            }
        }
        // A shorter covering prefix sorts before p only when it shares the
        // network bits; the single look-back is sufficient because sorted
        // order groups covered prefixes directly after their cover.
        if !out.iter().rev().take(4).any(|q| q.covers(p)) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_net::{FaultConfig, Scale};

    fn net() -> Internet {
        Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless())
    }

    #[test]
    fn candidate_classes() {
        let net = net();
        let input: Vec<Addr> =
            (0..150u128).map(|i| Addr(0x2001_0db8_0000_0000_0000_0000_0000_0000u128 + i)).collect();
        let cands = candidates(&net, &input, 100);
        // The /64 of the input cluster is a candidate.
        assert!(cands.contains(&"2001:db8::/64".parse().unwrap()));
        // 150 addresses within one /120: every 4-bit level from /68 on is
        // a candidate around them.
        assert!(cands.contains(&"2001:db8::/120".parse().unwrap()));
        assert!(cands.contains(&"2001:db8::/68".parse().unwrap()));
        // BGP prefixes are included.
        let some_bgp = net.registry().announced_prefixes().next().unwrap().0;
        assert!(cands.contains(&some_bgp));
    }

    #[test]
    fn detects_planted_aliased_prefixes_and_not_servers() {
        let net = net();
        let day = Day(100);
        let truth: Vec<Prefix> = net
            .population()
            .aliased_groups(day)
            .filter(|g| g.protos.contains(sixdust_net::Protocol::Icmp))
            .map(|g| g.prefix)
            .take(30)
            .collect();
        // Use a couple of live server /64s as negative controls.
        let negatives: Vec<Prefix> = net
            .population()
            .enumerate_responsive(day)
            .iter()
            .take(10)
            .map(|(a, ..)| Prefix::new(*a, 64))
            .collect();
        let mut cands = truth.clone();
        cands.extend(negatives.iter().copied());
        let mut det = AliasDetector::new(DetectorConfig::default());
        let round = det.run_round(&net, &cands, day);
        let labeled = det.aliased();
        for p in &truth {
            assert!(labeled.contains_exact(*p), "missed {p}");
        }
        for p in &negatives {
            // A server /64 would require 16 random addresses to respond.
            assert!(
                !labeled.contains_exact(*p) || truth.iter().any(|t| t.covers(*p)),
                "false positive {p}"
            );
        }
        assert!(round.probes > 0);
    }

    #[test]
    fn merge_window_masks_single_round_loss() {
        let lossy = Internet::build(Scale::tiny())
            .with_faults(FaultConfig::lossless().with_drop_permille(60));
        let day = Day(100);
        let truth: Vec<Prefix> = lossy
            .population()
            .aliased_groups(day)
            .filter(|g| g.protos.contains(sixdust_net::Protocol::Icmp))
            .map(|g| g.prefix)
            .take(60)
            .collect();
        let mut det = AliasDetector::new(DetectorConfig::default());
        // Single round: ~6 % loss per probe means ~1-(0.94^16) ≈ 60 % of
        // prefixes would drop at least one ICMP probe; TCP rescues many but
        // single-round detection still misses a chunk.
        let r1 = det.run_round(&lossy, &truth, day);
        let single = r1.detected.len();
        for gap in [1u32, 2, 3] {
            det.run_round(&lossy, &truth, day.plus(gap));
        }
        let merged = det.aliased();
        let merged_hits = truth.iter().filter(|p| merged.contains_exact(**p)).count();
        assert!(
            merged_hits >= single,
            "merging rounds cannot lose labels: {merged_hits} vs {single}"
        );
        // ICMP-only prefixes detect with p≈0.37 per round at 6 % loss;
        // four merged rounds lift that to ≈0.84 (dual-protocol prefixes
        // reach ≈0.97). Require clear improvement over a single round.
        assert!(
            merged_hits as f64 >= truth.len() as f64 * 0.75,
            "merge recovers most: {merged_hits}/{}",
            truth.len()
        );
        assert!(merged_hits > truth.len() / 2, "sanity: {merged_hits}/{}", truth.len());
    }

    #[test]
    fn trafficforce_flood_detected_only_after_event() {
        let net = net();
        let tf = net.registry().by_asn(212144).unwrap();
        let tf_prefixes: Vec<Prefix> = net
            .population()
            .aliased_groups(sixdust_net::events::TRAFFICFORCE_FLOOD.plus(1))
            .filter(|g| g.asid == tf)
            .map(|g| g.prefix)
            .take(20)
            .collect();
        assert!(!tf_prefixes.is_empty());
        let mut det = AliasDetector::new(DetectorConfig::default());
        let before = det.run_round(&net, &tf_prefixes, Day(1000));
        assert!(before.detected.is_empty());
        let after =
            det.run_round(&net, &tf_prefixes, sixdust_net::events::TRAFFICFORCE_FLOOD.plus(2));
        assert_eq!(after.detected.len(), tf_prefixes.len());
        // ICMP-only: TCP/80 must NOT have detected them.
        assert!(after.detected.iter().all(|d| d.icmp && !d.tcp80));
    }

    #[test]
    fn builder_reproduces_default_and_round_metrics_reconcile() {
        assert_eq!(DetectorConfig::builder().build(), DetectorConfig::default());
        assert_eq!(
            DetectorConfig::default().with_merge_rounds(0).with_seed(9),
            DetectorConfig::builder().merge_rounds(0).seed(9).build()
        );
        let net = net();
        let day = Day(100);
        let cands: Vec<Prefix> =
            net.population().aliased_groups(day).map(|g| g.prefix).take(10).collect();
        let mut det = AliasDetector::new(DetectorConfig::default());
        let reg = sixdust_telemetry::Registry::new();
        det.set_telemetry(reg.clone());
        let round = det.run_round(&net, &cands, day);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("alias.rounds"), Some(1));
        assert_eq!(snap.counter("alias.candidates"), Some(cands.len() as u64));
        assert_eq!(snap.counter("alias.probes"), Some(round.probes));
        assert_eq!(snap.counter("alias.detected"), Some(round.detected.len() as u64));
        assert_eq!(snap.histogram("alias.round_ms").unwrap().count, 1);
    }

    #[test]
    fn minimal_cover_dedups() {
        let ps: Vec<Prefix> =
            ["2001:db8::/48", "2001:db8::/64", "2001:db8:0:1::/64", "2001:db9::/64"]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect();
        let cover = minimal_cover(&ps);
        assert_eq!(cover, vec!["2001:db8::/48".parse().unwrap(), "2001:db9::/64".parse().unwrap()]);
    }
}
