//! Property tests for the alias toolkit.

use std::sync::OnceLock;

use proptest::prelude::*;
use sixdust_addr::{Addr, Prefix};
use sixdust_alias::{
    candidates, minimal_cover, too_big_trick, AliasDetector, DetectorConfig, TbtOutcome,
};
use sixdust_net::{Day, FaultConfig, Internet, Scale};

fn net() -> &'static Internet {
    static NET: OnceLock<Internet> = OnceLock::new();
    NET.get_or_init(|| Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless()))
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 8u8..=124).prop_map(|(v, l)| Prefix::new(Addr(v), l))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn minimal_cover_is_minimal_and_covering(
        prefixes in proptest::collection::vec(arb_prefix(), 1..40)
    ) {
        let cover = minimal_cover(&prefixes);
        // 1. Every input prefix is covered by some cover element.
        for p in &prefixes {
            prop_assert!(cover.iter().any(|c| c.covers(*p)), "{p} uncovered");
        }
        // 2. No cover element covers another.
        for (i, a) in cover.iter().enumerate() {
            for (j, b) in cover.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.covers(*b), "{a} covers {b}");
                }
            }
        }
        // 3. Every cover element came from the input.
        for c in &cover {
            prop_assert!(prefixes.contains(c));
        }
    }

    #[test]
    fn candidate_classes_sound(
        bases in proptest::collection::vec(any::<u64>(), 1..6),
        per_base in 1usize..150,
    ) {
        // Build an input with known clustering, then verify every /64 of
        // every input address is a candidate and the >=100 rule holds.
        let mut input = Vec::new();
        for b in &bases {
            let net64 = (0x2001_0db8_0000_0000u128 | u128::from(*b & 0xffff)) << 64;
            for i in 0..per_base {
                input.push(Addr(net64 | i as u128));
            }
        }
        let cands = candidates(net(), &input, 100);
        for a in &input {
            prop_assert!(cands.contains(&Prefix::new(*a, 64)), "missing /64 of {a}");
        }
        // Long-prefix candidates only where a cluster really has >=100.
        for c in cands.iter().filter(|c| c.len() > 64) {
            let n = input.iter().filter(|a| c.contains(**a)).count();
            prop_assert!(n >= 100, "{c} has only {n} input addrs");
        }
    }

    #[test]
    fn detector_never_labels_dark_prefixes(v in any::<u128>(), day in 0u32..1376) {
        // A prefix in unallocated space can never be fully responsive.
        let p = Prefix::new(Addr(0x3fff_0000_0000_0000_0000_0000_0000_0000u128 | (v >> 4)), 64);
        let mut det = AliasDetector::new(DetectorConfig::default());
        det.run_round(net(), &[p], Day(day));
        prop_assert!(!det.aliased().contains_exact(p));
    }

    #[test]
    fn detector_merge_is_monotone(day in 0u32..1300) {
        // Labels can only accumulate inside the merge window.
        let day = Day(day);
        let truth: Vec<Prefix> = net()
            .population()
            .aliased_groups(day)
            .map(|g| g.prefix)
            .take(20)
            .collect();
        prop_assume!(!truth.is_empty());
        let mut det = AliasDetector::new(DetectorConfig::default());
        det.run_round(net(), &truth, day);
        let after_one = det.aliased().len();
        det.run_round(net(), &truth, day.plus(1));
        prop_assert!(det.aliased().len() >= after_one);
    }

    #[test]
    fn tbt_outcomes_are_exhaustive_and_stable(idx in any::<u64>(), day in 200u32..1300) {
        let day = Day(day);
        let groups: Vec<Prefix> = net()
            .population()
            .aliased_groups(day)
            .filter(|g| g.protos.contains(sixdust_net::Protocol::Icmp))
            .map(|g| g.prefix)
            .collect();
        prop_assume!(!groups.is_empty());
        let p = groups[(idx % groups.len() as u64) as usize];
        net().reset_state();
        let a = too_big_trick(net(), p, day, 7);
        net().reset_state();
        let b = too_big_trick(net(), p, day, 7);
        prop_assert_eq!(a.outcome, b.outcome, "TBT must be reproducible");
        match a.outcome {
            TbtOutcome::SharedPartial(n) => prop_assert!((1..=6).contains(&n)),
            TbtOutcome::SharedAll | TbtOutcome::SharedNone | TbtOutcome::Unsuitable => {}
        }
    }
}
