//! Property tests for the simulated Internet's core invariants.

use std::sync::OnceLock;

use proptest::prelude::*;
use sixdust_addr::Addr;
use sixdust_net::pattern::{AddrPattern, Feistel64};
use sixdust_net::{Day, FaultConfig, Internet, ProbeKind, Scale};

fn net() -> &'static Internet {
    static NET: OnceLock<Internet> = OnceLock::new();
    NET.get_or_init(|| Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn feistel_bijective(key in any::<u64>(), x in any::<u64>()) {
        let f = Feistel64::new(key);
        prop_assert_eq!(f.invert(f.permute(x)), x);
        prop_assert_eq!(f.permute(f.invert(x)), x);
    }

    #[test]
    fn pattern_member_roundtrip(
        which in 0u8..5,
        base in 0u64..0xffff,
        step in 1u64..64,
        count in 1u64..500,
        key in any::<u64>(),
        i_frac in 0.0f64..1.0,
    ) {
        let prefix: sixdust_addr::Prefix = "2001:db8:77::/64".parse().unwrap();
        let pattern = match which {
            0 => AddrPattern::LowByte { count },
            1 => AddrPattern::Incremental { base_iid: base, stride: step, count },
            2 => AddrPattern::Eui64Block { oui: 0x0014_22, serial_base: base as u32, count },
            3 => AddrPattern::RandomIid { key, count },
            _ => AddrPattern::Jittered { base_iid: base, step, count, key },
        };
        let i = ((count - 1) as f64 * i_frac) as u64;
        let addr = pattern.member_addr(prefix, i);
        prop_assert!(prefix.contains(addr));
        prop_assert_eq!(pattern.member_index(prefix, addr), Some(i), "{:?}", pattern);
    }

    #[test]
    fn pattern_membership_rejects_outsiders(
        step in 1u64..64,
        count in 1u64..200,
        key in any::<u64>(),
        probe_iid in any::<u64>(),
    ) {
        // Jittered membership must agree with exhaustive enumeration.
        let prefix: sixdust_addr::Prefix = "2001:db8:78::/64".parse().unwrap();
        let pattern = AddrPattern::Jittered { base_iid: 0x100, step, count, key };
        let probe = prefix.network().with_iid(probe_iid);
        let claims = pattern.member_index(prefix, probe);
        let truth = pattern
            .enumerate(prefix, count as usize)
            .iter()
            .position(|a| *a == probe)
            .map(|i| i as u64);
        prop_assert_eq!(claims, truth);
    }

    #[test]
    fn bgp_origin_consistent_with_announcements(v in any::<u128>()) {
        let addr = Addr(v);
        if let Some((id, prefix)) = net().registry().origin_prefix(addr) {
            prop_assert!(prefix.contains(addr));
            // The matched AS really announces a covering prefix (possibly
            // an aliased-prefix route added on top of the block routes).
            let info = net().registry().get(id);
            let in_block = info.blocks.iter().any(|b| b.contains(addr));
            prop_assert!(in_block, "AS{} matched {addr} outside its blocks", info.asn);
        }
    }

    #[test]
    fn probe_responses_deterministic(v in any::<u128>(), day in 0u32..1376) {
        let addr = Addr(v);
        let day = Day(day);
        let probe = ProbeKind::IcmpEcho { size: 8 };
        prop_assert_eq!(net().probe(addr, &probe, day), net().probe(addr, &probe, day));
    }

    #[test]
    fn responsive_hosts_answer_probes(idx in any::<u64>(), day in 0u32..1376) {
        let day = Day(day);
        let all = net().population().enumerate_responsive(day);
        prop_assume!(!all.is_empty());
        let (addr, protos, asid) = all[(idx % all.len() as u64) as usize];
        // The BGP origin matches the population's attribution.
        prop_assert_eq!(net().registry().origin(addr), Some(asid));
        if protos.contains(sixdust_net::Protocol::Icmp) {
            let rs = net().probe(addr, &ProbeKind::IcmpEcho { size: 8 }, day);
            prop_assert!(!rs.is_empty(), "{addr} enumerated responsive but silent");
        }
    }

    #[test]
    fn hop_addresses_are_routed(v in any::<u128>(), hop in 1u8..6, day in 0u32..1376) {
        let addr = Addr(v);
        let day = Day(day);
        let hop_addr = net().hop_addr(addr, hop, day);
        if hop_addr != Addr(0) {
            prop_assert!(net().registry().origin(hop_addr).is_some(), "unrouted hop {hop_addr}");
        }
    }

    #[test]
    fn wire_and_semantic_icmp_agree(idx in any::<u64>(), day in 0u32..1376) {
        let day = Day(day);
        let all = net().population().enumerate_responsive(day);
        prop_assume!(!all.is_empty());
        let (addr, ..) = all[(idx % all.len() as u64) as usize];
        let semantic = !net().probe(addr, &ProbeKind::IcmpEcho { size: 8 }, day).is_empty();
        let probe = sixdust_wire::Packet {
            ipv6: sixdust_wire::Ipv6Header::new(net().registry().vantage_addr(), addr, 64),
            transport: sixdust_wire::Transport::Icmpv6(
                sixdust_wire::icmpv6::Icmpv6::EchoRequest { ident: 7, seq: 1, payload: vec![0; 8] },
            ),
        };
        let wire = !net().send_bytes(&probe.to_bytes(), day).is_empty();
        prop_assert_eq!(semantic, wire);
    }
}
