//! Scaling the paper's Internet down to a laptop.
//!
//! The real IPv6 Hitlist input holds ~790 M addresses across ~22 k ASes; a
//! faithful re-run needs a scanning vantage point and four years. sixdust
//! scales all *magnitudes* by a configurable divisor while keeping all
//! *shapes* (CDF skew, hit-rate ratios, growth factors) intact. Every
//! experiment prints the divisor next to its counts so paper-vs-measured
//! comparisons stay honest.
//!
//! The [`Scale::population_mult`] knob points the other way: it multiplies
//! scaled address counts back up (1×/10×/100×) so the hitlist-at-scale
//! bench can sweep population without touching the entity structure —
//! the same ASes and prefixes, each simply denser.

use serde::{Deserialize, Serialize};

fn default_population_mult() -> u64 {
    1
}

/// Magnitude scaling configuration for the simulated Internet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Divisor applied to the paper's address counts (population sizes,
    /// source volumes). `1000` means one simulated address per thousand
    /// real ones.
    pub addr_div: u64,
    /// Divisor applied to entity counts that are already "small" in the
    /// paper (ASes, aliased prefixes, CPE fleets); usually gentler than
    /// `addr_div` so distributions keep enough support points.
    pub entity_div: u64,
    /// Multiplier applied to scaled address counts, after `addr_div`.
    /// Sweeping 1 → 10 → 100 grows the simulated population toward
    /// paper magnitudes while the entity structure (AS and prefix
    /// counts) stays fixed. Defaults to 1, so configs written before
    /// the knob existed deserialize unchanged.
    #[serde(default = "default_population_mult")]
    pub population_mult: u64,
    /// Master RNG seed; every derived decision is a pure function of this.
    pub seed: u64,
}

impl Scale {
    /// The default experiment scale: 1/1000 of paper address magnitudes,
    /// 1/10 of entity counts. A full four-year service run completes in
    /// minutes.
    pub fn paper() -> Scale {
        Scale { addr_div: 1000, entity_div: 10, population_mult: 1, seed: 0x0D06_F00D }
    }

    /// A miniature Internet for unit and integration tests: sub-second
    /// whole-pipeline runs.
    pub fn tiny() -> Scale {
        Scale { addr_div: 20_000, entity_div: 50, population_mult: 1, seed: 0x0D06_F00D }
    }

    /// Between `tiny` and `paper`; used by benches that need realistic
    /// shapes without multi-minute runtimes.
    pub fn small() -> Scale {
        Scale { addr_div: 5000, entity_div: 20, population_mult: 1, seed: 0x0D06_F00D }
    }

    /// Scales a paper address count, keeping at least `min`.
    pub fn addrs(&self, paper_count: u64, min: u64) -> u64 {
        (paper_count / self.addr_div).max(min).saturating_mul(self.population_mult.max(1))
    }

    /// Scales an entity count, keeping at least `min`.
    pub fn entities(&self, paper_count: u64, min: u64) -> u64 {
        (paper_count / self.entity_div).max(min)
    }

    /// Scales an address count with *stochastic rounding*: the fractional
    /// remainder becomes a deterministic per-`key` coin flip. Summed over
    /// many entities this preserves totals exactly, where a per-entity
    /// floor would inflate small populations at aggressive scales.
    pub fn addrs_frac(&self, paper_count: u64, key: u64) -> u64 {
        let whole = paper_count / self.addr_div;
        let rem = paper_count % self.addr_div;
        let bump =
            sixdust_addr::prf::chance(self.seed, u128::from(key), 0xF4AC, rem, self.addr_div);
        (whole + u64::from(bump)).saturating_mul(self.population_mult.max(1))
    }

    /// Returns a copy with a different seed (for determinism tests).
    pub fn with_seed(mut self, seed: u64) -> Scale {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different population multiplier (the
    /// 1×/10×/100× axis of the hitlist-at-scale bench curve).
    pub fn with_population_mult(mut self, mult: u64) -> Scale {
        self.population_mult = mult.max(1);
        self
    }
}

impl Default for Scale {
    fn default() -> Scale {
        Scale::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_math() {
        let s = Scale::paper();
        assert_eq!(s.addrs(790_000_000, 1), 790_000);
        assert_eq!(s.addrs(100, 10), 10, "floor respected");
        assert_eq!(s.entities(22_000, 1), 2_200);
    }

    #[test]
    fn presets_ordered() {
        assert!(Scale::tiny().addr_div > Scale::small().addr_div);
        assert!(Scale::small().addr_div > Scale::paper().addr_div);
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let s = Scale::paper().with_seed(42);
        assert_eq!(s.seed, 42);
        assert_eq!(s.addr_div, Scale::paper().addr_div);
    }

    #[test]
    fn population_mult_scales_addresses_not_entities() {
        let s = Scale::paper().with_population_mult(10);
        assert_eq!(s.addrs(790_000_000, 1), 7_900_000);
        assert_eq!(s.entities(22_000, 1), 2_200, "entity structure is fixed");
        // Stochastic rounding scales too: whole part multiplies exactly.
        assert_eq!(s.addrs_frac(1_000_000, 7), Scale::paper().addrs_frac(1_000_000, 7) * 10);
        // Zero is clamped so a bad config can't empty the Internet.
        assert_eq!(Scale::paper().with_population_mult(0).addrs(1000, 1), 1);
    }

    #[test]
    fn pre_mult_configs_deserialize_with_default() {
        let old = r#"{"addr_div": 1000, "entity_div": 10, "seed": 1}"#;
        let s: Scale = serde_json::from_str(old).expect("old config readable");
        assert_eq!(s.population_mult, 1);
        let round: Scale = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(round, s);
    }
}
