//! Scaling the paper's Internet down to a laptop.
//!
//! The real IPv6 Hitlist input holds ~790 M addresses across ~22 k ASes; a
//! faithful re-run needs a scanning vantage point and four years. sixdust
//! scales all *magnitudes* by a configurable divisor while keeping all
//! *shapes* (CDF skew, hit-rate ratios, growth factors) intact. Every
//! experiment prints the divisor next to its counts so paper-vs-measured
//! comparisons stay honest.

use serde::{Deserialize, Serialize};

/// Magnitude scaling configuration for the simulated Internet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Divisor applied to the paper's address counts (population sizes,
    /// source volumes). `1000` means one simulated address per thousand
    /// real ones.
    pub addr_div: u64,
    /// Divisor applied to entity counts that are already "small" in the
    /// paper (ASes, aliased prefixes, CPE fleets); usually gentler than
    /// `addr_div` so distributions keep enough support points.
    pub entity_div: u64,
    /// Master RNG seed; every derived decision is a pure function of this.
    pub seed: u64,
}

impl Scale {
    /// The default experiment scale: 1/1000 of paper address magnitudes,
    /// 1/10 of entity counts. A full four-year service run completes in
    /// minutes.
    pub fn paper() -> Scale {
        Scale { addr_div: 1000, entity_div: 10, seed: 0x0D06_F00D }
    }

    /// A miniature Internet for unit and integration tests: sub-second
    /// whole-pipeline runs.
    pub fn tiny() -> Scale {
        Scale { addr_div: 20_000, entity_div: 50, seed: 0x0D06_F00D }
    }

    /// Between `tiny` and `paper`; used by benches that need realistic
    /// shapes without multi-minute runtimes.
    pub fn small() -> Scale {
        Scale { addr_div: 5000, entity_div: 20, seed: 0x0D06_F00D }
    }

    /// Scales a paper address count, keeping at least `min`.
    pub fn addrs(&self, paper_count: u64, min: u64) -> u64 {
        (paper_count / self.addr_div).max(min)
    }

    /// Scales an entity count, keeping at least `min`.
    pub fn entities(&self, paper_count: u64, min: u64) -> u64 {
        (paper_count / self.entity_div).max(min)
    }

    /// Scales an address count with *stochastic rounding*: the fractional
    /// remainder becomes a deterministic per-`key` coin flip. Summed over
    /// many entities this preserves totals exactly, where a per-entity
    /// floor would inflate small populations at aggressive scales.
    pub fn addrs_frac(&self, paper_count: u64, key: u64) -> u64 {
        let whole = paper_count / self.addr_div;
        let rem = paper_count % self.addr_div;
        let bump =
            sixdust_addr::prf::chance(self.seed, u128::from(key), 0xF4AC, rem, self.addr_div);
        whole + u64::from(bump)
    }

    /// Returns a copy with a different seed (for determinism tests).
    pub fn with_seed(mut self, seed: u64) -> Scale {
        self.seed = seed;
        self
    }
}

impl Default for Scale {
    fn default() -> Scale {
        Scale::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_math() {
        let s = Scale::paper();
        assert_eq!(s.addrs(790_000_000, 1), 790_000);
        assert_eq!(s.addrs(100, 10), 10, "floor respected");
        assert_eq!(s.entities(22_000, 1), 2_200);
    }

    #[test]
    fn presets_ordered() {
        assert!(Scale::tiny().addr_div > Scale::small().addr_div);
        assert!(Scale::small().addr_div > Scale::paper().addr_div);
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let s = Scale::paper().with_seed(42);
        assert_eq!(s.seed, 42);
        assert_eq!(s.addr_div, Scale::paper().addr_div);
    }
}
