//! # sixdust-net — a deterministic simulated IPv6 Internet
//!
//! The paper under reproduction measures the *real* IPv6 Internet over
//! four years from a scanning vantage point. That substrate is not
//! available here, so this crate builds the closest synthetic equivalent
//! that exercises the same code paths (see `DESIGN.md` §2 for the full
//! substitution table):
//!
//! * [`registry::AsRegistry`] — ASes with announced prefixes and
//!   behavioural profiles: the paper's named cast (Fastly, Cloudflare,
//!   Akamai, Amazon, ANTEL, DTAG, Free SAS, the GFW-impacted Chinese
//!   networks of Table 5, Trafficforce, EpicUp, …) plus a scaled filler
//!   tail.
//! * [`population::Population`] — a generative host population: subnet
//!   groups with realistic address patterns, churn and growth; CPE fleets
//!   with rotating EUI-64 addresses; router interface pools.
//! * [`gfw::Gfw`] — the Great Firewall's DNS injection with its three
//!   observed eras.
//! * [`zones::DnsZones`] — domains, NS/MX records and top lists.
//! * [`internet::Internet`] — the composed simulator answering probes both
//!   semantically (fast path) and at wire level (bytes in, bytes out).
//!
//! Adverse conditions are first-class: [`faults::FaultConfig`] composes
//! bursty Gilbert–Elliott loss, per-protocol/per-AS overrides, response
//! duplication and corruption, ICMPv6 rate limiting and scheduled outage
//! windows, all seeded and deterministic.
//!
//! Everything is a pure function of [`scale::Scale::seed`]; the only
//! mutable state is PMTU caches (poked by the Too Big Trick), ICMPv6
//! rate-limiter budgets, and the controlled-domain query log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod fingerprint;
pub mod fleet;
pub mod gfw;
pub mod internet;
pub mod pattern;
pub mod population;
pub mod proto;
pub mod registry;
pub mod scale;
pub mod time;
pub mod zones;

pub use faults::{
    FaultConfig, FaultConfigBuilder, GilbertElliott, IcmpRateLimit, Outage, OutageScope,
};
pub use internet::{Internet, NetCounters, ProbeKind, Response};
pub use population::{GroupId, GroupKind, HostView, Population, SubnetGroup};
pub use proto::{ProtoSet, Protocol};
pub use registry::{AsCategory, AsId, AsInfo, AsRegistry, BackendMode};
pub use scale::Scale;
pub use time::{events, Day};
