//! Rotating address fleets: CPE devices and router interface pools.
//!
//! These two mechanisms generate the *accumulation bias* of Sec. 4.1:
//!
//! * **CPE fleets** — customer-premises devices with EUI-64 IIDs whose ISP
//!   rotates the /64 prefix every couple of weeks. Each rotation mints a
//!   new address for the same MAC; over four years 282 M input addresses
//!   trace back to only 22.7 M MACs. A subset of devices shares one MAC
//!   (the ZTE artifact: one EUI-64 in 240 k addresses).
//! * **Router pools** — internal last-hop interfaces that answer hop-limit
//!   expiry during traceroutes but nothing else. Chinese pools rotate
//!   weekly with random IIDs; together with the GFW's DNS injection they
//!   produce the 134 M falsely-responsive UDP/53 addresses.

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr, Eui64, Prefix};

use crate::registry::AsId;
use crate::time::Day;

/// Serial reserved for the shared-MAC artifact devices.
const SHARED_MAC_SERIAL: u32 = 7;
/// First serial used by regular devices.
const SERIAL_BASE: u32 = 0x10;

/// A fleet of rotating CPE devices inside one AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpeFleet {
    /// Owning AS.
    pub asid: AsId,
    /// The /40 region the fleet's /64s rotate within.
    pub region: Prefix,
    /// Number of devices.
    pub devices: u64,
    /// Devices `0..shared_mac` all embed the same MAC.
    pub shared_mac: u64,
    /// Vendor OUI of the fleet.
    pub oui: u32,
    /// Prefix rotation period in days.
    pub rotation_days: u32,
    /// Percentage of devices answering ICMP echo while current.
    pub respond_pct: u8,
    /// PRF seed.
    pub seed: u64,
}

/// A resolved CPE device behind an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpeView {
    /// Device index within the fleet.
    pub device: u64,
    /// Whether the address is the device's *current* address (only then is
    /// it responsive).
    pub current: bool,
    /// Whether the device answers ICMP at all.
    pub responds: bool,
}

impl CpeFleet {
    fn epoch(&self, day: Day) -> u64 {
        u64::from(day.0 / self.rotation_days.max(1))
    }

    fn subnet_at(&self, device: u64, epoch: u64) -> u64 {
        // 24 bits of /64 index within the /40 region.
        prf::prf_u128(self.seed, u128::from(device), 0xC0E_0000 ^ epoch) & 0xff_ffff
    }

    fn mac_of(&self, device: u64) -> Eui64 {
        if device < self.shared_mac {
            Eui64::from_oui_serial(self.oui, SHARED_MAC_SERIAL)
        } else {
            Eui64::from_oui_serial(self.oui, SERIAL_BASE + device as u32)
        }
    }

    /// The device's address at `day`.
    pub fn current_addr(&self, device: u64, day: Day) -> Addr {
        debug_assert!(device < self.devices);
        let subnet = self.subnet_at(device, self.epoch(day));
        let net64 = Addr(self.region.network().0 | (u128::from(subnet) << 64));
        self.mac_of(device).apply_to(net64)
    }

    /// Whether the device answers pings (a static per-device property).
    pub fn device_responds(&self, device: u64) -> bool {
        prf::chance(self.seed, u128::from(device), 0xC9, u64::from(self.respond_pct), 100)
    }

    /// Resolves an address inside the region back to a device.
    pub fn lookup(&self, addr: Addr, day: Day) -> Option<CpeView> {
        if !self.region.contains(addr) {
            return None;
        }
        let e = Eui64::from_addr(addr)?;
        if e.oui() != self.oui {
            return None;
        }
        let mac = e.mac();
        let serial = (u32::from(mac[3]) << 16) | (u32::from(mac[4]) << 8) | u32::from(mac[5]);
        let subnet = ((addr.0 >> 64) & 0xff_ffff) as u64;
        let epoch = self.epoch(day);
        if serial == SHARED_MAC_SERIAL {
            // Shared-MAC pool: scan the (small) pool for a subnet match.
            for device in 0..self.shared_mac {
                if self.subnet_at(device, epoch) == subnet {
                    return Some(CpeView {
                        device,
                        current: true,
                        responds: self.device_responds(device),
                    });
                }
            }
            // A past address of some shared-MAC device.
            return Some(CpeView { device: 0, current: false, responds: false });
        }
        let device = u64::from(serial.checked_sub(SERIAL_BASE)?);
        if device >= self.devices {
            return None;
        }
        let current = self.subnet_at(device, epoch) == subnet;
        Some(CpeView { device, current, responds: self.device_responds(device) })
    }

    /// All current device addresses at `day` (what a RIPE-Atlas-style
    /// source observes).
    pub fn current_addrs(&self, day: Day) -> impl Iterator<Item = Addr> + '_ {
        let epoch_day = day;
        (0..self.devices).map(move |d| self.current_addr(d, epoch_day))
    }
}

/// A pool of router interfaces for one AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterPool {
    /// Owning AS.
    pub asid: AsId,
    /// The /40 region interface addresses live in.
    pub region: Prefix,
    /// Number of interface slots.
    pub slots: u64,
    /// Rotation period in days (0 = static interfaces).
    pub rotation_days: u32,
    /// PRF seed.
    pub seed: u64,
}

impl RouterPool {
    fn epoch(&self, day: Day) -> u64 {
        day.0.checked_div(self.rotation_days).map_or(0, u64::from)
    }

    /// The interface address of `slot` at `day`.
    ///
    /// Rotating pools (Chinese networks) change both subnet and IID each
    /// epoch — the "regularly changing addresses mostly with randomized
    /// IIDs" of Sec. 4.2. Static pools keep small, structured IIDs.
    pub fn hop_addr(&self, slot: u64, day: Day) -> Addr {
        debug_assert!(slot < self.slots.max(1));
        let epoch = self.epoch(day);
        let subnet = prf::prf_u128(self.seed, u128::from(slot), 0x407_0000 ^ epoch) & 0xff_ffff;
        let net = self.region.network().0 | (u128::from(subnet) << 64);
        let iid = if self.rotation_days == 0 {
            // Stable infrastructure: low IID.
            1 + slot
        } else {
            prf::prf_u128(self.seed, u128::from(slot), 0x408_0000 ^ epoch)
        };
        Addr(net | u128::from(iid))
    }

    /// Whether `addr` is (or was) one of this pool's interface addresses.
    pub fn contains_region(&self, addr: Addr) -> bool {
        self.region.contains(addr)
    }

    /// Resolves an address back to a slot — only possible for *static*
    /// pools (rotating interfaces are write-only: they answer hop-limit
    /// expiry but never direct probes, like the Chinese last-hops of
    /// Sec. 4.2).
    pub fn lookup_static(&self, addr: Addr) -> Option<u64> {
        if self.rotation_days != 0 || !self.region.contains(addr) {
            return None;
        }
        let slot = addr.iid().checked_sub(1)?;
        if slot < self.slots && self.hop_addr(slot, Day(0)) == addr {
            Some(slot)
        } else {
            None
        }
    }

    /// Whether the interface at `slot` answers direct ICMP echo on `day`:
    /// a bit under half of stable infrastructure does, and — like the rest
    /// of the population — the infrastructure grows over the window.
    pub fn slot_responds(&self, slot: u64, day: Day) -> bool {
        if !prf::chance(self.seed, u128::from(slot), 0x40D, 1, 5) {
            return false;
        }
        let activation = if prf::chance(self.seed, u128::from(slot), 0x40E, 11, 20) {
            0
        } else {
            prf::uniform(self.seed, u128::from(slot), 0x40F, 1376) as u32
        };
        day.0 >= activation
    }

    /// All interface addresses at `day`.
    pub fn addrs_at(&self, day: Day) -> impl Iterator<Item = Addr> + '_ {
        (0..self.slots).map(move |s| self.hop_addr(s, day))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> CpeFleet {
        CpeFleet {
            asid: AsId(3),
            region: "2001:db8:100::/40".parse().unwrap(),
            devices: 50,
            shared_mac: 3,
            oui: 0x001422,
            rotation_days: 14,
            respond_pct: 60,
            seed: 9,
        }
    }

    #[test]
    fn addresses_rotate_with_epochs() {
        let f = fleet();
        let a0 = f.current_addr(10, Day(0));
        let a1 = f.current_addr(10, Day(13));
        let a2 = f.current_addr(10, Day(14));
        assert_eq!(a0, a1, "same epoch, same address");
        assert_ne!(a0, a2, "rotation mints a new address");
        assert!(f.region.contains(a0) && f.region.contains(a2));
    }

    #[test]
    fn same_mac_across_rotations() {
        let f = fleet();
        let a0 = f.current_addr(10, Day(0));
        let a2 = f.current_addr(10, Day(28));
        assert_eq!(a0.iid(), a2.iid(), "EUI-64 IID follows the device");
        assert_eq!(Eui64::from_addr(a0).unwrap(), Eui64::from_addr(a2).unwrap());
    }

    #[test]
    fn lookup_resolves_current_and_past() {
        let f = fleet();
        let addr = f.current_addr(20, Day(0));
        let v = f.lookup(addr, Day(0)).unwrap();
        assert_eq!(v.device, 20);
        assert!(v.current);
        // After rotation the old address is no longer current.
        let v2 = f.lookup(addr, Day(30)).unwrap();
        assert_eq!(v2.device, 20);
        assert!(!v2.current);
    }

    #[test]
    fn shared_mac_devices_share_iid() {
        let f = fleet();
        let a = f.current_addr(0, Day(0));
        let b = f.current_addr(1, Day(0));
        let c = f.current_addr(5, Day(0));
        assert_eq!(a.iid(), b.iid(), "shared MAC pool");
        assert_ne!(a.iid(), c.iid(), "regular device has its own MAC");
        assert_ne!(a, b, "but different subnets");
        let v = f.lookup(a, Day(0)).unwrap();
        assert!(v.current);
        assert_eq!(v.device, 0);
    }

    #[test]
    fn foreign_addresses_rejected() {
        let f = fleet();
        assert!(f.lookup("2001:db9::1".parse().unwrap(), Day(0)).is_none());
        // Inside region but not EUI-64:
        assert!(f.lookup("2001:db8:100::1234".parse().unwrap(), Day(0)).is_none());
        // EUI-64 but wrong OUI:
        let wrong = Eui64::from_oui_serial(0x002686, SERIAL_BASE)
            .apply_to("2001:db8:100:42::".parse().unwrap());
        assert!(f.lookup(wrong, Day(0)).is_none());
    }

    #[test]
    fn respond_fraction_close_to_target() {
        let f = CpeFleet { devices: 2000, ..fleet() };
        let n = (0..2000).filter(|d| f.device_responds(*d)).count();
        assert!((1050..1350).contains(&n), "{n} of 2000 respond");
    }

    #[test]
    fn router_rotation() {
        let p = RouterPool {
            asid: AsId(1),
            region: "2001:db8:200::/40".parse().unwrap(),
            slots: 10,
            rotation_days: 7,
            seed: 3,
        };
        let a = p.hop_addr(4, Day(0));
        let b = p.hop_addr(4, Day(6));
        let c = p.hop_addr(4, Day(7));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(p.region.contains(a));
        // Accumulation: distinct addrs over 10 epochs ≈ slots × epochs.
        let mut all = std::collections::HashSet::new();
        for e in 0..10 {
            for s in 0..10 {
                all.insert(p.hop_addr(s, Day(e * 7)));
            }
        }
        assert!(all.len() > 95, "{} distinct addresses", all.len());
    }

    #[test]
    fn static_router_pool() {
        let p = RouterPool {
            asid: AsId(1),
            region: "2001:db8:300::/40".parse().unwrap(),
            slots: 5,
            rotation_days: 0,
            seed: 3,
        };
        assert_eq!(p.hop_addr(2, Day(0)), p.hop_addr(2, Day(1000)));
        assert_eq!(p.hop_addr(2, Day(0)).iid(), 3, "low structured IID");
    }
}
