//! Composable fault injection for the simulated Internet.
//!
//! The real hitlist service survives exactly the conditions a clean
//! simulation never exercises: bursty packet loss, ICMPv6 rate-limited
//! routers, duplicated and corrupted responses, and whole-AS or
//! vantage-point outages. Worse, the pipeline's own 30-day unresponsive
//! filter turns a broken scanner into a destructive one — a few bad
//! rounds silently evict live addresses (the bias mechanics of Gasser et
//! al., IMC 2018). This module models those conditions as a *composable,
//! seeded, deterministic* fault plan:
//!
//! * baseline uniform loss ([`FaultConfig::drop_permille`], the original
//!   single knob);
//! * **bursty loss** via a discretized two-state [Gilbert–Elliott]
//!   channel evaluated per /64 over days ([`GilbertElliott`]);
//! * per-protocol and per-AS loss overrides;
//! * response **duplication** and byte-level response **corruption**
//!   (the latter drives the never-panic wire-parser paths with real
//!   garbage);
//! * per-router **ICMPv6 rate limiting** (a day-bucketed token budget —
//!   degrades yarrp traceroutes and the Too Big Trick);
//! * scheduled **outage windows** for the vantage point, a single AS, or
//!   a single protocol (total blackout of one probe module), expressed in
//!   the same [`Day`] timeline as every other event.
//!
//! Every stochastic decision is a pure function of `(world seed, fault
//! seed, question)` via [`sixdust_addr::prf`], so two runs with the same
//! seeds and the same [`FaultConfig`] produce byte-identical results
//! regardless of worker count or probe order. The only stateful fault is
//! the ICMPv6 rate limiter (a real token bucket is stateful by nature);
//! it never affects the end-to-end scan modules, only hop-limited
//! traceroute replies and Packet Too Big absorption.
//!
//! [Gilbert–Elliott]: https://en.wikipedia.org/wiki/Burst_error#Gilbert%E2%80%93Elliott_model

use serde::{Deserialize, Serialize};

use sixdust_addr::{prf, Addr};

use crate::proto::Protocol;
use crate::time::Day;

/// A discretized two-state Gilbert–Elliott loss channel.
///
/// Each /64 destination prefix carries an independent two-state Markov
/// process over days: sojourn times in the Good and Bad states are drawn
/// (deterministically, from the fault seed and the prefix) with the
/// configured means, and probes are dropped with the state's loss
/// probability. This yields *bursts*: a subnet behind a congested or
/// rate-limited path stays lossy for `mean_bad_days` in a row rather
/// than losing an uncorrelated trickle — the failure shape that defeats
/// naive retry loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Mean sojourn time in the Good state, in days (≥ 1).
    pub mean_good_days: u32,
    /// Mean sojourn time in the Bad state, in days (≥ 1) — the expected
    /// burst length.
    pub mean_bad_days: u32,
    /// Loss probability in the Good state, in permille.
    pub good_drop_permille: u32,
    /// Loss probability in the Bad state, in permille.
    pub bad_drop_permille: u32,
}

impl Default for GilbertElliott {
    fn default() -> GilbertElliott {
        GilbertElliott {
            mean_good_days: 12,
            mean_bad_days: 3,
            good_drop_permille: 5,
            bad_drop_permille: 500,
        }
    }
}

impl GilbertElliott {
    /// Whether the channel for `key` (a /64 prefix identifier) is in the
    /// Bad state on `day`. Pure function of `(seed, key, day)`: the chain
    /// is replayed from day 0 with deterministic sojourn draws, so any
    /// caller — any thread, any probe order — sees the same state.
    pub fn bad_on(&self, seed: u64, key: u128, day: Day) -> bool {
        let good = self.mean_good_days.max(1);
        let bad = self.mean_bad_days.max(1);
        let mut stream = prf::PrfStream::new(seed, key, 0x6E11);
        // Start from the stationary distribution.
        let mut in_bad = stream.next_bounded(u64::from(good + bad)) < u64::from(bad);
        let mut t: u64 = 0;
        loop {
            // Sojourn uniform in [1, 2·mean − 1]: mean `mean`, bounded walk.
            let mean = if in_bad { bad } else { good };
            let run = 1 + stream.next_bounded(u64::from(2 * mean - 1).max(1));
            if t + run > u64::from(day.0) {
                return in_bad;
            }
            t += run;
            in_bad = !in_bad;
        }
    }

    /// The loss probability (permille) this channel applies to `key` on
    /// `day`.
    pub fn drop_permille_on(&self, seed: u64, key: u128, day: Day) -> u32 {
        if self.bad_on(seed, key, day) {
            self.bad_drop_permille
        } else {
            self.good_drop_permille
        }
    }
}

/// A day-bucketed ICMPv6 token budget per router interface (and per
/// PMTU-cache backend for Packet Too Big absorption). Real routers rate
/// limit ICMPv6 error generation (RFC 4443 §2.4f); under a tight budget
/// yarrp's Time Exceeded harvest and the Too Big Trick's cache seeding
/// degrade exactly like they do against production hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcmpRateLimit {
    /// ICMPv6 error/control messages each entity handles per day.
    pub per_day: u32,
}

/// What an [`Outage`] takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutageScope {
    /// The scanning vantage point itself: *nothing* answers (the scanner
    /// is cut off, every probe of every protocol times out).
    Vantage,
    /// One origin AS withdraws: probes toward its address space get no
    /// response at all (not even on-path middlebox injections).
    Asn(u32),
    /// One protocol goes fully dark (a filtered port, a dead middlebox, a
    /// broken probe module): every probe of that protocol times out, for
    /// every destination, while the other four protocols keep answering.
    Protocol(Protocol),
}

/// A scheduled outage window `[from, until)` on the simulation timeline —
/// the same [`Day`] axis as the GFW eras and source events in
/// [`crate::time::events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// First day of the outage (inclusive).
    pub from: Day,
    /// First day after the outage (exclusive).
    pub until: Day,
    /// What is down.
    pub scope: OutageScope,
    /// For [`OutageScope::Vantage`]: the ASN of the *specific* vantage
    /// point this window cuts off, or `None` for the historical meaning
    /// of "every vantage is down". Ignored for the other scopes. The
    /// serde default keeps pre-existing serialized configs global.
    #[serde(default)]
    pub vantage: Option<u32>,
}

impl Outage {
    /// A vantage-point outage window `[from, until)` downing every
    /// vantage (the scanner side is cut off globally).
    pub fn vantage(from: Day, until: Day) -> Outage {
        Outage { from, until, scope: OutageScope::Vantage, vantage: None }
    }

    /// A vantage outage window `[from, until)` downing only the vantage
    /// whose source AS is `asn`; other vantages keep scanning.
    pub fn vantage_asn(asn: u32, from: Day, until: Day) -> Outage {
        Outage { from, until, scope: OutageScope::Vantage, vantage: Some(asn) }
    }

    /// An AS outage window `[from, until)`.
    pub fn asn(asn: u32, from: Day, until: Day) -> Outage {
        Outage { from, until, scope: OutageScope::Asn(asn), vantage: None }
    }

    /// A single-protocol blackout window `[from, until)`.
    pub fn protocol(proto: Protocol, from: Day, until: Day) -> Outage {
        Outage { from, until, scope: OutageScope::Protocol(proto), vantage: None }
    }

    /// Whether the window covers `day`.
    pub fn active(&self, day: Day) -> bool {
        self.from <= day && day < self.until
    }
}

/// Fault injection knobs (smoltcp-style: every example and test can dial
/// adverse conditions in).
///
/// Construct via [`FaultConfig::builder`] or the chainable `with_*`
/// methods, like every other config in the workspace; [`FaultConfig::lossless`]
/// is the all-off preset unit tests want. The default reproduces the
/// original single-knob model: 0.4 % uniform loss, nothing else.
///
/// ```
/// use sixdust_net::{Day, FaultConfig, GilbertElliott, Outage};
/// let faults = FaultConfig::builder()
///     .drop_permille(10)
///     .burst(GilbertElliott::default())
///     .duplicate_permille(20)
///     .outage(Outage::vantage(Day(60), Day(68)))
///     .build();
/// assert!(faults.vantage_down(Day(63)));
/// assert!(!faults.vantage_down(Day(68)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(default)]
pub struct FaultConfig {
    /// Baseline probe/response drop probability in permille (applies per
    /// probe attempt).
    pub drop_permille: u32,
    /// Extra fault-stream seed, mixed into every fault decision. Varying
    /// it yields a different fault *realization* over the same simulated
    /// world; two runs with equal world seed and equal `FaultConfig` are
    /// byte-identical.
    pub seed: u64,
    /// Bursty loss channel layered on top of the baseline (the effective
    /// loss for a probe is the *maximum* of all applicable rates).
    pub burst: Option<GilbertElliott>,
    /// Per-protocol loss overrides in permille (max-composed with the
    /// other rates). Models e.g. UDP/53 middleboxes shedding load.
    pub proto_drop: Vec<(Protocol, u32)>,
    /// Per-origin-AS loss overrides in permille (max-composed). Models a
    /// congested peering edge toward one network.
    pub as_drop: Vec<(u32, u32)>,
    /// Probability (permille) that a response is delivered twice.
    pub duplicate_permille: u32,
    /// Probability (permille) that a wire-level response has bytes
    /// flipped in flight. Only observable on the byte path
    /// ([`crate::Internet::send_bytes`]); the semantic fast path carries
    /// typed responses that cannot be bit-flipped.
    pub corrupt_permille: u32,
    /// Per-router ICMPv6 rate limiting.
    pub icmp_rate_limit: Option<IcmpRateLimit>,
    /// Scheduled outage windows.
    pub outages: Vec<Outage>,
}

impl FaultConfig {
    /// The historical default: 0.4 % uniform loss, no other faults.
    pub fn default_loss() -> FaultConfig {
        FaultConfig { drop_permille: 4, ..FaultConfig::default() }
    }

    /// Every fault off — the deterministic-world preset unit tests use.
    pub fn lossless() -> FaultConfig {
        FaultConfig::default()
    }

    /// Starts a builder seeded with [`FaultConfig::lossless`].
    pub fn builder() -> FaultConfigBuilder {
        FaultConfigBuilder::default()
    }

    /// Returns the config with the baseline drop rate replaced.
    pub fn with_drop_permille(mut self, permille: u32) -> FaultConfig {
        self.drop_permille = permille;
        self
    }

    /// Returns the config with the fault-stream seed replaced.
    pub fn with_seed(mut self, seed: u64) -> FaultConfig {
        self.seed = seed;
        self
    }

    /// Returns the config with the burst channel replaced.
    pub fn with_burst(mut self, burst: GilbertElliott) -> FaultConfig {
        self.burst = Some(burst);
        self
    }

    /// Returns the config with a per-protocol loss override added.
    pub fn with_proto_drop(mut self, proto: Protocol, permille: u32) -> FaultConfig {
        self.proto_drop.push((proto, permille));
        self
    }

    /// Returns the config with a per-AS loss override added.
    pub fn with_as_drop(mut self, asn: u32, permille: u32) -> FaultConfig {
        self.as_drop.push((asn, permille));
        self
    }

    /// Returns the config with the duplication rate replaced.
    pub fn with_duplicate_permille(mut self, permille: u32) -> FaultConfig {
        self.duplicate_permille = permille;
        self
    }

    /// Returns the config with the corruption rate replaced.
    pub fn with_corrupt_permille(mut self, permille: u32) -> FaultConfig {
        self.corrupt_permille = permille;
        self
    }

    /// Returns the config with ICMPv6 rate limiting enabled.
    pub fn with_icmp_rate_limit(mut self, limit: IcmpRateLimit) -> FaultConfig {
        self.icmp_rate_limit = Some(limit);
        self
    }

    /// Returns the config with an outage window added.
    pub fn with_outage(mut self, outage: Outage) -> FaultConfig {
        self.outages.push(outage);
        self
    }

    /// Whether *every* vantage point is down on `day` (a global
    /// vantage outage; windows naming a specific vantage don't count).
    pub fn vantage_down(&self, day: Day) -> bool {
        self.outages
            .iter()
            .any(|o| o.scope == OutageScope::Vantage && o.vantage.is_none() && o.active(day))
    }

    /// Whether the vantage whose source AS is `asn` is down on `day` —
    /// true for global vantage outages and for windows naming `asn`.
    pub fn vantage_down_from(&self, asn: u32, day: Day) -> bool {
        self.outages.iter().any(|o| {
            o.scope == OutageScope::Vantage && o.active(day) && o.vantage.map_or(true, |v| v == asn)
        })
    }

    /// Whether `asn` is down on `day`.
    pub fn asn_down(&self, asn: u32, day: Day) -> bool {
        self.outages.iter().any(|o| o.scope == OutageScope::Asn(asn) && o.active(day))
    }

    /// Whether `proto` is fully blacked out on `day`.
    pub fn proto_down(&self, proto: Protocol, day: Day) -> bool {
        self.outages.iter().any(|o| o.scope == OutageScope::Protocol(proto) && o.active(day))
    }

    /// The effective loss probability (permille) for a probe toward
    /// `dst` using `proto` on `day`, where `origin_asn` is the
    /// destination's origin AS if routed. Max-composes the baseline, the
    /// burst channel state for the destination /64, and the per-protocol
    /// and per-AS overrides. Outages are handled separately (total
    /// silence, not a loss rate).
    pub fn loss_permille(
        &self,
        seed: u64,
        dst: Addr,
        proto: Option<Protocol>,
        origin_asn: Option<u32>,
        day: Day,
    ) -> u32 {
        let mut permille = self.drop_permille;
        if let Some(burst) = &self.burst {
            permille = permille.max(burst.drop_permille_on(seed, dst.0 >> 64, day));
        }
        if let Some(p) = proto {
            for (proto, rate) in &self.proto_drop {
                if *proto == p {
                    permille = permille.max(*rate);
                }
            }
        }
        if let Some(asn) = origin_asn {
            for (o_asn, rate) in &self.as_drop {
                if *o_asn == asn {
                    permille = permille.max(*rate);
                }
            }
        }
        permille
    }

    /// Whether any stochastic fault is configured (fast-path gate: a
    /// lossless config skips every per-probe fault branch).
    pub fn any_loss(&self) -> bool {
        self.drop_permille > 0
            || self.burst.is_some()
            || !self.proto_drop.is_empty()
            || !self.as_drop.is_empty()
    }
}

/// Builder for [`FaultConfig`]; starts from [`FaultConfig::lossless`].
#[derive(Debug, Clone, Default)]
pub struct FaultConfigBuilder {
    config: FaultConfig,
}

impl FaultConfigBuilder {
    /// Sets the baseline drop probability in permille.
    pub fn drop_permille(mut self, permille: u32) -> FaultConfigBuilder {
        self.config.drop_permille = permille;
        self
    }

    /// Sets the fault-stream seed.
    pub fn seed(mut self, seed: u64) -> FaultConfigBuilder {
        self.config.seed = seed;
        self
    }

    /// Enables the bursty Gilbert–Elliott loss channel.
    pub fn burst(mut self, burst: GilbertElliott) -> FaultConfigBuilder {
        self.config.burst = Some(burst);
        self
    }

    /// Adds a per-protocol loss override in permille.
    pub fn proto_drop(mut self, proto: Protocol, permille: u32) -> FaultConfigBuilder {
        self.config.proto_drop.push((proto, permille));
        self
    }

    /// Adds a per-AS loss override in permille.
    pub fn as_drop(mut self, asn: u32, permille: u32) -> FaultConfigBuilder {
        self.config.as_drop.push((asn, permille));
        self
    }

    /// Sets the response duplication probability in permille.
    pub fn duplicate_permille(mut self, permille: u32) -> FaultConfigBuilder {
        self.config.duplicate_permille = permille;
        self
    }

    /// Sets the wire-response corruption probability in permille.
    pub fn corrupt_permille(mut self, permille: u32) -> FaultConfigBuilder {
        self.config.corrupt_permille = permille;
        self
    }

    /// Enables per-router ICMPv6 rate limiting.
    pub fn icmp_rate_limit(mut self, limit: IcmpRateLimit) -> FaultConfigBuilder {
        self.config.icmp_rate_limit = Some(limit);
        self
    }

    /// Adds a scheduled outage window.
    pub fn outage(mut self, outage: Outage) -> FaultConfigBuilder {
        self.config.outages.push(outage);
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> FaultConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_reproduces_chained() {
        let a = FaultConfig::builder()
            .drop_permille(7)
            .seed(9)
            .burst(GilbertElliott::default())
            .proto_drop(Protocol::Udp53, 100)
            .as_drop(4134, 200)
            .duplicate_permille(3)
            .corrupt_permille(2)
            .icmp_rate_limit(IcmpRateLimit { per_day: 10 })
            .outage(Outage::vantage(Day(1), Day(2)))
            .build();
        let b = FaultConfig::lossless()
            .with_drop_permille(7)
            .with_seed(9)
            .with_burst(GilbertElliott::default())
            .with_proto_drop(Protocol::Udp53, 100)
            .with_as_drop(4134, 200)
            .with_duplicate_permille(3)
            .with_corrupt_permille(2)
            .with_icmp_rate_limit(IcmpRateLimit { per_day: 10 })
            .with_outage(Outage::vantage(Day(1), Day(2)));
        assert_eq!(a, b);
    }

    #[test]
    fn default_is_lossless_and_default_loss_matches_seed_world() {
        assert!(!FaultConfig::lossless().any_loss());
        assert_eq!(FaultConfig::default_loss().drop_permille, 4);
        assert!(FaultConfig::default_loss().any_loss());
    }

    #[test]
    fn gilbert_elliott_is_deterministic_and_bursty() {
        let ge = GilbertElliott {
            mean_good_days: 10,
            mean_bad_days: 5,
            good_drop_permille: 0,
            bad_drop_permille: 1000,
        };
        let key = 0x2001_0db8_u128 << 96 >> 64;
        // Deterministic.
        for d in 0..200 {
            assert_eq!(ge.bad_on(1, key, Day(d)), ge.bad_on(1, key, Day(d)));
        }
        // Bursty: state changes are far rarer than days.
        let states: Vec<bool> = (0..600).map(|d| ge.bad_on(1, key, Day(d))).collect();
        let flips = states.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(flips > 10, "the chain must alternate: {flips} flips");
        assert!(flips < 200, "sojourns must be multi-day: {flips} flips");
        // Stationary share of bad days ≈ 5/15 = 1/3, loosely.
        let bad_days = states.iter().filter(|b| **b).count();
        assert!((100..350).contains(&bad_days), "bad days {bad_days}/600");
    }

    #[test]
    fn burst_states_differ_across_prefixes_and_seeds() {
        let ge = GilbertElliott::default();
        let days: Vec<Day> = (0..300).map(Day).collect();
        let a: Vec<bool> = days.iter().map(|d| ge.bad_on(1, 1 << 32, *d)).collect();
        let b: Vec<bool> = days.iter().map(|d| ge.bad_on(1, 2 << 32, *d)).collect();
        let c: Vec<bool> = days.iter().map(|d| ge.bad_on(2, 1 << 32, *d)).collect();
        assert_ne!(a, b, "independent per prefix");
        assert_ne!(a, c, "seed changes the realization");
    }

    #[test]
    fn loss_composes_by_max() {
        let f = FaultConfig::builder()
            .drop_permille(10)
            .proto_drop(Protocol::Udp53, 300)
            .as_drop(4134, 500)
            .build();
        let a: Addr = "2001:db8::1".parse().unwrap();
        assert_eq!(f.loss_permille(1, a, Some(Protocol::Icmp), None, Day(0)), 10);
        assert_eq!(f.loss_permille(1, a, Some(Protocol::Udp53), None, Day(0)), 300);
        assert_eq!(f.loss_permille(1, a, Some(Protocol::Udp53), Some(4134), Day(0)), 500);
        assert_eq!(f.loss_permille(1, a, Some(Protocol::Icmp), Some(9999), Day(0)), 10);
    }

    #[test]
    fn outage_windows_half_open() {
        let f = FaultConfig::builder()
            .outage(Outage::vantage(Day(10), Day(12)))
            .outage(Outage::asn(4134, Day(20), Day(25)))
            .outage(Outage::protocol(Protocol::Udp53, Day(30), Day(33)))
            .build();
        assert!(!f.vantage_down(Day(9)));
        assert!(f.vantage_down(Day(10)));
        assert!(f.vantage_down(Day(11)));
        assert!(!f.vantage_down(Day(12)));
        assert!(f.asn_down(4134, Day(20)));
        assert!(!f.asn_down(4134, Day(25)));
        assert!(!f.asn_down(3356, Day(20)));
        assert!(!f.proto_down(Protocol::Udp53, Day(29)));
        assert!(f.proto_down(Protocol::Udp53, Day(30)));
        assert!(f.proto_down(Protocol::Udp53, Day(32)));
        assert!(!f.proto_down(Protocol::Udp53, Day(33)));
        assert!(!f.proto_down(Protocol::Icmp, Day(30)), "other protocols stay up");
    }

    #[test]
    fn serde_roundtrip() {
        let f = FaultConfig::builder()
            .drop_permille(7)
            .burst(GilbertElliott::default())
            .outage(Outage::asn(4134, Day(1), Day(4)))
            .build();
        let json = serde_json::to_string(&f).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
        // Old single-knob configs still parse (serde defaults).
        let legacy: FaultConfig = serde_json::from_str(r#"{"drop_permille": 4}"#).unwrap();
        assert_eq!(legacy, FaultConfig::default_loss());
    }
}
