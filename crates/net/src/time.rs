//! Simulation time: days since the IPv6 Hitlist service launch.
//!
//! Day 0 is 2018-07-01, the first scan in the published data. The paper's
//! analysis window closes at 2022-04-07 (day 1376). All event boundaries
//! (GFW eras, source additions, the Trafficforce flood, the GFW filter
//! deployment) are constants here so the whole timeline is auditable in one
//! place.

use serde::{Deserialize, Serialize};

/// A simulation day (days since 2018-07-01).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Day(pub u32);

impl Day {
    /// Service launch, 2018-07-01.
    pub const LAUNCH: Day = Day(0);
    /// The paper's final snapshot, 2022-04-07.
    pub const PAPER_END: Day = Day(1376);

    /// Yearly snapshot days used by Table 1 and Fig. 5
    /// (2018-07-01, 2019-04-01, 2020-04-01, 2021-04-02, 2022-04-07).
    pub const SNAPSHOTS: [Day; 5] = [Day(0), Day(274), Day(640), Day(1006), Day(1376)];

    /// Days elapsed since another day (saturating).
    pub fn since(self, earlier: Day) -> u32 {
        self.0.saturating_sub(earlier.0)
    }

    /// This day plus `n` days.
    pub fn plus(self, n: u32) -> Day {
        Day(self.0 + n)
    }

    /// Renders as an ISO date assuming day 0 = 2018-07-01 (civil calendar,
    /// Gregorian leap rules).
    pub fn to_date(self) -> String {
        // Days since 1970-01-01 for 2018-07-01 is 17713.
        let mut days = 17713 + self.0 as i64;
        let mut year = 1970i64;
        loop {
            let ylen = if leap(year) { 366 } else { 365 };
            if days < ylen {
                break;
            }
            days -= ylen;
            year += 1;
        }
        let month_lens =
            [31, if leap(year) { 29 } else { 28 }, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
        let mut month = 0usize;
        while days >= month_lens[month] {
            days -= month_lens[month];
            month += 1;
        }
        format!("{year:04}-{:02}-{:02}", month + 1, days + 1)
    }
}

fn leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Event timeline constants (all in days since launch).
pub mod events {
    use super::Day;

    /// One-time rDNS source injection (early 2019), the cause of the small
    /// 2019→2020 dip once those addresses decayed (Table 1 discussion).
    pub const RDNS_IMPORT: Day = Day(250);

    /// First GFW injection era (A records): a spike in 2019.
    pub const GFW_ERA1: (Day, Day) = (Day(330), Day(430));
    /// Second GFW injection era (A records): a spike in 2020.
    pub const GFW_ERA2: (Day, Day) = (Day(650), Day(800));
    /// Third and largest era (Teredo AAAA records), early 2021 until the
    /// paper's filter deployment.
    pub const GFW_ERA3: (Day, Day) = (Day(940), Day(1340));

    /// The paper's GFW filter goes live in the service (February 2022):
    /// UDP/53 results are cleaned post-scan from here on.
    pub const GFW_FILTER_DEPLOYED: Day = Day(1310);

    /// Trafficforce (AS212144) starts announcing and answering its /64
    /// flood (February 2022).
    pub const TRAFFICFORCE_FLOOD: Day = Day(1315);

    /// Scan cadence: daily at launch, slowing as the input grows. Returns
    /// the inter-scan gap in days at a given day (1 → 5, matching the
    /// "runtime grew to several days" note and the churn growth in Fig. 4).
    pub fn scan_gap(day: Day) -> u32 {
        match day.0 {
            0..=399 => 1,
            400..=799 => 2,
            800..=1099 => 3,
            1100..=1299 => 4,
            _ => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_date() {
        assert_eq!(Day::LAUNCH.to_date(), "2018-07-01");
    }

    #[test]
    fn paper_end_date() {
        assert_eq!(Day::PAPER_END.to_date(), "2022-04-07");
    }

    #[test]
    fn snapshot_dates_match_table1() {
        let dates: Vec<String> = Day::SNAPSHOTS.iter().map(|d| d.to_date()).collect();
        assert_eq!(
            dates,
            vec!["2018-07-01", "2019-04-01", "2020-04-01", "2021-04-02", "2022-04-07"]
        );
    }

    #[test]
    fn leap_year_handling() {
        // 2020-02-29 exists: day 608 = 2020-02-29.
        assert_eq!(Day(608).to_date(), "2020-02-29");
        assert_eq!(Day(609).to_date(), "2020-03-01");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Day(10).plus(5), Day(15));
        assert_eq!(Day(10).since(Day(3)), 7);
        assert_eq!(Day(3).since(Day(10)), 0, "saturates");
    }

    #[test]
    fn cadence_slows() {
        assert_eq!(events::scan_gap(Day(0)), 1);
        assert!(events::scan_gap(Day::PAPER_END) > events::scan_gap(Day(0)));
    }

    #[test]
    fn eras_ordered_and_inside_window() {
        let (s1, e1) = events::GFW_ERA1;
        let (s2, e2) = events::GFW_ERA2;
        let (s3, e3) = events::GFW_ERA3;
        assert!(s1 < e1 && e1 < s2 && s2 < e2 && e2 < s3 && s3 < e3);
        assert!(e3 <= Day::PAPER_END.plus(100));
        assert!(events::GFW_FILTER_DEPLOYED < e3);
    }
}
