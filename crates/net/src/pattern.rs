//! Address assignment patterns inside subnet groups.
//!
//! Real IPv6 deployments assign addresses in structured ways — low-byte
//! counters (`::1`, `::2`, …), incremental server farms, EUI-64 SLAAC,
//! privacy (random) IIDs — and every target generation algorithm in the
//! paper exists *because* of that structure. A [`AddrPattern`] answers two
//! dual questions about a `/64` (or wider) group:
//!
//! * membership: given an address, which member index is it (if any)?
//! * enumeration: what are the first `n` member addresses?
//!
//! For pseudo-random IIDs the two directions are reconciled with a small
//! Feistel permutation: member `i` maps to IID `feistel(i)`, and membership
//! inverts the permutation and checks the index bound — random-looking
//! addresses with O(1) membership and no stored state.

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr, Eui64, Prefix};

/// A 4-round balanced Feistel permutation over `u64`, keyed by `key`.
///
/// Not cryptography — just a deterministic bijection whose output looks
/// uniform, which is all an address simulator needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Feistel64 {
    key: u64,
}

impl Feistel64 {
    /// Creates a permutation for the given key.
    pub fn new(key: u64) -> Feistel64 {
        Feistel64 { key }
    }

    fn round(&self, half: u32, r: u64) -> u32 {
        (prf::mix2(self.key ^ r, u64::from(half)) & 0xffff_ffff) as u32
    }

    /// Forward permutation.
    pub fn permute(&self, x: u64) -> u64 {
        let (mut l, mut r) = ((x >> 32) as u32, x as u32);
        for i in 0..4u64 {
            let nl = r;
            let nr = l ^ self.round(r, i);
            l = nl;
            r = nr;
        }
        (u64::from(l) << 32) | u64::from(r)
    }

    /// Inverse permutation.
    pub fn invert(&self, y: u64) -> u64 {
        let (mut l, mut r) = ((y >> 32) as u32, y as u32);
        for i in (0..4u64).rev() {
            let pr = l;
            let pl = r ^ self.round(l, i);
            l = pl;
            r = pr;
        }
        (u64::from(l) << 32) | u64::from(r)
    }
}

/// How member addresses are laid out inside a group's prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddrPattern {
    /// `prefix::1 … prefix::count` — the classic low-byte server block.
    LowByte {
        /// Number of members.
        count: u64,
    },
    /// A dense incremental cluster: `base_iid + i * stride`.
    ///
    /// With `stride <= 64` these are exactly the clusters the paper's
    /// distance clustering extends; with `stride == 1` they are the
    /// Akamai-style incrementally assigned farms 6Tree over-generates in.
    Incremental {
        /// IID of member 0.
        base_iid: u64,
        /// Gap between consecutive members (>= 1).
        stride: u64,
        /// Number of members.
        count: u64,
    },
    /// SLAAC EUI-64 addresses from a vendor OUI and consecutive serials.
    Eui64Block {
        /// The 24-bit vendor OUI.
        oui: u32,
        /// Serial of member 0.
        serial_base: u32,
        /// Number of members.
        count: u64,
    },
    /// Pseudo-random (privacy-extension-style) IIDs via a Feistel
    /// permutation keyed by the group.
    RandomIid {
        /// Permutation key.
        key: u64,
        /// Number of members.
        count: u64,
    },
    /// A sparse-but-clustered range: member `j` sits at
    /// `base_iid + j*step + jitter(j)` with `jitter(j) < step`. Mean gap
    /// `step`, density `1/step` — the "densely populated but not fully
    /// responsive" regions the paper's distance clustering extends, where
    /// naive in-fill hits only ~1/step of generated addresses.
    Jittered {
        /// IID floor of the range.
        base_iid: u64,
        /// Mean gap between members (>= 1).
        step: u64,
        /// Number of members.
        count: u64,
        /// Jitter PRF key.
        key: u64,
    },
    /// Every address in the prefix is a member (fully responsive /
    /// "aliased" prefix).
    FullPrefix,
}

impl AddrPattern {
    /// Number of members (capped at `u64::MAX` for [`AddrPattern::FullPrefix`]).
    pub fn count(&self, prefix: Prefix) -> u64 {
        match self {
            AddrPattern::LowByte { count }
            | AddrPattern::Incremental { count, .. }
            | AddrPattern::Eui64Block { count, .. }
            | AddrPattern::Jittered { count, .. }
            | AddrPattern::RandomIid { count, .. } => *count,
            AddrPattern::FullPrefix => {
                let bits = prefix.size_log2();
                if bits >= 64 {
                    u64::MAX
                } else {
                    1u64 << bits
                }
            }
        }
    }

    /// The member index of `addr` inside `prefix`, if it is a member.
    pub fn member_index(&self, prefix: Prefix, addr: Addr) -> Option<u64> {
        if !prefix.contains(addr) {
            return None;
        }
        match self {
            AddrPattern::LowByte { count } => {
                let off = addr.0 - prefix.network().0;
                if off >= 1 && off <= u128::from(*count) {
                    Some((off - 1) as u64)
                } else {
                    None
                }
            }
            AddrPattern::Incremental { base_iid, stride, count } => {
                let iid = addr.iid();
                if addr.network_u64() != prefix.network().network_u64() {
                    return None;
                }
                if iid < *base_iid {
                    return None;
                }
                let off = iid - base_iid;
                if off.is_multiple_of(*stride) && off / stride < *count {
                    Some(off / stride)
                } else {
                    None
                }
            }
            AddrPattern::Eui64Block { oui, serial_base, count } => {
                let e = Eui64::from_addr(addr)?;
                if addr.network_u64() != prefix.network().network_u64() || e.oui() != *oui {
                    return None;
                }
                let mac = e.mac();
                let serial =
                    (u32::from(mac[3]) << 16) | (u32::from(mac[4]) << 8) | u32::from(mac[5]);
                let idx = serial.checked_sub(*serial_base)?;
                if u64::from(idx) < *count {
                    Some(u64::from(idx))
                } else {
                    None
                }
            }
            AddrPattern::RandomIid { key, count } => {
                if addr.network_u64() != prefix.network().network_u64() {
                    return None;
                }
                let idx = Feistel64::new(*key).invert(addr.iid());
                if idx < *count {
                    Some(idx)
                } else {
                    None
                }
            }
            AddrPattern::Jittered { base_iid, step, count, key } => {
                if addr.network_u64() != prefix.network().network_u64() {
                    return None;
                }
                let iid = addr.iid();
                if iid < *base_iid {
                    return None;
                }
                let j = (iid - base_iid) / (*step).max(1);
                let probe = AddrPattern::Jittered {
                    base_iid: *base_iid,
                    step: *step,
                    count: *count,
                    key: *key,
                };
                if j < *count && probe.member_addr(prefix, j) == addr {
                    Some(j)
                } else {
                    None
                }
            }
            AddrPattern::FullPrefix => {
                let off = addr.0 - prefix.network().0;
                Some(off as u64) // low 64 bits suffice as a member id
            }
        }
    }

    /// The address of member `i` (must be `< count`).
    pub fn member_addr(&self, prefix: Prefix, i: u64) -> Addr {
        debug_assert!(
            matches!(self, AddrPattern::FullPrefix) || i < self.count(prefix),
            "member index out of range"
        );
        match self {
            AddrPattern::LowByte { .. } => Addr(prefix.network().0 + u128::from(i) + 1),
            AddrPattern::Incremental { base_iid, stride, .. } => {
                prefix.network().with_iid(base_iid + i * stride)
            }
            AddrPattern::Eui64Block { oui, serial_base, .. } => {
                Eui64::from_oui_serial(*oui, serial_base + i as u32).apply_to(prefix.network())
            }
            AddrPattern::RandomIid { key, .. } => {
                prefix.network().with_iid(Feistel64::new(*key).permute(i))
            }
            AddrPattern::Jittered { base_iid, step, key, .. } => {
                let jitter = prf::prf_u128(*key, u128::from(i), 0x717) % step.max(&1u64);
                prefix.network().with_iid(base_iid + i * step + jitter)
            }
            AddrPattern::FullPrefix => Addr(prefix.network().0 + u128::from(i)),
        }
    }

    /// Enumerates up to `limit` member addresses in index order.
    pub fn enumerate(&self, prefix: Prefix, limit: usize) -> Vec<Addr> {
        let n = self.count(prefix).min(limit as u64);
        (0..n).map(|i| self.member_addr(prefix, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn feistel_is_a_bijection() {
        let f = Feistel64::new(0xabcd);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let y = f.permute(i);
            assert_eq!(f.invert(y), i);
            assert!(seen.insert(y), "collision at {i}");
        }
    }

    #[test]
    fn feistel_keys_differ() {
        let a = Feistel64::new(1).permute(42);
        let b = Feistel64::new(2).permute(42);
        assert_ne!(a, b);
    }

    #[test]
    fn low_byte_membership() {
        let pat = AddrPattern::LowByte { count: 10 };
        let net = p("2001:db8:1:2::/64");
        assert_eq!(pat.member_addr(net, 0), "2001:db8:1:2::1".parse().unwrap());
        assert_eq!(pat.member_index(net, "2001:db8:1:2::a".parse().unwrap()), Some(9));
        assert_eq!(pat.member_index(net, "2001:db8:1:2::b".parse().unwrap()), None);
        assert_eq!(pat.member_index(net, "2001:db8:1:2::".parse().unwrap()), None);
        assert_eq!(pat.member_index(net, "2001:db8:9::1".parse().unwrap()), None);
    }

    #[test]
    fn incremental_with_stride() {
        let pat = AddrPattern::Incremental { base_iid: 0x1000, stride: 4, count: 100 };
        let net = p("2001:db8::/64");
        let a7 = pat.member_addr(net, 7);
        assert_eq!(a7.iid(), 0x1000 + 28);
        assert_eq!(pat.member_index(net, a7), Some(7));
        // Off-stride address is not a member.
        let off = net.network().with_iid(0x1000 + 27);
        assert_eq!(pat.member_index(net, off), None);
        // Below base is not a member (no underflow panic).
        let below = net.network().with_iid(0xfff);
        assert_eq!(pat.member_index(net, below), None);
    }

    #[test]
    fn eui64_block() {
        let pat = AddrPattern::Eui64Block { oui: 0x001422, serial_base: 100, count: 50 };
        let net = p("2001:db8:5::/64");
        let a = pat.member_addr(net, 3);
        assert!(Eui64::addr_is_eui64(a));
        assert_eq!(pat.member_index(net, a), Some(3));
        // Wrong OUI rejected.
        let other = Eui64::from_oui_serial(0x002686, 103).apply_to(net.network());
        assert_eq!(pat.member_index(net, other), None);
    }

    #[test]
    fn random_iid_roundtrip_and_bounds() {
        let pat = AddrPattern::RandomIid { key: 77, count: 1000 };
        let net = p("2001:db8:7::/64");
        for i in [0u64, 1, 500, 999] {
            let a = pat.member_addr(net, i);
            assert_eq!(pat.member_index(net, a), Some(i));
        }
        // An address whose inverse falls outside the count is rejected:
        // member 1000 of a larger pattern with the same key.
        let big = AddrPattern::RandomIid { key: 77, count: 2000 };
        let outside = big.member_addr(net, 1500);
        assert_eq!(pat.member_index(net, outside), None);
    }

    #[test]
    fn full_prefix_all_members() {
        let pat = AddrPattern::FullPrefix;
        let net = p("2001:db8:42::/64");
        assert_eq!(
            pat.member_index(net, "2001:db8:42::dead:beef".parse().unwrap()),
            Some(0xdead_beef)
        );
        assert_eq!(pat.member_index(net, "2001:db8:43::1".parse().unwrap()), None);
        assert_eq!(pat.count(p("2001:db8::/120")), 256);
    }

    #[test]
    fn enumerate_respects_limit() {
        let pat = AddrPattern::LowByte { count: 100 };
        let net = p("2001:db8::/64");
        assert_eq!(pat.enumerate(net, 5).len(), 5);
        assert_eq!(pat.enumerate(net, 1000).len(), 100);
    }

    #[test]
    fn enumeration_and_membership_agree() {
        let net = p("2001:db8:9::/64");
        for pat in [
            AddrPattern::LowByte { count: 40 },
            AddrPattern::Incremental { base_iid: 9, stride: 16, count: 40 },
            AddrPattern::Eui64Block { oui: 0x001422, serial_base: 0, count: 40 },
            AddrPattern::RandomIid { key: 5, count: 40 },
        ] {
            for (i, a) in pat.enumerate(net, 40).into_iter().enumerate() {
                assert_eq!(pat.member_index(net, a), Some(i as u64), "{pat:?}");
            }
        }
    }
}
