//! The generative host population of the simulated Internet.
//!
//! Built deterministically from the [`AsRegistry`]: every AS profile is
//! translated into *subnet groups* (servers, dense hidden clusters, flaky
//! hosts, DNS servers, fully responsive prefixes) plus per-AS CPE fleets
//! and router pools. The population answers the central question of the
//! whole simulation — "who, if anyone, is behind this address on this
//! day?" — in O(trie lookup) without storing per-address state.
//!
//! ## Address layout within an AS
//!
//! Announced space is carved into 256 `/40` slots per announced `/32`.
//! A slot allocator hands slots to, in order: coverage-style aliased
//! prefixes (plen ≤ 40, aligned), bulk aliased prefixes (plen > 40, packed
//! by capacity), then one slot each for servers, dense clusters, flaky
//! hosts, DNS servers, the CPE region and the router region.

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr, Prefix, PrefixTrie};

use crate::fingerprint::{DnsBehavior, TcpFingerprint};
use crate::fleet::{CpeFleet, RouterPool};
use crate::proto::{ProtoSet, Protocol};
use crate::registry::{AsCategory, AsId, AsRegistry, BackendMode, ProtoMix};
use crate::time::Day;

/// Index of a subnet group in the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

/// What kind of hosts a group holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupKind {
    /// Stable responsive servers (churny, growing).
    Servers,
    /// Dense incremental clusters invisible to passive sources.
    DenseHidden,
    /// Responsive early, then dark, with sparse revivals.
    Flaky,
    /// Dedicated UDP/53 responders.
    DnsServers,
    /// A fully responsive ("aliased") prefix.
    Aliased {
        /// Backend topology for the TBT.
        backends: BackendMode,
        /// First day the prefix answers.
        since: Day,
        /// Whether addresses show differing TCP window sizes (the 0.5 %
        /// heterogeneous cohort of Sec. 5.1).
        hetero_window: bool,
    },
}

/// A subnet group: a prefix, a member pattern and liveness parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubnetGroup {
    /// Covering prefix (a /64 except for aliased groups).
    pub prefix: Prefix,
    /// Member layout.
    pub pattern: crate::pattern::AddrPattern,
    /// Host kind.
    pub kind: GroupKind,
    /// Owning AS.
    pub asid: AsId,
    /// Protocols: for servers a per-member draw from this mix; for aliased
    /// groups the fixed set.
    pub protos: ProtoSet,
    /// Protocol mix archetype for per-member draws (servers only).
    pub mix: ProtoMix,
    /// Fraction (percent) of members already active at day 0.
    pub start_pct: u8,
    /// Liveness epoch length in days.
    pub epoch_days: u32,
    /// Per-epoch uptime percentage.
    pub uptime_pct: u8,
    /// Percentage of members visible to passive sources (used by
    /// [`Population::dense_visible`] for [`GroupKind::DenseHidden`]).
    pub visible_pct: u8,
    /// Group id (self reference for PRF keying).
    pub id: u32,
}

impl SubnetGroup {
    /// The activation day of member `i` (growth model): `start_pct` of the
    /// members are active from day 0, the rest activate uniformly over the
    /// four-year window.
    pub fn activation_day(&self, seed: u64, member: u64) -> Day {
        let key = member ^ (u64::from(self.id) << 40);
        if prf::chance(seed, u128::from(key), 0x9C7, u64::from(self.start_pct), 100) {
            Day(0)
        } else {
            Day(prf::uniform(seed, u128::from(key), 0x9C8, u64::from(Day::PAPER_END.0)) as u32)
        }
    }

    /// Whether member `i` is alive (responsive) on `day`.
    pub fn member_alive(&self, seed: u64, member: u64, day: Day) -> bool {
        let key = u128::from(member) | (u128::from(self.id) << 80);
        match self.kind {
            GroupKind::Aliased { since, .. } => day >= since,
            GroupKind::Flaky => {
                // Alive during an initial window, then dark, reviving with
                // ~45 % duty in sparse later epochs (the Sec. 6 rescan pool).
                let act = prf::uniform(seed, key, 0xF1A, 650);
                let life = 45 + prf::uniform(seed, key, 0xF1B, 130);
                let d = u64::from(day.0);
                if d < act {
                    false
                } else if d < act + life {
                    true
                } else {
                    let epoch = (d - act - life) / 75;
                    prf::chance(seed, key, 0xF1C ^ epoch, 45, 100)
                }
            }
            GroupKind::Servers | GroupKind::DenseHidden | GroupKind::DnsServers => {
                if day < self.activation_day(seed, member) {
                    return false;
                }
                // Two cohorts: most members are near-always-on (long dark
                // runs are rare, so the 30-day filter rarely evicts them);
                // a flappy minority churns on short epochs and produces the
                // per-scan churn of Fig. 4.
                // Per-member phase offsets desynchronize epoch boundaries
                // so churn is spread over days instead of spiking.
                let phase = prf::uniform(seed, key, 0xA1F, 64) as u32;
                if prf::chance(seed, key, 0xA10, 22, 25) {
                    // Dark runs of the stable cohort stay under the 30-day
                    // filter window (a host that answers 97 % of epochs is
                    // essentially never evicted, matching the longevity of
                    // real server deployments).
                    let len = self.epoch_days.clamp(1, 14);
                    let epoch = u64::from((day.0 + phase) / len);
                    prf::chance(seed, key, 0xA11 ^ (epoch << 4), 97, 100)
                } else {
                    let epoch = u64::from((day.0 + phase) / 7);
                    prf::chance(
                        seed,
                        key,
                        0xA12 ^ (epoch << 4),
                        u64::from(self.uptime_pct.min(70)),
                        100,
                    )
                }
            }
        }
    }

    /// The protocol set of member `i`.
    pub fn member_protos(&self, seed: u64, member: u64) -> ProtoSet {
        match self.kind {
            GroupKind::Aliased { .. } => self.protos,
            GroupKind::DnsServers => {
                ProtoMix::DnsServer.draw(seed, u128::from(member) | (u128::from(self.id) << 80))
            }
            _ => self.mix.draw(seed, u128::from(member) | (u128::from(self.id) << 80)),
        }
    }
}

/// What lookup resolved an address to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostView {
    /// Stable backend identity (keys the PMTU cache and the fingerprint).
    pub backend_uid: u64,
    /// Owning AS.
    pub asid: AsId,
    /// Protocols this address answers *today*.
    pub protos: ProtoSet,
    /// TCP fingerprint of the backend.
    pub fingerprint: TcpFingerprint,
    /// DNS responder behaviour (when UDP/53 is answered).
    pub dns: Option<DnsBehavior>,
    /// The group, if the host belongs to one (CPE devices do not).
    pub group: Option<GroupId>,
}

/// The full population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Population {
    groups: Vec<SubnetGroup>,
    trie: PrefixTrie<u32>,
    cpe: Vec<CpeFleet>,
    cpe_trie: PrefixTrie<u32>,
    routers: Vec<RouterPool>,
    router_trie: PrefixTrie<u32>,
    seed: u64,
}

/// Per-AS /40 slot allocator.
struct SlotAlloc {
    slots: Vec<Prefix>, // all /40 slots in announcement order
    next: usize,
}

impl SlotAlloc {
    fn new(announced: &[Prefix]) -> SlotAlloc {
        let mut slots = Vec::new();
        for p in announced {
            match p.len() {
                32 => {
                    for i in 0..16 {
                        let p36 = p.nibble_subprefix(i);
                        for j in 0..16 {
                            slots.push(p36.nibble_subprefix(j));
                        }
                    }
                }
                28 => { /* whole-block announcements are aliased wholesale */ }
                other => panic!("unsupported announced prefix length /{other}"),
            }
        }
        SlotAlloc { slots, next: 0 }
    }

    fn take(&mut self) -> Prefix {
        let p = self
            .slots
            .get(self.next)
            .copied()
            .unwrap_or_else(|| panic!("AS ran out of /40 slots (allocated {})", self.next));
        self.next += 1;
        p
    }

    /// Takes a /36-aligned run of 16 slots and returns the covering /36.
    fn take_aligned_36(&mut self) -> Prefix {
        while !self.next.is_multiple_of(16) {
            self.next += 1;
        }
        let p = self.take();
        self.next += 15;
        p.trim(36)
    }
}

impl Population {
    /// Builds the population for a registry.
    pub fn build(registry: &AsRegistry) -> Population {
        let scale = registry.scale();
        let seed = scale.seed;
        let mut groups: Vec<SubnetGroup> = Vec::new();
        let mut cpe = Vec::new();
        let mut routers = Vec::new();

        let push_group = |groups: &mut Vec<SubnetGroup>, mut g: SubnetGroup| {
            g.id = groups.len() as u32;
            groups.push(g);
        };

        for (asid, info) in registry.iter() {
            let p = &info.profile;
            let mut alloc = SlotAlloc::new(&info.prefixes);
            let as_seed = prf::mix2(seed, u64::from(info.asn));

            // ---- aliased prefixes ----
            for (spec_idx, spec) in p.aliased.iter().enumerate() {
                let hetero = |gidx: u64| prf::chance(as_seed, u128::from(gidx), 0x4E7, 1, 200);
                if spec.plen == 28 {
                    // Whole-block aliases (EpicUp): one group per block.
                    for (i, block) in info.blocks.iter().enumerate() {
                        push_group(
                            &mut groups,
                            SubnetGroup {
                                prefix: *block,
                                pattern: crate::pattern::AddrPattern::FullPrefix,
                                kind: GroupKind::Aliased {
                                    backends: spec.backends,
                                    since: spec.since,
                                    hetero_window: hetero(i as u64),
                                },
                                asid,
                                protos: spec.protos,
                                mix: ProtoMix::Web,
                                start_pct: 100,
                                epoch_days: 30,
                                uptime_pct: 100,
                                visible_pct: 100,
                                id: 0,
                            },
                        );
                    }
                    continue;
                }
                let count =
                    if spec.count <= 16 { spec.count } else { scale.entities(spec.count, 4) };
                if spec.plen <= 40 {
                    // Coverage aliases: /36s (aligned) or /40 slots.
                    for i in 0..count {
                        let prefix =
                            if spec.plen == 36 { alloc.take_aligned_36() } else { alloc.take() };
                        push_group(
                            &mut groups,
                            SubnetGroup {
                                prefix,
                                pattern: crate::pattern::AddrPattern::FullPrefix,
                                kind: GroupKind::Aliased {
                                    backends: spec.backends,
                                    since: spec.since,
                                    hetero_window: hetero(i),
                                },
                                asid,
                                protos: spec.protos,
                                mix: ProtoMix::Web,
                                start_pct: 100,
                                epoch_days: 30,
                                uptime_pct: 100,
                                visible_pct: 100,
                                id: 0,
                            },
                        );
                    }
                } else {
                    // Bulk aliases: packed into /40 slots by capacity. New
                    // deployments appear over the window (the Fig. 5 growth
                    // from 12 k to 42.8 k labels): ~28 % exist at launch,
                    // the rest activate uniformly.
                    let cap: u64 = 1u64 << (spec.plen - 40).min(24);
                    let mut remaining = count;
                    while remaining > 0 {
                        let slot = alloc.take();
                        let here = remaining.min(cap);
                        for j in 0..here {
                            let net = Addr(
                                slot.network().0 | (u128::from(j) << (128 - u32::from(spec.plen))),
                            );
                            let gkey = net.0 >> 64;
                            let since = if spec.since > Day::LAUNCH {
                                spec.since
                            } else if prf::chance(as_seed, gkey, 0xA5E, 28, 100) {
                                Day(0)
                            } else {
                                Day(prf::uniform(as_seed, gkey, 0xA5F, u64::from(Day::PAPER_END.0))
                                    as u32)
                            };
                            push_group(
                                &mut groups,
                                SubnetGroup {
                                    prefix: Prefix::new(net, spec.plen),
                                    pattern: crate::pattern::AddrPattern::FullPrefix,
                                    kind: GroupKind::Aliased {
                                        backends: spec.backends,
                                        since,
                                        hetero_window: hetero(
                                            (u64::from(spec_idx as u32) << 32) | j,
                                        ),
                                    },
                                    asid,
                                    protos: spec.protos,
                                    mix: ProtoMix::Web,
                                    start_pct: 100,
                                    epoch_days: 30,
                                    uptime_pct: 100,
                                    visible_pct: 100,
                                    id: 0,
                                },
                            );
                        }
                        remaining -= here;
                    }
                }
            }

            // ---- servers ----
            let start_pct = (p.growth_start_frac * 100.0) as u8;
            let servers_n = scale.addrs_frac(p.responsive_servers, as_seed ^ 0x51);
            Self::build_member_groups(
                &mut groups,
                &mut alloc,
                asid,
                as_seed,
                servers_n,
                GroupKind::Servers,
                p.proto_mix,
                start_pct,
                10,
                86,
                0x51,
            );

            // ---- dense hidden clusters ----
            let dense_n = scale.addrs_frac(p.dense_hidden, as_seed ^ 0xDE);
            if dense_n > 0 {
                let region = alloc.take();
                let mut remaining = dense_n;
                let mut c = 0u64;
                while remaining > 0 {
                    let r = prf::prf_u128(as_seed, u128::from(c), 0xDE2);
                    let count = (40 + r % 760).min(remaining);
                    // Mean gap 4-12 between members: densely populated but
                    // not fully responsive (the Sec. 6 DC hit-rate shape).
                    let step = 4 + (r >> 32) % 9;
                    let base_iid = (r >> 40 & 0xfff) * 0x100;
                    let subnet = prf::prf_u128(as_seed, u128::from(c), 0xDE3) & 0xff_ffff;
                    let prefix =
                        Prefix::new(Addr(region.network().0 | (u128::from(subnet) << 64)), 64);
                    push_group(
                        &mut groups,
                        SubnetGroup {
                            prefix,
                            pattern: crate::pattern::AddrPattern::Jittered {
                                base_iid,
                                step,
                                count,
                                key: prf::mix2(as_seed, c),
                            },
                            kind: GroupKind::DenseHidden,
                            asid,
                            protos: ProtoSet::EMPTY,
                            mix: p.proto_mix,
                            start_pct,
                            epoch_days: 60,
                            uptime_pct: 96,
                            visible_pct: p.dense_visible_pct,
                            id: 0,
                        },
                    );
                    remaining -= count;
                    c += 1;
                }
            }

            // ---- flaky hosts ----
            let flaky_n = scale.addrs_frac(p.flaky_servers, as_seed ^ 0xF1);
            Self::build_member_groups(
                &mut groups,
                &mut alloc,
                asid,
                as_seed,
                flaky_n,
                GroupKind::Flaky,
                p.proto_mix,
                start_pct,
                10,
                86,
                0x52,
            );

            // ---- DNS servers ----
            let dns_n = scale.addrs_frac(p.dns_servers, as_seed ^ 0xD5);
            Self::build_member_groups(
                &mut groups,
                &mut alloc,
                asid,
                as_seed,
                dns_n,
                GroupKind::DnsServers,
                ProtoMix::DnsServer,
                start_pct.max(60),
                30,
                94,
                0x53,
            );

            // ---- CPE fleet ----
            let devices = scale.addrs_frac(p.cpe_devices, as_seed ^ 0xCE);
            let shared = if p.shared_mac_addrs == 0 {
                0
            } else {
                // Accumulated shared-MAC addresses = devices × epochs; with
                // fortnightly rotation over the window there are ~98 epochs.
                (scale.addrs(p.shared_mac_addrs, 98) / 98).max(2)
            };
            if devices + shared > 0 {
                let region = alloc.take();
                cpe.push(CpeFleet {
                    asid,
                    region,
                    devices: devices + shared,
                    shared_mac: shared,
                    oui: if p.shared_mac_addrs > 0 { 0x001422 } else { cpe_oui(info.asn) },
                    rotation_days: 14,
                    respond_pct: 28,
                    seed: as_seed,
                });
            }

            // ---- router pool ----
            let hops = if p.router_hops == 0 { 0 } else { scale.addrs(p.router_hops, 0) };
            if hops > 0 || matches!(info.category, AsCategory::Transit | AsCategory::Measurement) {
                let region = alloc.take();
                let mut rotation: u32 = match info.category {
                    AsCategory::ChineseIsp => 7,
                    AsCategory::Isp => 30,
                    _ => 0,
                };
                let epochs = Day::PAPER_END.0.checked_div(rotation).map_or(1, u64::from);
                // Accumulated distinct addresses ≈ slots × epochs; when the
                // scaled pool is too small to sustain rotation, model it as
                // a static set of exactly `hops` interfaces so the AS's
                // accumulated contribution stays proportional.
                let mut slots = hops / epochs;
                if slots == 0 {
                    rotation = 0;
                    slots = hops.max(2);
                }
                routers.push(RouterPool {
                    asid,
                    region,
                    slots,
                    rotation_days: rotation,
                    seed: as_seed,
                });
            }
        }

        let mut trie = PrefixTrie::new();
        for g in &groups {
            trie.insert(g.prefix, g.id);
        }
        let mut cpe_trie = PrefixTrie::new();
        for (i, f) in cpe.iter().enumerate() {
            cpe_trie.insert(f.region, i as u32);
        }
        let mut router_trie = PrefixTrie::new();
        for (i, r) in routers.iter().enumerate() {
            router_trie.insert(r.region, i as u32);
        }
        Population { groups, trie, cpe, cpe_trie, routers, router_trie, seed }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_member_groups(
        groups: &mut Vec<SubnetGroup>,
        alloc: &mut SlotAlloc,
        asid: AsId,
        as_seed: u64,
        total: u64,
        kind: GroupKind,
        mix: ProtoMix,
        start_pct: u8,
        epoch_days: u32,
        uptime_pct: u8,
        tag: u64,
    ) {
        if total == 0 {
            return;
        }
        let region = alloc.take();
        let mut remaining = total;
        let mut c = 0u64;
        while remaining > 0 {
            let r = prf::prf_u128(as_seed, u128::from(c), tag);
            let count = (4 + r % 28).min(remaining);
            let subnet = prf::prf_u128(as_seed, u128::from(c), tag ^ 0x77) & 0xff_ffff;
            let prefix = Prefix::new(Addr(region.network().0 | (u128::from(subnet) << 64)), 64);
            let pattern = match (r >> 40) % 10 {
                0..=5 => crate::pattern::AddrPattern::LowByte { count },
                6..=7 => crate::pattern::AddrPattern::RandomIid { key: r ^ as_seed, count },
                _ => crate::pattern::AddrPattern::Incremental {
                    base_iid: ((r >> 44) & 0xff) * 0x10,
                    stride: 1,
                    count,
                },
            };
            let id = groups.len() as u32;
            groups.push(SubnetGroup {
                prefix,
                pattern,
                kind,
                asid,
                protos: ProtoSet::EMPTY,
                mix,
                start_pct,
                epoch_days,
                uptime_pct,
                visible_pct: 100,
                id,
            });
            remaining -= count;
            c += 1;
        }
    }

    /// The PRF seed (shared with the registry's scale).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All groups.
    pub fn groups(&self) -> &[SubnetGroup] {
        &self.groups
    }

    /// A group by id.
    pub fn group(&self, id: GroupId) -> &SubnetGroup {
        &self.groups[id.0 as usize]
    }

    /// All CPE fleets.
    pub fn cpe_fleets(&self) -> &[CpeFleet] {
        &self.cpe
    }

    /// All router pools.
    pub fn router_pools(&self) -> &[RouterPool] {
        &self.routers
    }

    /// The router pool owned by `asid`, if any.
    pub fn router_pool_of(&self, asid: AsId) -> Option<&RouterPool> {
        self.routers.iter().find(|r| r.asid == asid)
    }

    /// Resolves an address to a live host view on `day`.
    pub fn lookup(&self, addr: Addr, day: Day) -> Option<HostView> {
        if let Some(&gid) = self.trie.lookup_value(addr) {
            let g = &self.groups[gid as usize];
            if let Some(member) = g.pattern.member_index(g.prefix, addr) {
                return self.member_view(g, member, addr, day);
            }
        }
        if let Some(&ri) = self.router_trie.lookup_value(addr) {
            let pool = &self.routers[ri as usize];
            if let Some(slot) = pool.lookup_static(addr) {
                if pool.slot_responds(slot, day) {
                    return Some(HostView {
                        backend_uid: prf::mix2(pool.seed, slot) | (1 << 62),
                        asid: pool.asid,
                        protos: ProtoSet::of(&[Protocol::Icmp]),
                        fingerprint: TcpFingerprint::profile(4),
                        dns: None,
                        group: None,
                    });
                }
            }
            return None;
        }
        if let Some(&ci) = self.cpe_trie.lookup_value(addr) {
            let fleet = &self.cpe[ci as usize];
            let v = fleet.lookup(addr, day)?;
            if v.current && v.responds {
                return Some(HostView {
                    backend_uid: prf::mix2(fleet.seed, v.device) | (1 << 63),
                    asid: fleet.asid,
                    protos: ProtoSet::of(&[Protocol::Icmp]),
                    fingerprint: TcpFingerprint::profile(5),
                    dns: None,
                    group: None,
                });
            }
            return None;
        }
        None
    }

    fn member_view(&self, g: &SubnetGroup, member: u64, addr: Addr, day: Day) -> Option<HostView> {
        if !g.member_alive(self.seed, member, day) {
            return None;
        }
        let (backend_uid, fingerprint) = match g.kind {
            GroupKind::Aliased { backends, hetero_window, .. } => {
                let backend = match backends {
                    BackendMode::Single => 0u64,
                    BackendMode::LoadBalanced(k) => {
                        prf::uniform(self.seed, addr.0, 0xB4C, u64::from(k.max(1)))
                    }
                    BackendMode::PerAddr => prf::prf_u128(self.seed, addr.0, 0xB4D),
                };
                let uid = prf::mix2(u64::from(g.id) | (1 << 40), backend);
                // Uniform fingerprint per group; heterogeneous groups vary
                // the TCP window per address.
                let fp_idx = prf::prf_u128(self.seed, u128::from(g.id), 0xF9);
                let mut fp = TcpFingerprint::profile(fp_idx);
                if hetero_window {
                    fp = fp.with_window(
                        16384 + (prf::prf_u128(self.seed, addr.0, 0xFA) % 8) as u16 * 4096,
                    );
                }
                (uid, fp)
            }
            _ => {
                let uid = prf::mix2(u64::from(g.id) | (2 << 40), member);
                (uid, TcpFingerprint::profile(prf::mix2(uid, 0xF5)))
            }
        };
        let protos = g.member_protos(self.seed, member);
        let dns = if protos.contains(Protocol::Udp53) {
            Some(DnsBehavior::draw(self.seed, backend_uid))
        } else {
            None
        };
        Some(HostView {
            backend_uid,
            asid: g.asid,
            protos,
            fingerprint,
            dns,
            group: Some(GroupId(g.id)),
        })
    }

    /// Enumerates responsive addresses on `day` from non-aliased groups
    /// (ground truth; also the raw material for TGA seed corpora).
    /// Aliased prefixes are skipped — they are unbounded by construction.
    pub fn enumerate_responsive(&self, day: Day) -> Vec<(Addr, ProtoSet, AsId)> {
        let mut out = Vec::new();
        for g in &self.groups {
            if matches!(g.kind, GroupKind::Aliased { .. }) {
                continue;
            }
            let n = g.pattern.count(g.prefix);
            for m in 0..n {
                if g.member_alive(self.seed, m, day) {
                    let protos = g.member_protos(self.seed, m);
                    out.push((g.pattern.member_addr(g.prefix, m), protos, g.asid));
                }
            }
        }
        // Stable router interfaces that answer echo.
        for pool in &self.routers {
            if pool.rotation_days == 0 {
                for s in 0..pool.slots {
                    if pool.slot_responds(s, day) {
                        out.push((
                            pool.hop_addr(s, day),
                            ProtoSet::of(&[Protocol::Icmp]),
                            pool.asid,
                        ));
                    }
                }
            }
        }
        // CPE devices currently responding.
        for f in &self.cpe {
            for d in 0..f.devices {
                if f.device_responds(d) {
                    out.push((f.current_addr(d, day), ProtoSet::of(&[Protocol::Icmp]), f.asid));
                }
            }
        }
        out
    }

    /// Whether an address belongs to a dense hidden cluster (those are by
    /// definition invisible to generic discovery feeds; only the
    /// [`Population::dense_visible`] sample ever reaches public data).
    pub fn is_dense_member(&self, addr: Addr) -> bool {
        if let Some(&gid) = self.trie.lookup_value(addr) {
            let g = &self.groups[gid as usize];
            return matches!(g.kind, GroupKind::DenseHidden)
                && g.pattern.member_index(g.prefix, addr).is_some();
        }
        false
    }

    /// The passive-source-visible sample of the dense hidden clusters:
    /// for each dense group, the `visible_pct` of members that appear in
    /// public data (and therefore in the hitlist input), provided they are
    /// alive on `day`.
    pub fn dense_visible(&self, day: Day) -> Vec<Addr> {
        let mut out = Vec::new();
        for g in &self.groups {
            if !matches!(g.kind, GroupKind::DenseHidden) {
                continue;
            }
            let n = g.pattern.count(g.prefix);
            for m in 0..n {
                if prf::chance(
                    self.seed,
                    u128::from(m) | (u128::from(g.id) << 80),
                    0xD5E,
                    u64::from(g.visible_pct),
                    100,
                ) && g.member_alive(self.seed, m, day)
                {
                    out.push(g.pattern.member_addr(g.prefix, m));
                }
            }
        }
        out
    }

    /// Aliased groups active on `day`.
    pub fn aliased_groups(&self, day: Day) -> impl Iterator<Item = &SubnetGroup> {
        self.groups.iter().filter(move |g| match g.kind {
            GroupKind::Aliased { since, .. } => day >= since,
            _ => false,
        })
    }
}

fn cpe_oui(asn: u32) -> u32 {
    const OUIS: [u32; 4] = [0x002686, 0x0024FE, 0x0018E7, 0x0019C6];
    OUIS[(asn % 4) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::AsRegistry;
    use crate::scale::Scale;

    fn pop() -> (AsRegistry, Population) {
        let r = AsRegistry::build(Scale::tiny());
        let p = Population::build(&r);
        (r, p)
    }

    #[test]
    fn build_is_deterministic() {
        let (_, a) = pop();
        let (_, b) = pop();
        assert_eq!(a.groups().len(), b.groups().len());
        assert_eq!(a.groups()[10].prefix, b.groups()[10].prefix);
    }

    #[test]
    fn lookup_finds_enumerated_hosts() {
        let (_, p) = pop();
        let day = Day(100);
        let responsive = p.enumerate_responsive(day);
        assert!(!responsive.is_empty());
        let mut checked = 0;
        for (addr, protos, asid) in responsive.iter().take(500) {
            let v = p.lookup(*addr, day).unwrap_or_else(|| panic!("{addr} should be live"));
            assert_eq!(v.protos, *protos);
            assert_eq!(v.asid, *asid);
            checked += 1;
        }
        assert!(checked > 100);
    }

    #[test]
    fn unknown_addresses_are_dark() {
        let (_, p) = pop();
        assert!(p.lookup("3fff::1".parse().unwrap(), Day(10)).is_none());
    }

    #[test]
    fn aliased_prefixes_answer_everywhere() {
        let (_, p) = pop();
        let day = Day(100);
        let g = p.aliased_groups(day).next().expect("some aliased group");
        for seed in 0..5u64 {
            let addr = g.prefix.random_addr(seed);
            let v = p.lookup(addr, day).expect("aliased addr responds");
            assert_eq!(v.protos, g.protos);
        }
    }

    #[test]
    fn aliased_single_backend_shares_uid() {
        let (_, p) = pop();
        let day = Day(100);
        let g = p
            .aliased_groups(day)
            .find(|g| matches!(g.kind, GroupKind::Aliased { backends: BackendMode::Single, .. }))
            .expect("single-backend alias");
        let a = p.lookup(g.prefix.random_addr(1), day).unwrap();
        let b = p.lookup(g.prefix.random_addr(2), day).unwrap();
        assert_eq!(a.backend_uid, b.backend_uid, "one host, one PMTU cache");
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn trafficforce_appears_late() {
        let (r, p) = pop();
        let tf = r.by_asn(212144).unwrap();
        let early = p.aliased_groups(Day(100)).filter(|g| g.asid == tf).count();
        let late = p
            .aliased_groups(crate::time::events::TRAFFICFORCE_FLOOD.plus(1))
            .filter(|g| g.asid == tf)
            .count();
        assert_eq!(early, 0);
        assert!(late > 0);
    }

    #[test]
    fn population_grows_over_time() {
        let (_, p) = pop();
        let start = p.enumerate_responsive(Day(0)).len();
        let end = p.enumerate_responsive(Day::PAPER_END).len();
        assert!(end > start, "start={start} end={end}");
        let ratio = end as f64 / start as f64;
        assert!((1.3..2.6).contains(&ratio), "growth ratio {ratio}");
    }

    #[test]
    fn churn_between_close_days() {
        let (_, p) = pop();
        let a: std::collections::HashSet<Addr> =
            p.enumerate_responsive(Day(500)).into_iter().map(|(a, ..)| a).collect();
        let b: std::collections::HashSet<Addr> =
            p.enumerate_responsive(Day(503)).into_iter().map(|(a, ..)| a).collect();
        let gone = a.difference(&b).count();
        let new = b.difference(&a).count();
        assert!(gone > 0 && new > 0, "churn must be visible: -{gone} +{new}");
        // But the sets mostly overlap.
        let inter = a.intersection(&b).count();
        assert!(inter as f64 / a.len() as f64 > 0.7);
    }

    #[test]
    fn cpe_addresses_resolve() {
        let (_, p) = pop();
        let fleet = &p.cpe_fleets()[0];
        let day = Day(50);
        let dev =
            (0..fleet.devices).find(|d| fleet.device_responds(*d)).expect("some device responds");
        let addr = fleet.current_addr(dev, day);
        let v = p.lookup(addr, day).expect("current CPE addr responds");
        assert!(v.protos.contains(Protocol::Icmp));
        assert_eq!(v.protos.len(), 1);
        // The same address is dark after rotation.
        assert!(p.lookup(addr, Day(50 + 30)).is_none());
    }

    #[test]
    fn dns_servers_have_behavior() {
        let (_, p) = pop();
        let day = Day(200);
        let found = p
            .enumerate_responsive(day)
            .into_iter()
            .filter(|(_, protos, _)| protos.contains(Protocol::Udp53))
            .take(20)
            .map(|(addr, ..)| p.lookup(addr, day).unwrap())
            .collect::<Vec<_>>();
        assert!(!found.is_empty());
        assert!(found.iter().all(|v| v.dns.is_some()));
    }

    #[test]
    fn dense_hidden_exists_for_free_sas() {
        let (r, p) = pop();
        let free = r.by_asn(12322).unwrap();
        let dense = p
            .groups()
            .iter()
            .filter(|g| g.asid == free && matches!(g.kind, GroupKind::DenseHidden))
            .count();
        assert!(dense > 0, "Free SAS needs dense clusters for the TGAs");
    }
}
