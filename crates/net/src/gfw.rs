//! The Great Firewall of China's DNS injection middlebox.
//!
//! The paper's central cleaning finding (Sec. 4.2): probes for blocked
//! domains crossing into Chinese networks trigger *injected* DNS answers
//! regardless of whether the probed address hosts anything. ZMapv6 counts
//! any parseable answer as success, so 134 M addresses accumulated as
//! "responsive to UDP/53". Observable behaviours reproduced here:
//!
//! * Injection only for **blocked** names; an unblocked (e.g. self-owned)
//!   domain gets no answer at all, not even an error.
//! * Multiple injectors → two to three duplicate answers per query
//!   (with a rare heavy tail, up to 440 in the paper's worst case).
//! * Era-dependent payloads: earlier events answered AAAA queries with
//!   **A records** holding IPv4 addresses of unrelated operators
//!   (Facebook, Microsoft, Dropbox, Twitter); the 2021/2022 event answered
//!   with **Teredo** AAAA records embedding such IPv4s.
//! * Injection is intermittent: active only inside the three event windows
//!   (`events::GFW_ERA{1,2,3}`), which is what makes the published
//!   time series spike and fall (Fig. 3 left).

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, teredo, Addr};
use sixdust_wire::dns::{DnsMessage, Rcode, Rdata, Record};

use crate::time::{events, Day};

/// Domains the firewall censors (the probe domain `www.google.com` among
/// them, which is why the hitlist's DNS scan triggers injection).
pub const BLOCKED_DOMAINS: &[&str] = &[
    "www.google.com",
    "google.com",
    "www.facebook.com",
    "facebook.com",
    "twitter.com",
    "www.youtube.com",
    "en.wikipedia.org",
];

/// IPv4 addresses of unrelated operators observed inside injected answers
/// (Facebook, Microsoft, Dropbox, Twitter ranges — representative values).
pub const WRONG_OPERATOR_V4: &[u32] = &[
    0x1fd5_2e23, // 31.213.46.35   (Facebook-ish)
    0x9df0_0080, // 157.240.0.128  (Facebook)
    0x0d6b_1560, // 13.107.21.96   (Microsoft)
    0xa2a3_54a0, // 162.163.84.160 (Dropbox-ish)
    0x6810_9540, // 104.16.149.64
    0x67d8_4020, // 103.216.64.32  (Twitter-ish)
];

/// Which injection era is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GfwEra {
    /// First event: A-record injection.
    ARecord1,
    /// Second event: A-record injection.
    ARecord2,
    /// Third (largest) event: Teredo AAAA injection.
    Teredo,
}

/// The firewall model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gfw {
    seed: u64,
}

impl Gfw {
    /// Creates the firewall with a PRF seed.
    pub fn new(seed: u64) -> Gfw {
        Gfw { seed }
    }

    /// Whether a name is censored.
    pub fn is_blocked(name: &str) -> bool {
        BLOCKED_DOMAINS.iter().any(|d| name.eq_ignore_ascii_case(d))
    }

    /// The era active on `day`, if any.
    pub fn era(day: Day) -> Option<GfwEra> {
        if day >= events::GFW_ERA1.0 && day < events::GFW_ERA1.1 {
            Some(GfwEra::ARecord1)
        } else if day >= events::GFW_ERA2.0 && day < events::GFW_ERA2.1 {
            Some(GfwEra::ARecord2)
        } else if day >= events::GFW_ERA3.0 && day < events::GFW_ERA3.1 {
            Some(GfwEra::Teredo)
        } else {
            None
        }
    }

    /// Produces the injected responses for a query toward `dst` (already
    /// known to be behind the firewall). Empty when no era is active or the
    /// name is not blocked.
    pub fn inject(&self, dst: Addr, query: &DnsMessage, day: Day) -> Vec<DnsMessage> {
        let Some(era) = Gfw::era(day) else {
            return Vec::new();
        };
        let Some(qname) = query.qname() else {
            return Vec::new();
        };
        if !Gfw::is_blocked(qname) {
            // Silence: no response, not even an error (Sec. 4.2).
            return Vec::new();
        }
        // Two or three injectors answer; a rare heavy tail floods more.
        let n = if prf::chance(self.seed, dst.0, 0x6F1, 1, 1000) {
            4 + prf::uniform(self.seed, dst.0, 0x6F2, 12)
        } else {
            2 + prf::uniform(self.seed, dst.0, 0x6F3, 2)
        };
        let qname = qname.to_string();
        (0..n)
            .map(|i| {
                let v4 = WRONG_OPERATOR_V4[(prf::mix2(self.seed ^ i, dst.iid())
                    % WRONG_OPERATOR_V4.len() as u64)
                    as usize];
                let mut resp = DnsMessage::response_to(query, Rcode::NoError);
                resp.ra = true;
                let rdata = match era {
                    GfwEra::ARecord1 | GfwEra::ARecord2 => Rdata::A(v4),
                    GfwEra::Teredo => Rdata::Aaaa(teredo::encode(teredo::TeredoParts {
                        server_v4: v4,
                        flags: 0x8000,
                        client_port: (prf::mix2(self.seed, i) & 0xffff) as u16,
                        client_v4: v4.rotate_left(8),
                    })),
                };
                resp.answers.push(Record { name: qname.clone(), ttl: 60 + i as u32, rdata });
                resp
            })
            .collect()
    }
}

/// Detects whether a DNS response looks like a GFW injection — the test
/// the paper's cleaning filter applies to ZMap output: an AAAA answer that
/// is a Teredo address, or an A record answering an AAAA query.
pub fn looks_injected(resp: &DnsMessage) -> bool {
    resp.answers.iter().any(|r| match &r.rdata {
        Rdata::A(_) => true, // IPv4 answer to an AAAA probe
        Rdata::Aaaa(a6) => teredo::is_teredo(*a6),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> DnsMessage {
        DnsMessage::aaaa_query(7, "www.google.com")
    }

    fn dst() -> Addr {
        "2400:1234::9".parse().unwrap()
    }

    #[test]
    fn blocked_domains_match() {
        assert!(Gfw::is_blocked("www.google.com"));
        assert!(Gfw::is_blocked("WWW.GOOGLE.COM"));
        assert!(!Gfw::is_blocked("example.org"));
    }

    #[test]
    fn injects_only_during_eras() {
        let g = Gfw::new(1);
        assert!(g.inject(dst(), &query(), Day(0)).is_empty());
        assert!(!g.inject(dst(), &query(), events::GFW_ERA1.0).is_empty());
        assert!(g.inject(dst(), &query(), events::GFW_ERA1.1).is_empty());
        assert!(!g.inject(dst(), &query(), events::GFW_ERA3.0.plus(10)).is_empty());
    }

    #[test]
    fn silence_for_unblocked_domains() {
        let g = Gfw::new(1);
        let q = DnsMessage::aaaa_query(7, "sixdust-owned.test");
        assert!(g.inject(dst(), &q, events::GFW_ERA3.0).is_empty());
    }

    #[test]
    fn multiple_injectors() {
        let g = Gfw::new(1);
        let rs = g.inject(dst(), &query(), events::GFW_ERA3.0);
        assert!(rs.len() >= 2, "{} responses", rs.len());
        for r in &rs {
            assert!(r.is_response);
            assert_eq!(r.id, 7, "transaction id echoed");
        }
    }

    #[test]
    fn era_payload_types() {
        let g = Gfw::new(1);
        let a_era = g.inject(dst(), &query(), events::GFW_ERA1.0);
        assert!(a_era.iter().all(|r| matches!(r.answers[0].rdata, Rdata::A(_))));
        let teredo_era = g.inject(dst(), &query(), events::GFW_ERA3.0);
        assert!(teredo_era.iter().all(|r| match &r.answers[0].rdata {
            Rdata::Aaaa(a6) => teredo::is_teredo(*a6),
            _ => false,
        }));
    }

    #[test]
    fn injected_responses_are_detectable() {
        let g = Gfw::new(1);
        for day in [events::GFW_ERA1.0, events::GFW_ERA2.0, events::GFW_ERA3.0] {
            for r in g.inject(dst(), &query(), day) {
                assert!(looks_injected(&r));
            }
        }
        // A legitimate answer is not flagged.
        let mut ok = DnsMessage::response_to(&query(), Rcode::NoError);
        ok.answers.push(Record {
            name: "www.google.com".into(),
            ttl: 60,
            rdata: Rdata::Aaaa("2a00:1450:4001::68".parse().unwrap()),
        });
        assert!(!looks_injected(&ok));
    }

    #[test]
    fn deterministic() {
        let g = Gfw::new(5);
        let a = g.inject(dst(), &query(), events::GFW_ERA3.0);
        let b = g.inject(dst(), &query(), events::GFW_ERA3.0);
        assert_eq!(a, b);
    }
}
