//! Host-level behavioural fingerprints.
//!
//! Each simulated backend host owns a TCP fingerprint (the five features
//! the paper's Sec. 5.1 compares: Optionstext, window, window scale, MSS,
//! iTTL) and — if it speaks DNS — a responder behaviour class matching the
//! paper's validation experiment (Sec. 4.2: 93.8 % errors, 4.6 % recursive,
//! referrals, proxies, broken).

use serde::{Deserialize, Serialize};
use sixdust_addr::prf;

/// The TCP handshake features used to fingerprint aliased prefixes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpFingerprint {
    /// Order-preserving options string (e.g. `MSTNW`).
    pub optionstext: String,
    /// Receive window.
    pub window: u16,
    /// Window scale option.
    pub wscale: u8,
    /// Maximum segment size.
    pub mss: u16,
    /// Initial TTL (already rounded to a power of two).
    pub ittl: u8,
}

/// A canned OS/stack profile.
struct FpProfile {
    optionstext: &'static str,
    window: u16,
    wscale: u8,
    mss: u16,
    ittl: u8,
}

/// The profile pool the population draws from; values mirror common
/// Linux/BSD/Windows/load-balancer stacks.
const PROFILES: [FpProfile; 6] = [
    FpProfile { optionstext: "MSTNW", window: 29200, wscale: 7, mss: 1460, ittl: 64 },
    FpProfile { optionstext: "MSTNW", window: 64240, wscale: 7, mss: 1460, ittl: 64 },
    FpProfile { optionstext: "MNWNNTS", window: 65535, wscale: 6, mss: 1440, ittl: 64 },
    FpProfile { optionstext: "MNWNNS", window: 8192, wscale: 8, mss: 1460, ittl: 128 },
    FpProfile { optionstext: "MSW", window: 65535, wscale: 9, mss: 1380, ittl: 255 },
    FpProfile { optionstext: "MW", window: 5840, wscale: 2, mss: 1436, ittl: 64 },
];

impl TcpFingerprint {
    /// The fingerprint of profile `idx` (mod pool size).
    pub fn profile(idx: u64) -> TcpFingerprint {
        let p = &PROFILES[(idx % PROFILES.len() as u64) as usize];
        TcpFingerprint {
            optionstext: p.optionstext.to_string(),
            window: p.window,
            wscale: p.wscale,
            mss: p.mss,
            ittl: p.ittl,
        }
    }

    /// Number of canned profiles.
    pub fn profile_count() -> u64 {
        PROFILES.len() as u64
    }

    /// A copy with a perturbed window (the "same host, different
    /// connection" variation the paper notes makes window size a weak
    /// discriminator).
    pub fn with_window(mut self, window: u16) -> TcpFingerprint {
        self.window = window;
        self
    }
}

/// DNS responder behaviour classes (Sec. 4.2 validation experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DnsBehavior {
    /// An authoritative server or locked-down resolver: answers every query
    /// for a foreign name with REFUSED — a *valid* DNS response, hence
    /// counted responsive by ZMap (93.8 % of the cleaned UDP/53 set).
    AuthRefused,
    /// An open resolver that recursively resolves (4.6 %).
    OpenResolver,
    /// Replies with a referral to the root / parent zone (≈0.4 %).
    Referral,
    /// Resolves via another interface/proxy: the answer is correct but the
    /// query arrives at the authoritative server from a different source
    /// address (the paper's 15-address cohort).
    Proxy,
    /// Broken: wrong status codes or `localhost` referrals (≈1.1 %).
    Broken,
}

impl DnsBehavior {
    /// Draws a behaviour for a host with the paper's observed proportions.
    pub fn draw(seed: u64, host_uid: u64) -> DnsBehavior {
        // Out of 10 000: 9380 refused, 460 resolver, 42 referral,
        // 11 proxy, 107 broken.
        let r = prf::uniform(seed, u128::from(host_uid), 0xD27, 10_000);
        match r {
            0..=9379 => DnsBehavior::AuthRefused,
            9380..=9839 => DnsBehavior::OpenResolver,
            9840..=9881 => DnsBehavior::Referral,
            9882..=9892 => DnsBehavior::Proxy,
            _ => DnsBehavior::Broken,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct_and_stable() {
        let a = TcpFingerprint::profile(0);
        let b = TcpFingerprint::profile(1);
        assert_ne!(a, b);
        assert_eq!(a, TcpFingerprint::profile(0));
        assert_eq!(TcpFingerprint::profile(6), TcpFingerprint::profile(0), "wraps");
    }

    #[test]
    fn ittl_values_are_powers_of_two() {
        for i in 0..TcpFingerprint::profile_count() {
            let fp = TcpFingerprint::profile(i);
            assert!(fp.ittl.is_power_of_two() || fp.ittl == 255, "ittl {}", fp.ittl);
        }
    }

    #[test]
    fn with_window_only_touches_window() {
        let fp = TcpFingerprint::profile(0);
        let fp2 = fp.clone().with_window(1234);
        assert_eq!(fp2.window, 1234);
        assert_eq!(fp2.mss, fp.mss);
        assert_eq!(fp2.optionstext, fp.optionstext);
    }

    #[test]
    fn dns_behavior_distribution() {
        let mut counts = std::collections::HashMap::new();
        for uid in 0..100_000u64 {
            *counts.entry(DnsBehavior::draw(1, uid)).or_insert(0usize) += 1;
        }
        let refused = counts[&DnsBehavior::AuthRefused] as f64 / 100_000.0;
        let resolver = counts[&DnsBehavior::OpenResolver] as f64 / 100_000.0;
        assert!((0.92..0.96).contains(&refused), "refused {refused}");
        assert!((0.035..0.06).contains(&resolver), "resolver {resolver}");
        assert!(counts.contains_key(&DnsBehavior::Referral));
        assert!(counts.contains_key(&DnsBehavior::Broken));
    }

    #[test]
    fn dns_behavior_deterministic() {
        assert_eq!(DnsBehavior::draw(9, 42), DnsBehavior::draw(9, 42));
    }
}
