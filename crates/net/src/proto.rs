//! The five probed protocols and compact protocol sets.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A protocol the IPv6 Hitlist scans (Fig. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// ICMPv6 echo.
    Icmp,
    /// TCP port 80 (HTTP).
    Tcp80,
    /// TCP port 443 (HTTPS).
    Tcp443,
    /// UDP port 53 (DNS).
    Udp53,
    /// UDP port 443 (QUIC).
    Udp443,
}

impl Protocol {
    /// All five protocols in the paper's table order
    /// (ICMP, TCP/443, TCP/80, UDP/443, UDP/53).
    pub const ALL: [Protocol; 5] =
        [Protocol::Icmp, Protocol::Tcp443, Protocol::Tcp80, Protocol::Udp443, Protocol::Udp53];

    /// Stable bit index for [`ProtoSet`].
    pub fn bit(self) -> u8 {
        match self {
            Protocol::Icmp => 0,
            Protocol::Tcp80 => 1,
            Protocol::Tcp443 => 2,
            Protocol::Udp53 => 3,
            Protocol::Udp443 => 4,
        }
    }

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Icmp => "ICMP",
            Protocol::Tcp80 => "TCP/80",
            Protocol::Tcp443 => "TCP/443",
            Protocol::Udp53 => "UDP/53",
            Protocol::Udp443 => "UDP/443",
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A set of protocols as a 5-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ProtoSet(pub u8);

impl ProtoSet {
    /// The empty set.
    pub const EMPTY: ProtoSet = ProtoSet(0);

    /// Builds a set from a protocol list.
    pub fn of(protos: &[Protocol]) -> ProtoSet {
        let mut s = ProtoSet::EMPTY;
        for p in protos {
            s.insert(*p);
        }
        s
    }

    /// All five protocols.
    pub fn all() -> ProtoSet {
        ProtoSet::of(&Protocol::ALL)
    }

    /// Adds a protocol.
    pub fn insert(&mut self, p: Protocol) {
        self.0 |= 1 << p.bit();
    }

    /// Membership test.
    pub fn contains(self, p: Protocol) -> bool {
        self.0 & (1 << p.bit()) != 0
    }

    /// `true` when no protocol is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of protocols present.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Union.
    pub fn union(self, other: ProtoSet) -> ProtoSet {
        ProtoSet(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersect(self, other: ProtoSet) -> ProtoSet {
        ProtoSet(self.0 & other.0)
    }

    /// Iterates the contained protocols.
    pub fn iter(self) -> impl Iterator<Item = Protocol> {
        Protocol::ALL.into_iter().filter(move |p| self.contains(*p))
    }
}

impl fmt::Debug for ProtoSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProtoSet{{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Protocol> for ProtoSet {
    fn from_iter<I: IntoIterator<Item = Protocol>>(iter: I) -> ProtoSet {
        let mut s = ProtoSet::EMPTY;
        for p in iter {
            s.insert(p);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_are_distinct() {
        let bits: Vec<u8> = Protocol::ALL.iter().map(|p| p.bit()).collect();
        let mut dedup = bits.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
        assert_eq!(bits.iter().max(), Some(&4));
    }

    #[test]
    fn set_operations() {
        let mut s = ProtoSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Protocol::Icmp);
        s.insert(Protocol::Udp53);
        assert!(s.contains(Protocol::Icmp));
        assert!(!s.contains(Protocol::Tcp80));
        assert_eq!(s.len(), 2);
        let t = ProtoSet::of(&[Protocol::Udp53, Protocol::Tcp80]);
        assert_eq!(s.union(t).len(), 3);
        assert_eq!(s.intersect(t).len(), 1);
        assert!(s.intersect(t).contains(Protocol::Udp53));
    }

    #[test]
    fn all_has_five() {
        assert_eq!(ProtoSet::all().len(), 5);
        assert_eq!(ProtoSet::all().iter().count(), 5);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Protocol::Udp443.label(), "UDP/443");
        assert_eq!(Protocol::Icmp.to_string(), "ICMP");
    }
}
