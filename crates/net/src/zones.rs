//! The simulated DNS namespace: domains, their hosting, NS/MX records and
//! ranked top lists.
//!
//! Feeds three parts of the reproduction:
//!
//! * the hitlist's **domain resolution input source** (AAAA records, plus
//!   the NS/MX extension this paper adds in Sec. 6),
//! * the **aliased-prefix domain analysis** (Sec. 5.2: 15 M domains inside
//!   aliased prefixes, Cloudflare's 3.94 M-domain /48, top-list presence),
//! * the **controlled-domain validation experiment** (Sec. 4.2).

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr};

use crate::population::{GroupId, GroupKind, Population};
use crate::registry::{AsCategory, AsId, AsRegistry};
use crate::time::Day;

/// The domain sixdust "owns" for the validation experiment. The firewall
/// never blocks it, and its authoritative server records incoming queries.
pub const CONTROLLED_DOMAIN: &str = "sixdust-owned.test";

/// Where a domain's AAAA record points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainHost {
    /// Origin AS of the record target.
    pub asid: AsId,
    /// The aliased group containing the target, when the domain is hosted
    /// on a fully responsive prefix.
    pub aliased: Option<GroupId>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct HostingEntry {
    asid: AsId,
    /// Hyperscale clouds rotate their load-balancer addresses weekly
    /// (the Amazon-style input accumulation); CDNs answer from a small
    /// static pool per prefix.
    weekly_rotation: bool,
    /// Alias groups of the AS (empty ⇒ hosted on regular servers).
    alias_groups: Vec<u32>,
    /// Server groups of the AS usable as stable targets.
    server_groups: Vec<u32>,
    weight: u64,
    cumulative: u64,
}

/// The zone universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DnsZones {
    entries: Vec<HostingEntry>,
    total_weight: u64,
    total_domains: u64,
    toplist_len: u64,
    aliased_entry_idx: Vec<u32>,
    ns_providers: u64,
    seed: u64,
}

impl DnsZones {
    /// Builds the namespace from the registry and population.
    pub fn build(registry: &AsRegistry, population: &Population) -> DnsZones {
        let scale = registry.scale();
        let seed = prf::mix2(scale.seed, 0x20E5);

        // Index groups per AS.
        let mut alias_by_as: std::collections::HashMap<AsId, Vec<u32>> = Default::default();
        let mut servers_by_as: std::collections::HashMap<AsId, Vec<u32>> = Default::default();
        for g in population.groups() {
            match g.kind {
                GroupKind::Aliased { .. } => alias_by_as.entry(g.asid).or_default().push(g.id),
                GroupKind::Servers => servers_by_as.entry(g.asid).or_default().push(g.id),
                _ => {}
            }
        }

        let mut entries = Vec::new();
        for (asid, info) in registry.iter() {
            let alias_domains: u64 = info.profile.aliased.iter().map(|s| s.domains).sum();
            let alias_groups = alias_by_as.get(&asid).cloned().unwrap_or_default();
            let server_groups = servers_by_as.get(&asid).cloned().unwrap_or_default();
            if alias_domains > 0 && !alias_groups.is_empty() {
                entries.push(HostingEntry {
                    asid,
                    weekly_rotation: matches!(info.category, AsCategory::Cloud),
                    alias_groups: alias_groups.clone(),
                    server_groups: server_groups.clone(),
                    weight: scale.addrs(alias_domains, 2),
                    cumulative: 0,
                });
            }
            if info.profile.domains > 0 && !server_groups.is_empty() {
                entries.push(HostingEntry {
                    asid,
                    weekly_rotation: false,
                    alias_groups: Vec::new(),
                    server_groups,
                    weight: scale.addrs(info.profile.domains, 2),
                    cumulative: 0,
                });
            }
        }
        let mut cum = 0u64;
        let mut aliased_entry_idx = Vec::new();
        for (i, e) in entries.iter_mut().enumerate() {
            cum += e.weight;
            e.cumulative = cum;
            if !e.alias_groups.is_empty() {
                aliased_entry_idx.push(i as u32);
            }
        }
        DnsZones {
            entries,
            total_weight: cum,
            total_domains: scale.addrs(300_000_000, 3000),
            toplist_len: scale.addrs(1_000_000, 100),
            aliased_entry_idx,
            ns_providers: scale.addrs(520_000, 40),
            seed,
        }
    }

    /// Number of registered domains.
    pub fn total_domains(&self) -> u64 {
        self.total_domains
    }

    /// Length of each of the three top lists.
    pub fn toplist_len(&self) -> u64 {
        self.toplist_len
    }

    /// The DNS name of domain `d`.
    pub fn domain_name(&self, d: u64) -> String {
        format!("www.d{d}.sim-zone{}.example", d % 13)
    }

    fn entry_for(&self, key: u64) -> &HostingEntry {
        let target = prf::prf_u128(self.seed, u128::from(key), 0xD0) % self.total_weight.max(1);
        let i =
            self.entries.partition_point(|e| e.cumulative <= target).min(self.entries.len() - 1);
        &self.entries[i]
    }

    fn resolve_entry(
        &self,
        entry: &HostingEntry,
        population: &Population,
        key: u64,
        day: Day,
    ) -> (Addr, DomainHost) {
        if !entry.alias_groups.is_empty() {
            // Head-heavy pick: a quarter of the weight lands on the first
            // group (Cloudflare's 3.94 M-domain /48 pattern).
            let gidx = if prf::chance(self.seed, u128::from(key), 0xD1, 1, 4) {
                entry.alias_groups[0]
            } else {
                let j =
                    prf::uniform(self.seed, u128::from(key), 0xD2, entry.alias_groups.len() as u64);
                entry.alias_groups[j as usize]
            };
            let g = population.group(GroupId(gidx));
            // Load-balancer addresses are a property of the *prefix*, not
            // the domain: every domain on the same prefix resolves into the
            // same small answer pool. Hyperscale clouds rotate that pool
            // weekly (each rotation mints one new input address per prefix
            // — the Amazon accumulation of Sec. 4.1); CDNs keep a static
            // pool of eight.
            let group_key = prf::mix2(self.seed, u64::from(gidx));
            // Hyperscale clouds rotate fast; narrow (>64) prefixes rotate
            // weekly regardless of operator (their small host space cycles
            // visibly — also what accumulates the 100+ input addresses the
            // long-prefix alias detection class needs).
            let slot = if entry.weekly_rotation && g.prefix.len() >= 64 {
                u64::from(day.0 / 4)
            } else if g.prefix.len() > 64 {
                u64::from(day.0 / 7)
            } else {
                prf::prf_u128(self.seed, u128::from(key), 0xDC) % 8
            };
            let addr = g.prefix.random_addr(prf::mix2(group_key, slot));
            (addr, DomainHost { asid: entry.asid, aliased: Some(GroupId(gidx)) })
        } else {
            let gidx = entry.server_groups[(prf::prf_u128(self.seed, u128::from(key), 0xD3)
                % entry.server_groups.len() as u64)
                as usize];
            let g = population.group(GroupId(gidx));
            let n = g.pattern.count(g.prefix).max(1);
            let member = prf::uniform(self.seed, u128::from(key), 0xD4, n);
            (
                g.pattern.member_addr(g.prefix, member),
                DomainHost { asid: entry.asid, aliased: None },
            )
        }
    }

    /// Resolves domain `d`'s AAAA record at `day`.
    pub fn resolve(&self, population: &Population, d: u64, day: Day) -> (Addr, DomainHost) {
        debug_assert!(d < self.total_domains);
        self.resolve_entry(self.entry_for(d), population, d, day)
    }

    /// Resolves the name-server host of domain `d`. NS hosting is heavily
    /// concentrated on a provider pool, 71 % of which resolves into the
    /// Amazon-style aliased space (Sec. 6.1).
    pub fn resolve_ns(&self, population: &Population, d: u64, day: Day) -> (Addr, DomainHost) {
        let provider = prf::prf_u128(self.seed, u128::from(d), 0xD5) % self.ns_providers.max(1);
        let key = 0x4e50_0000_0000 | provider;
        if prf::chance(self.seed, u128::from(provider), 0xD6, 71, 100) {
            if let Some(&idx) = self.aliased_entry_idx.first() {
                return self.resolve_entry(&self.entries[idx as usize], population, key, day);
            }
        }
        self.resolve_entry(self.entry_for(key), population, key, day)
    }

    /// Resolves the mail-exchanger host of domain `d` (same provider-pool
    /// structure as NS records).
    pub fn resolve_mx(&self, population: &Population, d: u64, day: Day) -> (Addr, DomainHost) {
        let provider =
            prf::prf_u128(self.seed, u128::from(d), 0xD7) % (self.ns_providers / 2).max(1);
        let key = 0x4d58_0000_0000 | provider;
        if prf::chance(self.seed, u128::from(provider), 0xD8, 60, 100) {
            if let Some(&idx) = self.aliased_entry_idx.first() {
                return self.resolve_entry(&self.entries[idx as usize], population, key, day);
            }
        }
        self.resolve_entry(self.entry_for(key), population, key, day)
    }

    /// The domain at `rank` (0-based) of top list `list` (0 = Alexa-like,
    /// 1 = Majestic-like, 2 = Umbrella-like). Top lists over-sample
    /// CDN-hosted (aliased) domains relative to the full zone.
    pub fn toplist_domain(&self, list: u8, rank: u64) -> u64 {
        debug_assert!(rank < self.toplist_len);
        let key = (u128::from(list) << 64) | u128::from(rank);
        // Umbrella-like lists skew to infrastructure, fewer aliased hits.
        let aliased_pct: u64 = match list {
            2 => 12,
            _ => 18,
        };
        if prf::chance(self.seed, key, 0xD9, aliased_pct, 100) {
            // Draw until the domain resolves into an aliased entry —
            // bounded deterministic retries.
            for attempt in 0..16u64 {
                let d = prf::prf_u128(self.seed, key, 0xDA ^ attempt) % self.total_domains;
                if !self.entry_for(d).alias_groups.is_empty() {
                    return d;
                }
            }
        }
        prf::prf_u128(self.seed, key, 0xDB) % self.total_domains
    }

    /// Whether domain `d`'s hosting entry is an aliased deployment
    /// (cheap check without resolving the address).
    pub fn is_aliased_hosted(&self, d: u64) -> bool {
        !self.entry_for(d).alias_groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::AsRegistry;
    use crate::scale::Scale;

    fn setup() -> (AsRegistry, Population, DnsZones) {
        let r = AsRegistry::build(Scale::tiny());
        let p = Population::build(&r);
        let z = DnsZones::build(&r, &p);
        (r, p, z)
    }

    #[test]
    fn resolution_is_deterministic_within_week() {
        let (_, p, z) = setup();
        let (a1, h1) = z.resolve(&p, 42, Day(0));
        let (a2, h2) = z.resolve(&p, 42, Day(3));
        assert_eq!(a1, a2);
        assert_eq!(h1, h2);
    }

    #[test]
    fn aliased_hosted_domains_rotate_addresses() {
        let (r, p, z) = setup();
        // Cloud-hosted (Amazon-style) domains rotate weekly; CDN-hosted
        // ones answer from a static pool. Find one of each behaviour.
        let mut saw_rotation = false;
        let mut saw_static = false;
        for d in 0..z.total_domains() {
            if !z.is_aliased_hosted(d) {
                continue;
            }
            let (a1, h1) = z.resolve(&p, d, Day(0));
            let (a2, h2) = z.resolve(&p, d, Day(21));
            assert!(h1.aliased.is_some());
            assert_eq!(h1.aliased, h2.aliased, "same prefix");
            let g = p.group(h1.aliased.unwrap());
            assert!(g.prefix.contains(a1) && g.prefix.contains(a2));
            let cloud = matches!(r.get(h1.asid).category, crate::registry::AsCategory::Cloud);
            if cloud && g.prefix.len() >= 64 {
                assert_ne!(a1, a2, "cloud LB rotates weekly (domain {d})");
                saw_rotation = true;
            } else if a1 == a2 {
                saw_static = true;
            }
            if saw_rotation && saw_static {
                break;
            }
        }
        assert!(saw_rotation, "no rotating cloud-hosted domain found");
        assert!(saw_static, "no static CDN-hosted domain found");
    }

    #[test]
    fn server_hosted_domains_are_stable() {
        let (_, p, z) = setup();
        let d = (0..z.total_domains())
            .find(|d| !z.is_aliased_hosted(*d))
            .expect("some server-hosted domain");
        let (a1, _) = z.resolve(&p, d, Day(0));
        let (a2, _) = z.resolve(&p, d, Day(500));
        assert_eq!(a1, a2);
    }

    #[test]
    fn aliased_share_of_zone_near_five_percent() {
        let (_, _, z) = setup();
        let n = z.total_domains().min(20_000);
        let aliased = (0..n).filter(|d| z.is_aliased_hosted(*d)).count() as f64 / n as f64;
        // At the tiny test scale most filler hosting ASes round to zero
        // servers and lose their zone weight, inflating the aliased share
        // well above the paper-scale ~5 % (verified in EXPERIMENTS.md).
        assert!((0.01..0.35).contains(&aliased), "aliased share {aliased}");
    }

    #[test]
    fn toplists_oversample_aliased() {
        let (_, _, z) = setup();
        let n = z.toplist_len();
        let top_aliased = (0..n).filter(|r| z.is_aliased_hosted(z.toplist_domain(0, *r))).count()
            as f64
            / n as f64;
        let base = (0..z.total_domains().min(20_000)).filter(|d| z.is_aliased_hosted(*d)).count()
            as f64
            / z.total_domains().min(20_000) as f64;
        assert!(top_aliased > base, "toplist {top_aliased} vs zone {base}");
    }

    #[test]
    fn ns_records_concentrate_on_aliased_providers() {
        let (_, p, z) = setup();
        let n = 500;
        let aliased = (0..n).filter(|d| z.resolve_ns(&p, *d, Day(0)).1.aliased.is_some()).count()
            as f64
            / n as f64;
        assert!(aliased > 0.5, "NS aliased share {aliased}");
    }

    #[test]
    fn resolved_addresses_have_bgp_origin() {
        let (r, p, z) = setup();
        for d in 0..200 {
            let (addr, host) = z.resolve(&p, d, Day(10));
            assert_eq!(r.origin(addr), Some(host.asid), "domain {d}");
        }
    }

    #[test]
    fn domain_names_are_never_blocked() {
        let (_, _, z) = setup();
        for d in 0..1000 {
            assert!(!crate::gfw::Gfw::is_blocked(&z.domain_name(d)));
        }
    }
}
