//! The autonomous-system registry and BGP table of the simulated Internet.
//!
//! Every AS the paper names — the CDNs whose space is fully responsive
//! (Fastly, Cloudflare, Akamai, Amazon, Google), the eyeball ISPs whose
//! rotating CPE addresses bias the hitlist input (ANTEL, DTAG), the Chinese
//! networks behind the GFW (Table 5), the TGA-favourite dense deployments
//! (Free SAS, DigitalOcean), oddballs (EpicUp's /28s, Trafficforce's /64
//! flood, Misaka's anycast DNS) — appears here with a behavioural profile.
//! A long tail of synthetic filler ASes provides the distributional mass.
//!
//! Address space is carved deterministically: the registry allocates
//! disjoint `/28` blocks under `2000::/4`, one or more per AS, so no two
//! ASes ever overlap and a BGP longest-prefix match is unambiguous.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sixdust_addr::{prf, Addr, Prefix, PrefixTrie};

use crate::proto::{ProtoSet, Protocol};
use crate::scale::Scale;
use crate::time::{events, Day};

/// Index of an AS inside the registry (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsId(pub u32);

/// Behavioural category of an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsCategory {
    /// Eyeball ISP with a CPE fleet.
    Isp,
    /// Chinese network behind the GFW.
    ChineseIsp,
    /// Cloud/VPS hosting.
    Cloud,
    /// Content delivery network.
    Cdn,
    /// Generic web hosting.
    Hosting,
    /// Academic network.
    Academic,
    /// Transit backbone.
    Transit,
    /// Anycast DNS operator.
    Dns,
    /// The measurement vantage point's network.
    Measurement,
}

/// How addresses within a fully responsive prefix map to backend hosts,
/// which is what the Too Big Trick distinguishes (Sec. 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendMode {
    /// A true alias: one host owns the whole prefix (one PMTU cache).
    Single,
    /// CDN-style load balancing across `k` backends (2–7 shared caches).
    LoadBalanced(u8),
    /// Every address keeps its own PMTU state (no sharing observed).
    PerAddr,
}

/// A specification of fully responsive ("aliased") prefixes within an AS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AliasSpec {
    /// Prefix length of each aliased prefix.
    pub plen: u8,
    /// Number of such prefixes (paper magnitude; scaled by entity divisor).
    pub count: u64,
    /// Protocols every address in the prefix answers.
    pub protos: ProtoSet,
    /// Backend topology (drives the TBT outcome).
    pub backends: BackendMode,
    /// Domains hosted across these prefixes (paper magnitude).
    pub domains: u64,
    /// First day these prefixes exist (Trafficforce appears in Feb 2022).
    pub since: Day,
}

impl AliasSpec {
    /// Convenience constructor with the common defaults: present from
    /// launch, single-host, web protocols.
    pub fn new(plen: u8, count: u64) -> AliasSpec {
        AliasSpec {
            plen,
            count,
            protos: ProtoSet::of(&[
                Protocol::Icmp,
                Protocol::Tcp80,
                Protocol::Tcp443,
                Protocol::Udp443,
            ]),
            backends: BackendMode::Single,
            domains: 0,
            since: Day::LAUNCH,
        }
    }
}

/// Protocol-mix archetypes used to draw per-server protocol sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtoMix {
    /// General server population: everything answers ICMP; a third HTTP,
    /// a bit less HTTPS, little QUIC, rare DNS — matches the cleaned
    /// hitlist's per-protocol ratios (Table 1).
    Web,
    /// Ping-only boxes (CPE, routers with addresses in server space).
    IcmpOnly,
    /// Name servers: ICMP + UDP/53.
    DnsServer,
    /// QUIC-forward deployments (CDN edge outside aliased space).
    QuicEdge,
}

impl ProtoMix {
    /// Draws a protocol set for host number `idx` under this mix.
    pub fn draw(self, seed: u64, idx: u128) -> ProtoSet {
        let mut s = ProtoSet::of(&[Protocol::Icmp]);
        match self {
            ProtoMix::IcmpOnly => {}
            ProtoMix::DnsServer => {
                s.insert(Protocol::Udp53);
                if prf::chance(seed, idx, 0x10, 1, 5) {
                    s.insert(Protocol::Tcp443);
                }
            }
            ProtoMix::QuicEdge => {
                s.insert(Protocol::Udp443);
                s.insert(Protocol::Tcp443);
                s.insert(Protocol::Tcp80);
            }
            ProtoMix::Web => {
                // Tuned to land near Table 1 column ratios.
                if prf::chance(seed, idx, 0x11, 33, 100) {
                    s.insert(Protocol::Tcp80);
                }
                if prf::chance(seed, idx, 0x12, 29, 100) {
                    s.insert(Protocol::Tcp443);
                }
                if prf::chance(seed, idx, 0x13, 3, 100) {
                    s.insert(Protocol::Udp443);
                }
                if prf::chance(seed, idx, 0x14, 2, 100) {
                    s.insert(Protocol::Udp53);
                }
            }
        }
        s
    }
}

/// Static behavioural profile of an AS (paper-scale magnitudes; the
/// population builder scales them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsProfile {
    /// Stable responsive server addresses at the end of the window.
    pub responsive_servers: u64,
    /// Protocol mix for those servers.
    pub proto_mix: ProtoMix,
    /// Dedicated UDP/53 responders (name servers / resolvers).
    pub dns_servers: u64,
    /// Responsive addresses in dense incremental clusters that no passive
    /// source sees — the raw material target-generation algorithms mine.
    pub dense_hidden: u64,
    /// Percentage of each dense cluster visible to passive sources (and
    /// hence in the hitlist as seeds). High visibility (small seed gaps)
    /// is what lets distance clustering latch on; low visibility leaves
    /// the clusters to the pattern-mining TGAs.
    pub dense_visible_pct: u8,
    /// Addresses responsive early in the window that then go dark — the
    /// population the 30-day filter removes and Sec. 6 re-scans.
    pub flaky_servers: u64,
    /// Rotating EUI-64 CPE fleet size (devices, not addresses).
    pub cpe_devices: u64,
    /// Accumulated EUI-64 addresses all sharing one MAC (the ZTE artifact).
    pub shared_mac_addrs: u64,
    /// Accumulated rotating random-IID last-hop router addresses the
    /// traceroutes capture over the window (input-only; never responsive).
    pub router_hops: u64,
    /// Fully responsive prefixes.
    pub aliased: Vec<AliasSpec>,
    /// Fraction of the server population already active at day 0
    /// (the rest activates linearly over the window → input/responsive
    /// growth).
    pub growth_start_frac: f64,
    /// Domains hosted on non-aliased infrastructure (paper magnitude).
    pub domains: u64,
}

impl Default for AsProfile {
    fn default() -> AsProfile {
        AsProfile {
            responsive_servers: 0,
            proto_mix: ProtoMix::Web,
            dns_servers: 0,
            dense_hidden: 0,
            dense_visible_pct: 10,
            flaky_servers: 0,
            cpe_devices: 0,
            shared_mac_addrs: 0,
            router_hops: 0,
            aliased: Vec::new(),
            growth_start_frac: 0.55,
            domains: 0,
        }
    }
}

/// A registered AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsInfo {
    /// The autonomous system number.
    pub asn: u32,
    /// Operator name.
    pub name: String,
    /// Behavioural category.
    pub category: AsCategory,
    /// ISO-ish country code.
    pub country: String,
    /// Announced BGP prefixes.
    pub prefixes: Vec<Prefix>,
    /// Behavioural profile.
    pub profile: AsProfile,
    /// `/28` blocks allocated to this AS (prefixes are carved from these).
    pub blocks: Vec<Prefix>,
}

impl AsInfo {
    /// Whether this AS sits behind the Great Firewall.
    pub fn behind_gfw(&self) -> bool {
        self.country == "CN"
    }

    /// Total announced address space as a log2 count (sum over prefixes,
    /// reported as the largest exponent plus fractional load for Fig. 6).
    pub fn announced_space_log2(&self) -> f64 {
        let total: f64 = self.prefixes.iter().map(|p| 2f64.powi(i32::from(p.size_log2()))).sum();
        total.log2()
    }
}

/// The AS registry: all ASes plus the BGP table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsRegistry {
    infos: Vec<AsInfo>,
    by_asn: HashMap<u32, AsId>,
    bgp: PrefixTrie<AsId>,
    scale: Scale,
    /// Registered measurement vantage ASes, in registration order. The
    /// first entry is the default vantage. Serde default keeps old
    /// serialized registries loading; [`AsRegistry::vantage`] falls back
    /// to a category scan when the list is empty.
    #[serde(default)]
    vantage_ids: Vec<AsId>,
}

/// Allocates disjoint /28 blocks under 2000::/4.
struct BlockAllocator {
    next: u128,
}

impl BlockAllocator {
    fn new() -> BlockAllocator {
        BlockAllocator { next: 1 } // block 0 reserved (never allocated)
    }

    fn alloc(&mut self) -> Prefix {
        let idx = self.next;
        self.next += 1;
        assert!(idx < (1 << 24), "block space exhausted");
        Prefix::new(Addr((0x2u128 << 124) | (idx << 100)), 28)
    }
}

impl AsRegistry {
    /// Builds the registry for a given scale.
    pub fn build(scale: Scale) -> AsRegistry {
        let mut alloc = BlockAllocator::new();
        let mut infos = Vec::new();

        for spec in named_specs() {
            let n_blocks = spec.blocks.max(1);
            let blocks: Vec<Prefix> = (0..n_blocks).map(|_| alloc.alloc()).collect();
            // Announce one /32 per block by default; ASes that alias whole
            // blocks announce the blocks themselves.
            let prefixes: Vec<Prefix> = if spec.announce_blocks {
                blocks.clone()
            } else {
                blocks
                    .iter()
                    .flat_map(|b| (0..spec.announce_per_block).map(|i| b.nibble_subprefix(i)))
                    .collect()
            };
            infos.push(AsInfo {
                asn: spec.asn,
                name: spec.name.to_string(),
                category: spec.category,
                country: spec.country.to_string(),
                prefixes,
                profile: spec.profile,
                blocks,
            });
        }

        // Filler ASes: enough to reach the (scaled) count of IPv6-announcing
        // ASes. Categories and sizes drawn deterministically; sizes follow a
        // Zipf-flavoured tail so the responsive CDF has realistic mass.
        let target_total = scale.entities(29_000, 120) as usize;
        let named_count = infos.len();
        let filler = target_total.saturating_sub(named_count);
        let chinese_filler = scale.entities(685, 8) as usize;
        for i in 0..filler {
            let china = i < chinese_filler;
            let tag = prf::prf_u128(scale.seed, i as u128, 0xA5);
            let category = if china {
                AsCategory::ChineseIsp
            } else {
                match tag % 10 {
                    0..=3 => AsCategory::Isp,
                    4..=6 => AsCategory::Hosting,
                    7 => AsCategory::Cloud,
                    8 => AsCategory::Academic,
                    _ => AsCategory::Dns,
                }
            };
            let rank = (i + 2) as f64;
            // Paper-magnitude responsive servers for this filler AS. The
            // global head is held by named ASes; the tail decays ~1/rank.
            let servers = if china {
                (30_000.0 / rank.powf(0.7)) as u64
            } else {
                (120_000.0 / rank.powf(0.82)) as u64
            };
            let profile = AsProfile {
                responsive_servers: servers.max(120),
                dns_servers: if matches!(category, AsCategory::Dns | AsCategory::Hosting) {
                    (servers / 12).max(60)
                } else {
                    servers / 60
                },
                flaky_servers: servers / 5,
                dense_hidden: if china { servers / 2 } else { servers * 7 },
                dense_visible_pct: if tag.is_multiple_of(5) { 42 } else { 8 },
                router_hops: if china {
                    // Tail of the GFW-impacted input outside the Top 10
                    // (Table 5: top 10 hold 93.9 %).
                    8_200_000 / chinese_filler.max(1) as u64
                } else {
                    servers
                },
                cpe_devices: if matches!(category, AsCategory::Isp) { servers * 6 } else { 0 },
                aliased: if !china && tag % 48 == 7 {
                    // A rare filler AS aliases 15/16 of its announced /32
                    // (the Fig. 6 cohort of >90 %-aliased operators); the
                    // last /36 keeps room for its other regions.
                    vec![AliasSpec::new(36, 15)]
                } else if !china && tag.is_multiple_of(17) {
                    // Sparse tail of small aliased deployments.
                    vec![AliasSpec::new(64, 40)]
                } else {
                    Vec::new()
                },
                domains: if matches!(category, AsCategory::Hosting | AsCategory::Cloud) {
                    servers * 250
                } else {
                    0
                },
                growth_start_frac: 0.45 + (tag % 30) as f64 / 100.0,
                ..AsProfile::default()
            };
            let blocks = vec![alloc.alloc()];
            let prefixes = vec![blocks[0].nibble_subprefix(0)];
            infos.push(AsInfo {
                asn: 400_000 + i as u32,
                name: format!("{}-{}", if china { "CN-NET" } else { "FILLER" }, i),
                category,
                country: if china { "CN".to_string() } else { filler_country(tag).to_string() },
                prefixes,
                profile,
                blocks,
            });
        }

        let mut by_asn = HashMap::with_capacity(infos.len());
        let mut bgp = PrefixTrie::new();
        for (i, info) in infos.iter().enumerate() {
            let id = AsId(i as u32);
            by_asn.insert(info.asn, id);
            for p in &info.prefixes {
                bgp.insert(*p, id);
            }
        }
        let vantage_ids = infos
            .iter()
            .enumerate()
            .filter(|(_, info)| info.category == AsCategory::Measurement)
            .map(|(i, _)| AsId(i as u32))
            .collect();
        AsRegistry { infos, by_asn, bgp, scale, vantage_ids }
    }

    /// The scale this registry was built for.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// `true` if the registry is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Looks an AS up by id.
    pub fn get(&self, id: AsId) -> &AsInfo {
        &self.infos[id.0 as usize]
    }

    /// Looks an AS up by its number.
    pub fn by_asn(&self, asn: u32) -> Option<AsId> {
        self.by_asn.get(&asn).copied()
    }

    /// BGP origin lookup: which AS announces the covering prefix?
    pub fn origin(&self, addr: Addr) -> Option<AsId> {
        self.bgp.lookup_value(addr).copied()
    }

    /// The matched announced prefix for an address.
    pub fn origin_prefix(&self, addr: Addr) -> Option<(AsId, Prefix)> {
        self.bgp.lookup(addr).map(|(id, p)| (*id, p))
    }

    /// Adds an extra BGP route (operators announce the prefixes they use;
    /// CDNs announce the /48s and /36s they alias, which is how they end up
    /// in the alias detection's BGP candidate class).
    pub fn add_route(&mut self, prefix: Prefix, id: AsId) {
        self.bgp.insert(prefix, id);
    }

    /// Iterates all ASes.
    pub fn iter(&self) -> impl Iterator<Item = (AsId, &AsInfo)> {
        self.infos.iter().enumerate().map(|(i, info)| (AsId(i as u32), info))
    }

    /// All announced BGP prefixes (the alias detection's first candidate
    /// class).
    pub fn announced_prefixes(&self) -> impl Iterator<Item = (Prefix, AsId)> + '_ {
        self.bgp.iter().map(|(p, id)| (p, *id))
    }

    /// The default measurement vantage AS: the first registered vantage.
    ///
    /// Vantages are registered data, not a hardcoded ASN: the built-in
    /// roster always contains one `Measurement`-category AS, and more can
    /// be added with [`AsRegistry::register_vantage`]. Falls back to a
    /// category scan (then `AsId(0)`) instead of panicking if a
    /// deserialized registry predates the vantage list.
    pub fn vantage(&self) -> AsId {
        if let Some(id) = self.vantage_ids.first() {
            return *id;
        }
        self.infos
            .iter()
            .position(|info| info.category == AsCategory::Measurement)
            .map_or(AsId(0), |i| AsId(i as u32))
    }

    /// All registered vantage ASes, default first, in registration order.
    pub fn vantages(&self) -> &[AsId] {
        &self.vantage_ids
    }

    /// The default vantage point's scanner source address.
    pub fn vantage_addr(&self) -> Addr {
        self.vantage_addr_of(self.vantage())
    }

    /// The scanner source address of a specific vantage AS: the first
    /// address of its first announced prefix. An AS with no announced
    /// prefixes (impossible for built or registered ASes, but tolerated)
    /// yields the loopback-ish `::1` rather than panicking.
    pub fn vantage_addr_of(&self, id: AsId) -> Addr {
        let info = self.get(id);
        match info.prefixes.first() {
            Some(p) => Addr(p.network().0 | 0x1),
            None => Addr(1),
        }
    }

    /// Registers an additional measurement vantage AS and returns its id.
    ///
    /// Idempotent on the ASN: re-registering an existing AS only ensures
    /// it is on the vantage list. New ASes get a fresh `/28` block carved
    /// after every existing allocation (the block cursor is reconstructed
    /// from the registered blocks, so registration order — not call
    /// site — determines addressing, keeping multi-instance worlds
    /// byte-identical when they register the same roster in the same
    /// order).
    pub fn register_vantage(&mut self, asn: u32, name: &str, country: &str) -> AsId {
        if let Some(id) = self.by_asn(asn) {
            if !self.vantage_ids.contains(&id) {
                self.vantage_ids.push(id);
            }
            return id;
        }
        let next = 1 + self.infos.iter().map(|info| info.blocks.len() as u128).sum::<u128>();
        let mut alloc = BlockAllocator { next };
        let block = alloc.alloc();
        let prefixes = vec![block.nibble_subprefix(0)];
        let id = AsId(self.infos.len() as u32);
        for p in &prefixes {
            self.bgp.insert(*p, id);
        }
        self.infos.push(AsInfo {
            asn,
            name: name.to_string(),
            category: AsCategory::Measurement,
            country: country.to_string(),
            prefixes,
            profile: AsProfile::default(),
            blocks: vec![block],
        });
        self.by_asn.insert(asn, id);
        self.vantage_ids.push(id);
        id
    }
}

fn filler_country(tag: u64) -> &'static str {
    const POOL: [&str; 12] =
        ["US", "DE", "FR", "GB", "NL", "JP", "BR", "IN", "SE", "PL", "IT", "AU"];
    POOL[(tag % POOL.len() as u64) as usize]
}

/// A named-AS specification (construction-time only).
struct NamedSpec {
    asn: u32,
    name: &'static str,
    category: AsCategory,
    country: &'static str,
    blocks: u32,
    announce_blocks: bool,
    announce_per_block: u8,
    profile: AsProfile,
}

impl NamedSpec {
    fn new(asn: u32, name: &'static str, category: AsCategory, country: &'static str) -> NamedSpec {
        NamedSpec {
            asn,
            name,
            category,
            country,
            blocks: 1,
            announce_blocks: false,
            announce_per_block: 1,
            profile: AsProfile::default(),
        }
    }
}

/// The paper's cast of characters. All magnitudes are paper-scale; the
/// population builder divides by the scale factors.
fn named_specs() -> Vec<NamedSpec> {
    let web_alias =
        ProtoSet::of(&[Protocol::Icmp, Protocol::Tcp80, Protocol::Tcp443, Protocol::Udp443]);
    let mut v = Vec::new();

    // Measurement vantage (the scanner's own network).
    v.push(NamedSpec::new(64496, "SIXDUST-MSM", AsCategory::Measurement, "DE"));

    // ---- CDNs and hyperscale clouds (Sec. 5) ----
    let mut amazon = NamedSpec::new(16509, "Amazon", AsCategory::Cloud, "US");
    amazon.announce_per_block = 4;
    amazon.profile = AsProfile {
        responsive_servers: 25_000,
        // ~200 M addresses from fully responsive prefixes: dominated by
        // /64s plus some /56s; 32 % of the raw input resolves here.
        aliased: vec![
            // The /64s behave as one host each (true aliases); only the
            // /56 farm is load balanced.
            AliasSpec { domains: 1_300_000, ..AliasSpec::new(64, 14_000) },
            AliasSpec {
                backends: BackendMode::LoadBalanced(4),
                domains: 400_000,
                ..AliasSpec::new(56, 600)
            },
        ],
        domains: 2_000_000,
        growth_start_frac: 0.5,
        ..AsProfile::default()
    };
    amazon.profile.aliased[0].protos = web_alias;
    amazon.profile.aliased[1].protos = web_alias;
    v.push(amazon);

    let mut cloudflare = NamedSpec::new(13335, "Cloudflare", AsCategory::Cdn, "US");
    cloudflare.profile = AsProfile {
        responsive_servers: 8_000,
        aliased: vec![
            // 115 prefixes hosting a mean of 167 k domains; one /48 with
            // 3.94 M. All protocols somewhere: Cloudflare is the only AS
            // with at least one prefix per probe (Table 2 discussion).
            AliasSpec {
                protos: web_alias,
                backends: BackendMode::LoadBalanced(3),
                domains: 5_000_000,
                ..AliasSpec::new(48, 115)
            },
            AliasSpec {
                protos: ProtoSet::of(&[Protocol::Icmp, Protocol::Udp53, Protocol::Tcp443]),
                backends: BackendMode::LoadBalanced(3),
                domains: 0,
                ..AliasSpec::new(64, 60)
            },
        ],
        domains: 1_500_000,
        ..AsProfile::default()
    };
    v.push(cloudflare);

    let mut cf_alias = NamedSpec::new(209242, "Cloudflare-London", AsCategory::Cdn, "GB");
    cf_alias.announce_blocks = false;
    cf_alias.announce_per_block = 1;
    cf_alias.profile = AsProfile {
        // 100 % of announced space aliased: one /32 announced, same /32
        // aliased (modelled as 16 aliased /36s covering it).
        aliased: vec![AliasSpec {
            protos: web_alias,
            backends: BackendMode::LoadBalanced(3),
            domains: 120_000,
            ..AliasSpec::new(36, 16)
        }],
        ..AsProfile::default()
    };
    v.push(cf_alias);

    let mut fastly = NamedSpec::new(54113, "Fastly", AsCategory::Cdn, "US");
    fastly.profile = AsProfile {
        responsive_servers: 1_200,
        // ~95 % of announced space aliased: 15 of 16 /36s; the last /36
        // holds the (sparse) origin servers, which keeps the announced /32
        // itself from being (mis)labeled fully responsive.
        aliased: vec![AliasSpec {
            protos: web_alias,
            backends: BackendMode::LoadBalanced(5),
            domains: 400_000,
            ..AliasSpec::new(36, 15)
        }],
        domains: 200_000,
        ..AsProfile::default()
    };
    v.push(fastly);

    let mut akamai = NamedSpec::new(20940, "Akamai", AsCategory::Cdn, "US");
    akamai.announce_per_block = 3;
    akamai.profile = AsProfile {
        responsive_servers: 30_000,
        // The incrementally-assigned, fully responsive /48 that trapped
        // 6Tree (8.3 M addresses, correctly flagged by the hitlist MAPD):
        // modelled as aliased /48s with per-address PMTU state plus /64s
        // with partial sharing (the Akamai TBT cohort of Sec. 5.1).
        aliased: vec![
            AliasSpec {
                protos: web_alias,
                backends: BackendMode::PerAddr,
                domains: 150_000,
                ..AliasSpec::new(48, 12)
            },
            AliasSpec { protos: web_alias, domains: 80_000, ..AliasSpec::new(64, 10_000) },
        ],
        domains: 700_000,
        ..AsProfile::default()
    };
    v.push(akamai);

    let mut akamai_alias = NamedSpec::new(33905, "Akamai-ALIAS", AsCategory::Cdn, "US");
    akamai_alias.profile = AsProfile {
        // 100 % aliased, like AS209242.
        aliased: vec![AliasSpec {
            protos: web_alias,
            backends: BackendMode::LoadBalanced(4),
            domains: 30_000,
            ..AliasSpec::new(36, 16)
        }],
        ..AsProfile::default()
    };
    v.push(akamai_alias);

    let mut google = NamedSpec::new(15169, "Google", AsCategory::Cdn, "US");
    google.profile = AsProfile {
        responsive_servers: 12_000,
        proto_mix: ProtoMix::QuicEdge,
        aliased: vec![AliasSpec {
            protos: web_alias,
            backends: BackendMode::LoadBalanced(6),
            domains: 300_000,
            ..AliasSpec::new(52, 400)
        }],
        domains: 900_000,
        ..AsProfile::default()
    };
    v.push(google);

    let mut epicup = NamedSpec::new(397165, "EpicUp", AsCategory::Cloud, "US");
    epicup.blocks = 61;
    epicup.announce_blocks = true;
    epicup.profile = AsProfile {
        // 61 fully responsive /28s — the shortest aliased prefixes seen.
        aliased: vec![AliasSpec {
            plen: 28,
            count: 61,
            protos: ProtoSet::of(&[Protocol::Icmp, Protocol::Tcp80, Protocol::Tcp443]),
            backends: BackendMode::Single,
            domains: 0,
            since: Day::LAUNCH,
        }],
        ..AsProfile::default()
    };
    v.push(epicup);

    let mut trafficforce = NamedSpec::new(212144, "Trafficforce", AsCategory::Hosting, "LT");
    trafficforce.announce_per_block = 8;
    trafficforce.profile = AsProfile {
        // 66.4 k ICMP-only /64s appearing in February 2022 (Sec. 5).
        aliased: vec![AliasSpec {
            plen: 64,
            count: 66_400,
            protos: ProtoSet::of(&[Protocol::Icmp]),
            backends: BackendMode::Single,
            domains: 0,
            since: events::TRAFFICFORCE_FLOOD,
        }],
        ..AsProfile::default()
    };
    v.push(trafficforce);

    // ---- Eyeball ISPs driving input accumulation (Sec. 4.1) ----
    let mut antel = NamedSpec::new(6057, "ANTEL", AsCategory::Isp, "UY");
    antel.profile = AsProfile {
        responsive_servers: 15_000,
        cpe_devices: 900_000,
        router_hops: 400_000,
        ..AsProfile::default()
    };
    v.push(antel);

    let mut dtag = NamedSpec::new(3320, "DTAG", AsCategory::Isp, "DE");
    dtag.profile = AsProfile {
        responsive_servers: 40_000,
        cpe_devices: 550_000,
        router_hops: 500_000,
        ..AsProfile::default()
    };
    v.push(dtag);

    let mut zte_isp = NamedSpec::new(17621, "China-Unicom-Shanghai", AsCategory::ChineseIsp, "CN");
    zte_isp.profile = AsProfile {
        // The /32 where one ZTE MAC appears in 240 k distinct addresses.
        shared_mac_addrs: 240_000,
        cpe_devices: 120_000,
        router_hops: 300_000,
        responsive_servers: 3_000,
        ..AsProfile::default()
    };
    v.push(zte_isp);

    // ---- GFW-impacted Chinese networks (Table 5) ----
    let gfw_top: [(u32, &str, u64, u64); 10] = [
        (4134, "China-Telecom-Backbone", 62_300_000, 60_000),
        (4812, "China-Telecom", 19_500_000, 237_000),
        (134774, "ChinaNet-Hubei", 18_600_000, 8_000),
        (134773, "ChinaNet-Hunan", 10_700_000, 6_000),
        (140329, "ChinaNet-Shaanxi", 3_100_000, 3_000),
        (134772, "ChinaNet-Guizhou", 2_500_000, 3_000),
        (4837, "China-Unicom", 2_500_000, 40_000),
        (136200, "ChinaNet-Jiangxi", 2_300_000, 2_000),
        (140330, "ChinaNet-Gansu", 2_300_000, 2_000),
        (140316, "ChinaNet-Qinghai", 1_600_000, 2_000),
    ];
    for (asn, name, hops, servers) in gfw_top {
        let mut spec = NamedSpec::new(asn, name, AsCategory::ChineseIsp, "CN");
        spec.announce_per_block = 4;
        spec.profile = AsProfile {
            router_hops: hops,
            responsive_servers: servers,
            flaky_servers: servers,
            // Eyeball CPE contributes little to the GFW-impacted set —
            // Table 5 is dominated by the rotating backbone router pools.
            cpe_devices: servers / 2,
            ..AsProfile::default()
        };
        v.push(spec);
    }

    let mut china_mobile = NamedSpec::new(9808, "China-Mobile", AsCategory::ChineseIsp, "CN");
    china_mobile.profile = AsProfile {
        router_hops: 900_000,
        responsive_servers: 12_000,
        // Second-largest contributor to the re-scanned unresponsive pool.
        flaky_servers: 90_000,
        ..AsProfile::default()
    };
    v.push(china_mobile);

    // ---- The responsive head (Fig. 2 right tail) ----
    let mut linode = NamedSpec::new(63949, "Linode", AsCategory::Cloud, "US");
    linode.profile = AsProfile {
        // Top responsive AS: 7.9 % of 3.2 M.
        responsive_servers: 253_000,
        dns_servers: 6_000,
        flaky_servers: 120_000,
        domains: 3_000_000,
        ..AsProfile::default()
    };
    v.push(linode);

    // ---- TGA-favourite dense deployments (Sec. 6) ----
    let mut free = NamedSpec::new(12322, "Free-SAS", AsCategory::Isp, "FR");
    free.announce_per_block = 2;
    free.profile = AsProfile {
        // 149.8 k already in the hitlist; ~2 M more responsive addresses in
        // dense incremental clusters only the TGAs find (52.1 % of
        // 6Graph's yield).
        responsive_servers: 150_000,
        dense_hidden: 5_200_000,
        dense_visible_pct: 6,
        cpe_devices: 100_000,
        ..AsProfile::default()
    };
    v.push(free);

    let mut digitalocean = NamedSpec::new(14061, "DigitalOcean", AsCategory::Cloud, "US");
    digitalocean.profile = AsProfile {
        responsive_servers: 110_000,
        dense_hidden: 1_700_000,
        dense_visible_pct: 10,
        dns_servers: 4_000,
        flaky_servers: 60_000,
        domains: 1_200_000,
        ..AsProfile::default()
    };
    v.push(digitalocean);

    let mut vnpt = NamedSpec::new(45899, "VNPT", AsCategory::Isp, "VN");
    vnpt.profile = AsProfile {
        // Dominates the re-scanned 30-day pool (34.4 % of its yield).
        responsive_servers: 18_000,
        flaky_servers: 1_300_000,
        cpe_devices: 180_000,
        ..AsProfile::default()
    };
    v.push(vnpt);

    let mut racktech = NamedSpec::new(208861, "Racktech", AsCategory::Hosting, "RU");
    racktech.profile = AsProfile {
        responsive_servers: 9_000,
        dense_hidden: 650_000,
        dense_visible_pct: 45,
        // The long tail of Fig. 5: aliased prefixes down to /112.
        aliased: vec![AliasSpec { domains: 20_000, ..AliasSpec::new(112, 40) }],
        ..AsProfile::default()
    };
    v.push(racktech);

    let mut deutsche_glasfaser = NamedSpec::new(60294, "Deutsche-Glasfaser", AsCategory::Isp, "DE");
    deutsche_glasfaser.profile = AsProfile {
        responsive_servers: 20_000,
        dense_hidden: 550_000,
        dense_visible_pct: 45,
        cpe_devices: 90_000,
        ..AsProfile::default()
    };
    v.push(deutsche_glasfaser);

    let mut homepl = NamedSpec::new(12824, "home.pl", AsCategory::Hosting, "PL");
    homepl.profile = AsProfile {
        responsive_servers: 30_000,
        dense_hidden: 620_000,
        dense_visible_pct: 35,
        dns_servers: 5_000,
        domains: 900_000,
        // Fig. 5 long-prefix tail: aliased /96s.
        aliased: vec![AliasSpec { domains: 30_000, ..AliasSpec::new(96, 60) }],
        ..AsProfile::default()
    };
    v.push(homepl);

    let mut cern = NamedSpec::new(513, "CERN", AsCategory::Academic, "CH");
    cern.profile = AsProfile {
        // Passive-source-visible academic hosts (CAIDA Ark vantage space).
        responsive_servers: 6_000,
        router_hops: 160_000,
        ..AsProfile::default()
    };
    v.push(cern);

    let mut arnes = NamedSpec::new(2107, "ARNES", AsCategory::Academic, "SI");
    arnes.profile =
        AsProfile { responsive_servers: 5_000, dns_servers: 800, ..AsProfile::default() };
    v.push(arnes);

    let mut level3 = NamedSpec::new(3356, "Level3", AsCategory::Transit, "US");
    level3.profile =
        AsProfile { responsive_servers: 30_000, router_hops: 2_000_000, ..AsProfile::default() };
    v.push(level3);

    let mut misaka = NamedSpec::new(50069, "Misaka", AsCategory::Dns, "US");
    misaka.profile = AsProfile {
        responsive_servers: 1_500,
        dns_servers: 2_500,
        // Anycast DNS: aliased prefixes answering UDP/53 (Table 2's rare
        // UDP/53-responsive aliased cohort).
        aliased: vec![AliasSpec {
            protos: ProtoSet::of(&[Protocol::Icmp, Protocol::Udp53]),
            backends: BackendMode::Single,
            domains: 0,
            ..AliasSpec::new(64, 120)
        }],
        ..AsProfile::default()
    };
    v.push(misaka);

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> AsRegistry {
        AsRegistry::build(Scale::tiny())
    }

    #[test]
    fn named_ases_present() {
        let r = registry();
        for asn in [16509, 13335, 54113, 20940, 212144, 6057, 3320, 4134, 4812, 63949, 12322] {
            assert!(r.by_asn(asn).is_some(), "AS{asn} missing");
        }
    }

    #[test]
    fn origin_lookup_round_trips() {
        let r = registry();
        for (id, info) in r.iter() {
            for p in &info.prefixes {
                let probe = Addr(p.network().0 | 0x42);
                assert_eq!(r.origin(probe), Some(id), "AS{} prefix {p}", info.asn);
            }
        }
    }

    #[test]
    fn blocks_are_disjoint() {
        let r = registry();
        let mut seen = std::collections::HashSet::new();
        for (_, info) in r.iter() {
            for b in &info.blocks {
                assert_eq!(b.len(), 28);
                assert!(seen.insert(b.network()), "block {b} reused");
            }
        }
    }

    #[test]
    fn china_flagged() {
        let r = registry();
        let ct = r.get(r.by_asn(4134).unwrap());
        assert!(ct.behind_gfw());
        let linode = r.get(r.by_asn(63949).unwrap());
        assert!(!linode.behind_gfw());
    }

    #[test]
    fn vantage_exists_with_addr() {
        let r = registry();
        let addr = r.vantage_addr();
        assert_eq!(r.origin(addr), Some(r.vantage()));
        assert!(!r.get(r.vantage()).behind_gfw());
    }

    #[test]
    fn scaled_counts_reasonable() {
        let tiny = AsRegistry::build(Scale::tiny());
        let paper = AsRegistry::build(Scale::paper());
        assert!(paper.len() > tiny.len());
        assert!(tiny.len() >= 120);
    }

    #[test]
    fn epicup_announces_28s() {
        let r = registry();
        let epic = r.get(r.by_asn(397165).unwrap());
        assert_eq!(epic.prefixes.len(), 61);
        assert!(epic.prefixes.iter().all(|p| p.len() == 28));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = AsRegistry::build(Scale::tiny());
        let b = AsRegistry::build(Scale::tiny());
        assert_eq!(a.len(), b.len());
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.prefixes, y.prefixes);
        }
    }

    #[test]
    fn announced_space_log2_sane() {
        let r = registry();
        let epic = r.get(r.by_asn(397165).unwrap());
        // 61 /28s: log2(61 * 2^100) ≈ 105.9
        let l = epic.announced_space_log2();
        assert!((105.0..107.0).contains(&l), "log2 = {l}");
    }
}
